//! Umbrella crate for the Promising-ARM/RISC-V reproduction.
//!
//! Re-exports the workspace crates under one roof so that the examples and
//! cross-crate integration tests in this repository can depend on a single
//! package. Library users should depend on the individual crates
//! (`promising-core`, `promising-explorer`, …) directly.

pub use promising_axiomatic as axiomatic;
pub use promising_core as core;
pub use promising_explorer as explorer;
pub use promising_flat as flat;
pub use promising_lang as lang;
pub use promising_litmus as litmus;
pub use promising_workloads as workloads;
