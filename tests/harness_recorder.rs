//! Recorder coverage (closure frontend):
//!
//! * **Round-trip** — a recorded program's pretty-printed surface syntax
//!   re-parses to an identical AST, for the whole literature corpus and
//!   for a property test over randomly generated straight-line closures.
//! * **Determinism** — recording the same test twice yields the same
//!   program text, and exploration outcomes are independent of the
//!   worker count.

use promising_harness::corpus::corpus;
use promising_harness::{Environment, LogTest};
use promising_lang::parse_program;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};

#[test]
fn corpus_programs_round_trip_through_the_parser() {
    for t in corpus() {
        let lt = (t.build)();
        let rec = lt.record().unwrap_or_else(|e| panic!("{}: {e}", t.name));
        let text = rec.program_text();
        let (reparsed, _locs) = parse_program(&text).unwrap_or_else(|e| {
            panic!("{}: recorded text failed to re-parse: {e}\n{text}", t.name)
        });
        assert_eq!(
            reparsed, rec.lang.program,
            "{}: re-parsed AST differs from the recorded one:\n{text}",
            t.name
        );
    }
}

#[test]
fn random_straight_line_closures_round_trip() {
    use proptest::TestRng;
    // A closure is generated from a plan: a list of recorded operations
    // over the six locations. No data-dependent control flow — branching
    // fidelity is covered by the corpus round-trip above — but stores of
    // multiple distinct values grow real candidate sets.
    #[derive(Clone, Copy)]
    enum PlanOp {
        Load(usize, usize),       // loc, ord (rlx/acq/sc)
        Store(usize, i64, usize), // loc, val, ord (rlx/rel/sc)
        Fence(usize),             // ord (acq/rel/acqrel/sc)
        Swap(usize, i64, usize),  // loc, val, ord
        Add(usize, i64, usize),   // loc, operand, ord
    }
    fn handle(e: &Environment, i: usize) -> &promising_harness::Atomic {
        match i {
            0 => &e.a,
            1 => &e.b,
            2 => &e.c,
            _ => &e.d,
        }
    }
    fn run_plan(plan: &[PlanOp], mut e: Environment) -> i64 {
        let mut last = 0;
        for op in plan {
            match *op {
                PlanOp::Load(l, o) => {
                    last = handle(&e, l).load([Relaxed, Acquire, SeqCst][o]);
                }
                PlanOp::Store(l, v, o) => handle(&e, l).store(v, [Relaxed, Release, SeqCst][o]),
                PlanOp::Fence(o) => e.fence(
                    [
                        Acquire,
                        Release,
                        std::sync::atomic::Ordering::AcqRel,
                        SeqCst,
                    ][o],
                ),
                PlanOp::Swap(l, v, o) => {
                    last = handle(&e, l).swap(v, [Relaxed, Release, SeqCst][o]);
                }
                PlanOp::Add(l, v, o) => {
                    last = handle(&e, l).fetch_add(v, [Relaxed, Release, SeqCst][o]);
                }
            }
        }
        last
    }
    let mut rng = TestRng::new(0x4EC0_4DE4);
    for case in 0..40u32 {
        let mut lt = LogTest::named(format!("random-{case}"));
        let n_threads = 1 + rng.below(3) as usize;
        for _ in 0..n_threads {
            let n_ops = rng.below(4) as usize;
            let mut plan = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                let loc = rng.below(4) as usize;
                let val = rng.below(3) as i64 + 1;
                plan.push(match rng.below(5) {
                    0 => PlanOp::Load(loc, rng.below(3) as usize),
                    1 => PlanOp::Store(loc, val, rng.below(3) as usize),
                    2 => PlanOp::Fence(rng.below(4) as usize),
                    3 => PlanOp::Swap(loc, val, rng.below(3) as usize),
                    // operand fixed at 1: compounding adds across threads
                    // otherwise blow the candidate/path caps by design
                    _ => PlanOp::Add(loc, 1, rng.below(3) as usize),
                });
            }
            lt.add(move |e: Environment| run_plan(&plan, e));
        }
        let rec = match lt.record() {
            Ok(r) => r,
            Err(e) => panic!("case {case}: recording failed: {e}"),
        };
        let text = rec.program_text();
        let (reparsed, _locs) = parse_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: re-parse failed: {e}\n{text}"));
        assert_eq!(
            reparsed, rec.lang.program,
            "case {case}: round-trip changed the AST:\n{text}"
        );
        // recording is a pure function of the closures
        let again = lt.record().expect("second recording");
        assert_eq!(
            text,
            again.program_text(),
            "case {case}: unstable recording"
        );
    }
}

#[test]
fn recording_twice_is_identical() {
    let build = || {
        let mut lt = LogTest::named("mp");
        lt.add(|e: Environment| {
            e.a.store(1, Relaxed);
            e.b.store(1, Release);
            0
        });
        lt.add(|e: Environment| {
            if e.b.load(Acquire) == 1 {
                e.a.load(Relaxed)
            } else {
                -1
            }
        });
        lt
    };
    let t1 = build().record().expect("records").program_text();
    let t2 = build().record().expect("records").program_text();
    assert_eq!(t1, t2);
}

#[test]
fn outcomes_are_independent_of_worker_count() {
    let build = |workers: usize| {
        let mut lt = LogTest::named("sb");
        lt.add(|e: Environment| {
            e.a.store(1, SeqCst);
            e.b.load(SeqCst)
        });
        lt.add(|e: Environment| {
            e.b.store(1, SeqCst);
            e.a.load(SeqCst)
        });
        lt.with_workers(workers);
        lt
    };
    let serial = build(1).outcomes().expect("serial explores");
    let parallel = build(2).outcomes().expect("parallel explores");
    assert_eq!(serial, parallel, "worker count changed the outcome set");
}
