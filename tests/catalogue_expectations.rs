//! Cross-crate validation: every named catalogue test (the classic litmus
//! shapes with literature expectations, plus the paper's own worked
//! examples) must
//!
//! 1. match its architectural expectation under the Promising model, and
//! 2. produce identical outcome sets under the promise-first search, the
//!    naive search, the axiomatic model, and (where applicable) Flat-lite
//!    — the executable version of Theorems 6.1 and 7.1.

use promising_litmus::{catalogue, check_agreement, evaluate, ModelKind};

#[test]
fn catalogue_matches_expectations_under_promising() {
    let mut failures = Vec::new();
    for test in catalogue() {
        let v = evaluate(&test, ModelKind::Promising).expect("run");
        if v.matches_expectation != Some(true) {
            failures.push(format!(
                "{test}: condition holds = {}, expectation = {:?}",
                v.holds, test.expect
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "expectation mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn catalogue_matches_expectations_under_axiomatic() {
    let mut failures = Vec::new();
    for test in catalogue() {
        let v = evaluate(&test, ModelKind::Axiomatic).expect("run");
        if v.matches_expectation != Some(true) {
            failures.push(format!(
                "{test}: condition holds = {}, expectation = {:?}",
                v.holds, test.expect
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "expectation mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn catalogue_models_agree() {
    let mut failures = Vec::new();
    for test in catalogue() {
        match check_agreement(&test, &ModelKind::ALL) {
            Ok(a) if a.agree => {}
            Ok(a) => failures.push(a.mismatch.unwrap_or_else(|| a.test.clone())),
            Err(e) => failures.push(format!("{test}: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "model disagreements:\n{}",
        failures.join("\n")
    );
}
