//! Cross-crate validation: every named catalogue test (the classic litmus
//! shapes with literature expectations, plus the paper's own worked
//! examples) must
//!
//! 1. match its architectural expectation under the Promising model, and
//! 2. produce identical outcome sets under the promise-first search, the
//!    naive search, the axiomatic model, and (where applicable) Flat-lite
//!    — the executable version of Theorems 6.1 and 7.1.
//!
//! The *language-level* catalogue (C11 classics: SB/MP/LB/IRIW/2+2W/CoRR
//! in `rlx`/`acq`-`rel`/`sc` variants) is checked the same way on **both**
//! of its compilations — one expectation per test covers ARM and RISC-V,
//! because the conformance battery guarantees the compiled outcome sets
//! coincide.

use promising_core::Arch;
use promising_litmus::{
    catalogue, check_agreement, evaluate, evaluate_lang, lang_by_name, lang_catalogue, Expectation,
    ModelKind,
};

#[test]
fn catalogue_matches_expectations_under_promising() {
    let mut failures = Vec::new();
    for test in catalogue() {
        let v = evaluate(&test, ModelKind::Promising).expect("run");
        if v.matches_expectation != Some(true) {
            failures.push(format!(
                "{test}: condition holds = {}, expectation = {:?}",
                v.holds, test.expect
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "expectation mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn catalogue_matches_expectations_under_axiomatic() {
    let mut failures = Vec::new();
    for test in catalogue() {
        let v = evaluate(&test, ModelKind::Axiomatic).expect("run");
        if v.matches_expectation != Some(true) {
            failures.push(format!(
                "{test}: condition holds = {}, expectation = {:?}",
                v.holds, test.expect
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "expectation mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn lang_catalogue_matches_expectations_on_both_architectures() {
    let mut failures = Vec::new();
    for test in lang_catalogue() {
        assert!(
            test.expect.is_some(),
            "{test}: catalogue entry without expectation"
        );
        for arch in [Arch::Arm, Arch::RiscV] {
            for kind in [ModelKind::Promising, ModelKind::Axiomatic] {
                let v = evaluate_lang(&test, arch, kind).expect("run");
                if v.matches_expectation != Some(true) {
                    failures.push(format!(
                        "{test} [{}/{}]: condition holds = {}, expectation = {:?}",
                        arch.name(),
                        kind.name(),
                        v.holds,
                        test.expect
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "language-level expectation mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn lang_catalogue_carries_the_literature_verdicts() {
    // spot-check the satellite's named expectations: SB+sc forbidden,
    // MP+rel+acq forbidden, LB+rlx allowed — plus the two places the
    // compiled (multicopy-atomic / RCsc-ordered) verdicts are stronger
    // than the weakest C11 reading, and the RCpc acq-load mapping that
    // keeps SB+rel+acq weak.
    let expect = |name: &str, e: Expectation| {
        let t = lang_by_name(name).unwrap_or_else(|| panic!("missing lang test {name}"));
        assert_eq!(t.expect, Some(e), "{name}");
    };
    expect("SB+sc", Expectation::Forbidden);
    expect("SB+rlx", Expectation::Allowed);
    expect("SB+rel+acq", Expectation::Allowed);
    expect("MP+rel+acq", Expectation::Forbidden);
    expect("MP+rlx", Expectation::Allowed);
    expect("MP+sc", Expectation::Forbidden);
    expect("LB+rlx", Expectation::Allowed);
    expect("LB+data", Expectation::Forbidden);
    expect("2+2W+rlx", Expectation::Allowed);
    expect("IRIW+rlx", Expectation::Allowed);
    expect("IRIW+sc", Expectation::Forbidden);
    expect("CoRR+rlx", Expectation::Forbidden);
    assert!(lang_catalogue().len() >= 20);
}

#[test]
fn catalogue_models_agree() {
    let mut failures = Vec::new();
    for test in catalogue() {
        match check_agreement(&test, &ModelKind::ALL) {
            Ok(a) if a.agree => {}
            Ok(a) => failures.push(a.mismatch.unwrap_or_else(|| a.test.clone())),
            Err(e) => failures.push(format!("{test}: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "model disagreements:\n{}",
        failures.join("\n")
    );
}
