//! Validation of the partial-order reduction (PR 5): with
//! [`Config::por`] on or off, every exploration strategy must produce
//! *identical* outcome sets — across the named litmus catalogue, the
//! systematically generated suites (shapes × orderings × RMW links), the
//! compiled language corpus on both architectures, and random programs
//! (property-tested). The reduction's building blocks are validated
//! directly too: every transition pair the `SearchModel::independent`
//! hook claims independent must actually commute, state-for-state, with
//! enabledness preserved in both directions.
//!
//! [`Config::por`]: promising_core::Config

use promising_core::ids::TId;
use promising_core::{Config, Machine, Transition, TransitionKind};
use promising_explorer::{explore_naive, CertMode, Engine, NaiveModel, SearchModel, Stats};
use promising_litmus::{
    catalogue, generate_lang_subsample, generate_rmw_subsample, generate_subsample,
    generate_three_thread_suite, lang_catalogue, run_model_with, LitmusTest, ModelKind,
    DEFAULT_FUEL,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The two strategies the reduction actually prunes, plus promise-first
/// (whose reduce hook is the default no-op — the sweep pins that its
/// outcome sets are unaffected by the flag too).
const MODELS: [ModelKind; 3] = [
    ModelKind::PromisingNaive,
    ModelKind::Flat,
    ModelKind::Promising,
];

fn assert_por_agreement(test: &LitmusTest) {
    for kind in MODELS {
        if test.flat_conservative && kind == ModelKind::Flat {
            continue;
        }
        let on = run_model_with(test, kind, |c| c.with_por(true)).expect("POR-on run");
        let off = run_model_with(test, kind, |c| c.with_por(false)).expect("POR-off run");
        assert_eq!(
            on.outcomes,
            off.outcomes,
            "{test}: {} POR-on and POR-off outcome sets differ",
            kind.name()
        );
    }
}

#[test]
fn catalogue_por_on_off_agree() {
    for test in catalogue() {
        assert_por_agreement(&test);
    }
}

#[test]
fn generated_suites_por_on_off_agree() {
    // Shapes × link orderings, the three-thread (IRIW/WRC) shapes —
    // where the observer collapse actually fires — and the RMW cross,
    // on both architectures.
    use promising_core::Arch;
    for arch in [Arch::Arm, Arch::RiscV] {
        let mut tests = generate_subsample(arch, 13, arch as usize);
        tests.extend(
            generate_three_thread_suite(arch)
                .into_iter()
                .skip(arch as usize)
                .step_by(5),
        );
        tests.extend(generate_rmw_subsample(arch, 17, arch as usize));
        assert!(tests.len() > 30, "{}: sample too small", arch.name());
        for test in &tests {
            assert_por_agreement(test);
        }
    }
}

#[test]
fn lang_corpus_por_on_off_agree() {
    // The language-level corpus, compiled to both architectures.
    use promising_core::Arch;
    let mut tests = lang_catalogue();
    tests.extend(generate_lang_subsample(29, 0));
    for test in &tests {
        for arch in [Arch::Arm, Arch::RiscV] {
            assert_por_agreement(&test.compile(arch));
        }
    }
}

#[test]
fn por_actually_prunes_observer_shapes() {
    // Guard against the reduction silently rotting into a no-op: on an
    // IRIW-style multi-observer shape it must both prune transitions and
    // shrink the visited set.
    let test = catalogue()
        .into_iter()
        .find(|t| t.name == "IRIW+po+po")
        .expect("IRIW+po+po in catalogue");
    let config = Config::for_arch(test.arch).with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL));
    let on = explore_naive(
        &Machine::with_init(test.program.clone(), config.clone(), test.init.clone()),
        CertMode::Online,
    );
    let off = explore_naive(
        &Machine::with_init(
            test.program.clone(),
            config.with_por(false),
            test.init.clone(),
        ),
        CertMode::Online,
    );
    assert!(on.stats.por_pruned > 0, "POR never fired on IRIW");
    assert!(
        on.stats.states < off.stats.states,
        "POR did not shrink the visited set on IRIW ({} vs {})",
        on.stats.states,
        off.stats.states
    );
    assert_eq!(off.stats.por_pruned, 0, "POR-off must not prune");
    assert_eq!(on.outcomes, off.outcomes);
}

#[test]
fn sampling_with_por_is_sound_and_deterministic() {
    // `Engine::sample` draws from the reduced transition sets: outcomes
    // must stay a subset of the exhaustive set, and a fixed (n, seed)
    // must be reproducible regardless of worker count — with POR on or
    // off (the walks differ between the two, but each is deterministic).
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 5 != 0 {
            continue;
        }
        let config =
            Config::for_arch(test.arch).with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL));
        let exhaustive = explore_naive(
            &Machine::with_init(test.program.clone(), config.clone(), test.init.clone()),
            CertMode::Online,
        );
        for por in [true, false] {
            let mk = |workers: usize| {
                let m = Machine::with_init(
                    test.program.clone(),
                    config.clone().with_por(por).with_workers(workers),
                    test.init.clone(),
                );
                Engine::new(NaiveModel::new(&m, CertMode::Online)).sample(12, 0xFEED)
            };
            let a = mk(1);
            assert!(
                a.outcomes.is_subset(&exhaustive.outcomes),
                "{test}: sampled (por={por}) outcomes not a subset"
            );
            let b = mk(4);
            assert_eq!(
                a.outcomes, b.outcomes,
                "{test}: sampling (por={por}) differs across worker counts"
            );
            assert_eq!(a.stats.states, b.stats.states);
        }
    }
}

/// Walk a machine along a seeded random path, and at every state check
/// that each transition pair the model claims independent really
/// commutes: applying them in either order reaches the same fingerprint,
/// and each stays applicable after the other.
fn check_independence_commutation(test: &LitmusTest, seed: u64) {
    let config = Config::for_arch(test.arch).with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL));
    let m = Machine::with_init(test.program.clone(), config, test.init.clone());
    let model = NaiveModel::new(&m, CertMode::Online);
    let mut stats = Stats::default();
    let mut cache = model.cache();
    let mut rng = proptest::TestRng::new(seed);
    let mut state = model.root(&mut stats);
    for _step in 0..12 {
        if model.is_final(&state, &mut stats) {
            break;
        }
        let transitions = model.expand(&state, &mut cache, &mut stats, None);
        if transitions.is_empty() {
            break;
        }
        // check up to 24 independent pairs at this state
        let mut checked = 0;
        'outer: for (i, a) in transitions.iter().enumerate() {
            for b in transitions.iter().skip(i + 1) {
                if !model.independent(&state, a, b) {
                    continue;
                }
                assert!(
                    model.independent(&state, b, a),
                    "{test}: independence is not symmetric for {a} / {b}"
                );
                let sa = model.apply(&state, a, &mut stats);
                let sb = model.apply(&state, b, &mut stats);
                assert!(
                    applicable(&sa, b),
                    "{test}: {b} disabled by supposedly independent {a}"
                );
                assert!(
                    applicable(&sb, a),
                    "{test}: {a} disabled by supposedly independent {b}"
                );
                let sab = model.apply(&sa, b, &mut stats);
                let sba = model.apply(&sb, a, &mut stats);
                assert_eq!(
                    model.fingerprint(&sab),
                    model.fingerprint(&sba),
                    "{test}: independent pair {a} / {b} does not commute"
                );
                checked += 1;
                if checked >= 24 {
                    break 'outer;
                }
            }
        }
        let next = &transitions[(rng.below(transitions.len() as u64)) as usize];
        state = model.apply(&state, next, &mut stats);
    }
}

/// Whether `tr` applies cleanly in (a clone of) `m`.
fn applicable(m: &Machine, tr: &Transition) -> bool {
    m.clone().apply(tr).is_ok()
}

#[test]
fn independent_transitions_commute_on_observer_shapes() {
    // Deterministic check on the shapes with the most cross-thread
    // independence (multi-observer reads).
    for test in catalogue() {
        if !test.name.starts_with("IRIW") && !test.name.starts_with("MP") {
            continue;
        }
        for seed in [1, 2] {
            check_independence_commutation(&test, seed);
        }
    }
}

// ---- property tests ---------------------------------------------------

/// A strategy choosing random generated litmus tests (shape × ordering
/// crosses plus the RMW-link cross) on a random architecture.
fn generated_test_strategy() -> impl Strategy<Value = LitmusTest> {
    (any::<bool>(), 0..10_000usize).prop_map(|(riscv, ix)| {
        use promising_core::Arch;
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let mut tests = generate_subsample(arch, 7, ix % 7);
        tests.extend(generate_rmw_subsample(arch, 11, ix % 11));
        let pick = ix % tests.len();
        tests.swap_remove(pick)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// POR-on ≡ POR-off on random generated programs, for the reduced
    /// strategies.
    #[test]
    fn por_on_off_agree_on_random_programs(test in generated_test_strategy()) {
        for kind in [ModelKind::PromisingNaive, ModelKind::Flat] {
            if test.flat_conservative && kind == ModelKind::Flat {
                continue;
            }
            let on = run_model_with(&test, kind, |c| c.with_por(true)).expect("on");
            let off = run_model_with(&test, kind, |c| c.with_por(false)).expect("off");
            prop_assert_eq!(
                &on.outcomes, &off.outcomes,
                "{}: {} POR mismatch", test.name, kind.name()
            );
        }
    }

    /// Claimed-independent transition pairs commute on random programs
    /// and random paths.
    #[test]
    fn independent_pairs_commute_on_random_programs(
        test in generated_test_strategy(),
        seed in 1..u64::MAX,
    ) {
        check_independence_commutation(&test, seed);
    }

    /// Random sampling runs stay subsets of exhaustive with POR enabled,
    /// for arbitrary seeds.
    #[test]
    fn por_sampling_soundness_random_seeds(
        test in generated_test_strategy(),
        seed in any::<u64>(),
    ) {
        let config = Config::for_arch(test.arch)
            .with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL));
        let m = Machine::with_init(test.program.clone(), config, test.init.clone());
        let exhaustive = explore_naive(&m, CertMode::Online);
        let sampled = Engine::new(NaiveModel::new(&m, CertMode::Online)).sample(8, seed);
        prop_assert!(
            sampled.outcomes.is_subset(&exhaustive.outcomes),
            "{}: sampled outcomes escape the exhaustive set", test.name
        );
    }
}

#[test]
fn observer_collapse_never_starves_outcomes() {
    // A hand-built worst case for the collapse: three pure observers of
    // one writer, where keeping only the lowest-numbered observer at
    // every state must still (eventually) let the others read both the
    // old and new values.
    use promising_core::{CodeBuilder, Expr, Program, Reg};
    use std::sync::Arc;
    let mut b = CodeBuilder::new();
    let s = b.store(Expr::val(0), Expr::val(1));
    let writer = b.finish_seq(&[s]);
    let mut threads = vec![writer];
    for _ in 0..3 {
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        threads.push(b.finish_seq(&[l]));
    }
    let program = Arc::new(Program::new(threads));
    let on = explore_naive(
        &Machine::new(Arc::clone(&program), Config::arm()),
        CertMode::Online,
    );
    let off = explore_naive(
        &Machine::new(Arc::clone(&program), Config::arm().with_por(false)),
        CertMode::Online,
    );
    assert_eq!(on.outcomes, off.outcomes);
    // all 8 old/new combinations across the three observers
    let readings: BTreeSet<Vec<i64>> = on
        .outcomes
        .iter()
        .map(|o| (1..4).map(|t| o.reg(t, promising_core::Reg(1)).0).collect())
        .collect();
    assert_eq!(readings.len(), 8, "some observer reading was starved");
    assert!(on.stats.por_pruned > 0);
}

#[test]
fn footprints_classify_the_transition_zoo() {
    // Spot-check `Machine::transition_footprint` against a machine with
    // a promise outstanding: promises append and are cert-coupled,
    // fulfils are memory-silent but cert-coupled, reads of promising
    // threads are cert-coupled, reads of clean threads are not.
    use promising_core::memory::Msg;
    use promising_core::{CodeBuilder, Expr, Loc, Program, Reg, Val};
    use std::sync::Arc;
    let mut b = CodeBuilder::new();
    let s = b.store(Expr::val(0), Expr::val(1));
    let t0 = b.finish_seq(&[s]);
    let mut b = CodeBuilder::new();
    let l = b.load(Reg(1), Expr::val(0));
    let t1 = b.finish_seq(&[l]);
    let mut m = Machine::new(Arc::new(Program::new(vec![t0, t1])), Config::arm());
    m.apply(&Transition::new(
        TId(0),
        TransitionKind::Promise {
            msg: Msg::new(Loc(0), Val(1), TId(0)),
        },
    ))
    .unwrap();

    let promise = m.transition_footprint(&Transition::new(
        TId(0),
        TransitionKind::Promise {
            msg: Msg::new(Loc(0), Val(1), TId(0)),
        },
    ));
    assert!(promise.appends.contains(Loc(0)) && promise.promise);
    assert_eq!(promise.agent, Some(0));

    let fulfil = m.transition_footprint(&Transition::new(
        TId(0),
        TransitionKind::Fulfil {
            t: promising_core::Timestamp(1),
        },
    ));
    // memory-silent: the message has been visible since promise time
    assert!(fulfil.appends.is_empty() && fulfil.promise);
    assert!(fulfil.writes.is_empty() && fulfil.reads.is_empty());

    let read = m.transition_footprint(&Transition::new(
        TId(1),
        TransitionKind::Read {
            t: promising_core::Timestamp(0),
        },
    ));
    assert!(read.appends.is_empty() && !read.promise);
    assert!(read.reads.contains(Loc(0)));

    // a clean observer's read is independent of the promising thread's
    // fulfil, but not of its promise (a same-location append)
    assert!(read.independent_with(&fulfil));
    assert!(!read.independent_with(&promise));
    assert!(!fulfil.independent_with(&promise));
}
