//! Validation of the structurally-shared state layer and the exploration
//! frontier:
//!
//! * **Fingerprint vs exact keys** — on the full litmus catalogue, the
//!   fingerprint-deduplicated searches must produce the same outcome
//!   sets as the paranoid (exact-key, collision-checked) mode, for both
//!   the promise-first and naive strategies. The paranoid runs panic on
//!   any fingerprint collision, so passing also certifies that no
//!   collision-induced dedup happened.
//! * **Serial vs parallel** — per strategy (naive, promise-first,
//!   Flat-lite), exploring with multiple workers must produce exactly
//!   the serial outcome set.
//! * **Deep clones are behavioural no-ops** — `Machine::deep_clone`
//!   (the benchmarking helper that unshares all COW structure) must not
//!   change fingerprints or outcomes.

use promising_core::{Config, Machine};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use promising_flat::{explore_flat, FlatMachine};
use promising_litmus::{catalogue, LitmusTest, DEFAULT_FUEL};

fn config_for(test: &LitmusTest) -> Config {
    Config::for_arch(test.arch).with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL))
}

fn machine_for(test: &LitmusTest, config: Config) -> Machine {
    Machine::with_init(test.program.clone(), config, test.init.clone())
}

#[test]
fn promise_first_fingerprint_and_exact_modes_agree_on_catalogue() {
    for test in catalogue() {
        let fast = explore_promise_first(&machine_for(&test, config_for(&test)));
        // Paranoid: exact keys stored beside fingerprints in every
        // visited set and memo; panics on collision.
        let paranoid =
            explore_promise_first(&machine_for(&test, config_for(&test).with_paranoid(true)));
        assert_eq!(
            fast.outcomes, paranoid.outcomes,
            "{test}: fingerprint vs exact-key outcome sets differ (promise-first)"
        );
        assert_eq!(
            fast.stats.states, paranoid.stats.states,
            "{test}: fingerprint vs exact-key state counts differ (promise-first)"
        );
    }
}

#[test]
fn naive_fingerprint_and_exact_modes_agree_on_catalogue() {
    for test in catalogue() {
        let fast = explore_naive(&machine_for(&test, config_for(&test)), CertMode::Online);
        let paranoid = explore_naive(
            &machine_for(&test, config_for(&test).with_paranoid(true)),
            CertMode::Online,
        );
        assert_eq!(
            fast.outcomes, paranoid.outcomes,
            "{test}: fingerprint vs exact-key outcome sets differ (naive)"
        );
        assert_eq!(
            fast.stats.states, paranoid.stats.states,
            "{test}: fingerprint vs exact-key state counts differ (naive)"
        );
    }
}

#[test]
fn flat_fingerprint_and_exact_modes_agree_on_catalogue() {
    for test in catalogue() {
        if test.flat_conservative {
            continue;
        }
        let fast = explore_flat(&FlatMachine::with_init(
            test.program.clone(),
            config_for(&test),
            test.init.clone(),
        ));
        let paranoid = explore_flat(&FlatMachine::with_init(
            test.program.clone(),
            config_for(&test).with_paranoid(true),
            test.init.clone(),
        ));
        assert_eq!(
            fast.outcomes, paranoid.outcomes,
            "{test}: fingerprint vs exact-key outcome sets differ (flat)"
        );
        assert_eq!(
            fast.stats.states, paranoid.stats.states,
            "{test}: fingerprint vs exact-key state counts differ (flat)"
        );
    }
}

#[test]
fn serial_and_parallel_explorations_agree_per_strategy() {
    // Every 3rd catalogue test keeps the parallel sweep fast while still
    // covering all shapes (MP, LB, SB, IRIW, exclusives, loops).
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        let serial_cfg = config_for(&test);
        let parallel_cfg = config_for(&test).with_workers(4);

        let s = explore_promise_first(&machine_for(&test, serial_cfg.clone()));
        let p = explore_promise_first(&machine_for(&test, parallel_cfg.clone()));
        assert_eq!(s.outcomes, p.outcomes, "{test}: promise-first 1 vs 4 workers");

        let s = explore_naive(&machine_for(&test, serial_cfg.clone()), CertMode::Online);
        let p = explore_naive(&machine_for(&test, parallel_cfg.clone()), CertMode::Online);
        assert_eq!(s.outcomes, p.outcomes, "{test}: naive 1 vs 4 workers");

        if !test.flat_conservative {
            let s = explore_flat(&FlatMachine::with_init(
                test.program.clone(),
                serial_cfg,
                test.init.clone(),
            ));
            let p = explore_flat(&FlatMachine::with_init(
                test.program.clone(),
                parallel_cfg,
                test.init.clone(),
            ));
            assert_eq!(s.outcomes, p.outcomes, "{test}: flat 1 vs 4 workers");
        }
    }
}

#[test]
fn parallel_workloads_agree_with_serial() {
    use promising_core::Arch;
    use promising_workloads::{by_spec, init_for};
    for spec in ["SLA-2", "PCS-1-1", "STC-100-010-000"] {
        let w = by_spec(spec).expect("spec parses");
        let serial = explore_promise_first(&Machine::with_init(
            w.program.clone(),
            w.config(Arch::Arm),
            init_for(&w),
        ));
        let parallel = explore_promise_first(&Machine::with_init(
            w.program.clone(),
            w.config(Arch::Arm).with_workers(4).with_paranoid(true),
            init_for(&w),
        ));
        assert_eq!(serial.outcomes, parallel.outcomes, "{spec}");
        assert_eq!(
            serial.stats.final_memories, parallel.stats.final_memories,
            "{spec}"
        );
    }
}

#[test]
fn deep_clone_preserves_fingerprint_and_behaviour() {
    let test = promising_litmus::by_name("MP+dmb.sy+addr").expect("catalogue test");
    let m = machine_for(&test, config_for(&test));
    let deep = m.deep_clone();
    assert_eq!(m.fingerprint(), deep.fingerprint());
    assert_eq!(m.state_key(), deep.state_key());
    assert_eq!(
        explore_promise_first(&m).outcomes,
        explore_promise_first(&deep).outcomes
    );
}

#[test]
fn fingerprints_distinguish_catalogue_initial_states() {
    // Distinct programs/initial memories give distinct fingerprints
    // (smoke check of the canonical encoding).
    let mut seen = std::collections::HashMap::new();
    for test in catalogue() {
        let m = machine_for(&test, config_for(&test));
        if let Some(prev) = seen.insert(m.fingerprint(), test.name.clone()) {
            // Identical initial dynamic state is legitimate only if the
            // init sections agree and thread counts agree; catalogue
            // programs differ in code, but the *dynamic* state (conts are
            // per-arena ids) can coincide. Only flag exact dynamic dupes
            // that also share a state key as fine.
            let other = catalogue()
                .into_iter()
                .find(|t| t.name == prev)
                .expect("test exists");
            let m2 = machine_for(&other, config_for(&other));
            assert_eq!(
                m.state_key(),
                m2.state_key(),
                "fingerprint collision between {} and {}",
                test.name,
                prev
            );
        }
    }
}
