//! Validation of the structurally-shared state layer and the generic
//! search engine ([`promising_explorer::Engine`]):
//!
//! * **Engine equivalence** — the generic engine must reproduce the
//!   pre-refactor searches: outcome sets equal to the seed's independent
//!   promise-first implementation (`promising_bench::legacy`) across the
//!   full litmus catalogue, and the three strategies must agree with
//!   each other (Theorems 6.1/7.1) with serial == parallel state counts.
//! * **Sampling soundness** — `Engine::sample` outcome sets must be
//!   subsets of the exhaustive sets for every catalogue test and every
//!   strategy (a property test randomises seeds and trace counts), and a
//!   fixed seed must be deterministic across runs and worker counts.
//!
//! * **Fingerprint vs exact keys** — on the full litmus catalogue, the
//!   fingerprint-deduplicated searches must produce the same outcome
//!   sets as the paranoid (exact-key, collision-checked) mode, for both
//!   the promise-first and naive strategies. The paranoid runs panic on
//!   any fingerprint collision, so passing also certifies that no
//!   collision-induced dedup happened.
//! * **Serial vs parallel** — per strategy (naive, promise-first,
//!   Flat-lite), exploring with multiple workers must produce exactly
//!   the serial outcome set.
//! * **Deep clones are behavioural no-ops** — `Machine::deep_clone`
//!   (the benchmarking helper that unshares all COW structure) must not
//!   change fingerprints or outcomes.

use promising_core::{Config, Machine};
use promising_explorer::{
    explore_naive, explore_naive_budget, explore_promise_first, explore_promise_first_budget,
    CertMode, Engine, NaiveModel, PromiseFirstModel, SearchBudget,
};
use promising_flat::{explore_flat, explore_flat_budget, FlatMachine, FlatModel};
use promising_litmus::{catalogue, LitmusTest, DEFAULT_FUEL};

fn config_for(test: &LitmusTest) -> Config {
    Config::for_arch(test.arch).with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL))
}

fn machine_for(test: &LitmusTest, config: Config) -> Machine {
    Machine::with_init(test.program.clone(), config, test.init.clone())
}

#[test]
fn promise_first_fingerprint_and_exact_modes_agree_on_catalogue() {
    for test in catalogue() {
        let fast = explore_promise_first(&machine_for(&test, config_for(&test)));
        // Paranoid: exact keys stored beside fingerprints in every
        // visited set and memo; panics on collision.
        let paranoid =
            explore_promise_first(&machine_for(&test, config_for(&test).with_paranoid(true)));
        assert_eq!(
            fast.outcomes, paranoid.outcomes,
            "{test}: fingerprint vs exact-key outcome sets differ (promise-first)"
        );
        assert_eq!(
            fast.stats.states, paranoid.stats.states,
            "{test}: fingerprint vs exact-key state counts differ (promise-first)"
        );
    }
}

#[test]
fn naive_fingerprint_and_exact_modes_agree_on_catalogue() {
    for test in catalogue() {
        let fast = explore_naive(&machine_for(&test, config_for(&test)), CertMode::Online);
        let paranoid = explore_naive(
            &machine_for(&test, config_for(&test).with_paranoid(true)),
            CertMode::Online,
        );
        assert_eq!(
            fast.outcomes, paranoid.outcomes,
            "{test}: fingerprint vs exact-key outcome sets differ (naive)"
        );
        assert_eq!(
            fast.stats.states, paranoid.stats.states,
            "{test}: fingerprint vs exact-key state counts differ (naive)"
        );
    }
}

#[test]
fn flat_fingerprint_and_exact_modes_agree_on_catalogue() {
    for test in catalogue() {
        if test.flat_conservative {
            continue;
        }
        let fast = explore_flat(&FlatMachine::with_init(
            test.program.clone(),
            config_for(&test),
            test.init.clone(),
        ));
        let paranoid = explore_flat(&FlatMachine::with_init(
            test.program.clone(),
            config_for(&test).with_paranoid(true),
            test.init.clone(),
        ));
        assert_eq!(
            fast.outcomes, paranoid.outcomes,
            "{test}: fingerprint vs exact-key outcome sets differ (flat)"
        );
        assert_eq!(
            fast.stats.states, paranoid.stats.states,
            "{test}: fingerprint vs exact-key state counts differ (flat)"
        );
    }
}

#[test]
fn serial_and_parallel_explorations_agree_per_strategy() {
    // Every 3rd catalogue test keeps the parallel sweep fast while still
    // covering all shapes (MP, LB, SB, IRIW, exclusives, loops).
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        let serial_cfg = config_for(&test);
        let parallel_cfg = config_for(&test).with_workers(4);

        let s = explore_promise_first(&machine_for(&test, serial_cfg.clone()));
        let p = explore_promise_first(&machine_for(&test, parallel_cfg.clone()));
        assert_eq!(
            s.outcomes, p.outcomes,
            "{test}: promise-first 1 vs 4 workers"
        );

        let s = explore_naive(&machine_for(&test, serial_cfg.clone()), CertMode::Online);
        let p = explore_naive(&machine_for(&test, parallel_cfg.clone()), CertMode::Online);
        assert_eq!(s.outcomes, p.outcomes, "{test}: naive 1 vs 4 workers");

        if !test.flat_conservative {
            let s = explore_flat(&FlatMachine::with_init(
                test.program.clone(),
                serial_cfg,
                test.init.clone(),
            ));
            let p = explore_flat(&FlatMachine::with_init(
                test.program.clone(),
                parallel_cfg,
                test.init.clone(),
            ));
            assert_eq!(s.outcomes, p.outcomes, "{test}: flat 1 vs 4 workers");
        }
    }
}

#[test]
fn outcome_json_is_byte_identical_serial_vs_parallel() {
    // Regression (PR 5): the canonical outcome serialisation the table
    // binaries embed in their `--json` snapshots must be byte-identical
    // for every worker count and strategy — `Exploration::outcomes` is a
    // canonically sorted set, so the emitted JSON must never depend on
    // scheduling (it used to be tempting to emit per-worker maps).
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        let serial_pf = explore_promise_first(&machine_for(&test, config_for(&test)));
        let serial_naive = explore_naive(&machine_for(&test, config_for(&test)), CertMode::Online);
        for workers in [2, 4] {
            let par_pf =
                explore_promise_first(&machine_for(&test, config_for(&test).with_workers(workers)));
            assert_eq!(
                serial_pf.outcomes_json(),
                par_pf.outcomes_json(),
                "{test}: promise-first outcome JSON differs at {workers} workers"
            );
            assert_eq!(
                serial_pf.outcomes_digest(),
                par_pf.outcomes_digest(),
                "{test}: promise-first outcome digest differs at {workers} workers"
            );
            let par_naive = explore_naive(
                &machine_for(&test, config_for(&test).with_workers(workers)),
                CertMode::Online,
            );
            assert_eq!(
                serial_naive.outcomes_json(),
                par_naive.outcomes_json(),
                "{test}: naive outcome JSON differs at {workers} workers"
            );
        }
        if !test.flat_conservative {
            let serial_flat = explore_flat(&FlatMachine::with_init(
                test.program.clone(),
                config_for(&test),
                test.init.clone(),
            ));
            let par_flat = explore_flat(&FlatMachine::with_init(
                test.program.clone(),
                config_for(&test).with_workers(4),
                test.init.clone(),
            ));
            assert_eq!(
                serial_flat.outcomes_json(),
                par_flat.outcomes_json(),
                "{test}: flat outcome JSON differs at 4 workers"
            );
        }
    }
}

#[test]
fn outcomes_digest_byte_identical_across_workers_and_reductions() {
    // Satellite of the work-stealing frontier refactor: the digest the
    // bench snapshots embed must not depend on worker count, steal
    // order, or which reduction is active. The visited set only ever
    // suppresses re-expansion, so the outcome set — and therefore the
    // canonical serialisation — must be a pure function of the model.
    // Every 4th catalogue test × {por+dpor, por-only, no-reduction} ×
    // workers {1, 2, 4} × all three strategies.
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 4 != 0 {
            continue;
        }
        for (por, dpor) in [(true, true), (true, false), (false, false)] {
            let cfg = |w: usize| {
                config_for(&test)
                    .with_por(por)
                    .with_dpor(dpor)
                    .with_workers(w)
            };
            let ref_pf = explore_promise_first(&machine_for(&test, cfg(1)));
            let ref_naive = explore_naive(&machine_for(&test, cfg(1)), CertMode::Online);
            let ref_flat = (!test.flat_conservative).then(|| {
                explore_flat(&FlatMachine::with_init(
                    test.program.clone(),
                    cfg(1),
                    test.init.clone(),
                ))
            });
            for workers in [2, 4] {
                let pf = explore_promise_first(&machine_for(&test, cfg(workers)));
                assert_eq!(
                    ref_pf.outcomes_digest(),
                    pf.outcomes_digest(),
                    "{test}: promise-first digest at {workers} workers (por={por}, dpor={dpor})"
                );
                assert_eq!(
                    ref_pf.outcomes_json(),
                    pf.outcomes_json(),
                    "{test}: promise-first JSON at {workers} workers (por={por}, dpor={dpor})"
                );
                let nv = explore_naive(&machine_for(&test, cfg(workers)), CertMode::Online);
                assert_eq!(
                    ref_naive.outcomes_digest(),
                    nv.outcomes_digest(),
                    "{test}: naive digest at {workers} workers (por={por}, dpor={dpor})"
                );
                if let Some(rf) = &ref_flat {
                    let fl = explore_flat(&FlatMachine::with_init(
                        test.program.clone(),
                        cfg(workers),
                        test.init.clone(),
                    ));
                    assert_eq!(
                        rf.outcomes_digest(),
                        fl.outcomes_digest(),
                        "{test}: flat digest at {workers} workers (por={por}, dpor={dpor})"
                    );
                }
            }
        }
    }
}

#[test]
fn outcome_json_escapes_and_digest_shape() {
    // The serialisation must be valid JSON material: quotes/backslashes
    // escaped (outcome Display never emits them today, but the escape
    // path must not rot) and the digest a fixed-width hex string.
    let test = catalogue().into_iter().next().expect("catalogue nonempty");
    let exp = explore_promise_first(&machine_for(&test, config_for(&test)));
    let json = exp.outcomes_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches('"').count() % 2, 0, "quotes must balance");
    let digest = exp.outcomes_digest();
    assert_eq!(digest.len(), 32);
    assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
}

#[test]
fn parallel_workloads_agree_with_serial() {
    use promising_core::Arch;
    use promising_workloads::{by_spec, init_for};
    for spec in ["SLA-2", "PCS-1-1", "STC-100-010-000"] {
        let w = by_spec(spec).expect("spec parses");
        let serial = explore_promise_first(&Machine::with_init(
            w.program.clone(),
            w.config(Arch::Arm),
            init_for(&w),
        ));
        let parallel = explore_promise_first(&Machine::with_init(
            w.program.clone(),
            w.config(Arch::Arm).with_workers(4).with_paranoid(true),
            init_for(&w),
        ));
        assert_eq!(serial.outcomes, parallel.outcomes, "{spec}");
        assert_eq!(
            serial.stats.final_memories, parallel.stats.final_memories,
            "{spec}"
        );
    }
}

#[test]
fn engine_reproduces_legacy_promise_first_on_catalogue() {
    // The seed's promise-first search (exact keys, deep clones, its own
    // loop — `promising_bench::legacy`) is the pre-refactor baseline:
    // the generic engine must produce byte-identical outcome sets on the
    // full catalogue.
    for test in catalogue() {
        let m = machine_for(&test, config_for(&test));
        let engine = explore_promise_first(&m);
        let legacy = promising_bench::explore_promise_first_legacy(&m, None);
        assert_eq!(
            engine.outcomes, legacy.outcomes,
            "{test}: engine vs legacy outcome sets differ"
        );
        assert_eq!(
            engine.stats.final_memories, legacy.stats.final_memories,
            "{test}: engine vs legacy final-memory counts differ"
        );
    }
}

#[test]
fn budget_entry_points_agree_with_unbounded_on_catalogue() {
    // The budgeted entry points with no bounds must be the plain
    // searches; with generous bounds they must be complete (untruncated)
    // and identical. Every 5th test keeps the sweep fast.
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 5 != 0 {
            continue;
        }
        let roomy = SearchBudget::max_states(u64::MAX >> 1);
        let m = machine_for(&test, config_for(&test));
        let a = explore_promise_first(&m);
        let b = explore_promise_first_budget(&m, roomy);
        assert!(!b.stats.truncated(), "{test}");
        assert_eq!(a.outcomes, b.outcomes, "{test}: promise-first budget");
        assert_eq!(a.stats.states, b.stats.states, "{test}");

        let a = explore_naive(&m, CertMode::Online);
        let b = explore_naive_budget(&m, CertMode::Online, roomy);
        assert_eq!(a.outcomes, b.outcomes, "{test}: naive budget");
        assert_eq!(a.stats.states, b.stats.states, "{test}");

        if !test.flat_conservative {
            let fm =
                FlatMachine::with_init(test.program.clone(), config_for(&test), test.init.clone());
            let a = explore_flat(&fm);
            let b = explore_flat_budget(&fm, roomy);
            assert_eq!(a.outcomes, b.outcomes, "{test}: flat budget");
            assert_eq!(a.stats.states, b.stats.states, "{test}");
        }
    }
}

/// Sampling seeds vary per test so one lucky seed cannot hide a strategy
/// bug across the whole catalogue.
const SAMPLE_TRACES: u64 = 24;

#[test]
fn sampled_outcomes_subset_of_exhaustive_on_catalogue() {
    // The sampling scheduler's soundness guarantee, checked for all
    // three strategies on every catalogue test: sampled ⊆ exhaustive,
    // and sampled sets are never empty (every walk ends somewhere).
    for (i, test) in catalogue().into_iter().enumerate() {
        let seed = 0xC0FFEE ^ i as u64;
        let m = machine_for(&test, config_for(&test));

        let exhaustive = explore_promise_first(&m);
        let sampled = Engine::new(PromiseFirstModel::new(&m)).sample(SAMPLE_TRACES, seed);
        assert!(
            sampled.outcomes.is_subset(&exhaustive.outcomes),
            "{test}: promise-first sampled ⊄ exhaustive"
        );
        assert!(!sampled.outcomes.is_empty(), "{test}: no sampled outcomes");

        let sampled =
            Engine::new(NaiveModel::new(&m, CertMode::Online)).sample(SAMPLE_TRACES, seed);
        assert!(
            sampled.outcomes.is_subset(&exhaustive.outcomes),
            "{test}: naive sampled ⊄ exhaustive (naive exhaustive == promise-first, Thm 7.1)"
        );

        if !test.flat_conservative {
            let fm =
                FlatMachine::with_init(test.program.clone(), config_for(&test), test.init.clone());
            let exhaustive = explore_flat(&fm);
            let sampled = Engine::new(FlatModel::new(&fm)).sample(SAMPLE_TRACES, seed);
            assert!(
                sampled.outcomes.is_subset(&exhaustive.outcomes),
                "{test}: flat sampled ⊄ exhaustive"
            );
        }
    }
}

#[test]
fn sampling_is_deterministic_across_runs_and_workers() {
    // Fixed (n_traces, seed) must be a pure function: identical outcome
    // sets, walk-step counts, and trace counts across repeat runs and
    // worker counts. Every 4th test keeps the parallel sweep fast.
    for (i, test) in catalogue().into_iter().enumerate() {
        if i % 4 != 0 {
            continue;
        }
        let seed = 7 + i as u64;
        let m = machine_for(&test, config_for(&test));
        let a = Engine::new(PromiseFirstModel::new(&m)).sample(SAMPLE_TRACES, seed);
        let b = Engine::new(PromiseFirstModel::new(&m)).sample(SAMPLE_TRACES, seed);
        assert_eq!(a.outcomes, b.outcomes, "{test}: same-seed runs differ");
        assert_eq!(a.stats.states, b.stats.states, "{test}");
        assert_eq!(a.stats.traces, b.stats.traces, "{test}");

        let mp = machine_for(&test, config_for(&test).with_workers(4));
        let c = Engine::new(PromiseFirstModel::new(&mp)).sample(SAMPLE_TRACES, seed);
        assert_eq!(a.outcomes, c.outcomes, "{test}: 1 vs 4 workers differ");
        assert_eq!(a.stats.states, c.stats.states, "{test}");
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig {
        cases: 6,
        ..proptest::prelude::ProptestConfig::default()
    })]

    /// Property: for arbitrary seeds and trace counts, sampling is a
    /// sound under-approximation of exhaustive search on representative
    /// catalogue tests of each shape (fences, dependencies, exclusives).
    #[test]
    fn prop_sampled_subset_for_arbitrary_seeds(seed in 0u64..u64::MAX, traces in 1u64..48) {
        for name in ["MP+dmb.sy+addr", "LB+data+data", "LDX-STX-atomicity"] {
            let test = promising_litmus::by_name(name).expect("catalogue test");
            let m = machine_for(&test, config_for(&test));
            let exhaustive = explore_promise_first(&m);
            let sampled = Engine::new(PromiseFirstModel::new(&m)).sample(traces, seed);
            proptest::prop_assert!(
                sampled.outcomes.is_subset(&exhaustive.outcomes),
                "{}: seed {} traces {}: sampled ⊄ exhaustive",
                name,
                seed,
                traces
            );
            proptest::prop_assert_eq!(sampled.stats.traces, traces);
        }
    }
}

#[test]
fn deep_clone_preserves_fingerprint_and_behaviour() {
    let test = promising_litmus::by_name("MP+dmb.sy+addr").expect("catalogue test");
    let m = machine_for(&test, config_for(&test));
    let deep = m.deep_clone();
    assert_eq!(m.fingerprint(), deep.fingerprint());
    assert_eq!(m.state_key(), deep.state_key());
    assert_eq!(
        explore_promise_first(&m).outcomes,
        explore_promise_first(&deep).outcomes
    );
}

#[test]
fn fingerprints_distinguish_catalogue_initial_states() {
    // Distinct programs/initial memories give distinct fingerprints
    // (smoke check of the canonical encoding).
    let mut seen = std::collections::HashMap::new();
    for test in catalogue() {
        let m = machine_for(&test, config_for(&test));
        if let Some(prev) = seen.insert(m.fingerprint(), test.name.clone()) {
            // Identical initial dynamic state is legitimate only if the
            // init sections agree and thread counts agree; catalogue
            // programs differ in code, but the *dynamic* state (conts are
            // per-arena ids) can coincide. Only flag exact dynamic dupes
            // that also share a state key as fine.
            let other = catalogue()
                .into_iter()
                .find(|t| t.name == prev)
                .expect("test exists");
            let m2 = machine_for(&other, config_for(&other));
            assert_eq!(
                m.state_key(),
                m2.state_key(),
                "fingerprint collision between {} and {}",
                test.name,
                prev
            );
        }
    }
}
