//! Robustness suite for the fault-tolerant batch runner: panic
//! isolation, degradation tiers, the crash-safe cache, and the
//! deterministic verdict database (ISSUE 6).
//!
//! The fine-grained cases live next to the implementation
//! (`crates/bench/src/batch.rs`, `crates/explorer/src/engine.rs`);
//! this suite exercises the cross-crate surface the `litmus_batch`
//! binary composes, plus property tests over the serialisation
//! boundaries.

use promising_bench::batch::{
    run_campaign, verdict_db, BatchConfig, ResultCache, Tier, TierBudgets, VerdictRecord,
};
use promising_core::Arch;
use promising_litmus::{catalogue, parse_litmus, LitmusTest, ModelKind, SearchBudget, StopReason};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("batch-robustness-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test tmp dir");
    dir
}

fn small_corpus() -> Vec<LitmusTest> {
    // A handful of named catalogue tests across both architectures:
    // enough shape diversity to exercise every ladder outcome without
    // making the suite slow.
    let names = [
        "MP+dmb.sy+addr",
        "SB+dmb.sy+dmb.sy",
        "LB+data+data",
        "2+2W+po+po",
    ];
    let picked: Vec<LitmusTest> = catalogue()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    assert!(
        picked.len() >= 3,
        "catalogue moved; update the corpus names ({:?})",
        picked.iter().map(|t| t.name.clone()).collect::<Vec<_>>()
    );
    picked
}

#[test]
fn injected_panic_is_contained_and_other_verdicts_survive() {
    let corpus = small_corpus();
    let trigger = corpus[0].name.clone();
    let clean = run_campaign(&corpus, &BatchConfig::default()).expect("campaign I/O");
    let faulty = run_campaign(
        &corpus,
        &BatchConfig {
            inject_panic: Some(trigger.clone()),
            ..BatchConfig::default()
        },
    )
    .expect("campaign I/O");

    let panicked: Vec<_> = faulty.panicked().collect();
    assert!(!panicked.is_empty(), "the injected fault must be recorded");
    assert!(panicked.iter().all(|r| r.test == trigger));
    assert!(
        panicked.iter().all(|r| !r.mismatch()),
        "a caught panic is an infrastructure fault, not a conformance failure"
    );
    let spared = |r: &&VerdictRecord| r.test != trigger;
    assert_eq!(
        clean.records.iter().filter(spared).collect::<Vec<_>>(),
        faulty.records.iter().filter(spared).collect::<Vec<_>>(),
        "verdicts of unaffected tests must be identical"
    );
}

#[test]
fn worker_panic_under_stealing_is_contained_and_campaign_survives() {
    // The campaign's isolation boundary must hold when the panic comes
    // out of a *multi-worker* engine: the work-stealing frontier
    // re-raises a worker panic on the driving thread (tagged with the
    // worker index), `catch_unwind` contains it there, and the process
    // stays healthy enough to run a full clean campaign afterwards —
    // no poisoned lock or leaked worker survives the unwind.
    use promising_core::{Config, FpHasher};
    use promising_explorer::{panic_message, Engine, SearchModel, Stats};
    use std::collections::BTreeSet;
    use std::time::Instant;

    // Wide fan-out so 4 workers actually steal; one poisoned state
    // deep in the tree blows up whichever worker expands it.
    struct StealBomb {
        config: Config,
    }
    const BOMB: u64 = 0o1234; // a depth-4 path in the 8-ary tree
    impl SearchModel for StealBomb {
        type State = u64;
        type Transition = u64;
        type Exact = u64;
        type Out = u64;
        type Cache = ();

        fn config(&self) -> &Config {
            &self.config
        }
        fn root(&self, _stats: &mut Stats) -> u64 {
            0
        }
        fn cache(&self) {}
        fn fingerprint(&self, s: &u64) -> promising_core::Fingerprint {
            let mut h = FpHasher::new();
            h.write_u64(*s);
            h.finish128()
        }
        fn exact_key(&self, s: &u64) -> u64 {
            *s
        }
        fn outcome(
            &self,
            s: &u64,
            _cache: &mut (),
            _stats: &mut Stats,
            _deadline: Option<Instant>,
            out: &mut BTreeSet<u64>,
        ) {
            if self.is_final_state(s) {
                out.insert(*s);
            }
        }
        fn is_final(&self, s: &u64, _stats: &mut Stats) -> bool {
            self.is_final_state(s)
        }
        fn expand(
            &self,
            s: &u64,
            _cache: &mut (),
            _stats: &mut Stats,
            _deadline: Option<Instant>,
        ) -> Vec<u64> {
            assert!(*s != BOMB, "injected stealing fault");
            (1..=8).collect()
        }
        fn apply(&self, s: &u64, t: &u64, stats: &mut Stats) -> u64 {
            stats.transitions += 1;
            s * 8 + t
        }
    }
    impl StealBomb {
        fn is_final_state(&self, s: &u64) -> bool {
            *s >= 8u64.pow(4)
        }
    }

    let engine = Engine::new(StealBomb {
        config: Config::arm().with_workers(4),
    });
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run()))
        .expect_err("the poisoned state must panic some worker");
    let msg = panic_message(caught.as_ref());
    assert!(
        msg.contains("exploration worker") && msg.contains("injected stealing fault"),
        "worker panics must carry the worker tag and the payload: {msg}"
    );

    // Aftermath: the same process still runs a full campaign cleanly.
    let report = run_campaign(&small_corpus(), &BatchConfig::default()).expect("campaign I/O");
    assert_eq!(report.panicked().count(), 0);
    assert_eq!(report.mismatches().count(), 0);
    assert!(report.records.iter().all(|r| r.tier == Tier::Exhaustive));
}

#[test]
fn over_budget_tests_degrade_to_tagged_sampled_verdicts() {
    let corpus = small_corpus();
    let report = run_campaign(
        &corpus,
        &BatchConfig {
            models: vec![ModelKind::Promising, ModelKind::Flat],
            budgets: TierBudgets {
                base: SearchBudget::max_states(1),
                retry_scale: 2,
                sample_traces: 128,
                sample_seed: 7,
            },
            ..BatchConfig::default()
        },
    )
    .expect("campaign I/O");
    assert!(
        report.degraded().count() > 0,
        "1-state budgets must degrade"
    );
    for rec in report.degraded() {
        assert_eq!(rec.tier, Tier::Sampled, "{}", rec.test);
    }
    assert_eq!(
        report.mismatches().count(),
        0,
        "sampling the catalogue's allowed/forbidden shapes stays conformant"
    );
}

#[test]
fn interrupted_campaign_resumes_to_byte_identical_database() {
    let dir = tmp_dir("resume");
    let cache = dir.join("cache.tsv");
    let corpus = small_corpus();
    let cfg = |cache_path, campaign_budget| BatchConfig {
        models: vec![ModelKind::Promising, ModelKind::Flat],
        cache_path,
        campaign_state_budget: campaign_budget,
        ..BatchConfig::default()
    };

    let reference = run_campaign(&corpus, &cfg(None, None)).expect("campaign I/O");
    let reference_db = verdict_db(&reference.records);

    // "kill" the campaign after the first unit of work...
    let partial = run_campaign(&corpus, &cfg(Some(cache.clone()), Some(1))).expect("campaign I/O");
    assert!(partial.aborted, "the campaign budget must abort the run");
    assert!(
        !ResultCache::load(&cache)
            .expect("cache readable")
            .is_empty(),
        "aborting must still flush completed verdicts"
    );

    // ...and resume: cached verdicts are hits, the database is
    // byte-identical to the uninterrupted run's.
    let resumed = run_campaign(&corpus, &cfg(Some(cache), None)).expect("campaign I/O");
    assert!(!resumed.aborted);
    assert_eq!(
        resumed.cache_hits, partial.executed,
        "resume reuses all flushed work"
    );
    assert_eq!(verdict_db(&resumed.records), reference_db);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_budget_yields_memory_budget_stop_reason_end_to_end() {
    let test = parse_litmus(
        "ARM MP+tiny\nstore(x, 1)\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed",
    )
    .expect("valid litmus source");
    let run = promising_litmus::run_model_budgeted(
        &test,
        ModelKind::Promising,
        SearchBudget::max_bytes(1),
    )
    .expect("run succeeds");
    assert_eq!(run.stop, StopReason::MemoryBudget);
}

/// Pull every `"stop": "..."` field back out of the verdict database —
/// the shape the round-trip property feeds through [`StopReason::parse`].
fn stops_in_db(db: &str) -> Vec<String> {
    db.lines()
        .filter_map(|line| {
            let (_, rest) = line.split_once("\"stop\": \"")?;
            let (value, _) = rest.split_once('"')?;
            Some(value.to_string())
        })
        .collect()
}

fn record_with(ix: usize, stop: StopReason, tier: Tier, holds: Option<bool>) -> VerdictRecord {
    VerdictRecord {
        key: format!("{ix:032x}-{:032x}", u128::MAX - ix as u128),
        test: format!("GEN-{ix}+po\\\"quote"),
        arch: if ix.is_multiple_of(2) {
            Arch::Arm
        } else {
            Arch::RiscV
        },
        model: ModelKind::ALL[ix % ModelKind::ALL.len()],
        tier,
        stop,
        holds,
        matches_expectation: holds.map(|h| h == ix.is_multiple_of(3)),
        outcomes: (ix as u64).wrapping_mul(7),
        states: (ix as u64).wrapping_mul(131),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every [`StopReason`] survives the trip into the JSON verdict
    /// database and back through [`StopReason::parse`] — including on
    /// records with hostile test names and every tier/holds shape.
    #[test]
    fn stop_reasons_round_trip_through_verdict_db(
        ix in 0usize..4096,
        stop_ix in 0usize..StopReason::ALL.len(),
        tier_ix in 0usize..Tier::ALL.len(),
        holds_ix in 0usize..3,
    ) {
        let stop = StopReason::ALL[stop_ix];
        let tier = Tier::ALL[tier_ix];
        let holds = [None, Some(false), Some(true)][holds_ix];
        let records = vec![
            record_with(ix, stop, tier, holds),
            record_with(ix + 1, StopReason::Completed, Tier::Exhaustive, Some(true)),
        ];
        let db = verdict_db(&records);
        let stops = stops_in_db(&db);
        prop_assert_eq!(stops.len(), 2, "one stop field per record: {}", db.clone());
        let parsed: Vec<StopReason> = stops
            .iter()
            .map(|s| StopReason::parse(s).expect("db stop names parse"))
            .collect();
        prop_assert!(parsed.contains(&stop), "lost {:?} in {}", stop, db);
    }

    /// Verdict records survive the cache's line format exactly.
    #[test]
    fn records_round_trip_through_cache_lines(
        ix in 0usize..4096,
        stop_ix in 0usize..StopReason::ALL.len(),
        tier_ix in 0usize..Tier::ALL.len(),
        holds_ix in 0usize..3,
    ) {
        let rec = record_with(
            ix,
            StopReason::ALL[stop_ix],
            Tier::ALL[tier_ix],
            [None, Some(false), Some(true)][holds_ix],
        );
        let mut cache = ResultCache::new();
        cache.insert(rec.clone());
        let dir = tmp_dir("cache-prop");
        let path = dir.join(format!("c{ix}.tsv"));
        cache.flush(&path).expect("flush");
        let reloaded = ResultCache::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(reloaded.get(&rec.key), Some(&rec));
    }
}
