//! Differential RMW battery: every single-instruction [`Stmt::Rmw`]
//! produces *exactly* the outcome set of its canonical loadx/storex
//! retry-loop desugaring ([`desugar_program_rmws`]), across the naive,
//! promise-first, and Flat-lite strategies and both architectures —
//! property-tested over ops, ordering strengths, surrounding code, and
//! seeds. A second property checks the RMW semantics directly against
//! the axiomatic model (the Theorem 6.1 analogue for RMW events).
//!
//! [`Stmt::Rmw`]: promising_core::Stmt::Rmw
//! [`desugar_program_rmws`]: promising_core::stmt::desugar_program_rmws

use promising_axiomatic::{enumerate_outcomes, AxConfig};
use promising_core::stmt::{desugar_program_rmws, CodeBuilder, RmwOp};
use promising_core::{
    Arch, Config, Expr, Machine, Program, ReadKind, Reg, StmtId, ThreadCode, WriteKind,
};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use promising_flat::{explore_flat, FlatMachine};
use proptest::prelude::*;
use std::sync::Arc;

/// Loop fuel for the promising-side comparisons. The desugared retry
/// loops blow up exponentially in fuel under the naive search (that is
/// the point of first-class RMWs); outcome sets are fuel-independent once
/// every RMW gets one iteration, so a small bound loses no coverage.
const FUEL: u32 = 3;

/// Loop fuel for the Flat-lite comparison: Flat speculates each retry
/// iteration (two fetch guesses per unresolved loop test), so even a
/// single desugared CAS costs ~300k states at fuel 3. Fuel is a
/// *per-thread* budget, so it must cover one first-try iteration per
/// desugared RMW of the thread (at most two under
/// [`small_program_strategy`]) — that already covers every outcome.
const FLAT_FUEL: u32 = 2;

/// One generated statement. RMW locations/values are kept tiny so the
/// desugared retry loops stay explorable under the naive strategy.
#[derive(Clone, Debug)]
enum Recipe {
    Store {
        loc: i64,
        val: i64,
        release: bool,
    },
    Load {
        loc: i64,
        acquire: bool,
    },
    FenceSy,
    Rmw {
        op: usize,
        loc: i64,
        operand: i64,
        expected: i64,
        rk: usize,
        wk: usize,
    },
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0..2i64, 1..3i64, any::<bool>()).prop_map(|(loc, val, release)| Recipe::Store {
            loc,
            val,
            release
        }),
        (0..2i64, any::<bool>()).prop_map(|(loc, acquire)| Recipe::Load { loc, acquire }),
        Just(Recipe::FenceSy),
        // over-weight RMWs: three arms so roughly half the statements are
        // atomic updates crossing every op × strength combination
        rmw_arm(),
        rmw_arm(),
        rmw_arm(),
    ]
}

fn rmw_arm() -> impl Strategy<Value = Recipe> {
    (
        (0..7usize, 0..2i64),
        (0..3i64, 0..3i64),
        (0..3usize, 0..3usize),
    )
        .prop_map(|((op, loc), (operand, expected), (rk, wk))| Recipe::Rmw {
            op,
            loc,
            operand,
            expected,
            rk,
            wk,
        })
}

fn read_kind(i: usize) -> ReadKind {
    [ReadKind::Plain, ReadKind::WeakAcquire, ReadKind::Acquire][i]
}

fn write_kind(i: usize) -> WriteKind {
    [WriteKind::Plain, WriteKind::WeakRelease, WriteKind::Release][i]
}

fn build_thread(recipes: &[Recipe]) -> ThreadCode {
    let mut b = CodeBuilder::new();
    let mut stmts: Vec<StmtId> = Vec::new();
    let mut reg = 1u32;
    for r in recipes {
        match r {
            Recipe::Store { loc, val, release } => {
                stmts.push(if *release {
                    b.store_rel(Expr::val(*loc), Expr::val(*val))
                } else {
                    b.store(Expr::val(*loc), Expr::val(*val))
                });
            }
            Recipe::Load { loc, acquire } => {
                let dst = Reg(reg);
                reg += 1;
                stmts.push(if *acquire {
                    b.load_acq(dst, Expr::val(*loc))
                } else {
                    b.load(dst, Expr::val(*loc))
                });
            }
            Recipe::FenceSy => stmts.push(b.dmb_sy()),
            Recipe::Rmw {
                op,
                loc,
                operand,
                expected,
                rk,
                wk,
            } => {
                let dst = Reg(reg);
                reg += 1;
                let op = RmwOp::ALL[*op];
                stmts.push(if op == RmwOp::Cas {
                    b.cas_kind(
                        dst,
                        Expr::val(*loc),
                        Expr::val(*expected),
                        Expr::val(*operand),
                        read_kind(*rk),
                        write_kind(*wk),
                    )
                } else {
                    b.amo_kind(
                        op,
                        dst,
                        Expr::val(*loc),
                        Expr::val(*operand),
                        read_kind(*rk),
                        write_kind(*wk),
                    )
                });
            }
        }
    }
    b.finish_seq(&stmts)
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Recipe>>> {
    proptest::collection::vec(proptest::collection::vec(recipe_strategy(), 1..4), 2..3)
}

/// Smaller programs for the Flat-lite and axiomatic legs (both models
/// pay much more per statement).
fn small_program_strategy() -> impl Strategy<Value = Vec<Vec<Recipe>>> {
    proptest::collection::vec(proptest::collection::vec(recipe_strategy(), 1..3), 2..3)
}

/// Rewrite every statement po-after the first RMW of a thread into a
/// load of the same location. The flat-vs-desugared comparison is only
/// exact on such programs: the desugared retry loop's exit branch is an
/// unresolved branch until the store-exclusive resolves, and Flat-lite
/// conservatively blocks *all* po-later stores behind unresolved
/// branches — so the desugared build over-orders `rmw; po; store`
/// shapes that the first-class RMW (like the promising and axiomatic
/// models, which the unrestricted legs above check) correctly leaves
/// unordered. Po-later *loads* speculate past branches in Flat-lite, so
/// the load-only suffix keeps the two builds step-for-step equivalent.
fn loads_only_after_rmw(mut recipes: Vec<Vec<Recipe>>) -> Vec<Vec<Recipe>> {
    for thread in &mut recipes {
        let mut seen_rmw = false;
        for r in thread {
            if seen_rmw {
                match *r {
                    Recipe::Store { loc, .. } | Recipe::Rmw { loc, .. } => {
                        *r = Recipe::Load {
                            loc,
                            acquire: false,
                        };
                    }
                    Recipe::Load { .. } | Recipe::FenceSy => {}
                }
            } else {
                seen_rmw = matches!(r, Recipe::Rmw { .. });
            }
        }
    }
    recipes
}

/// Programs for the flat-vs-desugared leg: generated shapes with the
/// post-RMW statements flattened to loads (see [`loads_only_after_rmw`]).
fn flat_program_strategy() -> impl Strategy<Value = Vec<Vec<Recipe>>> {
    small_program_strategy().prop_map(loads_only_after_rmw)
}

/// RMW-heavy programs: *every* thread leads with an atomic update,
/// followed by up to two loads or fences — the `rmw; po; ld`
/// neighbourhood the bind/propagate split recovers, crossed over ops,
/// strengths, and locations.
fn rmw_heavy_program_strategy() -> impl Strategy<Value = Vec<Vec<Recipe>>> {
    let thread = (
        rmw_arm(),
        proptest::collection::vec(
            prop_oneof![
                (0..2i64, any::<bool>()).prop_map(|(loc, acquire)| Recipe::Load { loc, acquire }),
                Just(Recipe::FenceSy),
            ],
            0..3,
        ),
    )
        .prop_map(|(rmw, mut tail)| {
            let mut v = vec![rmw];
            v.append(&mut tail);
            v
        });
    proptest::collection::vec(thread, 2..3)
}

fn has_rmw(recipes: &[Vec<Recipe>]) -> bool {
    recipes
        .iter()
        .flatten()
        .any(|r| matches!(r, Recipe::Rmw { .. }))
}

fn to_program(recipes: &[Vec<Recipe>]) -> Arc<Program> {
    Arc::new(Program::new(
        recipes.iter().map(|r| build_thread(r)).collect(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline differential property: RMW outcome sets equal the
    /// desugared exclusive-retry-loop outcome sets under the naive and
    /// promise-first searches, on both architectures.
    #[test]
    fn rmw_equals_desugared_promising(recipes in program_strategy(), riscv in any::<bool>()) {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let program = to_program(&recipes);
        let desugared = Arc::new(desugar_program_rmws(&program));
        let config = Config::for_arch(arch).with_loop_fuel(FUEL);

        let fast = explore_promise_first(&Machine::new(Arc::clone(&program), config.clone()));
        let fast_d = explore_promise_first(&Machine::new(Arc::clone(&desugared), config.clone()));
        prop_assert_eq!(
            &fast.outcomes, &fast_d.outcomes,
            "promise-first: rmw vs desugared mismatch on {:?} ({:?})", recipes, arch
        );

        let slow = explore_naive(
            &Machine::new(Arc::clone(&program), config.clone()),
            CertMode::Online,
        );
        prop_assert_eq!(
            &slow.outcomes, &fast.outcomes,
            "naive-rmw vs promise-first-rmw mismatch on {:?} ({:?})", recipes, arch
        );
        let slow_d = explore_naive(&Machine::new(desugared, config), CertMode::Online);
        prop_assert_eq!(
            &slow.outcomes, &slow_d.outcomes,
            "naive: rmw vs desugared mismatch on {:?} ({:?})", recipes, arch
        );
    }

    /// The same property under the Flat-lite baseline, scoped to
    /// programs whose post-RMW statements are loads (see
    /// [`loads_only_after_rmw`] for why the desugared build is only an
    /// exact Flat-lite reference on that fragment).
    #[test]
    fn rmw_equals_desugared_flat(recipes in flat_program_strategy(), riscv in any::<bool>()) {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let program = to_program(&recipes);
        let desugared = Arc::new(desugar_program_rmws(&program));
        let config = Config::for_arch(arch).with_loop_fuel(FLAT_FUEL);
        let a = explore_flat(&FlatMachine::new(Arc::clone(&program), config.clone()));
        let b = explore_flat(&FlatMachine::new(desugared, config));
        prop_assert_eq!(
            &a.outcomes, &b.outcomes,
            "flat: rmw vs desugared mismatch on {:?} ({:?})", recipes, arch
        );
    }

    /// PR 9 tentpole property: on RMW-heavy `rmw; po; ld*` programs the
    /// split (bind/propagate) flat RMW matches both the desugared
    /// exclusive-pair build under Flat-lite *and* the promise-first
    /// search — i.e. the read half unblocks po-later loads exactly as an
    /// in-flight load-exclusive would, no more and no less.
    #[test]
    fn split_flat_equals_desugared_on_rmw_heavy(
        recipes in rmw_heavy_program_strategy(),
        riscv in any::<bool>(),
    ) {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let program = to_program(&recipes);
        let desugared = Arc::new(desugar_program_rmws(&program));
        let config = Config::for_arch(arch).with_loop_fuel(FLAT_FUEL);
        let a = explore_flat(&FlatMachine::new(Arc::clone(&program), config.clone()));
        let b = explore_flat(&FlatMachine::new(desugared, config.clone()));
        prop_assert_eq!(
            &a.outcomes, &b.outcomes,
            "flat: rmw vs desugared mismatch on {:?} ({:?})", recipes, arch
        );
        let pf = explore_promise_first(&Machine::new(program, config));
        prop_assert_eq!(
            &a.outcomes, &pf.outcomes,
            "flat vs promise-first mismatch on {:?} ({:?})", recipes, arch
        );
    }
}

proptest! {
    // the axiomatic side enumerates rf/co candidates; keep it smaller
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Theorem 6.1 extended to RMW events: the operational RMW semantics
    /// agrees with the axiomatic model's read-event/write-event pairs
    /// joined by an `rmw` edge.
    #[test]
    fn rmw_promising_equals_axiomatic(recipes in small_program_strategy(), riscv in any::<bool>()) {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let program = to_program(&recipes);
        let op = explore_promise_first(&Machine::new(
            Arc::clone(&program),
            Config::for_arch(arch).with_loop_fuel(FUEL),
        ));
        let mut ax_cfg = AxConfig::new(arch);
        ax_cfg.loop_fuel = FUEL;
        let ax = enumerate_outcomes(&program, &ax_cfg).expect("axiomatic enumeration");
        prop_assert_eq!(
            &op.outcomes, &ax.outcomes,
            "promising vs axiomatic mismatch on {:?} ({:?})", recipes, arch
        );
    }
}

/// Regression: an RMW whose operand references its own destination
/// register sees the *old value* there (the desugared load writes `dst`
/// before the data expression evaluates) — in every model. The Flat-lite
/// machine once evaluated the operand against the stale pre-RMW register
/// value instead.
#[test]
fn self_referential_operand_sees_old_value_in_every_model() {
    let mut b = CodeBuilder::new();
    let pre = b.assign(Reg(1), Expr::val(5));
    let add = b.fetch_add(Reg(1), Expr::val(0), Expr::reg(Reg(1)));
    let t0 = b.finish_seq(&[pre, add]);
    let program = Arc::new(Program::new(vec![t0]));
    let config = Config::arm().with_loop_fuel(FUEL);
    let naive = explore_naive(
        &Machine::new(Arc::clone(&program), config.clone()),
        CertMode::Online,
    );
    // dst = old = 0, operand = dst = 0, so x stays 0 (not 0 + stale 5)
    assert!(naive
        .outcomes
        .iter()
        .all(|o| o.loc(promising_core::Loc(0)) == promising_core::Val(0)));
    let flat = explore_flat(&FlatMachine::new(Arc::clone(&program), config));
    assert_eq!(
        naive.outcomes, flat.outcomes,
        "flat diverges on dst-in-operand"
    );
    let ax = enumerate_outcomes(&program, &AxConfig::new(Arch::Arm)).expect("enumeration");
    assert_eq!(
        naive.outcomes, ax.outcomes,
        "axiomatic diverges on dst-in-operand"
    );
}

/// Regression (PR 5 correctness sweep): the read half of a *failed* CAS
/// retains the RMW's acquire strength. An always-failing `cas_acq`
/// reader in an MP shape must forbid the stale read — exactly as its
/// desugared `loadx_acq` retry-loop reference does — on both
/// architectures and in all four models; the plain-CAS variant must stay
/// weak (the failure path must not *add* strength either). The shapes
/// also live in the catalogue (`MP+rel+cas_acq-fail` &c.); this test
/// additionally pins the operational-vs-desugared equivalence.
#[test]
fn failed_cas_keeps_acquire_strength() {
    for arch in [Arch::Arm, Arch::RiscV] {
        for (rk, forbidden) in [
            (ReadKind::Acquire, true),
            (ReadKind::WeakAcquire, true),
            (ReadKind::Plain, false),
        ] {
            let mut b = CodeBuilder::new();
            let s1 = b.store(Expr::val(0), Expr::val(37));
            let s2 = b.store_rel(Expr::val(1), Expr::val(42));
            let t0 = b.finish_seq(&[s1, s2]);
            let mut b = CodeBuilder::new();
            // expected 7 never matches {0, 42}: the CAS always fails
            let c = b.cas_kind(
                Reg(1),
                Expr::val(1),
                Expr::val(7),
                Expr::val(99),
                rk,
                WriteKind::Plain,
            );
            let l = b.load(Reg(2), Expr::val(0));
            let t1 = b.finish_seq(&[c, l]);
            let program = Arc::new(Program::new(vec![t0, t1]));
            let config = Config::for_arch(arch).with_loop_fuel(FUEL);

            let stale = |outcomes: &std::collections::BTreeSet<promising_core::Outcome>| {
                outcomes.iter().any(|o| {
                    o.reg(1, Reg(1)) == promising_core::Val(42)
                        && o.reg(1, Reg(2)) == promising_core::Val(0)
                })
            };
            let label = format!("{}/{rk:?}", arch.name());

            let naive = explore_naive(
                &Machine::new(Arc::clone(&program), config.clone()),
                CertMode::Online,
            );
            assert_eq!(
                stale(&naive.outcomes),
                !forbidden,
                "{label}: naive stale-read verdict"
            );
            let pf = explore_promise_first(&Machine::new(Arc::clone(&program), config.clone()));
            assert_eq!(
                naive.outcomes, pf.outcomes,
                "{label}: promise-first differs"
            );

            // the canonical desugaring (loadx_<rk> retry loop) must agree
            let desugared = Arc::new(desugar_program_rmws(&program));
            let de = explore_naive(
                &Machine::new(Arc::clone(&desugared), config.clone()),
                CertMode::Online,
            );
            assert_eq!(
                naive.outcomes, de.outcomes,
                "{label}: desugared retry loop diverges on CAS failure"
            );

            let flat = explore_flat(&FlatMachine::new(Arc::clone(&program), config));
            assert_eq!(naive.outcomes, flat.outcomes, "{label}: flat differs");

            let ax = enumerate_outcomes(&program, &AxConfig::new(arch)).expect("enumeration");
            assert_eq!(naive.outcomes, ax.outcomes, "{label}: axiomatic differs");
        }
    }
}

/// PR 9 headline regression: the `rmw-acq-po-ld` family. Symmetric SB
/// where each thread's store is an acquire atomic update and the po-later
/// load reads the other location, optionally through an address
/// dependency on the RMW's old value:
///
/// ```text
/// r1 = amo_add_acq(x, 1)        r3 = amo_add_acq(y, 1)
/// r2 = load(y [+ (r1 - r1)])    r4 = load(x [+ (r3 - r3)])
/// ```
///
/// Acquire on an RMW orders po-later loads after the *read* half only;
/// the write half may propagate late, so `[r2=0, r4=0]` is allowed on
/// both architectures (the axiomatic `rmw` edge runs read→write — the
/// wrong direction to close the ob/global-order cycle). The
/// single-step flat RMW used to forbid it by holding po-later loads
/// until the write landed. Asserts the outcome is present and that all
/// models — naive, promise-first, flat, the desugared build (naive and
/// flat), and axiomatic — produce identical outcome sets.
#[test]
fn rmw_acq_po_ld_family_agrees_in_every_model() {
    for arch in [Arch::Arm, Arch::RiscV] {
        for rk in [ReadKind::Acquire, ReadKind::WeakAcquire] {
            for addr_dep in [false, true] {
                let mk = |own: i64, other: i64| {
                    let mut b = CodeBuilder::new();
                    let r = b.amo_kind(
                        RmwOp::FetchAdd,
                        Reg(1),
                        Expr::val(own),
                        Expr::val(1),
                        rk,
                        WriteKind::Plain,
                    );
                    let addr = if addr_dep {
                        Expr::val(other).add(Expr::reg(Reg(1)).sub(Expr::reg(Reg(1))))
                    } else {
                        Expr::val(other)
                    };
                    let l = b.load(Reg(2), addr);
                    b.finish_seq(&[r, l])
                };
                let program = Arc::new(Program::new(vec![mk(0, 1), mk(1, 0)]));
                let desugared = Arc::new(desugar_program_rmws(&program));
                let config = Config::for_arch(arch).with_loop_fuel(FLAT_FUEL);
                let label = format!(
                    "{}/{rk:?}/{}",
                    arch.name(),
                    if addr_dep { "addr" } else { "po" }
                );

                let naive = explore_naive(
                    &Machine::new(Arc::clone(&program), config.clone()),
                    CertMode::Online,
                );
                assert!(
                    naive.outcomes.iter().any(|o| {
                        o.reg(0, Reg(2)) == promising_core::Val(0)
                            && o.reg(1, Reg(2)) == promising_core::Val(0)
                    }),
                    "{label}: both-stale outcome missing from the reference model"
                );

                let pf = explore_promise_first(&Machine::new(Arc::clone(&program), config.clone()));
                assert_eq!(
                    naive.outcomes, pf.outcomes,
                    "{label}: promise-first differs"
                );

                let flat = explore_flat(&FlatMachine::new(Arc::clone(&program), config.clone()));
                assert_eq!(naive.outcomes, flat.outcomes, "{label}: flat differs");

                let de_naive = explore_naive(
                    &Machine::new(Arc::clone(&desugared), config.clone()),
                    CertMode::Online,
                );
                assert_eq!(
                    naive.outcomes, de_naive.outcomes,
                    "{label}: desugared (naive) differs"
                );
                let de_flat = explore_flat(&FlatMachine::new(Arc::clone(&desugared), config));
                assert_eq!(
                    naive.outcomes, de_flat.outcomes,
                    "{label}: desugared (flat) differs"
                );

                let mut ax_cfg = AxConfig::new(arch);
                ax_cfg.loop_fuel = FLAT_FUEL;
                let ax = enumerate_outcomes(&program, &ax_cfg).expect("axiomatic enumeration");
                assert_eq!(naive.outcomes, ax.outcomes, "{label}: axiomatic differs");
            }
        }
    }
}

/// A deterministic sanity check that the generator actually produces RMWs
/// (the properties above would pass vacuously otherwise).
#[test]
fn battery_contains_rmws() {
    let mut rng = proptest::TestRng::new(proptest::seed_for("battery_contains_rmws"));
    let strat = program_strategy();
    let mut seen = 0;
    for _ in 0..50 {
        if has_rmw(&strat.sample(&mut rng)) {
            seen += 1;
        }
    }
    assert!(seen >= 25, "only {seen}/50 sampled programs contain an RMW");
}
