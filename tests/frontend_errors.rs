//! Malformed-input battery for the frontend paths: every bad input must
//! surface a typed error (`ParseError`, `CompileError`, `HarnessError`)
//! — never a panic and never silent acceptance.

use promising_core::{Expr, Reg};
use promising_harness::{Environment, HarnessError, LogTest, SearchBudget};
use promising_lang::{parse_program, try_compile, validate, Ordering, Program, Stmt, Thread};
use std::sync::atomic::Ordering as StdOrd;

// ---- parser: malformed surface syntax ----------------------------------

#[test]
fn parser_rejects_malformed_inputs() {
    let bad = [
        "store(",                  // unclosed call
        "store(x, 1",              // missing ordering + paren
        "store(x, 1, rlx",         // unclosed paren
        "store(x, 1, bogus)",      // unknown ordering keyword
        "r1 =",                    // dangling assignment
        "r1 = frob(x, 1, rlx)",    // unknown RMW / builtin
        "if r1 == 1 {",            // unclosed block
        "while {}",                // missing condition
        "load(x, rlx)",            // load without destination
        "r1 = load(x, rlx) extra", // trailing tokens
        "} store(x, 1, rlx)",      // stray close brace
        "r1 = cas(x, 1, rlx)",     // RMW arity wrong
    ];
    for src in bad {
        assert!(
            parse_program(src).is_err(),
            "parser accepted malformed input: {src:?}"
        );
    }
}

#[test]
fn parser_accepts_recorded_surface_syntax() {
    // sanity: the battery is testing the real grammar
    let ok = "r1 = load(x, acq)\nstore(y, 1, rel)\n---\nr2 = load(y, rlx)";
    assert!(parse_program(ok).is_ok());
}

// ---- compile: invalid hand-built ASTs errors, not panics ---------------

fn one_thread(stmts: Vec<Stmt>) -> Program {
    Program::new(vec![Thread(stmts)])
}

#[test]
fn compile_rejects_invalid_orderings() {
    let loc = Expr::val(0);
    let cases: Vec<(Program, &str)> = vec![
        (
            one_thread(vec![Stmt::Load {
                reg: Reg(0),
                addr: loc.clone(),
                ord: Ordering::Release,
            }]),
            "release load",
        ),
        (
            one_thread(vec![Stmt::Load {
                reg: Reg(0),
                addr: loc.clone(),
                ord: Ordering::AcqRel,
            }]),
            "acq_rel load",
        ),
        (
            one_thread(vec![Stmt::Store {
                addr: loc.clone(),
                data: Expr::val(1),
                ord: Ordering::Acquire,
            }]),
            "acquire store",
        ),
        (
            one_thread(vec![Stmt::Store {
                addr: loc.clone(),
                data: Expr::val(1),
                ord: Ordering::AcqRel,
            }]),
            "acq_rel store",
        ),
        (
            one_thread(vec![Stmt::Fence(Ordering::Relaxed)]),
            "relaxed fence",
        ),
        (
            one_thread(vec![Stmt::Fence(Ordering::NotAtomic)]),
            "non-atomic fence",
        ),
    ];
    for (program, what) in cases {
        assert!(validate(&program).is_err(), "validate accepted a {what}");
        for arch in [promising_core::Arch::Arm, promising_core::Arch::RiscV] {
            let r = try_compile(&program, arch);
            assert!(r.is_err(), "try_compile accepted a {what} on {arch:?}");
        }
    }
    // nested inside control flow is caught too
    let nested = one_thread(vec![Stmt::If {
        cond: Expr::val(1),
        then_branch: vec![Stmt::While {
            cond: Expr::val(1),
            body: vec![Stmt::Load {
                reg: Reg(0),
                addr: Expr::val(0),
                ord: Ordering::Release,
            }],
        }],
        else_branch: vec![],
    }]);
    assert!(validate(&nested).is_err(), "nested release load accepted");
}

// ---- harness: recorder guards ------------------------------------------

#[test]
fn harness_no_threads() {
    let lt = LogTest::new();
    assert!(matches!(lt.outcomes(), Err(HarnessError::NoThreads)));
}

#[test]
fn harness_misuse_panics_are_reported() {
    // std-mirroring misuse inside a closure (a Release load) surfaces as
    // ClosurePanicked with the payload, not as a harness crash.
    let mut lt = LogTest::named("release-load");
    lt.add(|e: Environment| e.a.load(StdOrd::Release));
    match lt.outcomes() {
        Err(HarnessError::ClosurePanicked { thread: 0, payload }) => {
            assert!(payload.contains("release load"), "payload: {payload}");
        }
        other => panic!("expected ClosurePanicked, got {other:?}"),
    }

    let mut lt = LogTest::named("acquire-store");
    lt.add(|e: Environment| {
        e.a.store(1, StdOrd::Acquire);
        0
    });
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::ClosurePanicked { thread: 0, .. })
    ));

    let mut lt = LogTest::named("relaxed-fence");
    lt.add(|mut e: Environment| {
        e.fence(StdOrd::Relaxed);
        0
    });
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::ClosurePanicked { thread: 0, .. })
    ));
}

#[test]
fn harness_user_panic_is_reported() {
    let mut lt = LogTest::named("boom");
    lt.add(|_e: Environment| panic!("closure exploded"));
    match lt.outcomes() {
        Err(HarnessError::ClosurePanicked { thread: 0, payload }) => {
            assert!(payload.contains("closure exploded"), "payload: {payload}");
        }
        other => panic!("expected ClosurePanicked, got {other:?}"),
    }
}

#[test]
fn harness_detects_nondeterministic_location_choice() {
    // From its third execution on, the closure reads a different
    // location than the recorded oracle replays — detectable
    // nondeterminism (a closure must depend only on the values its
    // operations observe).
    let n = std::cell::Cell::new(0u32);
    let mut lt = LogTest::named("nondet-loc");
    lt.add(move |e: Environment| {
        let k = n.get();
        n.set(k + 1);
        if k <= 1 {
            e.a.load(StdOrd::Relaxed)
        } else {
            e.b.load(StdOrd::Relaxed)
        }
    });
    lt.add(|e: Environment| {
        e.a.store(1, StdOrd::Relaxed);
        0
    });
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::Nondeterministic { thread: 0, .. })
    ));
}

#[test]
fn harness_detects_nondeterministic_op_count() {
    // From its third execution on, the closure performs fewer
    // value-returning operations than recorded.
    let n = std::cell::Cell::new(0u32);
    let mut lt = LogTest::named("nondet-count");
    lt.add(move |e: Environment| {
        let k = n.get();
        n.set(k + 1);
        if k <= 1 {
            e.a.load(StdOrd::Relaxed)
        } else {
            7
        }
    });
    lt.add(|e: Environment| {
        e.a.store(1, StdOrd::Relaxed);
        0
    });
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::Nondeterministic { thread: 0, .. })
    ));
}

#[test]
fn harness_path_explosion_is_bounded() {
    let mut lt = LogTest::named("path-explosion");
    lt.add(|e: Environment| {
        let mut s = 0;
        for _ in 0..4 {
            s += e.a.load(StdOrd::Relaxed);
        }
        s
    });
    lt.add(|e: Environment| {
        e.a.store(1, StdOrd::Relaxed);
        0
    });
    lt.with_max_paths(8);
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::PathExplosion {
            thread: 0,
            limit: 8
        })
    ));
}

#[test]
fn harness_candidate_explosion_is_bounded() {
    // 30 distinct stored values blow the candidate cap (24) for `a`.
    let mut lt = LogTest::named("cand-explosion");
    lt.add(|e: Environment| {
        for i in 1..=30 {
            e.a.store(i, StdOrd::Relaxed);
        }
        0
    });
    lt.add(|e: Environment| e.a.load(StdOrd::Relaxed));
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::CandidateExplosion { .. })
    ));
}

#[test]
fn harness_budget_trips_surface_as_truncated() {
    let mut lt = LogTest::named("tiny-budget");
    lt.add(|e: Environment| {
        e.a.store(1, StdOrd::Relaxed);
        e.b.load(StdOrd::Relaxed)
    });
    lt.add(|e: Environment| {
        e.b.store(1, StdOrd::Relaxed);
        e.a.load(StdOrd::Relaxed)
    });
    lt.with_budget(SearchBudget {
        max_states: Some(1),
        ..SearchBudget::default()
    });
    assert!(matches!(lt.outcomes(), Err(HarnessError::Truncated { .. })));
}

#[test]
fn harness_arch_divergence_is_reported() {
    // SB with acq_rel fences: ARM's dmb.sy forbids [0,0], RISC-V's
    // fence.tso allows it — `outcomes()` must refuse to pick a winner.
    let mut lt = LogTest::named("arch-divergent");
    lt.add(|mut e: Environment| {
        e.a.store(1, StdOrd::Relaxed);
        e.fence(StdOrd::AcqRel);
        e.b.load(StdOrd::Relaxed)
    });
    lt.add(|mut e: Environment| {
        e.b.store(1, StdOrd::Relaxed);
        e.fence(StdOrd::AcqRel);
        e.a.load(StdOrd::Relaxed)
    });
    assert!(matches!(
        lt.outcomes(),
        Err(HarnessError::ArchDivergence { .. })
    ));
    // ...while the per-arch queries both succeed.
    let arm = lt.outcomes_on(promising_core::Arch::Arm).unwrap();
    let riscv = lt.outcomes_on(promising_core::Arch::RiscV).unwrap();
    assert!(!arm.contains(&vec![0, 0]));
    assert!(riscv.contains(&vec![0, 0]));
}
