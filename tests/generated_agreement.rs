//! Large-scale model agreement on the systematically generated litmus
//! suites (shape × link × link cross products) — the analogue of the
//! paper's validation of the executable model against herd on ~6,500 ARM
//! and ~7,000 RISC-V litmus tests (§7).
//!
//! CI runs a deterministic subsample; `cargo run --release -p
//! promising-bench --bin litmus_agreement` sweeps the full suites.

use promising_core::Arch;
use promising_litmus::{
    check_agreement, generate_rmw_subsample, generate_subsample, LitmusTest, ModelKind,
};

const MODELS: [ModelKind; 3] = [ModelKind::Promising, ModelKind::Axiomatic, ModelKind::Flat];

fn check_tests(arch: Arch, tests: &[LitmusTest]) {
    assert!(!tests.is_empty());
    let mut failures = Vec::new();
    for test in tests {
        match check_agreement(test, &MODELS) {
            Ok(a) if a.agree => {}
            Ok(a) => failures.push(a.mismatch.unwrap_or(a.test)),
            Err(e) => failures.push(format!("{test}: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} disagreements out of {} {} tests:\n{}",
        failures.len(),
        tests.len(),
        arch.name(),
        failures.join("\n")
    );
}

fn check_sample(arch: Arch, stride: usize, offset: usize) {
    check_tests(arch, &generate_subsample(arch, stride, offset));
}

#[test]
fn arm_suite_sample_agrees() {
    check_sample(Arch::Arm, 7, 0);
}

#[test]
fn arm_suite_sample_agrees_alt_offset() {
    check_sample(Arch::Arm, 7, 3);
}

#[test]
fn riscv_suite_sample_agrees() {
    check_sample(Arch::RiscV, 7, 0);
}

#[test]
fn riscv_suite_sample_agrees_alt_offset() {
    check_sample(Arch::RiscV, 7, 5);
}

#[test]
fn arm_rmw_link_suite_sample_agrees() {
    check_tests(Arch::Arm, &generate_rmw_subsample(Arch::Arm, 9, 0));
}

#[test]
fn riscv_rmw_link_suite_sample_agrees() {
    check_tests(Arch::RiscV, &generate_rmw_subsample(Arch::RiscV, 9, 4));
}

#[test]
fn promise_first_equals_naive_on_rmw_sample() {
    // Theorem 7.1 across the RMW cross: the promise-first search's
    // atomic promise-and-fulfil handling of RMWs equals full
    // interleaving.
    for arch in [Arch::Arm, Arch::RiscV] {
        let tests = generate_rmw_subsample(arch, 23, 2);
        assert!(!tests.is_empty(), "{}: empty RMW sample", arch.name());
        for test in &tests {
            let a = check_agreement(test, &[ModelKind::Promising, ModelKind::PromisingNaive])
                .expect("runs");
            assert!(a.agree, "{:?}", a.mismatch);
        }
    }
}

#[test]
fn promise_first_equals_naive_on_sample() {
    // Theorem 7.1 at litmus scale.
    for arch in [Arch::Arm, Arch::RiscV] {
        let tests = generate_subsample(arch, 19, 1);
        for test in &tests {
            let a = check_agreement(test, &[ModelKind::Promising, ModelKind::PromisingNaive])
                .expect("runs");
            assert!(a.agree, "{:?}", a.mismatch);
        }
    }
}
