//! Validation of the per-location dynamic POR layer (PR 6,
//! [`Config::dpor`]): with the layer on or off, every exploration
//! strategy must produce *identical* outcome sets — across the named
//! litmus catalogue, the generated RMW crosses on both architectures,
//! and the compiled language corpus — while actually shrinking the
//! search on append-bound shapes (anti-rot), and the incremental
//! re-certification must agree answer-for-answer with fresh
//! certification (property-tested, with restricted-key survived hits
//! exercised).
//!
//! [`Config::dpor`]: promising_core::Config

use promising_core::ids::TId;
use promising_core::{find_and_certify, find_and_certify_with, Arch, CertMemo, Config, Machine};
use promising_explorer::{explore_naive, CertMode, NaiveModel, SearchModel, Stats};
use promising_flat::{explore_flat, FlatMachine};
use promising_litmus::{
    catalogue, generate_lang_subsample, generate_rmw_subsample, generate_subsample, lang_catalogue,
    run_model_with, LitmusTest, ModelKind, DEFAULT_FUEL,
};
use promising_workloads::{by_spec, init_for};
use proptest::prelude::*;

/// All three strategies: the naive search (delayable-thread reduce +
/// restricted cert keys), Flat (canonical state merging), and
/// promise-first (restricted cert keys only).
const MODELS: [ModelKind; 3] = [
    ModelKind::PromisingNaive,
    ModelKind::Flat,
    ModelKind::Promising,
];

fn assert_dpor_agreement(test: &LitmusTest) {
    for kind in MODELS {
        if test.flat_conservative && kind == ModelKind::Flat {
            continue;
        }
        let on =
            run_model_with(test, kind, |c| c.with_por(true).with_dpor(true)).expect("DPOR-on run");
        let off = run_model_with(test, kind, |c| c.with_por(true).with_dpor(false))
            .expect("DPOR-off run");
        assert_eq!(
            on.outcomes,
            off.outcomes,
            "{test}: {} DPOR-on and DPOR-off outcome sets differ",
            kind.name()
        );
    }
}

#[test]
fn catalogue_dpor_on_off_agree() {
    for test in catalogue() {
        assert_dpor_agreement(&test);
    }
}

/// PR 9 anti-rot for the bind/propagate split: the `rmw-acq-po-ld`
/// family introduces a new interleaving point (the write half of an
/// acquire RMW propagating *after* po-later loads bound), and the
/// per-location DPOR layer must neither prune the recovered weak
/// outcome nor invent it. Beyond on ≡ off (which
/// [`catalogue_dpor_on_off_agree`] already covers), this pins the
/// expectation verdict — the `exists` witness present exactly on the
/// `allowed` entries — in *both* DPOR modes, for every strategy.
#[test]
fn rmw_acq_po_ld_family_verdicts_survive_dpor() {
    let family: Vec<LitmusTest> = catalogue()
        .into_iter()
        .filter(|t| t.name.contains("RMW-acq-ld") || t.name.contains("RMW-audit"))
        .collect();
    assert!(
        family.len() >= 17,
        "family shrank: only {} RMW-acq-ld/RMW-audit entries",
        family.len()
    );
    for test in &family {
        let allowed = test.expect == Some(promising_litmus::Expectation::Allowed);
        for kind in MODELS {
            if test.flat_conservative && kind == ModelKind::Flat {
                continue;
            }
            for dpor in [true, false] {
                let run = run_model_with(test, kind, |c| c.with_por(true).with_dpor(dpor))
                    .expect("family run");
                assert_eq!(
                    test.condition.holds(&run.outcomes),
                    allowed,
                    "{test}: {} (dpor={dpor}) verdict flipped",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn generated_suites_dpor_on_off_agree() {
    // The shape × ordering cross plus the RMW-link cross, on both
    // architectures — RMWs are where the exclusive-pairing bank and the
    // restricted certification keys earn their keep.
    for arch in [Arch::Arm, Arch::RiscV] {
        let mut tests = generate_subsample(arch, 19, arch as usize);
        tests.extend(generate_rmw_subsample(arch, 13, arch as usize));
        assert!(tests.len() > 20, "{}: sample too small", arch.name());
        for test in &tests {
            assert_dpor_agreement(test);
        }
    }
}

#[test]
fn lang_corpus_dpor_on_off_agree() {
    let mut tests = lang_catalogue();
    tests.extend(generate_lang_subsample(31, 0));
    for test in &tests {
        for arch in [Arch::Arm, Arch::RiscV] {
            assert_dpor_agreement(&test.compile(arch));
        }
    }
}

/// An append-bound program with per-thread locations: each thread
/// repeatedly writes its own location then reads it back. Static POR
/// cannot help (every transition appends), but the per-location layer
/// collapses the interleavings of appends to distinct locations.
fn disjoint_appenders(threads: usize, writes: usize) -> std::sync::Arc<promising_core::Program> {
    use promising_core::{CodeBuilder, Expr, Program, Reg};
    let mut ts = Vec::new();
    for t in 0..threads {
        let mut b = CodeBuilder::new();
        let mut stmts = Vec::new();
        for w in 0..writes {
            stmts.push(b.store(Expr::val(t as i64), Expr::val(w as i64 + 1)));
        }
        stmts.push(b.load(Reg(1), Expr::val(t as i64)));
        ts.push(b.finish_seq(&stmts));
    }
    std::sync::Arc::new(Program::new(ts))
}

#[test]
fn dpor_actually_prunes_append_bound_shapes() {
    // Guard against the layer silently rotting into a no-op, on both
    // strategies it serves.
    let program = disjoint_appenders(3, 2);

    // Flat: canonical per-location state merging must shrink the
    // visited set (the raw encoding keeps every append interleaving
    // distinct).
    let f_on = explore_flat(&FlatMachine::new(
        program.clone(),
        Config::arm().with_por(true).with_dpor(true),
    ));
    let f_off = explore_flat(&FlatMachine::new(
        program.clone(),
        Config::arm().with_por(true).with_dpor(false),
    ));
    assert_eq!(f_on.outcomes, f_off.outcomes);
    assert!(
        f_on.stats.states < f_off.stats.states,
        "flat DPOR did not merge disjoint-append states ({} vs {})",
        f_on.stats.states,
        f_off.stats.states
    );

    // Naive: the delayable-thread reduce must fire (all threads have
    // pairwise-disjoint future footprints here) and shrink the search.
    let n_on = explore_naive(
        &Machine::new(
            program.clone(),
            Config::arm().with_por(true).with_dpor(true),
        ),
        CertMode::Online,
    );
    let n_off = explore_naive(
        &Machine::new(
            program.clone(),
            Config::arm().with_por(true).with_dpor(false),
        ),
        CertMode::Online,
    );
    assert_eq!(n_on.outcomes, n_off.outcomes);
    assert!(n_on.stats.por_pruned > 0, "naive DPOR reduce never fired");
    assert!(
        n_on.stats.states < n_off.stats.states,
        "naive DPOR did not shrink the visited set ({} vs {})",
        n_on.stats.states,
        n_off.stats.states
    );
}

#[test]
fn cert_memo_survives_sibling_appends_on_append_bound_workload() {
    // The incremental-recertification acceptance property: on a real
    // append-bound workload the restricted keys must produce *survived*
    // hits (certificates reused across sibling appends to out-of-scope
    // locations), with outcomes unchanged.
    let w = by_spec("STC-100-010-000").expect("spec parses");
    let init = init_for(&w);
    let config = w.config(Arch::Arm);
    let on = explore_naive(
        &Machine::with_init(
            w.program.clone(),
            config.clone().with_dpor(true),
            init.clone(),
        ),
        CertMode::Online,
    );
    let off = explore_naive(
        &Machine::with_init(w.program.clone(), config.with_dpor(false), init),
        CertMode::Online,
    );
    assert_eq!(on.outcomes, off.outcomes);
    assert!(
        on.stats.cert_survived > 0,
        "no certificate survived a sibling append (hits {}, misses {})",
        on.stats.cert_hits,
        on.stats.cert_misses
    );
    assert_eq!(
        off.stats.cert_survived, 0,
        "DPOR-off must not use restricted keys"
    );
}

/// Walk a machine along a seeded random path with a certification memo
/// shared across the whole walk (so restricted-key entries persist
/// across sibling appends), and at every state check that the memoised
/// answer agrees with a from-scratch certification.
fn check_memo_agrees_with_fresh(test: &LitmusTest, seed: u64) {
    let config = Config::for_arch(test.arch).with_loop_fuel(test.loop_fuel.unwrap_or(DEFAULT_FUEL));
    let m = Machine::with_init(test.program.clone(), config.clone(), test.init.clone());
    let model = NaiveModel::new(&m, CertMode::Online);
    let mut stats = Stats::default();
    let mut cache = model.cache();
    let mut rng = proptest::TestRng::new(seed);
    let mut state = model.root(&mut stats);
    let mut memo = CertMemo::for_config(&config);
    for _step in 0..10 {
        for tid in 0..state.program().threads().len() {
            let shared = find_and_certify_with(&state, TId(tid), &mut memo, None);
            let fresh = find_and_certify(&state, TId(tid));
            if shared.bound_hit || fresh.bound_hit {
                continue; // truncated answers are lower bounds, not exact
            }
            assert_eq!(
                (
                    shared.certified,
                    &shared.promisable,
                    &shared.certified_first_steps
                ),
                (
                    fresh.certified,
                    &fresh.promisable,
                    &fresh.certified_first_steps
                ),
                "{test}: memoised certification of thread {tid} diverges from fresh"
            );
        }
        if model.is_final(&state, &mut stats) {
            break;
        }
        let transitions = model.expand(&state, &mut cache, &mut stats, None);
        if transitions.is_empty() {
            break;
        }
        let next = &transitions[(rng.below(transitions.len() as u64)) as usize];
        state = model.apply(&state, next, &mut stats);
    }
    let (hits, misses, _survived) = memo.counters();
    assert!(hits + misses > 0, "{test}: the memo was never consulted");
}

/// A strategy choosing random generated litmus tests on a random
/// architecture, biased towards the RMW cross (promises + exclusives
/// are what certification actually has to work for).
fn generated_test_strategy() -> impl Strategy<Value = LitmusTest> {
    (any::<bool>(), 0..10_000usize).prop_map(|(riscv, ix)| {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let mut tests = generate_rmw_subsample(arch, 7, ix % 7);
        tests.extend(generate_subsample(arch, 11, ix % 11));
        let pick = ix % tests.len();
        tests.swap_remove(pick)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// DPOR-on ≡ DPOR-off on random generated programs, for the two
    /// strategies with non-trivial reduce hooks.
    #[test]
    fn dpor_on_off_agree_on_random_programs(test in generated_test_strategy()) {
        for kind in [ModelKind::PromisingNaive, ModelKind::Flat] {
            if test.flat_conservative && kind == ModelKind::Flat {
                continue;
            }
            let on = run_model_with(&test, kind, |c| c.with_por(true).with_dpor(true))
                .expect("on");
            let off = run_model_with(&test, kind, |c| c.with_por(true).with_dpor(false))
                .expect("off");
            prop_assert_eq!(
                &on.outcomes, &off.outcomes,
                "{}: {} DPOR mismatch", test.name, kind.name()
            );
        }
    }

    /// Restricted-memory memo hits agree with fresh certification on
    /// random programs and random paths.
    #[test]
    fn restricted_memo_agrees_with_fresh_certification(
        test in generated_test_strategy(),
        seed in 1..u64::MAX,
    ) {
        check_memo_agrees_with_fresh(&test, seed);
    }
}
