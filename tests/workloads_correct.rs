//! Cross-crate workload validation (the §8 experiments at unit scale):
//! every workload family verifies correct on small instances, the §8
//! Michael-Scott bug is detected, and the promise-first search agrees
//! with the naive search on a workload-shaped program.

use promising_core::{Arch, Machine};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use promising_workloads::{by_spec, init_for, Workload};

fn explore_checked(w: &Workload) -> promising_explorer::Exploration {
    let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init_for(w));
    let exp = explore_promise_first(&m);
    assert!(
        !exp.outcomes.is_empty(),
        "{}: no complete execution within the bound",
        w.name
    );
    exp
}

#[test]
fn all_families_verify_correct_on_small_instances() {
    for spec in [
        "SLA-2",
        "SLC-1",
        "SLR-1",
        "PCS-1-1",
        "PCM-1-1-1",
        "STC-100-010-000",
        "STC(opt)-100-010-000",
        "STR-100-010-000",
        "DQ-100-1-0",
        "DQ(opt)-100-1-0",
        "QU-100-010-000",
        "QU(opt)-100-000-000",
    ] {
        let w = by_spec(spec).expect("spec parses");
        let exp = explore_checked(&w);
        let violations = w.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{spec}: {violations:?}");
    }
}

#[test]
fn michael_scott_bug_is_found() {
    let w = by_spec("QU(buggy)-100-010-000").expect("spec parses");
    let exp = explore_checked(&w);
    let violations = w.violations(&exp.outcomes);
    assert!(
        violations.iter().any(|v| v.contains("uninitialised")),
        "the §8 publication bug must be reported: {violations:?}"
    );
}

#[test]
fn workloads_also_verify_on_riscv() {
    for spec in ["SLA-2", "PCS-1-1", "STC-100-010-000"] {
        let w = by_spec(spec).expect("spec parses");
        let m = Machine::with_init(w.program.clone(), w.config(Arch::RiscV), init_for(&w));
        let exp = explore_promise_first(&m);
        assert!(!exp.outcomes.is_empty(), "{spec} (riscv): no outcomes");
        let violations = w.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{spec} (riscv): {violations:?}");
    }
}

#[test]
fn promise_first_matches_naive_on_a_lock() {
    let w = by_spec("SLA-1").expect("spec parses");
    let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init_for(&w));
    let fast = explore_promise_first(&m);
    let slow = explore_naive(&m, CertMode::Online);
    assert_eq!(fast.outcomes, slow.outcomes, "Thm 7.1 on SLA-1");
}

#[test]
fn shared_location_optimisation_preserves_shared_outcomes() {
    // with and without the §7 optimisation, the *shared* part of the
    // final state (lock + counter) must coincide
    let w = by_spec("SLA-1").expect("spec parses");
    let shared_run = {
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init_for(&w));
        explore_promise_first(&m)
    };
    let unshared_run = {
        let m = Machine::with_init(
            w.program.clone(),
            w.config_unshared(Arch::Arm),
            init_for(&w),
        );
        explore_promise_first(&m)
    };
    let project = |exp: &promising_explorer::Exploration| {
        exp.outcomes
            .iter()
            .map(|o| w.shared.iter().map(|&l| (l, o.loc(l))).collect::<Vec<_>>())
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(project(&shared_run), project(&unshared_run));
}
