//! Property-based validation of the paper's theorems on randomly
//! generated programs (proptest):
//!
//! * **Theorem 6.1 / D.1** — Promising and the axiomatic model compute the
//!   same outcome sets, on both architectures;
//! * **Theorem 6.2 / D.2** — certification does not change the outcome
//!   set (online filtering vs promises-only);
//! * **Theorem 6.3 / D.3** — the RISC-V model has no deadlocks;
//! * **Theorem 7.1** — promise-first search equals naive interleaving
//!   search;
//! * view monotonicity — thread views only grow along any execution.

use promising_axiomatic::{enumerate_outcomes, AxConfig};
use promising_core::stmt::CodeBuilder;
use promising_core::{Arch, Config, Expr, Machine, Program, Reg, StmtId, ThreadCode, Transition};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use proptest::prelude::*;
use std::sync::Arc;

/// A small statement recipe the generator draws from. Locations are 0/1,
/// values 1/2, registers per-slot.
#[derive(Clone, Debug)]
enum Recipe {
    Store { loc: i64, val: i64, release: bool },
    Load { loc: i64, acquire: bool },
    LoadDep { loc: i64 },
    FenceSy,
    FenceLd,
    FenceSt,
    Isb,
    CtrlStore { loc: i64, val: i64 },
    ExclPair { loc: i64 },
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0..2i64, 1..3i64, any::<bool>()).prop_map(|(loc, val, release)| Recipe::Store {
            loc,
            val,
            release
        }),
        (0..2i64, any::<bool>()).prop_map(|(loc, acquire)| Recipe::Load { loc, acquire }),
        (0..2i64).prop_map(|loc| Recipe::LoadDep { loc }),
        Just(Recipe::FenceSy),
        Just(Recipe::FenceLd),
        Just(Recipe::FenceSt),
        Just(Recipe::Isb),
        (0..2i64, 1..3i64).prop_map(|(loc, val)| Recipe::CtrlStore { loc, val }),
        (0..2i64).prop_map(|loc| Recipe::ExclPair { loc }),
    ]
}

fn build_thread(recipes: &[Recipe], arch: Arch) -> ThreadCode {
    let mut b = CodeBuilder::new();
    let mut stmts: Vec<StmtId> = Vec::new();
    let mut reg = 1u32;
    let mut last_load: Option<Reg> = None;
    for r in recipes {
        match r {
            Recipe::Store { loc, val, release } => {
                stmts.push(if *release {
                    b.store_rel(Expr::val(*loc), Expr::val(*val))
                } else {
                    b.store(Expr::val(*loc), Expr::val(*val))
                });
            }
            Recipe::Load { loc, acquire } => {
                let dst = Reg(reg);
                reg += 1;
                stmts.push(if *acquire {
                    b.load_acq(dst, Expr::val(*loc))
                } else {
                    b.load(dst, Expr::val(*loc))
                });
                last_load = Some(dst);
            }
            Recipe::LoadDep { loc } => {
                let dst = Reg(reg);
                reg += 1;
                let addr = match last_load {
                    Some(src) => Expr::val(*loc).with_dep(src),
                    None => Expr::val(*loc),
                };
                stmts.push(b.load(dst, addr));
                last_load = Some(dst);
            }
            Recipe::FenceSy => stmts.push(b.dmb_sy()),
            Recipe::FenceLd => stmts.push(b.dmb_ld()),
            Recipe::FenceSt => stmts.push(b.dmb_st()),
            Recipe::Isb => {
                // isb is ARM-only syntax; substitute a fence on RISC-V
                stmts.push(if arch == Arch::Arm {
                    b.isb()
                } else {
                    b.fence(promising_core::Fence::RR)
                });
            }
            Recipe::CtrlStore { loc, val } => {
                let st = b.store(Expr::val(*loc), Expr::val(*val));
                let cond = match last_load {
                    Some(src) => Expr::reg(src).eq(Expr::reg(src)),
                    None => Expr::val(1),
                };
                stmts.push(b.if_then(cond, st));
            }
            Recipe::ExclPair { loc } => {
                let dst = Reg(reg);
                let succ = Reg(reg + 1);
                reg += 2;
                stmts.push(b.load_excl(dst, Expr::val(*loc)));
                stmts.push(b.store_excl(succ, Expr::val(*loc), Expr::reg(dst).add(Expr::val(1))));
                last_load = Some(dst);
            }
        }
    }
    b.finish_seq(&stmts)
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Recipe>>> {
    proptest::collection::vec(proptest::collection::vec(recipe_strategy(), 1..4), 2..3)
}

fn to_program(recipes: &[Vec<Recipe>], arch: Arch) -> Arc<Program> {
    Arc::new(Program::new(
        recipes.iter().map(|r| build_thread(r, arch)).collect(),
    ))
}

proptest! {
    // the axiomatic enumeration is the herd-style expensive side; keep the
    // case count modest (raise via PROPTEST_CASES for deeper sweeps)
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Theorem 6.1/D.1, experimentally: same outcome sets as the
    /// axiomatic model, on both architectures.
    #[test]
    fn promising_equals_axiomatic(recipes in program_strategy(), riscv in any::<bool>()) {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let program = to_program(&recipes, arch);
        let op = explore_promise_first(&Machine::new(
            Arc::clone(&program),
            Config::for_arch(arch).with_loop_fuel(8),
        ));
        let mut ax_cfg = AxConfig::new(arch);
        ax_cfg.loop_fuel = 8;
        let ax = enumerate_outcomes(&program, &ax_cfg).expect("axiomatic enumeration");
        prop_assert_eq!(
            &op.outcomes, &ax.outcomes,
            "promising vs axiomatic mismatch on {:?} ({:?})", recipes, arch
        );
    }

}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Theorem 7.1: promise-first search equals the naive interleaving
    /// search.
    #[test]
    fn promise_first_equals_naive(recipes in program_strategy()) {
        let program = to_program(&recipes, Arch::Arm);
        let m = Machine::new(program, Config::arm().with_loop_fuel(8));
        let fast = explore_promise_first(&m);
        let slow = explore_naive(&m, CertMode::Online);
        prop_assert_eq!(fast.outcomes, slow.outcomes);
    }

    /// Theorem 6.2/D.2: certification filtering does not change outcomes.
    #[test]
    fn certification_mode_does_not_change_outcomes(recipes in program_strategy()) {
        let program = to_program(&recipes, Arch::Arm);
        let m = Machine::new(program, Config::arm().with_loop_fuel(8));
        let online = explore_naive(&m, CertMode::Online);
        let lazy = explore_naive(&m, CertMode::PromisesOnly);
        prop_assert_eq!(online.outcomes, lazy.outcomes);
    }

    /// Theorem 6.3/D.3: the RISC-V model never deadlocks — every explored
    /// state with outstanding promises retains an enabled certified step.
    #[test]
    fn riscv_has_no_deadlocks(recipes in program_strategy()) {
        let program = to_program(&recipes, Arch::RiscV);
        let m = Machine::new(program, Config::riscv().with_loop_fuel(8));
        let exp = explore_naive(&m, CertMode::Online);
        prop_assert_eq!(exp.stats.deadlocks, 0, "RISC-V deadlock found");
    }

    /// Views are monotone: along any machine execution, every scalar view
    /// of every thread only grows.
    #[test]
    fn views_are_monotone(recipes in program_strategy(), seed in any::<u64>()) {
        let program = to_program(&recipes, Arch::Arm);
        let mut m = Machine::new(program, Config::arm().with_loop_fuel(8));
        let mut rng = seed;
        for _ in 0..40 {
            let steps = m.machine_steps();
            if steps.is_empty() {
                break;
            }
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick: &Transition = &steps[(rng >> 33) as usize % steps.len()];
            let before: Vec<_> = m
                .threads()
                .iter()
                .map(|t| (t.state.vr_old, t.state.vw_old, t.state.vr_new, t.state.vw_new, t.state.v_cap, t.state.v_rel))
                .collect();
            m.apply(pick).expect("machine step applies");
            for (t, b) in m.threads().iter().zip(before) {
                let s = &t.state;
                prop_assert!(s.vr_old >= b.0 && s.vw_old >= b.1 && s.vr_new >= b.2);
                prop_assert!(s.vw_new >= b.3 && s.v_cap >= b.4 && s.v_rel >= b.5);
            }
        }
    }
}

/// ARM store-exclusive deadlocks (§4.3) are real: reproduce one
/// deterministically, and show RISC-V does not have it on the same shape.
#[test]
fn arm_exclusive_deadlock_exists_but_not_on_riscv() {
    // T0: r1 = ldx x; r2 = stx x (r1+1); store p (1 - r1 - r2)
    // T1: store x 2
    // On ARM, T0 may promise p = 1 (it relies on the stx succeeding);
    // if T1's write then interposes, the stx can no longer pair
    // atomically and the promise is stuck.
    let mk_t0 = || {
        let mut b = CodeBuilder::new();
        let l = b.load_excl(Reg(1), Expr::val(0));
        let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
        let p = b.store(
            Expr::val(1),
            Expr::val(1).sub(Expr::reg(Reg(1))).sub(Expr::reg(Reg(2))),
        );
        b.finish_seq(&[l, s, p])
    };
    let mk_t1 = || {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(2));
        b.finish_seq(&[s])
    };
    let arm = explore_naive(
        &Machine::new(
            Arc::new(Program::new(vec![mk_t0(), mk_t1()])),
            Config::arm().with_loop_fuel(4),
        ),
        CertMode::Online,
    );
    assert!(
        arm.stats.deadlocks > 0,
        "the §4.3 ARM deadlock should be reachable"
    );
    let riscv = explore_naive(
        &Machine::new(
            Arc::new(Program::new(vec![mk_t0(), mk_t1()])),
            Config::riscv().with_loop_fuel(4),
        ),
        CertMode::Online,
    );
    assert_eq!(
        riscv.stats.deadlocks, 0,
        "RISC-V must not deadlock (Thm 6.3)"
    );
}
