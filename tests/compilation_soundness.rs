//! Compilation-soundness battery for the language-level atomics
//! frontend: every test of the language corpus (named catalogue +
//! generated suite) is compiled to **both** ARM and RISC-V and must show
//! *identical outcome sets* across
//!
//! * the naive, promise-first, and Flat engines (the Theorem 6.1/7.1
//!   checks on each compiled program), and
//! * the two architectures (the IMM compilation schemes are equally
//!   strong on the corpus fragment — see `docs/architecture.md`),
//!
//! cross-checked against the axiomatic model on the compiled programs.
//! A property test extends the check to randomly generated surface
//! programs (ops × orderings × seeds) inside the agreement fragment.

use promising_core::{Arch, RmwOp};
use promising_core::{Config, Expr, Machine, Reg};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use promising_flat::{explore_flat, FlatMachine};
use promising_lang::{compile, Ordering as Ord, Program as LangProgram, Stmt as LStmt, Thread};
use promising_litmus::{
    check_lang_conformance, generate_lang_suite, lang_catalogue, LangTest, ModelKind,
};
use proptest::prelude::*;
use std::sync::Arc;

/// All four models: promise-first, naive, axiomatic, Flat.
const ALL: [ModelKind; 4] = ModelKind::ALL;

fn check_corpus(tests: &[LangTest], kinds: &[ModelKind]) {
    assert!(!tests.is_empty());
    let mut failures = Vec::new();
    for test in tests {
        match check_lang_conformance(test, kinds) {
            Ok(c) if c.agree => {}
            Ok(c) => failures.push(c.mismatch.unwrap_or(c.test)),
            Err(e) => failures.push(format!("{test}: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} conformance failures out of {} language tests:\n{}",
        failures.len(),
        tests.len(),
        failures.join("\n")
    );
}

#[test]
fn lang_catalogue_conforms_across_engines_and_architectures() {
    check_corpus(&lang_catalogue(), &ALL);
}

#[test]
fn generated_lang_suite_conforms_across_engines_and_architectures() {
    // the full generated corpus (hundreds of shapes × ordering
    // assignments), each run 4 models × 2 architectures
    check_corpus(&generate_lang_suite(), &ALL);
}

// ---------------------------------------------------------------------
// Property test: random surface programs, ARM vs RISC-V agreement
// ---------------------------------------------------------------------

/// One generated surface statement. Orderings are indices into the
/// per-access ordering tables; the builder repairs selections that
/// leave the cross-architecture agreement fragment (downgrading an `sc`
/// load after a weak access to `acq`, turning a write after an RMW into
/// a load) instead of discarding the sample.
#[derive(Clone, Debug)]
enum Recipe {
    Store {
        loc: i64,
        val: i64,
        ord: usize,
    },
    Load {
        loc: i64,
        ord: usize,
    },
    Fence {
        sc: bool,
    },
    Rmw {
        op: usize,
        loc: i64,
        operand: i64,
        expected: i64,
        ord: usize,
    },
}

const STORE_ORDS: [Ord; 4] = [Ord::NotAtomic, Ord::Relaxed, Ord::Release, Ord::SeqCst];
const LOAD_ORDS: [Ord; 4] = [Ord::NotAtomic, Ord::Relaxed, Ord::Acquire, Ord::SeqCst];
const RMW_ORDS: [Ord; 5] = [
    Ord::Relaxed,
    Ord::Acquire,
    Ord::Release,
    Ord::AcqRel,
    Ord::SeqCst,
];

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0..2i64, 1..3i64, 0..4usize).prop_map(|(loc, val, ord)| Recipe::Store { loc, val, ord }),
        (0..2i64, 0..4usize).prop_map(|(loc, ord)| Recipe::Load { loc, ord }),
        any::<bool>().prop_map(|sc| Recipe::Fence { sc }),
        ((0..7usize, 0..2i64), (0..3i64, 0..2i64), 0..5usize).prop_map(
            |((op, loc), (operand, expected), ord)| Recipe::Rmw {
                op,
                loc,
                operand,
                expected,
                ord
            }
        ),
    ]
}

/// Whether an already-emitted access is strong enough to precede an
/// `sc` load without leaving the agreement fragment: the RISC-V
/// lowering's leading `fence rw,rw` orders it before the load
/// unconditionally, so on ARM the `ldar` must already be ordered after
/// it — via `vRel` (release writes) or `vrNew` (acquire reads).
fn strong_before_sc_load(s: &LStmt) -> bool {
    match s {
        LStmt::Load { ord, .. } => matches!(ord, Ord::Acquire | Ord::SeqCst),
        LStmt::Store { ord, .. } => matches!(ord, Ord::Release | Ord::SeqCst),
        // the write half must be a release for `vRel` to cover it
        LStmt::Rmw { ord, .. } => ord.is_release(),
        LStmt::Fence(Ord::SeqCst) => true,
        _ => false,
    }
}

/// Build one thread from recipes, repairing fragment violations. At
/// most two memory accesses per thread (the fence lowerings of
/// `acq`/`rel` accesses are *cumulative* on RISC-V — they also order
/// other po-earlier accesses — so longer access chains genuinely
/// diverge between the schemes; see docs/architecture.md).
fn build_thread(recipes: &[Recipe]) -> Thread {
    let mut stmts: Vec<LStmt> = Vec::new();
    let mut reg = 1u32;
    let mut accesses = 0usize;
    let mut last_was_rmw = false;
    for r in recipes {
        if accesses == 2 {
            break;
        }
        match r {
            Recipe::Fence { sc } => {
                // acq/sc standalone fences lower to the same barrier on
                // both architectures; rel/acq_rel do not, and are covered
                // deterministically by the generated suite instead
                stmts.push(LStmt::Fence(if *sc { Ord::SeqCst } else { Ord::Acquire }));
                continue;
            }
            Recipe::Store { loc, val, ord } => {
                let (loc, val, ord) = (*loc, *val, STORE_ORDS[*ord]);
                if last_was_rmw {
                    // ρ12: a store after an RMW is ordered on RISC-V but
                    // not on ARM — read instead
                    stmts.push(LStmt::Load {
                        reg: Reg(reg),
                        addr: Expr::val(loc),
                        ord: Ord::Relaxed,
                    });
                    reg += 1;
                } else {
                    stmts.push(LStmt::Store {
                        addr: Expr::val(loc),
                        data: Expr::val(val),
                        ord,
                    });
                }
                accesses += 1;
            }
            Recipe::Load { loc, ord } => {
                let mut ord = LOAD_ORDS[*ord];
                if ord == Ord::SeqCst && !stmts.iter().all(strong_before_sc_load) {
                    ord = Ord::Acquire;
                }
                stmts.push(LStmt::Load {
                    reg: Reg(reg),
                    addr: Expr::val(*loc),
                    ord,
                });
                reg += 1;
                accesses += 1;
            }
            Recipe::Rmw {
                op,
                loc,
                operand,
                expected,
                ord,
            } => {
                if last_was_rmw {
                    continue; // an RMW after an RMW is a write after an RMW
                }
                let op = RmwOp::ALL[*op];
                stmts.push(LStmt::Rmw {
                    op,
                    dst: Reg(reg),
                    addr: Expr::val(*loc),
                    expected: (op == RmwOp::Cas).then(|| Expr::val(*expected)),
                    operand: Expr::val(*operand),
                    ord: RMW_ORDS[*ord],
                });
                reg += 1;
                accesses += 1;
                last_was_rmw = true;
            }
        }
    }
    Thread(stmts)
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Recipe>>> {
    proptest::collection::vec(proptest::collection::vec(recipe_strategy(), 1..5), 2..3)
}

fn to_lang_program(recipes: &[Vec<Recipe>]) -> LangProgram {
    LangProgram::new(recipes.iter().map(|r| build_thread(r)).collect())
}

const FUEL: u32 = 8;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline property: a random surface program compiled to ARM
    /// and to RISC-V has identical outcome sets — under both the
    /// promise-first and the naive search.
    #[test]
    fn compiled_outcomes_agree_across_architectures(recipes in program_strategy()) {
        let lang = to_lang_program(&recipes);
        let arm = Arc::new(compile(&lang, Arch::Arm));
        let riscv = Arc::new(compile(&lang, Arch::RiscV));
        let arm_cfg = Config::for_arch(Arch::Arm).with_loop_fuel(FUEL);
        let riscv_cfg = Config::for_arch(Arch::RiscV).with_loop_fuel(FUEL);

        let a = explore_promise_first(&Machine::new(Arc::clone(&arm), arm_cfg.clone()));
        let b = explore_promise_first(&Machine::new(Arc::clone(&riscv), riscv_cfg.clone()));
        prop_assert_eq!(
            &a.outcomes, &b.outcomes,
            "promise-first: ARM vs RISC-V mismatch on\n{}", lang
        );

        let an = explore_naive(&Machine::new(arm, arm_cfg), CertMode::Online);
        prop_assert_eq!(
            &an.outcomes, &a.outcomes,
            "ARM: naive vs promise-first mismatch on\n{}", lang
        );
        let bn = explore_naive(&Machine::new(riscv, riscv_cfg), CertMode::Online);
        prop_assert_eq!(
            &an.outcomes, &bn.outcomes,
            "naive: ARM vs RISC-V mismatch on\n{}", lang
        );
    }

    /// The same property under the Flat-lite baseline.
    #[test]
    fn compiled_outcomes_agree_under_flat(recipes in program_strategy()) {
        let lang = to_lang_program(&recipes);
        let arm = Arc::new(compile(&lang, Arch::Arm));
        let riscv = Arc::new(compile(&lang, Arch::RiscV));
        let a = explore_flat(&FlatMachine::new(
            arm,
            Config::for_arch(Arch::Arm).with_loop_fuel(FUEL),
        ));
        let b = explore_flat(&FlatMachine::new(
            riscv,
            Config::for_arch(Arch::RiscV).with_loop_fuel(FUEL),
        ));
        prop_assert_eq!(
            &a.outcomes, &b.outcomes,
            "flat: ARM vs RISC-V mismatch on\n{}", lang
        );
    }
}

proptest! {
    // the axiomatic side enumerates rf/co candidates; keep it smaller
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Soundness of each scheme separately: the compiled program's
    /// operational outcome set equals the axiomatic model's, per
    /// architecture (Theorem 6.1 on compiled programs).
    #[test]
    fn compiled_promising_equals_axiomatic(recipes in program_strategy(), riscv in any::<bool>()) {
        let arch = if riscv { Arch::RiscV } else { Arch::Arm };
        let lang = to_lang_program(&recipes);
        let program = Arc::new(compile(&lang, arch));
        let op = explore_promise_first(&Machine::new(
            Arc::clone(&program),
            Config::for_arch(arch).with_loop_fuel(FUEL),
        ));
        let mut ax_cfg = promising_axiomatic::AxConfig::new(arch);
        ax_cfg.loop_fuel = FUEL;
        let ax = promising_axiomatic::enumerate_outcomes(&program, &ax_cfg)
            .expect("axiomatic enumeration");
        prop_assert_eq!(
            &op.outcomes, &ax.outcomes,
            "promising vs axiomatic mismatch ({:?}) on\n{}", arch, lang
        );
    }
}

/// The repair rules must not neuter the generator: sampled programs must
/// still contain `sc` loads, RMWs, and release stores.
#[test]
fn battery_exercises_the_ordering_space() {
    let mut rng =
        proptest::TestRng::new(proptest::seed_for("battery_exercises_the_ordering_space"));
    let strat = program_strategy();
    let (mut sc_loads, mut rmws, mut rel_stores) = (0, 0, 0);
    for _ in 0..200 {
        let p = to_lang_program(&strat.sample(&mut rng));
        for t in p.threads() {
            for s in &t.0 {
                match s {
                    LStmt::Load {
                        ord: Ord::SeqCst, ..
                    } => sc_loads += 1,
                    LStmt::Rmw { .. } => rmws += 1,
                    LStmt::Store {
                        ord: Ord::Release | Ord::SeqCst,
                        ..
                    } => rel_stores += 1,
                    _ => {}
                }
            }
        }
    }
    assert!(sc_loads > 10, "only {sc_loads} sc loads in 200 programs");
    assert!(rmws > 50, "only {rmws} RMWs in 200 programs");
    assert!(
        rel_stores > 50,
        "only {rel_stores} release stores in 200 programs"
    );
}
