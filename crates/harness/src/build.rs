//! Lower a recorded path set to a surface-language thread.
//!
//! The recorder explores a closure's decision tree by feeding every
//! candidate value to every load/RMW; this module re-assembles those
//! linear traces into a `crates/lang` statement tree. Three properties
//! matter for fidelity:
//!
//! * **Canonical registers.** The value op at choice depth `d` writes
//!   `Reg(d + 1)` in *every* branch (the result register is `Reg(0)`),
//!   so structurally identical continuations are syntactically identical
//!   and merge.
//! * **Subtree merging.** Candidate values whose continuations are
//!   identical share one emission with no branch at all — a spin loop
//!   re-checking a flag compiles to a linear chain, not a `3^depth` blowup.
//! * **Prefix/suffix factoring.** When continuations do differ, their
//!   common leading and trailing statements are hoisted out of the `if`
//!   chain. Without this, an event that does not actually depend on a
//!   loaded value (e.g. the store in an LB shape) would sit under a
//!   branch on that value, introducing a spurious control dependency
//!   that forbids architecturally-allowed outcomes.

use crate::error::HarnessError;
use crate::record::{Event, PathTrace};
use promising_core::{Expr, Loc, Op, Reg};
use promising_lang::{Stmt, Thread};
use std::collections::BTreeMap;

/// The register each closure's return value is assigned to (per thread).
pub const RESULT_REG: Reg = Reg(0);

fn loc_expr(loc: Loc) -> Expr {
    // Locations print as raw addresses in the surface syntax and re-intern
    // by value, so the recorded program round-trips through the parser.
    Expr::val(loc.0 as i64)
}

fn nondet(tid: usize, detail: &str) -> HarnessError {
    HarnessError::Nondeterministic {
        thread: tid,
        detail: detail.to_owned(),
    }
}

/// Lower one thread's recorded paths to a statement tree.
pub(crate) fn build_thread(
    paths: &[PathTrace],
    cands: &BTreeMap<Loc, Vec<i64>>,
    tid: usize,
) -> Result<Thread, HarnessError> {
    let group: Vec<&PathTrace> = paths.iter().collect();
    Ok(Thread(emit(&group, 0, 0, cands, tid)?))
}

/// Emit statements for a group of paths sharing `depth` choices and
/// `cursor` events.
fn emit(
    group: &[&PathTrace],
    depth: usize,
    cursor: usize,
    cands: &BTreeMap<Loc, Vec<i64>>,
    tid: usize,
) -> Result<Vec<Stmt>, HarnessError> {
    let rep = group[0];
    let mut out = Vec::new();
    let mut cur = cursor;
    loop {
        let Some(ev) = rep.events.get(cur) else {
            return Err(nondet(tid, "trace ended without a return marker"));
        };
        for p in &group[1..] {
            if p.events.get(cur) != Some(ev) {
                return Err(nondet(
                    tid,
                    "executions fed identical values recorded different events",
                ));
            }
        }
        match *ev {
            Event::Fence(ord) => {
                out.push(Stmt::Fence(ord));
                cur += 1;
            }
            Event::Store { loc, val, ord } => {
                out.push(Stmt::Store {
                    addr: loc_expr(loc),
                    data: Expr::val(val),
                    ord,
                });
                cur += 1;
            }
            Event::Ret(v) => {
                out.push(Stmt::Assign {
                    reg: RESULT_REG,
                    expr: Expr::val(v),
                });
                return Ok(out);
            }
            Event::Diverged => {
                // The closure was cut off here: encode divergence as an
                // infinite loop. Exhausting the machine's loop fuel marks
                // the thread stuck, so the state never becomes final and
                // contributes no outcome — exactly "this execution never
                // finishes".
                out.push(Stmt::While {
                    cond: Expr::val(1),
                    body: vec![Stmt::Skip],
                });
                return Ok(out);
            }
            Event::Load { loc, ord } => {
                let reg = Reg(depth as u32 + 1);
                out.push(Stmt::Load {
                    reg,
                    addr: loc_expr(loc),
                    ord,
                });
                cur += 1;
                out.extend(branch(group, depth, cur, loc, reg, cands, tid)?);
                return Ok(out);
            }
            Event::Rmw {
                loc,
                op,
                expected,
                operand,
                ord,
            } => {
                let reg = Reg(depth as u32 + 1);
                out.push(Stmt::Rmw {
                    op,
                    dst: reg,
                    addr: loc_expr(loc),
                    expected: expected.map(Expr::val),
                    operand: Expr::val(operand),
                    ord,
                });
                cur += 1;
                out.extend(branch(group, depth, cur, loc, reg, cands, tid)?);
                return Ok(out);
            }
        }
    }
}

/// Emit the continuation after a value op: recurse per candidate value,
/// merge identical subtrees, factor common prefix/suffix, and chain the
/// rest as `if (r == v) { … } else { … }`.
fn branch(
    group: &[&PathTrace],
    depth: usize,
    cursor: usize,
    loc: Loc,
    reg: Reg,
    cands: &BTreeMap<Loc, Vec<i64>>,
    tid: usize,
) -> Result<Vec<Stmt>, HarnessError> {
    let empty = Vec::new();
    let values = cands.get(&loc).unwrap_or(&empty);
    let mut subs: Vec<(i64, Vec<Stmt>)> = Vec::with_capacity(values.len());
    for &v in values {
        let sub: Vec<&PathTrace> = group
            .iter()
            .copied()
            .filter(|p| p.choices.get(depth) == Some(&v))
            .collect();
        if sub.is_empty() {
            // The enumeration feeds every candidate; an uncovered value
            // means the closure changed behaviour between runs.
            return Err(nondet(
                tid,
                "a candidate value has no recorded continuation",
            ));
        }
        subs.push((v, emit(&sub, depth + 1, cursor, cands, tid)?));
    }
    // Group candidate values whose continuations are identical.
    let mut classes: Vec<(Vec<i64>, Vec<Stmt>)> = Vec::new();
    for (v, stmts) in subs {
        if let Some(c) = classes.iter_mut().find(|(_, s)| *s == stmts) {
            c.0.push(v);
        } else {
            classes.push((vec![v], stmts));
        }
    }
    if classes.len() == 1 {
        let (_, body) = classes.remove(0);
        return Ok(body);
    }
    // Hoist statements common to every class out of the branch.
    let bodies: Vec<&[Stmt]> = classes.iter().map(|(_, b)| b.as_slice()).collect();
    let pre = common_prefix(&bodies);
    let post = common_suffix(&bodies, pre);
    let mut out: Vec<Stmt> = bodies[0][..pre].to_vec();
    let middles: Vec<Vec<Stmt>> = bodies
        .iter()
        .map(|b| b[pre..b.len() - post].to_vec())
        .collect();
    out.push(chain(reg, &classes, &middles, 0));
    out.extend_from_slice(&bodies[0][bodies[0].len() - post..]);
    Ok(out)
}

/// Longest shared leading run of statements across all bodies.
fn common_prefix(bodies: &[&[Stmt]]) -> usize {
    let mut n = bodies.iter().map(|b| b.len()).min().unwrap_or(0);
    for b in &bodies[1..] {
        let mut k = 0;
        while k < n && b[k] == bodies[0][k] {
            k += 1;
        }
        n = k;
    }
    n
}

/// Longest shared trailing run, not overlapping the prefix.
fn common_suffix(bodies: &[&[Stmt]], prefix: usize) -> usize {
    let mut n = bodies.iter().map(|b| b.len() - prefix).min().unwrap_or(0);
    for b in &bodies[1..] {
        let mut k = 0;
        while k < n && b[b.len() - 1 - k] == bodies[0][bodies[0].len() - 1 - k] {
            k += 1;
        }
        n = k;
    }
    n
}

/// `r == v1 | r == v2 | …` over one class's candidate values.
fn or_eq(reg: Reg, vals: &[i64]) -> Expr {
    let mut it = vals.iter();
    let first = it.next().copied().unwrap_or(0);
    let mut e = Expr::reg(reg).eq(Expr::val(first));
    for &v in it {
        e = Expr::binop(Op::BitOr, e, Expr::reg(reg).eq(Expr::val(v)));
    }
    e
}

/// Nested `if` chain over the equivalence classes; the last class is the
/// final `else`.
fn chain(reg: Reg, classes: &[(Vec<i64>, Vec<Stmt>)], middles: &[Vec<Stmt>], i: usize) -> Stmt {
    let cond = or_eq(reg, &classes[i].0);
    let else_branch = if i + 2 == classes.len() {
        middles[i + 1].clone()
    } else {
        vec![chain(reg, classes, middles, i + 1)]
    };
    Stmt::If {
        cond,
        then_branch: middles[i].clone(),
        else_branch,
    }
}
