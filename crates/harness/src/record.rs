//! Closure recording: execute a Rust test closure over [`Atomic`] handles
//! repeatedly, feeding every value-returning operation (load, RMW) each of
//! its candidate values in turn, until the closure's full decision tree has
//! been observed.
//!
//! The closure never touches real shared memory. Each handle operation
//! appends an [`Event`] to the recorder; loads and RMWs additionally
//! consult a *choice oracle* that replays a planned prefix of values and
//! extends it depth-first when the execution runs past it. Candidate
//! values per location start at `{0}` (the initial memory value) and grow
//! by a fixpoint over the values the recorded paths store — see
//! [`record_program`].

use crate::error::HarnessError;
use promising_core::parser::LocTable;
use promising_core::{Loc, RmwOp, Val};
use promising_lang::Ordering as LangOrd;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::Ordering as StdOrd;

/// Map a `std::sync::atomic::Ordering` to the surface-language ordering.
pub(crate) fn lang_ordering(ord: StdOrd) -> LangOrd {
    match ord {
        StdOrd::Relaxed => LangOrd::Relaxed,
        StdOrd::Acquire => LangOrd::Acquire,
        StdOrd::Release => LangOrd::Release,
        StdOrd::AcqRel => LangOrd::AcqRel,
        StdOrd::SeqCst => LangOrd::SeqCst,
        // `Ordering` is #[non_exhaustive] upstream.
        _ => LangOrd::SeqCst,
    }
}

/// One recorded handle operation. Equality is used to detect
/// non-deterministic closures: two executions sharing a choice prefix must
/// produce identical event prefixes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Event {
    /// A value-returning load; the value fed is in `PathTrace::choices`.
    Load { loc: Loc, ord: LangOrd },
    /// A value-returning RMW; the *old* value fed is in
    /// `PathTrace::choices`. `expected` is `Some` for CAS.
    Rmw {
        loc: Loc,
        op: RmwOp,
        expected: Option<i64>,
        operand: i64,
        ord: LangOrd,
    },
    /// A store of a concrete value.
    Store { loc: Loc, val: i64, ord: LangOrd },
    /// A standalone fence.
    Fence(LangOrd),
    /// The closure returned this value.
    Ret(i64),
    /// The execution was cut off at the value-op or event cap: the
    /// closure is (conservatively) treated as diverging past this point.
    Diverged,
}

/// One fully-explored execution of a closure: the values fed to its
/// value-returning operations, and the event sequence they produced
/// (terminated by `Ret` or `Diverged`).
#[derive(Clone, Debug)]
pub(crate) struct PathTrace {
    pub choices: Vec<i64>,
    pub events: Vec<Event>,
}

/// Recorder guards. All limits abort with a [`HarnessError`], never a
/// hang: closures are untrusted test code.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Limits {
    /// Max value-returning operations per execution (spin-loop bound).
    pub value_cap: usize,
    /// Max recorded events per execution (catches value-op-free loops).
    pub event_cap: usize,
    /// Max explored paths per thread.
    pub max_paths: usize,
    /// Max candidate values per location.
    pub max_cands: usize,
    /// Hard cap on fixpoint rounds (the reachability bound is usually
    /// far smaller).
    pub max_rounds: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            value_cap: 12,
            event_cap: 256,
            max_paths: 20_000,
            max_cands: 24,
            max_rounds: 64,
        }
    }
}

/// Panic payload used to abort a capped execution mid-closure. Caught by
/// the enumeration loop; never escapes the crate.
struct DivergeSignal;

/// Panic payload for a detected non-deterministic closure.
struct NondetSignal(String);

/// The recorder uses panics as control flow (divergence caps,
/// non-determinism detection) and always catches them, but the default
/// panic hook prints a backtrace *before* unwinding reaches the
/// `catch_unwind` — polluting stderr on perfectly successful recordings.
/// Install, once per process, a hook that stays silent for the
/// recorder's two private payloads and delegates everything else to the
/// hook that was active at first recording.
fn silence_recorder_signals() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if !p.is::<DivergeSignal>() && !p.is::<NondetSignal>() {
                prev(info);
            }
        }));
    });
}

pub(crate) struct RecorderState {
    pub locs: LocTable,
    /// Sorted candidate values per location (always contains 0, the
    /// initial memory value).
    pub cands: BTreeMap<Loc, Vec<i64>>,
    /// Depth-first choice stack: `(loc, index into cands[loc])` per
    /// value op. A run replays the planned prefix and extends it.
    oracle: Vec<(Loc, usize)>,
    /// Value ops consumed so far in the current run.
    pos: usize,
    events: Vec<Event>,
    choices: Vec<i64>,
    limits: Limits,
}

pub(crate) type Rec = Rc<RefCell<RecorderState>>;

impl RecorderState {
    pub(crate) fn new(limits: Limits) -> RecorderState {
        let mut locs = LocTable::new();
        // Intern the fixed handles eagerly so location numbering does not
        // depend on which handles a closure touches first.
        for name in ["a", "b", "c", "d", "e", "f"] {
            locs.intern(name);
        }
        RecorderState {
            locs,
            cands: BTreeMap::new(),
            oracle: Vec::new(),
            pos: 0,
            events: Vec::new(),
            choices: Vec::new(),
            limits,
        }
    }

    fn begin_run(&mut self) {
        self.pos = 0;
        self.events.clear();
        self.choices.clear();
    }

    fn check_event_cap(&mut self) {
        if self.events.len() >= self.limits.event_cap {
            self.events.push(Event::Diverged);
            panic_any(DivergeSignal);
        }
    }

    pub(crate) fn plain_op(&mut self, ev: Event) {
        self.check_event_cap();
        self.events.push(ev);
    }

    /// Record a value-returning op and produce the value to feed it.
    pub(crate) fn value_op(&mut self, loc: Loc, ev: Event) -> i64 {
        self.check_event_cap();
        if self.pos >= self.limits.value_cap {
            self.events.push(Event::Diverged);
            panic_any(DivergeSignal);
        }
        self.events.push(ev);
        let cands = self.cands.entry(loc).or_insert_with(|| vec![0]).clone();
        let i = self.pos;
        self.pos += 1;
        let val = if i < self.oracle.len() {
            let (oloc, idx) = self.oracle[i];
            if oloc != loc {
                panic_any(NondetSignal(format!(
                    "value op #{i} touched a different location than the \
                     previous execution with the same fed values \
                     ({} vs {})",
                    loc_name(&self.locs, loc),
                    loc_name(&self.locs, oloc),
                )));
            }
            cands[idx]
        } else {
            self.oracle.push((loc, 0));
            cands[0]
        };
        self.choices.push(val);
        val
    }
}

pub(crate) fn loc_name(locs: &LocTable, loc: Loc) -> String {
    locs.name_of(loc)
        .map_or_else(|| format!("loc#{}", loc.0), str::to_owned)
}

/// A handle to one shared atomic location, mirroring the
/// `std::sync::atomic` integer API. Operations record events; they never
/// touch real memory.
#[derive(Clone)]
pub struct Atomic {
    loc: Loc,
    rec: Rec,
}

impl Atomic {
    /// Atomic load.
    pub fn load(&self, ord: StdOrd) -> i64 {
        assert!(
            !matches!(ord, StdOrd::Release | StdOrd::AcqRel),
            "there is no such thing as a release load"
        );
        let o = lang_ordering(ord);
        self.rec.borrow_mut().value_op(
            self.loc,
            Event::Load {
                loc: self.loc,
                ord: o,
            },
        )
    }

    /// Atomic store.
    pub fn store(&self, val: i64, ord: StdOrd) {
        assert!(
            !matches!(ord, StdOrd::Acquire | StdOrd::AcqRel),
            "there is no such thing as an acquire store"
        );
        let o = lang_ordering(ord);
        self.rec.borrow_mut().plain_op(Event::Store {
            loc: self.loc,
            val,
            ord: o,
        });
    }

    /// Atomic exchange: store `val`, return the old value.
    pub fn swap(&self, val: i64, ord: StdOrd) -> i64 {
        self.rmw(RmwOp::Swp, None, val, ord)
    }

    /// Atomic add, returning the old value.
    pub fn fetch_add(&self, val: i64, ord: StdOrd) -> i64 {
        self.rmw(RmwOp::FetchAdd, None, val, ord)
    }

    /// Atomic bitwise and, returning the old value.
    pub fn fetch_and(&self, val: i64, ord: StdOrd) -> i64 {
        self.rmw(RmwOp::FetchAnd, None, val, ord)
    }

    /// Atomic bitwise or, returning the old value.
    pub fn fetch_or(&self, val: i64, ord: StdOrd) -> i64 {
        self.rmw(RmwOp::FetchOr, None, val, ord)
    }

    /// Atomic bitwise xor, returning the old value.
    pub fn fetch_xor(&self, val: i64, ord: StdOrd) -> i64 {
        self.rmw(RmwOp::FetchXor, None, val, ord)
    }

    /// Atomic signed maximum, returning the old value.
    pub fn fetch_max(&self, val: i64, ord: StdOrd) -> i64 {
        self.rmw(RmwOp::FetchMax, None, val, ord)
    }

    /// Compare-and-exchange: `Ok(current)` on success, `Err(old)` on
    /// failure. The failure ordering is accepted for API fidelity but
    /// ignored: the recorded RMW carries `success` (see the soundness
    /// caveats in `docs/architecture.md` — the operational model gives
    /// failed RMWs the read half of the single recorded ordering).
    pub fn compare_exchange(
        &self,
        current: i64,
        new: i64,
        success: StdOrd,
        _failure: StdOrd,
    ) -> Result<i64, i64> {
        let old = self.rmw(RmwOp::Cas, Some(current), new, success);
        if old == current {
            Ok(old)
        } else {
            Err(old)
        }
    }

    /// Weak compare-and-exchange. Modeled as the strong variant: the
    /// model has no spurious failure transition (documented caveat).
    pub fn compare_exchange_weak(
        &self,
        current: i64,
        new: i64,
        success: StdOrd,
        failure: StdOrd,
    ) -> Result<i64, i64> {
        self.compare_exchange(current, new, success, failure)
    }

    /// temper-style spelling of [`Atomic::compare_exchange_weak`] with a
    /// single ordering.
    pub fn exchange_weak(&self, current: i64, new: i64, ord: StdOrd) -> Result<i64, i64> {
        self.compare_exchange(current, new, ord, ord)
    }

    fn rmw(&self, op: RmwOp, expected: Option<i64>, operand: i64, ord: StdOrd) -> i64 {
        let o = lang_ordering(ord);
        self.rec.borrow_mut().value_op(
            self.loc,
            Event::Rmw {
                loc: self.loc,
                op,
                expected,
                operand,
                ord: o,
            },
        )
    }
}

/// The per-closure environment: six pre-named atomic handles (`a`–`f`,
/// all initially 0), a fence, and [`Environment::atomic`] for further
/// named locations. Mirrors the temper memlog `Environment`.
pub struct Environment {
    /// Handle on location `a`.
    pub a: Atomic,
    /// Handle on location `b`.
    pub b: Atomic,
    /// Handle on location `c`.
    pub c: Atomic,
    /// Handle on location `d`.
    pub d: Atomic,
    /// Handle on location `e`.
    pub e: Atomic,
    /// Handle on location `f`.
    pub f: Atomic,
    rec: Rec,
}

impl Environment {
    fn new(rec: &Rec) -> Environment {
        let handle = |name: &str| Atomic {
            loc: rec.borrow_mut().locs.intern(name),
            rec: rec.clone(),
        };
        Environment {
            a: handle("a"),
            b: handle("b"),
            c: handle("c"),
            d: handle("d"),
            e: handle("e"),
            f: handle("f"),
            rec: rec.clone(),
        }
    }

    /// A standalone fence (`std::sync::atomic::fence`).
    pub fn fence(&mut self, ord: StdOrd) {
        assert!(
            ord != StdOrd::Relaxed,
            "there is no such thing as a relaxed fence"
        );
        let o = lang_ordering(ord);
        self.rec.borrow_mut().plain_op(Event::Fence(o));
    }

    /// A handle on a named location beyond the fixed six (initially 0).
    pub fn atomic(&mut self, name: &str) -> Atomic {
        Atomic {
            loc: self.rec.borrow_mut().locs.intern(name),
            rec: self.rec.clone(),
        }
    }
}

/// The full recording of a program: per-thread path sets, the converged
/// candidate values, and the location table.
pub(crate) struct Recording {
    pub threads: Vec<Vec<PathTrace>>,
    pub cands: BTreeMap<Loc, Vec<i64>>,
    pub locs: LocTable,
}

/// Enumerate every execution path of one closure under the current
/// candidate sets, depth-first over the choice oracle.
fn enumerate_thread(
    f: &dyn Fn(Environment) -> i64,
    st: &Rec,
    tid: usize,
) -> Result<Vec<PathTrace>, HarnessError> {
    silence_recorder_signals();
    let limits = st.borrow().limits;
    st.borrow_mut().oracle.clear();
    let mut paths: Vec<PathTrace> = Vec::new();
    loop {
        st.borrow_mut().begin_run();
        let env = Environment::new(st);
        let result = catch_unwind(AssertUnwindSafe(|| f(env)));
        {
            let mut s = st.borrow_mut();
            match result {
                Ok(ret) => s.events.push(Event::Ret(ret)),
                Err(payload) => {
                    if payload.is::<DivergeSignal>() {
                        // events already ends with Diverged
                    } else if let Some(n) = payload.downcast_ref::<NondetSignal>() {
                        return Err(HarnessError::Nondeterministic {
                            thread: tid,
                            detail: n.0.clone(),
                        });
                    } else {
                        return Err(HarnessError::ClosurePanicked {
                            thread: tid,
                            payload: promising_explorer::panic_message(payload.as_ref()),
                        });
                    }
                }
            }
            if s.pos < s.oracle.len() {
                return Err(HarnessError::Nondeterministic {
                    thread: tid,
                    detail: format!(
                        "closure performed {} value-returning operations where a \
                         previous execution with the same fed values performed {}",
                        s.pos,
                        s.oracle.len()
                    ),
                });
            }
            paths.push(PathTrace {
                choices: s.choices.clone(),
                events: s.events.clone(),
            });
            if paths.len() > limits.max_paths {
                return Err(HarnessError::PathExplosion {
                    thread: tid,
                    limit: limits.max_paths,
                });
            }
            // Depth-first advance: bump the deepest unexhausted choice.
            loop {
                let Some(&(loc, idx)) = s.oracle.last() else {
                    return Ok(paths);
                };
                let n = s.cands.get(&loc).map_or(1, Vec::len);
                if idx + 1 < n {
                    if let Some(last) = s.oracle.last_mut() {
                        last.1 = idx + 1;
                    }
                    break;
                }
                s.oracle.pop();
            }
        }
    }
}

/// The value a successful RMW stores, given the old value it read.
/// `None` for a failed CAS (no store).
pub(crate) fn rmw_written(op: RmwOp, expected: Option<i64>, operand: i64, old: i64) -> Option<i64> {
    match expected {
        Some(e) if e != old => None,
        _ => Some(op.apply(Val(old), Val(operand)).0),
    }
}

/// Record all threads of a program to a fixpoint over candidate values.
///
/// Candidates per location start at `{0}` and grow by the values stored
/// along recorded paths (including values computed by RMWs from fed old
/// values). Rounds stop early once the candidate sets are *reachability
/// complete*: any value a real machine execution can put in memory is
/// derived by at most `Σ_t m_t` store/RMW events, where `m_t` is the
/// largest number of such events on any recorded path of thread `t` —
/// one machine run executes one path per thread. Values the fixpoint
/// would add beyond that bound require longer derivation chains than any
/// single execution performs, so the decision trees recorded in the
/// final round cover every machine-readable value.
pub(crate) fn record_program(
    fns: &[Box<dyn Fn(Environment) -> i64>],
    limits: Limits,
) -> Result<Recording, HarnessError> {
    if fns.is_empty() {
        return Err(HarnessError::NoThreads);
    }
    let st: Rec = Rc::new(RefCell::new(RecorderState::new(limits)));
    let mut round = 0usize;
    // Running maximum of the per-round reachability bound: a later round
    // can expose branches with more stores, raising the bound.
    let mut writes_bound = 1usize;
    loop {
        round += 1;
        if round > limits.max_rounds {
            return Err(HarnessError::FixpointDivergence { rounds: round - 1 });
        }
        let mut all = Vec::with_capacity(fns.len());
        for (tid, f) in fns.iter().enumerate() {
            all.push(enumerate_thread(f.as_ref(), &st, tid)?);
        }
        // Reachability bound: 1 + Σ_t (max store/RMW events on a path).
        let round_bound: usize = 1 + all
            .iter()
            .map(|paths| {
                paths
                    .iter()
                    .map(|p| {
                        p.events
                            .iter()
                            .filter(|e| matches!(e, Event::Store { .. } | Event::Rmw { .. }))
                            .count()
                    })
                    .max()
                    .unwrap_or(0)
            })
            .sum::<usize>();
        writes_bound = writes_bound.max(round_bound);
        // Collect the values stored along every path.
        let mut observed: Vec<(Loc, i64)> = Vec::new();
        for paths in &all {
            for p in paths {
                let mut k = 0usize;
                for ev in &p.events {
                    match *ev {
                        Event::Load { .. } => k += 1,
                        Event::Store { loc, val, .. } => observed.push((loc, val)),
                        Event::Rmw {
                            loc,
                            op,
                            expected,
                            operand,
                            ..
                        } => {
                            let old = p.choices[k];
                            k += 1;
                            if let Some(v) = rmw_written(op, expected, operand, old) {
                                observed.push((loc, v));
                            }
                        }
                        Event::Fence(_) | Event::Ret(_) | Event::Diverged => {}
                    }
                }
            }
        }
        let grew = {
            let s = st.borrow();
            observed
                .iter()
                .any(|(loc, v)| s.cands.get(loc).is_none_or(|c| c.binary_search(v).is_err()))
        };
        // The recorded paths must stay consistent with the candidate sets
        // they were enumerated under, so return *before* merging: on the
        // bounded stop, the values the merge would add need longer
        // derivation chains than any single execution performs and are
        // unreachable — discarding them is exactly the bound's claim.
        if !grew || round >= writes_bound {
            let s = st.borrow();
            return Ok(Recording {
                threads: all,
                cands: s.cands.clone(),
                locs: s.locs.clone(),
            });
        }
        {
            let mut s = st.borrow_mut();
            for (loc, v) in observed {
                let c = s.cands.entry(loc).or_insert_with(|| vec![0]);
                if let Err(at) = c.binary_search(&v) {
                    c.insert(at, v);
                    if c.len() > limits.max_cands {
                        let name = loc_name(&s.locs, loc);
                        return Err(HarnessError::CandidateExplosion {
                            loc: name,
                            limit: limits.max_cands,
                        });
                    }
                }
            }
        }
    }
}
