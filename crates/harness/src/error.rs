//! Harness errors. Every recorder guard and exploration failure surfaces
//! here — untrusted test closures and budget trips must never hang or
//! panic the harness.

use promising_core::Arch;
use promising_lang::CompileError;
use promising_litmus::{ModelKind, RunError, StopReason};
use std::fmt;

/// Why a [`crate::LogTest`] could not be recorded or explored.
#[derive(Clone, Debug)]
pub enum HarnessError {
    /// `record` was called on a test with no closures.
    NoThreads,
    /// A test closure panicked during recording (including misuse panics
    /// mirroring `std::sync::atomic`, e.g. a `Release` load).
    ClosurePanicked {
        /// Thread index of the closure.
        thread: usize,
        /// Rendered panic payload.
        payload: String,
    },
    /// Two executions of a closure that were fed identical values
    /// diverged — the closure reads external state (clock, RNG, captured
    /// `Cell`) and cannot be recorded faithfully.
    Nondeterministic {
        /// Thread index of the closure.
        thread: usize,
        /// What differed.
        detail: String,
    },
    /// A closure's decision tree exceeded the per-thread path limit.
    PathExplosion {
        /// Thread index of the closure.
        thread: usize,
        /// The limit that was hit.
        limit: usize,
    },
    /// A location accumulated more candidate values than the limit
    /// (e.g. an unbounded counter).
    CandidateExplosion {
        /// Location name.
        loc: String,
        /// The limit that was hit.
        limit: usize,
    },
    /// The candidate-value fixpoint did not converge within the round
    /// limit.
    FixpointDivergence {
        /// Rounds executed.
        rounds: usize,
    },
    /// The recorded program failed to compile (internal error: recorded
    /// programs only use valid orderings).
    Compile(CompileError),
    /// A model run failed.
    Run(RunError),
    /// A search budget bound fired before the exploration completed, so
    /// the outcome set is only a lower bound.
    Truncated {
        /// Architecture of the truncated run.
        arch: Arch,
        /// Model of the truncated run.
        model: ModelKind,
        /// Which bound fired.
        stop: StopReason,
    },
    /// Two exploration strategies disagreed on the outcome set for the
    /// same architecture — a model bug.
    Disagreement {
        /// Architecture on which the strategies disagreed.
        arch: Arch,
        /// Rendered outcome-set difference.
        detail: String,
    },
    /// The two architectures produced different outcome sets. Not
    /// necessarily a bug — the compilation schemes differ in strength on
    /// some shapes (e.g. `acq_rel` fences: `dmb.sy` vs `fence.tso`); use
    /// the per-architecture queries for such tests.
    ArchDivergence {
        /// Rendered outcome-set difference.
        detail: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::NoThreads => write!(f, "the test has no threads; call add() first"),
            HarnessError::ClosurePanicked { thread, payload } => {
                write!(f, "thread {thread} closure panicked: {payload}")
            }
            HarnessError::Nondeterministic { thread, detail } => {
                write!(f, "thread {thread} closure is non-deterministic: {detail}")
            }
            HarnessError::PathExplosion { thread, limit } => write!(
                f,
                "thread {thread} exceeded {limit} execution paths; \
                 lower the value-op cap or simplify the closure"
            ),
            HarnessError::CandidateExplosion { loc, limit } => write!(
                f,
                "location `{loc}` exceeded {limit} candidate values; \
                 the closure writes an unbounded range"
            ),
            HarnessError::FixpointDivergence { rounds } => write!(
                f,
                "candidate-value fixpoint did not converge after {rounds} rounds"
            ),
            HarnessError::Compile(e) => write!(f, "recorded program failed to compile: {e}"),
            HarnessError::Run(e) => write!(f, "model run failed: {e}"),
            HarnessError::Truncated { arch, model, stop } => write!(
                f,
                "search truncated on {}/{} ({stop:?}); raise the budget",
                arch.name(),
                model.name()
            ),
            HarnessError::Disagreement { arch, detail } => write!(
                f,
                "exploration strategies disagree on {}: {detail}",
                arch.name()
            ),
            HarnessError::ArchDivergence { detail } => write!(
                f,
                "architectures disagree (use outcomes_on / assert_outcomes_on \
                 for scheme-divergent shapes): {detail}"
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CompileError> for HarnessError {
    fn from(e: CompileError) -> HarnessError {
        HarnessError::Compile(e)
    }
}

impl From<RunError> for HarnessError {
    fn from(e: RunError) -> HarnessError {
        HarnessError::Run(e)
    }
}
