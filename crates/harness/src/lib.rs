//! # promising-harness
//!
//! A Loom-style Rust-closure frontend for the Promising-ARM/RISC-V
//! models: write a litmus test as plain Rust closures over
//! [`Atomic`] handles taking `std::sync::atomic::Ordering`, and the
//! harness *records* the closures' loads, stores, fences and RMWs into
//! a `promising-lang` surface program, compiles it to both ARM and
//! RISC-V via the IMM/RVWMO schemes, and explores it under every
//! operational strategy (promise-first, naive, Flat) — reporting the
//! set of per-thread return-value tuples.
//!
//! ```
//! use promising_harness::{Environment, LogTest};
//! use std::sync::atomic::Ordering;
//!
//! let mut sb = LogTest::named("store-buffering");
//! sb.add(|e: Environment| {
//!     e.a.store(1, Ordering::SeqCst);
//!     e.b.load(Ordering::SeqCst)
//! });
//! sb.add(|e: Environment| {
//!     e.b.store(1, Ordering::SeqCst);
//!     e.a.load(Ordering::SeqCst)
//! });
//! sb.assert_forbidden(&[0, 0]); // SC forbids both threads missing
//! sb.assert_allowed(&[1, 1]);
//! ```
//!
//! ## How recording works
//!
//! Closures never touch real shared memory: each handle operation is
//! recorded, and every value-returning operation (load, RMW) is fed each
//! of its location's *candidate values* in turn, re-executing the
//! closure once per combination (bounded by the value-op cap). Control
//! flow on loaded values is thereby observed, not parsed: the recorded
//! paths are re-assembled into an `if`-tree branching on the fed
//! register, with identical continuations merged and common
//! prefixes/suffixes hoisted so that no spurious control dependency is
//! introduced. Candidate values start at `{0}` and grow to a fixpoint
//! over the values the recorded paths store. See
//! `docs/architecture.md` for the recording model and its soundness
//! caveats (bounded spins, weak CAS modeled strong, non-atomic data).
//!
//! The literature corpus ([`corpus`]) ports classic shapes from the
//! temper memlog suite (stackoverflow answers), Preshing's blog series,
//! "Rust Atomics and Locks", and the C++ seq-cst classics, each with
//! its documented expected outcome set on both architectures.

#![warn(missing_docs)]

mod build;
pub mod corpus;
mod error;
mod logtest;
mod record;

pub use build::RESULT_REG;
pub use error::HarnessError;
pub use logtest::{fmt_outcomes, LogTest, Matrix, MatrixRun, RecordedTest, ARCHES, STRATEGIES};
pub use promising_core::Arch;
pub use promising_litmus::{ModelKind, SearchBudget, StopReason};
pub use record::{Atomic, Environment};
