//! The [`LogTest`] front door: collect closures, record them once, and
//! explore the recorded program on both architectures under every
//! operational strategy.

use crate::build::{build_thread, RESULT_REG};
use crate::error::HarnessError;
use crate::record::{record_program, Environment, Limits};
use promising_core::{Arch, Outcome};
use promising_lang::Program;
use promising_litmus::{
    run_model_budgeted_with, Condition, LangTest, ModelKind, SearchBudget, StopReason,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::rc::Rc;

/// The two target architectures every test is checked on.
pub const ARCHES: [Arch; 2] = [Arch::Arm, Arch::RiscV];

/// The operational strategies every test is checked under.
pub const STRATEGIES: [ModelKind; 3] = [
    ModelKind::Promising,
    ModelKind::PromisingNaive,
    ModelKind::Flat,
];

/// A closure-defined litmus test in the style of Loom / temper's memlog:
/// each [`LogTest::add`] closure is one thread over shared [`crate::Atomic`]
/// handles; its return value is the thread's observation.
///
/// ```
/// use promising_harness::{Environment, LogTest};
/// use std::sync::atomic::Ordering;
///
/// let mut lt = LogTest::named("mp");
/// lt.add(|e: Environment| {
///     e.a.store(1, Ordering::Relaxed);
///     e.b.store(1, Ordering::Release);
///     0
/// });
/// lt.add(|e: Environment| {
///     if e.b.load(Ordering::Acquire) == 1 {
///         e.a.load(Ordering::Relaxed)
///     } else {
///         2
///     }
/// });
/// lt.assert_forbidden(&[0, 0]); // saw the flag but not the payload
/// lt.assert_allowed(&[0, 1]);
/// ```
#[derive(Default)]
pub struct LogTest {
    name: String,
    threads: Vec<Box<dyn Fn(Environment) -> i64>>,
    limits: Limits,
    budget: SearchBudget,
    workers: Option<usize>,
    cached: RefCell<Option<Rc<Matrix>>>,
}

/// The recorded form of a [`LogTest`]: a language-level litmus test
/// (trivial condition — the harness compares outcome sets, not a single
/// final-state predicate) plus the thread count for projection.
#[derive(Clone, Debug)]
pub struct RecordedTest {
    /// The recorded surface-language test. Compile with
    /// [`LangTest::compile`] / run with the `promising-litmus` harness.
    pub lang: LangTest,
    /// Number of recorded threads.
    pub threads: usize,
}

impl RecordedTest {
    /// The recorded program's surface syntax (re-parseable; locations
    /// print as raw addresses).
    pub fn program_text(&self) -> String {
        self.lang.program.to_string()
    }
}

/// One exploration: an (architecture, strategy) cell of the matrix.
#[derive(Clone, Debug)]
pub struct MatrixRun {
    /// Target architecture.
    pub arch: Arch,
    /// Exploration strategy.
    pub model: ModelKind,
    /// Outcome set projected to per-thread return values.
    pub outcomes: BTreeSet<Vec<i64>>,
    /// States visited.
    pub states: u64,
    /// Why the search stopped.
    pub stop: StopReason,
}

/// All six explorations of a recorded test (2 architectures × 3
/// strategies), with the recorded program they ran.
#[derive(Clone, Debug)]
pub struct Matrix {
    /// The recorded test.
    pub recorded: RecordedTest,
    /// The six runs.
    pub runs: Vec<MatrixRun>,
}

/// Render an outcome set as `{[0, 1], [1, 0]}`.
pub fn fmt_outcomes(set: &BTreeSet<Vec<i64>>) -> String {
    let mut s = String::from("{");
    for (i, o) in set.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{o:?}");
    }
    s.push('}');
    s
}

impl Matrix {
    /// The agreed outcome set on one architecture.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Truncated`] if a budget bound fired, or
    /// [`HarnessError::Disagreement`] if the strategies differ — a model
    /// bug.
    pub fn outcomes_on(&self, arch: Arch) -> Result<&BTreeSet<Vec<i64>>, HarnessError> {
        let runs: Vec<&MatrixRun> = self.runs.iter().filter(|r| r.arch == arch).collect();
        for r in &runs {
            if r.stop != StopReason::Completed {
                return Err(HarnessError::Truncated {
                    arch,
                    model: r.model,
                    stop: r.stop,
                });
            }
        }
        let first = &runs[0];
        for r in &runs[1..] {
            if r.outcomes != first.outcomes {
                return Err(HarnessError::Disagreement {
                    arch,
                    detail: format!(
                        "{} found {} but {} found {}",
                        first.model.name(),
                        fmt_outcomes(&first.outcomes),
                        r.model.name(),
                        fmt_outcomes(&r.outcomes),
                    ),
                });
            }
        }
        Ok(&first.outcomes)
    }

    /// The outcome set agreed across *both* architectures and all
    /// strategies.
    ///
    /// # Errors
    ///
    /// As [`Matrix::outcomes_on`], plus [`HarnessError::ArchDivergence`]
    /// when the two compilation schemes genuinely differ on this shape.
    pub fn outcomes(&self) -> Result<&BTreeSet<Vec<i64>>, HarnessError> {
        let arm = self.outcomes_on(Arch::Arm)?;
        let riscv = self.outcomes_on(Arch::RiscV)?;
        if arm != riscv {
            return Err(HarnessError::ArchDivergence {
                detail: format!("arm {} vs riscv {}", fmt_outcomes(arm), fmt_outcomes(riscv)),
            });
        }
        Ok(arm)
    }
}

/// Project a machine outcome to the per-thread return values (the value
/// each thread's closure returned, read from [`RESULT_REG`]).
fn project(outcomes: &BTreeSet<Outcome>, threads: usize) -> BTreeSet<Vec<i64>> {
    outcomes
        .iter()
        .map(|o| (0..threads).map(|t| o.reg(t, RESULT_REG).0).collect())
        .collect()
}

impl LogTest {
    /// An empty test.
    pub fn new() -> LogTest {
        LogTest::default()
    }

    /// An empty test with a name (used in recorded-program headers and
    /// assertion messages).
    pub fn named(name: impl Into<String>) -> LogTest {
        LogTest {
            name: name.into(),
            ..LogTest::default()
        }
    }

    /// Add one thread. The closure must be deterministic in the values
    /// its loads/RMWs observe; it is re-executed many times during
    /// recording.
    pub fn add(&mut self, f: impl Fn(Environment) -> i64 + 'static) -> &mut LogTest {
        self.threads.push(Box::new(f));
        self.invalidate()
    }

    /// Cap the number of value-returning operations (loads/RMWs) per
    /// execution — the spin-loop bound. Executions cut off at the cap
    /// are recorded as diverging (default 12).
    pub fn with_value_op_cap(&mut self, cap: usize) -> &mut LogTest {
        self.limits.value_cap = cap;
        self.invalidate()
    }

    /// Cap the number of explored paths per thread (default 20 000).
    pub fn with_max_paths(&mut self, max: usize) -> &mut LogTest {
        self.limits.max_paths = max;
        self.invalidate()
    }

    /// Bound every exploration with a [`SearchBudget`]. Tripped bounds
    /// surface as [`HarnessError::Truncated`] from the outcome queries.
    pub fn with_budget(&mut self, budget: SearchBudget) -> &mut LogTest {
        self.budget = budget;
        self.invalidate()
    }

    /// Override the engine worker count (default: the engine picks).
    pub fn with_workers(&mut self, workers: usize) -> &mut LogTest {
        self.workers = Some(workers);
        self.invalidate()
    }

    fn invalidate(&mut self) -> &mut LogTest {
        *self.cached.borrow_mut() = None;
        self
    }

    /// Record the closures into a surface-language litmus test without
    /// running it.
    ///
    /// # Errors
    ///
    /// Any recorder-side [`HarnessError`] (panicking / non-deterministic
    /// closure, guard limits).
    pub fn record(&self) -> Result<RecordedTest, HarnessError> {
        let rec = record_program(&self.threads, self.limits)?;
        let mut threads = Vec::with_capacity(rec.threads.len());
        for (tid, paths) in rec.threads.iter().enumerate() {
            threads.push(build_thread(paths, &rec.cands, tid)?);
        }
        let name = if self.name.is_empty() {
            "logtest".to_owned()
        } else {
            self.name.clone()
        };
        Ok(RecordedTest {
            threads: threads.len(),
            lang: LangTest {
                name,
                program: Program::new(threads),
                locs: rec.locs,
                init: BTreeMap::new(),
                condition: Condition::trivial(),
                expect: None,
                // Recorded programs have no real loops — only `while (1)`
                // divergence markers, which a single iteration of fuel
                // suffices to mark stuck.
                loop_fuel: Some(1),
            },
        })
    }

    /// Record (if not already cached) and explore the test on every
    /// architecture under every strategy.
    ///
    /// # Errors
    ///
    /// Recorder-side errors, [`HarnessError::Compile`], or
    /// [`HarnessError::Run`].
    pub fn matrix(&self) -> Result<Rc<Matrix>, HarnessError> {
        if let Some(m) = self.cached.borrow().as_ref() {
            return Ok(m.clone());
        }
        let recorded = self.record()?;
        let mut runs = Vec::with_capacity(ARCHES.len() * STRATEGIES.len());
        for arch in ARCHES {
            let compiled = recorded.lang.try_compile(arch)?;
            for model in STRATEGIES {
                let workers = self.workers;
                let run =
                    run_model_budgeted_with(&compiled, model, self.budget, |c| match workers {
                        Some(w) => c.with_workers(w),
                        None => c,
                    })?;
                runs.push(MatrixRun {
                    arch,
                    model,
                    outcomes: project(&run.outcomes, recorded.threads),
                    states: run.states,
                    stop: run.stop,
                });
            }
        }
        let m = Rc::new(Matrix { recorded, runs });
        *self.cached.borrow_mut() = Some(m.clone());
        Ok(m)
    }

    /// The outcome set (per-thread return-value tuples), agreed across
    /// both architectures and all strategies.
    ///
    /// # Errors
    ///
    /// As [`Matrix::outcomes`].
    pub fn outcomes(&self) -> Result<BTreeSet<Vec<i64>>, HarnessError> {
        self.matrix().and_then(|m| m.outcomes().cloned())
    }

    /// The outcome set on one architecture (for shapes where the two
    /// compilation schemes genuinely differ in strength).
    ///
    /// # Errors
    ///
    /// As [`Matrix::outcomes_on`].
    pub fn outcomes_on(&self, arch: Arch) -> Result<BTreeSet<Vec<i64>>, HarnessError> {
        self.matrix().and_then(|m| m.outcomes_on(arch).cloned())
    }

    fn expect_outcomes(&self) -> BTreeSet<Vec<i64>> {
        match self.outcomes() {
            Ok(o) => o,
            Err(e) => panic!("test `{}`: {e}", self.name),
        }
    }

    /// Assert the outcome set is exactly `expected` on both
    /// architectures.
    ///
    /// # Panics
    ///
    /// On recorder/exploration errors or an outcome-set mismatch.
    pub fn assert_outcomes(&self, expected: &[&[i64]]) {
        let got = self.expect_outcomes();
        let want: BTreeSet<Vec<i64>> = expected.iter().map(|o| o.to_vec()).collect();
        assert_eq!(
            got,
            want,
            "test `{}`: outcome set mismatch\n  expected {}\n  got      {}",
            self.name,
            fmt_outcomes(&want),
            fmt_outcomes(&got),
        );
    }

    /// Assert the outcome set is exactly `expected` on `arch`.
    ///
    /// # Panics
    ///
    /// On recorder/exploration errors or an outcome-set mismatch.
    pub fn assert_outcomes_on(&self, arch: Arch, expected: &[&[i64]]) {
        let got = match self.outcomes_on(arch) {
            Ok(o) => o,
            Err(e) => panic!("test `{}`: {e}", self.name),
        };
        let want: BTreeSet<Vec<i64>> = expected.iter().map(|o| o.to_vec()).collect();
        assert_eq!(
            got,
            want,
            "test `{}` on {}: outcome set mismatch\n  expected {}\n  got      {}",
            self.name,
            arch.name(),
            fmt_outcomes(&want),
            fmt_outcomes(&got),
        );
    }

    /// Assert `outcome` is reachable on both architectures.
    ///
    /// # Panics
    ///
    /// On recorder/exploration errors or if the outcome is absent.
    pub fn assert_allowed(&self, outcome: &[i64]) {
        let got = self.expect_outcomes();
        assert!(
            got.contains(outcome),
            "test `{}`: expected {outcome:?} to be allowed; outcomes are {}",
            self.name,
            fmt_outcomes(&got),
        );
    }

    /// Assert `outcome` is unreachable on both architectures.
    ///
    /// # Panics
    ///
    /// On recorder/exploration errors or if the outcome is present.
    pub fn assert_forbidden(&self, outcome: &[i64]) {
        let got = self.expect_outcomes();
        assert!(
            !got.contains(outcome),
            "test `{}`: expected {outcome:?} to be forbidden; outcomes are {}",
            self.name,
            fmt_outcomes(&got),
        );
    }
}
