//! The ported literature corpus: classic litmus shapes from the temper
//! memlog suite (stackoverflow answers), Preshing's blog series, "Rust
//! Atomics and Locks" (Mara Bos), and the C++/herd seq-cst classics —
//! each written as Rust closures and checked against a documented
//! expected outcome set on both architectures under every operational
//! strategy.
//!
//! Outcome vectors list per-thread closure return values in thread
//! order. Reader threads that make two observations encode them in one
//! return value (documented per test). Unless noted, the expected set is
//! identical on ARM and RISC-V; the one shape where the compilation
//! schemes genuinely differ in strength (`acq_rel` fences: `dmb.sy` vs
//! `fence.tso`) documents both sets.

use crate::{Environment, LogTest};
use promising_core::Arch;
use std::collections::BTreeSet;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};

/// One ported literature test.
pub struct CorpusTest {
    /// Test name.
    pub name: &'static str,
    /// Family: `stackoverflow`, `preshing`, `rust-atomics`, `cpp-sc`.
    pub family: &'static str,
    /// Citation / provenance.
    pub source: &'static str,
    /// Build the closure test.
    pub build: fn() -> LogTest,
    /// Expected exact outcome set on ARM.
    pub expected: &'static [&'static [i64]],
    /// Expected exact outcome set on RISC-V, when the compilation
    /// schemes genuinely differ in strength on this shape; `None` means
    /// identical to [`CorpusTest::expected`].
    pub expected_riscv: Option<&'static [&'static [i64]]>,
}

impl CorpusTest {
    /// Check the test's recorded outcome set against the expectation on
    /// both architectures (each under all strategies, which must agree).
    ///
    /// # Errors
    ///
    /// A rendered mismatch or harness error.
    pub fn check(&self) -> Result<(), String> {
        self.check_against(&(self.build)())
    }

    /// As [`CorpusTest::check`], against an already-built [`LogTest`]
    /// (whose exploration matrix is cached across calls) — for drivers
    /// that also want the matrix for reporting.
    ///
    /// # Errors
    ///
    /// A rendered mismatch or harness error.
    pub fn check_against(&self, lt: &LogTest) -> Result<(), String> {
        for arch in [Arch::Arm, Arch::RiscV] {
            let want: BTreeSet<Vec<i64>> = match (arch, self.expected_riscv) {
                (Arch::RiscV, Some(rv)) => rv.iter().map(|o| o.to_vec()).collect(),
                _ => self.expected.iter().map(|o| o.to_vec()).collect(),
            };
            let got = lt
                .outcomes_on(arch)
                .map_err(|e| format!("{} [{}]: {e}", self.name, arch.name()))?;
            if got != want {
                return Err(format!(
                    "{} [{}]: expected {} but explored {}",
                    self.name,
                    arch.name(),
                    crate::fmt_outcomes(&want),
                    crate::fmt_outcomes(&got),
                ));
            }
        }
        Ok(())
    }
}

fn two(
    name: &str,
    t0: impl Fn(Environment) -> i64 + 'static,
    t1: impl Fn(Environment) -> i64 + 'static,
) -> LogTest {
    let mut lt = LogTest::named(name);
    lt.add(t0);
    lt.add(t1);
    lt
}

// --- C++ / herd seq-cst classics -----------------------------------------

fn sb(
    ord_store: std::sync::atomic::Ordering,
    ord_load: std::sync::atomic::Ordering,
    name: &str,
) -> LogTest {
    let mut lt = LogTest::named(name);
    lt.add(move |e: Environment| {
        e.a.store(1, ord_store);
        e.b.load(ord_load)
    });
    lt.add(move |e: Environment| {
        e.b.store(1, ord_store);
        e.a.load(ord_load)
    });
    lt
}

fn mp(
    ord_store: std::sync::atomic::Ordering,
    ord_load: std::sync::atomic::Ordering,
    name: &str,
) -> LogTest {
    let mut lt = LogTest::named(name);
    lt.add(move |e: Environment| {
        e.a.store(1, Relaxed);
        e.b.store(1, ord_store);
        0
    });
    // Reader encodes (flag, data) as 2*flag + data.
    lt.add(move |e: Environment| {
        let flag = e.b.load(ord_load);
        let data = e.a.load(Relaxed);
        2 * flag + data
    });
    lt
}

fn iriw(ord: std::sync::atomic::Ordering, name: &str) -> LogTest {
    let mut lt = LogTest::named(name);
    lt.add(move |e: Environment| {
        e.a.store(1, ord);
        0
    });
    lt.add(move |e: Environment| {
        e.b.store(1, ord);
        0
    });
    // Readers encode their two observations as 2*first + second.
    lt.add(move |e: Environment| {
        let x = e.a.load(ord);
        let y = e.b.load(ord);
        2 * x + y
    });
    lt.add(move |e: Environment| {
        let y = e.b.load(ord);
        let x = e.a.load(ord);
        2 * y + x
    });
    lt
}

fn wrc(
    write_ord: std::sync::atomic::Ordering,
    read_ord: std::sync::atomic::Ordering,
    name: &str,
) -> LogTest {
    let mut lt = LogTest::named(name);
    lt.add(move |e: Environment| {
        e.a.store(1, Relaxed);
        0
    });
    lt.add(move |e: Environment| {
        let r1 = e.a.load(Relaxed);
        e.b.store(1, write_ord);
        r1
    });
    lt.add(move |e: Environment| {
        let r2 = e.b.load(read_ord);
        let r3 = e.a.load(Relaxed);
        2 * r2 + r3
    });
    lt
}

// --- the corpus ----------------------------------------------------------

/// The full corpus.
#[allow(clippy::too_many_lines)]
pub fn corpus() -> Vec<CorpusTest> {
    vec![
        // ------------------------------------------------ cpp-sc family
        CorpusTest {
            name: "sb_sc",
            family: "cpp-sc",
            source: "Dekker's store buffering; C++11 seq_cst flagship (herd SB)",
            build: || sb(SeqCst, SeqCst, "sb_sc"),
            // seq_cst forbids both threads missing the other's store
            expected: &[&[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "sb_rlx",
            family: "cpp-sc",
            source: "SB with relaxed accesses (herd SB+rlx)",
            build: || sb(Relaxed, Relaxed, "sb_rlx"),
            expected: &[&[0, 0], &[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "sb_rel_acq",
            family: "cpp-sc",
            source: "SB with release stores / acquire loads: rel/acq does NOT \
                     forbid store buffering (stlr;ldapr may reorder)",
            build: || sb(Release, Acquire, "sb_rel_acq"),
            expected: &[&[0, 0], &[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "sb_sc_fence",
            family: "cpp-sc",
            source: "SB with relaxed accesses and seq_cst fences between \
                     (dmb.sy / fence rw,rw restore the SC result)",
            build: || {
                let mut lt = LogTest::named("sb_sc_fence");
                lt.add(|mut e: Environment| {
                    e.a.store(1, Relaxed);
                    e.fence(SeqCst);
                    e.b.load(Relaxed)
                });
                lt.add(|mut e: Environment| {
                    e.b.store(1, Relaxed);
                    e.fence(SeqCst);
                    e.a.load(Relaxed)
                });
                lt
            },
            expected: &[&[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "mp_sc",
            family: "cpp-sc",
            source: "message passing, all seq_cst (herd MP); reader returns \
                     2*flag + data",
            build: || mp(SeqCst, SeqCst, "mp_sc"),
            // flag=1 ∧ data=0 (enc 2) forbidden
            expected: &[&[0, 0], &[0, 1], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "mp_rel_acq",
            family: "cpp-sc",
            source: "MP with release flag store / acquire flag load \
                     (the canonical C11 handoff)",
            build: || mp(Release, Acquire, "mp_rel_acq"),
            expected: &[&[0, 0], &[0, 1], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "mp_rlx",
            family: "cpp-sc",
            source: "MP all relaxed: both reorderings observable",
            build: || mp(Relaxed, Relaxed, "mp_rlx"),
            expected: &[&[0, 0], &[0, 1], &[0, 2], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "mp_rel_rlx",
            family: "cpp-sc",
            source: "MP with release store but relaxed load: the reader's \
                     load-load reordering breaks the handoff",
            build: || mp(Release, Relaxed, "mp_rel_rlx"),
            expected: &[&[0, 0], &[0, 1], &[0, 2], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "mp_rlx_acq",
            family: "cpp-sc",
            source: "MP with acquire load but relaxed store: the writer's \
                     store-store reordering breaks the handoff",
            build: || mp(Relaxed, Acquire, "mp_rlx_acq"),
            expected: &[&[0, 0], &[0, 1], &[0, 2], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "mp_acqrel_fences",
            family: "cpp-sc",
            source: "MP with relaxed accesses and acq_rel fences: W→W and \
                     R→R ordering suffices (dmb.sy / fence.tso both give it)",
            build: || {
                let mut lt = LogTest::named("mp_acqrel_fences");
                lt.add(|mut e: Environment| {
                    e.a.store(1, Relaxed);
                    e.fence(AcqRel);
                    e.b.store(1, Relaxed);
                    0
                });
                lt.add(|mut e: Environment| {
                    let flag = e.b.load(Relaxed);
                    e.fence(AcqRel);
                    let data = e.a.load(Relaxed);
                    2 * flag + data
                });
                lt
            },
            expected: &[&[0, 0], &[0, 1], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "lb_rlx",
            family: "cpp-sc",
            source: "load buffering, relaxed (herd LB): the promising \
                     model's flagship — [1,1] is architecturally allowed",
            build: || {
                two(
                    "lb_rlx",
                    |e: Environment| {
                        let r1 = e.b.load(Relaxed);
                        e.a.store(1, Relaxed);
                        r1
                    },
                    |e: Environment| {
                        let r2 = e.a.load(Relaxed);
                        e.b.store(1, Relaxed);
                        r2
                    },
                )
            },
            expected: &[&[0, 0], &[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "lb_sc",
            family: "cpp-sc",
            source: "LB with seq_cst accesses: [1,1] forbidden",
            build: || {
                two(
                    "lb_sc",
                    |e: Environment| {
                        let r1 = e.b.load(SeqCst);
                        e.a.store(1, SeqCst);
                        r1
                    },
                    |e: Environment| {
                        let r2 = e.a.load(SeqCst);
                        e.b.store(1, SeqCst);
                        r2
                    },
                )
            },
            expected: &[&[0, 0], &[0, 1], &[1, 0]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "lb_ctrl_po",
            family: "cpp-sc",
            source: "LB+ctrl+po: control dependency on one side forbids the \
                     dependent cycle but not the plain one",
            build: || {
                two(
                    "lb_ctrl_po",
                    |e: Environment| {
                        let r1 = e.a.load(Relaxed);
                        if r1 == 1 {
                            e.b.store(1, Relaxed);
                        }
                        r1
                    },
                    |e: Environment| {
                        let r2 = e.b.load(Relaxed);
                        e.a.store(1, Relaxed);
                        r2
                    },
                )
            },
            // [0,1] needs T1 to read b=1 which only exists if T0 read a=1
            expected: &[&[0, 0], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "lb_data_po",
            family: "cpp-sc",
            source: "LB+data+po: the recorded branch's common store is \
                     hoisted out, so the value-independent store stays \
                     promisable and [1,1] remains allowed",
            build: || {
                two(
                    "lb_data_po",
                    |e: Environment| {
                        let r1 = e.a.load(Relaxed);
                        e.b.store(r1, Relaxed);
                        r1
                    },
                    |e: Environment| {
                        let r2 = e.b.load(Relaxed);
                        e.a.store(1, Relaxed);
                        r2
                    },
                )
            },
            expected: &[&[0, 0], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "iriw_sc",
            family: "cpp-sc",
            source: "independent reads of independent writes, seq_cst: the \
                     readers must agree on the write order; readers return \
                     2*first + second",
            build: || iriw(SeqCst, "iriw_sc"),
            expected: &[
                &[0, 0, 0, 0],
                &[0, 0, 0, 1],
                &[0, 0, 0, 2],
                &[0, 0, 0, 3],
                &[0, 0, 1, 0],
                &[0, 0, 1, 1],
                &[0, 0, 1, 2],
                &[0, 0, 1, 3],
                &[0, 0, 2, 0],
                &[0, 0, 2, 1],
                &[0, 0, 2, 3],
                &[0, 0, 3, 0],
                &[0, 0, 3, 1],
                &[0, 0, 3, 2],
                &[0, 0, 3, 3],
            ],
            expected_riscv: None,
        },
        CorpusTest {
            name: "iriw_acq",
            family: "cpp-sc",
            source: "IRIW with acquire loads: multi-copy atomicity already \
                     forbids the split verdict once each reader's loads are \
                     ordered (ARMv8 ldapr suffices)",
            build: || {
                let mut lt = LogTest::named("iriw_acq");
                lt.add(|e: Environment| {
                    e.a.store(1, Relaxed);
                    0
                });
                lt.add(|e: Environment| {
                    e.b.store(1, Relaxed);
                    0
                });
                lt.add(|e: Environment| {
                    let x = e.a.load(Acquire);
                    let y = e.b.load(Acquire);
                    2 * x + y
                });
                lt.add(|e: Environment| {
                    let y = e.b.load(Acquire);
                    let x = e.a.load(Acquire);
                    2 * y + x
                });
                lt
            },
            expected: &[
                &[0, 0, 0, 0],
                &[0, 0, 0, 1],
                &[0, 0, 0, 2],
                &[0, 0, 0, 3],
                &[0, 0, 1, 0],
                &[0, 0, 1, 1],
                &[0, 0, 1, 2],
                &[0, 0, 1, 3],
                &[0, 0, 2, 0],
                &[0, 0, 2, 1],
                &[0, 0, 2, 3],
                &[0, 0, 3, 0],
                &[0, 0, 3, 1],
                &[0, 0, 3, 2],
                &[0, 0, 3, 3],
            ],
            expected_riscv: None,
        },
        CorpusTest {
            name: "iriw_rlx",
            family: "cpp-sc",
            source: "IRIW with relaxed loads: each reader's loads may \
                     reorder, so every verdict is observable",
            build: || iriw(Relaxed, "iriw_rlx"),
            expected: &[
                &[0, 0, 0, 0],
                &[0, 0, 0, 1],
                &[0, 0, 0, 2],
                &[0, 0, 0, 3],
                &[0, 0, 1, 0],
                &[0, 0, 1, 1],
                &[0, 0, 1, 2],
                &[0, 0, 1, 3],
                &[0, 0, 2, 0],
                &[0, 0, 2, 1],
                &[0, 0, 2, 2],
                &[0, 0, 2, 3],
                &[0, 0, 3, 0],
                &[0, 0, 3, 1],
                &[0, 0, 3, 2],
                &[0, 0, 3, 3],
            ],
            expected_riscv: None,
        },
        CorpusTest {
            name: "wrc_sc",
            family: "cpp-sc",
            source: "write-to-read causality, seq_cst (herd WRC); T1 \
                     returns its read of a, T2 returns 2*r_b + r_a",
            build: || wrc(SeqCst, SeqCst, "wrc_sc"),
            // forbidden: T1 saw a=1, T2 saw b=1 then a=0 → [0,1,2]
            expected: &[
                &[0, 0, 0],
                &[0, 0, 1],
                &[0, 0, 2],
                &[0, 0, 3],
                &[0, 1, 0],
                &[0, 1, 1],
                &[0, 1, 3],
            ],
            expected_riscv: None,
        },
        CorpusTest {
            name: "wrc_rel_acq",
            family: "cpp-sc",
            source: "WRC with release store / acquire load on the relay: \
                     multi-copy atomicity + rel/acq forbids the stale read",
            build: || wrc(Release, Acquire, "wrc_rel_acq"),
            expected: &[
                &[0, 0, 0],
                &[0, 0, 1],
                &[0, 0, 2],
                &[0, 0, 3],
                &[0, 1, 0],
                &[0, 1, 1],
                &[0, 1, 3],
            ],
            expected_riscv: None,
        },
        CorpusTest {
            name: "corr_rlx",
            family: "cpp-sc",
            source: "coherence of read-read (herd CoRR): two relaxed loads \
                     of one location may not observe its writes out of \
                     coherence order; reader returns 2*first + second",
            build: || {
                two(
                    "corr_rlx",
                    |e: Environment| {
                        e.a.store(1, Relaxed);
                        0
                    },
                    |e: Environment| {
                        let r1 = e.a.load(Relaxed);
                        let r2 = e.a.load(Relaxed);
                        2 * r1 + r2
                    },
                )
            },
            expected: &[&[0, 0], &[0, 1], &[0, 3]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "isa2_rel_acq",
            family: "cpp-sc",
            source: "ISA2-style transitive handoff: two release/acquire \
                     hops propagate the payload across three threads",
            build: || {
                let mut lt = LogTest::named("isa2_rel_acq");
                lt.add(|e: Environment| {
                    e.a.store(42, Relaxed);
                    e.b.store(1, Release);
                    0
                });
                lt.add(|e: Environment| {
                    while e.b.load(Acquire) == 0 {}
                    e.c.store(1, Release);
                    0
                });
                lt.add(|e: Environment| {
                    while e.c.load(Acquire) == 0 {}
                    e.a.load(Relaxed)
                });
                lt
            },
            expected: &[&[0, 0, 42]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "rmw_atomicity",
            family: "cpp-sc",
            source: "two relaxed swaps on one location: RMW atomicity \
                     orders them, so exactly one observes the other",
            build: || {
                two(
                    "rmw_atomicity",
                    |e: Environment| e.a.swap(1, Relaxed),
                    |e: Environment| e.a.swap(2, Relaxed),
                )
            },
            expected: &[&[0, 1], &[2, 0]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "cas_acq_handoff",
            family: "cpp-sc",
            source: "acquire CAS as the reader side of an MP handoff: a \
                     successful CAS observes the released payload",
            build: || {
                two(
                    "cas_acq_handoff",
                    |e: Environment| {
                        e.a.store(42, Relaxed);
                        e.b.store(1, Release);
                        0
                    },
                    |e: Environment| match e.b.compare_exchange(1, 2, Acquire, Acquire) {
                        Ok(_) => e.a.load(Relaxed),
                        Err(_) => -1,
                    },
                )
            },
            expected: &[&[0, -1], &[0, 42]],
            expected_riscv: None,
        },
        // ------------------------------------------- stackoverflow family
        CorpusTest {
            name: "so_seqcst_sync",
            family: "stackoverflow",
            source: "temper memlog test_seq_cst (stackoverflow): a seq_cst \
                     load does not release earlier relaxed stores — the \
                     chain a=1; (b sc); c=1 leaks a=0 to the observer",
            build: || {
                let mut lt = LogTest::named("so_seqcst_sync");
                lt.add(|e: Environment| {
                    e.a.store(1, Relaxed);
                    if e.b.load(SeqCst) == 1 {
                        e.c.store(1, Relaxed);
                    }
                    0
                });
                lt.add(|e: Environment| {
                    e.b.store(1, SeqCst);
                    if e.c.load(Relaxed) == 1 {
                        e.a.load(Relaxed)
                    } else {
                        2
                    }
                });
                lt
            },
            expected: &[&[0, 0], &[0, 1], &[0, 2]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "so_exchange",
            family: "stackoverflow",
            source: "temper memlog test_exchange (stackoverflow): RMW \
                     exchanges do not make an SB shape sequentially \
                     consistent — both threads can still miss, even with \
                     acq_rel exchanges (the rmw edge runs read→write, the \
                     wrong direction to close the cycle)",
            build: || {
                two(
                    "so_exchange",
                    |e: Environment| {
                        let _ = e.a.exchange_weak(0, 1, AcqRel);
                        e.b.load(Relaxed)
                    },
                    |e: Environment| {
                        let _ = e.b.exchange_weak(0, 1, AcqRel);
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 0], &[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "so_exchange_fence",
            family: "stackoverflow",
            source: "temper memlog test_exchange_fence (stackoverflow): SB \
                     with acq_rel fences. C11 leaves [0,0] allowed; the ARM \
                     scheme's dmb.sy forbids it while RISC-V's fence.tso \
                     (no W→R order) preserves it — a documented \
                     compilation-scheme strength divergence",
            build: || {
                two(
                    "so_exchange_fence",
                    |mut e: Environment| {
                        e.a.store(1, Relaxed);
                        e.fence(AcqRel);
                        e.b.load(Relaxed)
                    },
                    |mut e: Environment| {
                        e.b.store(1, Relaxed);
                        e.fence(AcqRel);
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 1], &[1, 0], &[1, 1]],
            expected_riscv: Some(&[&[0, 0], &[0, 1], &[1, 0], &[1, 1]]),
        },
        // ------------------------------------------------ preshing family
        CorpusTest {
            name: "preshing_mp_rel_acq",
            family: "preshing",
            source: "Preshing, \"Acquire and Release Semantics\": the \
                     canonical guard/payload handoff with a spinning reader",
            build: || {
                two(
                    "preshing_mp_rel_acq",
                    |e: Environment| {
                        e.a.store(42, Relaxed);
                        e.b.store(1, Release);
                        0
                    },
                    |e: Environment| {
                        while e.b.load(Acquire) == 0 {}
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 42]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "preshing_rel_fence",
            family: "preshing",
            source: "Preshing, \"Acquire and Release Fences\": a release \
                     fence before the guard store replaces the release store",
            build: || {
                two(
                    "preshing_rel_fence",
                    |mut e: Environment| {
                        e.a.store(42, Relaxed);
                        e.fence(Release);
                        e.b.store(1, Relaxed);
                        0
                    },
                    |e: Environment| {
                        while e.b.load(Acquire) == 0 {}
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 42]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "preshing_acq_fence",
            family: "preshing",
            source: "Preshing, \"Acquire and Release Fences\": an acquire \
                     fence after the guard load replaces the acquire load",
            build: || {
                two(
                    "preshing_acq_fence",
                    |e: Environment| {
                        e.a.store(42, Relaxed);
                        e.b.store(1, Release);
                        0
                    },
                    |mut e: Environment| {
                        while e.b.load(Relaxed) == 0 {}
                        e.fence(Acquire);
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 42]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "preshing_wrong_release",
            family: "preshing",
            source: "Preshing, \"Fences Don't Work the Way You'd Expect\" \
                     (adapted): a release on the *payload* store orders \
                     nothing after it — the guard can still overtake",
            build: || {
                two(
                    "preshing_wrong_release",
                    |e: Environment| {
                        e.a.store(42, Release);
                        e.b.store(1, Relaxed);
                        0
                    },
                    |e: Environment| {
                        while e.b.load(Acquire) == 0 {}
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 0], &[0, 42]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "preshing_guard_payload",
            family: "preshing",
            source: "Preshing, \"The Synchronizes-With Relation\": \
                     non-spinning guard check; a set guard implies the \
                     payload",
            build: || {
                two(
                    "preshing_guard_payload",
                    |e: Environment| {
                        e.a.store(42, Relaxed);
                        e.b.store(1, Release);
                        0
                    },
                    |e: Environment| {
                        if e.b.load(Acquire) == 1 {
                            e.a.load(Relaxed)
                        } else {
                            -1
                        }
                    },
                )
            },
            expected: &[&[0, -1], &[0, 42]],
            expected_riscv: None,
        },
        // --------------------------------------------- rust-atomics family
        CorpusTest {
            name: "ral_stop_flag",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 1/3 (Mara Bos): a relaxed \
                     stop flag is eventually observed",
            build: || {
                two(
                    "ral_stop_flag",
                    |e: Environment| {
                        e.a.store(1, Relaxed);
                        0
                    },
                    |e: Environment| {
                        while e.a.load(Relaxed) == 0 {}
                        7
                    },
                )
            },
            expected: &[&[0, 7]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_progress",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 2 (Mara Bos): progress \
                     reporting — monotone relaxed stores observed in \
                     coherence order until completion",
            build: || {
                let mut lt = LogTest::named("ral_progress");
                lt.add(|e: Environment| {
                    e.a.store(1, Relaxed);
                    e.a.store(2, Relaxed);
                    e.a.store(3, Relaxed);
                    0
                });
                lt.add(|e: Environment| {
                    while e.a.load(Relaxed) != 3 {}
                    0
                });
                lt.with_value_op_cap(5);
                lt
            },
            expected: &[&[0, 0]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_mp_data",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 4 (Mara Bos): \
                     release/acquire data handoff between two threads",
            build: || {
                two(
                    "ral_mp_data",
                    |e: Environment| {
                        e.a.store(123, Relaxed);
                        e.b.store(1, Release);
                        0
                    },
                    |e: Environment| {
                        while e.b.load(Acquire) == 0 {}
                        e.a.load(Relaxed)
                    },
                )
            },
            expected: &[&[0, 123]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_lazy_init_race",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 2 (Mara Bos): racy lazy \
                     initialisation via load-check-store; both threads may \
                     win, but observers of a published value agree with its \
                     publisher",
            build: || {
                two(
                    "ral_lazy_init_race",
                    |e: Environment| {
                        let r = e.a.load(Relaxed);
                        if r == 0 {
                            e.a.store(11, Relaxed);
                            11
                        } else {
                            r
                        }
                    },
                    |e: Environment| {
                        let r = e.a.load(Relaxed);
                        if r == 0 {
                            e.a.store(22, Relaxed);
                            22
                        } else {
                            r
                        }
                    },
                )
            },
            // one thread seeing the other's value forces the seen thread
            // to have raced past a zero read, fixing its return value
            expected: &[&[11, 11], &[11, 22], &[22, 22]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_lazy_init_cas",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 2 (Mara Bos): lazy \
                     initialisation with compare_exchange — exactly one \
                     thread wins and both agree on the winner's value",
            build: || {
                two(
                    "ral_lazy_init_cas",
                    |e: Environment| match e.a.compare_exchange(0, 11, Relaxed, Relaxed) {
                        Ok(_) => 11,
                        Err(v) => v,
                    },
                    |e: Environment| match e.a.compare_exchange(0, 22, Relaxed, Relaxed) {
                        Ok(_) => 22,
                        Err(v) => v,
                    },
                )
            },
            expected: &[&[11, 11], &[22, 22]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_ticket_fetch_add",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 2/3 (Mara Bos): concurrent \
                     fetch_add hands out unique tickets",
            build: || {
                two(
                    "ral_ticket_fetch_add",
                    |e: Environment| e.a.fetch_add(1, Relaxed),
                    |e: Environment| e.a.fetch_add(1, Relaxed),
                )
            },
            expected: &[&[0, 1], &[1, 0]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_fetch_max",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 2 (Mara Bos, adapted): \
                     concurrent fetch_max — RMW atomicity orders the \
                     updates, so the old values betray the order",
            build: || {
                two(
                    "ral_fetch_max",
                    |e: Environment| e.a.fetch_max(5, Relaxed),
                    |e: Environment| e.a.fetch_max(3, Relaxed),
                )
            },
            expected: &[&[0, 5], &[3, 0]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_spinlock",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 4 (Mara Bos): a \
                     swap-acquire / store-release spinlock protecting a \
                     plain counter — increments serialise",
            build: || {
                let mut lt = LogTest::named("ral_spinlock");
                let worker = |e: Environment| {
                    while e.a.swap(1, Acquire) == 1 {}
                    let v = e.b.load(Relaxed);
                    e.b.store(v + 1, Relaxed);
                    e.a.store(0, Release);
                    v + 1
                };
                lt.add(worker);
                lt.add(worker);
                lt.with_value_op_cap(4);
                lt
            },
            expected: &[&[1, 2], &[2, 1]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_oota",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 3 (Mara Bos): the \
                     out-of-thin-air shape — relaxed cannot invent values",
            build: || {
                two(
                    "ral_oota",
                    |e: Environment| {
                        let v = e.a.load(Relaxed);
                        e.b.store(v, Relaxed);
                        v
                    },
                    |e: Environment| {
                        let v = e.b.load(Relaxed);
                        e.a.store(v, Relaxed);
                        v
                    },
                )
            },
            expected: &[&[0, 0]],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_total_order",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 3 (Mara Bos): every atomic \
                     location has a total modification order — two readers \
                     cannot observe two writes in opposite orders. Readers \
                     return 1 for `1 then 2`, 2 for `2 then 1`, else 0",
            build: || {
                let mut lt = LogTest::named("ral_total_order");
                lt.add(|e: Environment| {
                    e.a.store(1, Relaxed);
                    0
                });
                lt.add(|e: Environment| {
                    e.a.store(2, Relaxed);
                    0
                });
                let reader = |e: Environment| {
                    let r1 = e.a.load(Relaxed);
                    let r2 = e.a.load(Relaxed);
                    if r1 == 1 && r2 == 2 {
                        1
                    } else if r1 == 2 && r2 == 1 {
                        2
                    } else {
                        0
                    }
                };
                lt.add(reader);
                lt.add(reader);
                lt
            },
            expected: &[
                &[0, 0, 0, 0],
                &[0, 0, 0, 1],
                &[0, 0, 0, 2],
                &[0, 0, 1, 0],
                &[0, 0, 1, 1],
                &[0, 0, 2, 0],
                &[0, 0, 2, 2],
            ],
            expected_riscv: None,
        },
        CorpusTest {
            name: "ral_fence_sync",
            family: "rust-atomics",
            source: "Rust Atomics and Locks ch. 4 (Mara Bos): \
                     release/acquire fences synchronise through relaxed \
                     guard accesses",
            build: || {
                two(
                    "ral_fence_sync",
                    |mut e: Environment| {
                        e.a.store(42, Relaxed);
                        e.fence(Release);
                        e.b.store(1, Relaxed);
                        0
                    },
                    |mut e: Environment| {
                        if e.b.load(Relaxed) == 1 {
                            e.fence(Acquire);
                            e.a.load(Relaxed)
                        } else {
                            -1
                        }
                    },
                )
            },
            expected: &[&[0, -1], &[0, 42]],
            expected_riscv: None,
        },
    ]
}
