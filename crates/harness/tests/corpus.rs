//! Run the full literature corpus: every test's recorded outcome set
//! must exactly match its documented expectation on both architectures,
//! under all three operational strategies (which must agree).

use promising_harness::corpus::corpus;
use std::collections::BTreeSet;

#[test]
fn corpus_is_large_enough() {
    let tests = corpus();
    assert!(
        tests.len() >= 40,
        "corpus has only {} tests; the port requires at least 40",
        tests.len()
    );
    let families: BTreeSet<&str> = tests.iter().map(|t| t.family).collect();
    for fam in ["cpp-sc", "preshing", "rust-atomics", "stackoverflow"] {
        assert!(families.contains(fam), "family `{fam}` missing from corpus");
    }
    let names: BTreeSet<&str> = tests.iter().map(|t| t.name).collect();
    assert_eq!(names.len(), tests.len(), "duplicate corpus test names");
}

#[test]
fn corpus_conforms() {
    let mut failures = Vec::new();
    for t in corpus() {
        if let Err(e) = t.check() {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus test(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
