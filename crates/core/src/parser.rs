//! A text syntax for the calculus of Fig. 1, used by the litmus-test
//! format and the examples.
//!
//! ```text
//! r1 = load(y)                 // plain load
//! r2 = load_acq(x)             // acquire load
//! r3 = loadx(x)                // load exclusive
//! store(x, 37)                 // plain store
//! store_rel(y, 42)             // release store
//! r4 = storex(x, r3 + 1)       // store exclusive; r4 gets the success bit
//! r5 = r1 + 1                  // register assignment
//! dmb.sy ; dmb.ld ; dmb.st     // ARM barriers
//! fence(rw, w) ; fence.tso     // RISC-V barriers
//! isb
//! if (r1 == 42) { … } else { … }
//! while (r0 != 0) { … }
//! ```
//!
//! Statements are separated by `;` or newlines; `//` starts a line comment.
//! Identifiers that are not registers (`rN`) denote memory locations and
//! are assigned consecutive addresses by a [`LocTable`]; threads of a
//! program are separated by lines containing only `---`.
//!
//! Tokenization and the expression grammar are shared with the
//! language-level atomics frontend (`promising-lang`) via [`crate::lex`].

use crate::ids::Reg;
use crate::lex::{Tok, Tokens};
use crate::stmt::{
    AccessSet, CodeBuilder, Fence, Program, ReadKind, RmwOp, StmtId, ThreadCode, WriteKind,
};

pub use crate::lex::{parse_reg, LocTable, ParseError};

/// Parse a whole program: thread sources separated by `---` lines. Returns
/// the program and the location table used.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_program(src: &str) -> Result<(Program, LocTable), ParseError> {
    let mut locs = LocTable::new();
    let mut threads = Vec::new();
    for section in split_threads(src) {
        threads.push(parse_thread(&section, &mut locs)?);
    }
    Ok((Program::new(threads), locs))
}

fn split_threads(src: &str) -> Vec<String> {
    let mut sections = Vec::new();
    let mut current = String::new();
    for line in src.lines() {
        if line.trim() == "---" {
            sections.push(std::mem::take(&mut current));
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    sections.push(current);
    sections
}

/// Parse a single thread's code, interning locations into `locs`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_thread(src: &str, locs: &mut LocTable) -> Result<ThreadCode, ParseError> {
    let mut p = Parser {
        tokens: Tokens::new(src)?,
        builder: CodeBuilder::new(),
        locs,
    };
    let stmts = p.stmt_list(None)?;
    if !p.tokens.at_end() {
        return Err(p.tokens.err("trailing input"));
    }
    let mut b = p.builder;
    let entry = b.seq(&stmts);
    Ok(b.finish(entry))
}

struct Parser<'a> {
    tokens: Tokens,
    builder: CodeBuilder,
    locs: &'a mut LocTable,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        self.tokens.err(msg)
    }

    fn expr(&mut self) -> Result<crate::expr::Expr, ParseError> {
        self.tokens.expr(self.locs)
    }

    /// Parse statements until `end` (a closing brace) or end of input.
    fn stmt_list(&mut self, end: Option<&'static str>) -> Result<Vec<StmtId>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.tokens.skip_semis();
            match (self.tokens.peek(), end) {
                (None, None) => break,
                (None, Some(e)) => return Err(self.err(format!("expected `{e}`"))),
                (Some(Tok::Sym(s)), Some(e)) if *s == e => break,
                _ => out.push(self.stmt()?),
            }
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<StmtId, ParseError> {
        self.tokens.expect_sym("{")?;
        let stmts = self.stmt_list(Some("}"))?;
        self.tokens.expect_sym("}")?;
        Ok(self.builder.seq(&stmts))
    }

    fn stmt(&mut self) -> Result<StmtId, ParseError> {
        let tok = self.tokens.peek().cloned();
        match tok {
            Some(Tok::Ident(id)) => match id.as_str() {
                "skip" => {
                    self.tokens.bump();
                    Ok(self.builder.skip())
                }
                "dmb.sy" => {
                    self.tokens.bump();
                    Ok(self.builder.dmb_sy())
                }
                "dmb.ld" => {
                    self.tokens.bump();
                    Ok(self.builder.dmb_ld())
                }
                "dmb.st" => {
                    self.tokens.bump();
                    Ok(self.builder.dmb_st())
                }
                "isb" => {
                    self.tokens.bump();
                    Ok(self.builder.isb())
                }
                "fence.tso" => {
                    self.tokens.bump();
                    Ok(self.builder.fence_tso())
                }
                "fence" => {
                    self.tokens.bump();
                    self.tokens.expect_sym("(")?;
                    let k1 = self.access_set()?;
                    self.tokens.expect_sym(",")?;
                    let k2 = self.access_set()?;
                    self.tokens.expect_sym(")")?;
                    Ok(self.builder.fence(Fence { pre: k1, post: k2 }))
                }
                "if" => {
                    self.tokens.bump();
                    self.tokens.expect_sym("(")?;
                    let cond = self.expr()?;
                    self.tokens.expect_sym(")")?;
                    let then_b = self.block()?;
                    self.tokens.skip_semis();
                    let else_b = if matches!(self.tokens.peek(), Some(Tok::Ident(k)) if k == "else")
                    {
                        self.tokens.bump();
                        self.block()?
                    } else {
                        self.builder.skip()
                    };
                    Ok(self.builder.if_else(cond, then_b, else_b))
                }
                "while" => {
                    self.tokens.bump();
                    self.tokens.expect_sym("(")?;
                    let cond = self.expr()?;
                    self.tokens.expect_sym(")")?;
                    let body = self.block()?;
                    Ok(self.builder.while_loop(cond, body))
                }
                s => {
                    if let Some((wk, _xcl)) = store_kind(s) {
                        self.tokens.bump();
                        self.tokens.expect_sym("(")?;
                        let addr = self.expr()?;
                        self.tokens.expect_sym(",")?;
                        let data = self.expr()?;
                        self.tokens.expect_sym(")")?;
                        // bare store form: non-exclusive only
                        if s.starts_with("storex") {
                            return Err(
                                self.err("store exclusive needs a success register: r = storex(…)")
                            );
                        }
                        Ok(match wk {
                            WriteKind::Plain => self.builder.store(addr, data),
                            WriteKind::WeakRelease => self.builder.store_wrel(addr, data),
                            WriteKind::Release => self.builder.store_rel(addr, data),
                        })
                    } else {
                        // `rN = …` assignment / load / store-exclusive
                        let reg = parse_reg(&id).ok_or_else(|| {
                            self.err(format!("expected statement, found identifier `{id}`"))
                        })?;
                        self.tokens.bump();
                        self.tokens.expect_sym("=")?;
                        self.rhs(reg)
                    }
                }
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn rhs(&mut self, reg: Reg) -> Result<StmtId, ParseError> {
        if let Some(Tok::Ident(id)) = self.tokens.peek().cloned() {
            if let Some((rk, xcl)) = load_kind(&id) {
                self.tokens.bump();
                self.tokens.expect_sym("(")?;
                let addr = self.expr()?;
                self.tokens.expect_sym(")")?;
                return Ok(self.builder.load_kind(reg, addr, rk, xcl));
            }
            if let Some((wk, true)) = store_kind(&id) {
                self.tokens.bump();
                self.tokens.expect_sym("(")?;
                let addr = self.expr()?;
                self.tokens.expect_sym(",")?;
                let data = self.expr()?;
                self.tokens.expect_sym(")")?;
                return Ok(self.builder.store_kind(reg, addr, data, wk, true));
            }
            if let Some((op, rk, wk)) = rmw_kind(&id) {
                self.tokens.bump();
                self.tokens.expect_sym("(")?;
                let addr = self.expr()?;
                if addr.registers().contains(&reg) {
                    return Err(self.err("RMW address must not depend on the destination register"));
                }
                self.tokens.expect_sym(",")?;
                let expected = if op == RmwOp::Cas {
                    let e = self.expr()?;
                    self.tokens.expect_sym(",")?;
                    Some(e)
                } else {
                    None
                };
                let operand = self.expr()?;
                self.tokens.expect_sym(")")?;
                return Ok(match expected {
                    Some(exp) => self.builder.cas_kind(reg, addr, exp, operand, rk, wk),
                    None => self.builder.amo_kind(op, reg, addr, operand, rk, wk),
                });
            }
        }
        let e = self.expr()?;
        Ok(self.builder.assign(reg, e))
    }

    fn access_set(&mut self) -> Result<AccessSet, ParseError> {
        match self.tokens.next() {
            Some(Tok::Ident(s)) => match s.as_str() {
                "r" => Ok(AccessSet::R),
                "w" => Ok(AccessSet::W),
                "rw" => Ok(AccessSet::RW),
                other => Err(self.err(format!("expected r/w/rw, found `{other}`"))),
            },
            other => Err(self.err(format!("expected r/w/rw, found {other:?}"))),
        }
    }
}

fn load_kind(id: &str) -> Option<(ReadKind, bool)> {
    match id {
        "load" => Some((ReadKind::Plain, false)),
        "load_acq" => Some((ReadKind::Acquire, false)),
        "load_wacq" => Some((ReadKind::WeakAcquire, false)),
        "loadx" => Some((ReadKind::Plain, true)),
        "loadx_acq" => Some((ReadKind::Acquire, true)),
        "loadx_wacq" => Some((ReadKind::WeakAcquire, true)),
        _ => None,
    }
}

/// Parse an RMW mnemonic with optional `_wacq`/`_acq` and `_wrel`/`_rel`
/// ordering suffixes: `cas`, `cas_acq_rel`, `amo_add_acq`, …
fn rmw_kind(id: &str) -> Option<(RmwOp, ReadKind, WriteKind)> {
    for op in RmwOp::ALL {
        let Some(mut rest) = id.strip_prefix(op.mnemonic()) else {
            continue;
        };
        let mut rk = ReadKind::Plain;
        let mut wk = WriteKind::Plain;
        if let Some(r) = rest.strip_prefix("_wacq") {
            rk = ReadKind::WeakAcquire;
            rest = r;
        } else if let Some(r) = rest.strip_prefix("_acq") {
            rk = ReadKind::Acquire;
            rest = r;
        }
        if let Some(r) = rest.strip_prefix("_wrel") {
            wk = WriteKind::WeakRelease;
            rest = r;
        } else if let Some(r) = rest.strip_prefix("_rel") {
            wk = WriteKind::Release;
            rest = r;
        }
        if rest.is_empty() {
            return Some((op, rk, wk));
        }
    }
    None
}

fn store_kind(id: &str) -> Option<(WriteKind, bool)> {
    match id {
        "store" => Some((WriteKind::Plain, false)),
        "store_rel" => Some((WriteKind::Release, false)),
        "store_wrel" => Some((WriteKind::WeakRelease, false)),
        "storex" => Some((WriteKind::Plain, true)),
        "storex_rel" => Some((WriteKind::Release, true)),
        "storex_wrel" => Some((WriteKind::WeakRelease, true)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Op};
    use crate::ids::Loc;
    use crate::stmt::Stmt;

    fn first_stmts(code: &ThreadCode) -> Vec<Stmt> {
        // flatten the entry Seq spine
        let mut out = Vec::new();
        let mut stack = vec![code.entry()];
        while let Some(id) = stack.pop() {
            match code.stmt(id) {
                Stmt::Seq(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                s => out.push(s.clone()),
            }
        }
        out
    }

    #[test]
    fn malformed_programs_error_without_panicking() {
        // User-input paths must degrade to ParseError, never panic —
        // this battery holds the line the robustness audit drew.
        for src in [
            "",
            "---",
            "---\n---\n---",
            "store(",
            "store(x",
            "store(x,",
            "store(x, 1",
            "storex(x, 1)",
            "r1 =",
            "= 5",
            "r1 = load(",
            "r1 = (((",
            "if (",
            "if (r1) {",
            "while (r1",
            "fence(",
            "fence(r",
            "fence(r,",
            "r1 = 1 +",
            "r1 = cas(r1, 0, 1)",
            "store(x, 1) store(y, 2)",
            "r999999999999999999999 = 1",
            "🦀",
            "store(x, 1)\n)",
        ] {
            // Returning at all is the property under test (Ok or Err
            // both fine — e.g. "" is a valid empty thread); a panic
            // fails the harness.
            let mut locs = LocTable::new();
            let _ = parse_thread(src, &mut locs);
            let _ = parse_program(src);
        }
    }

    #[test]
    fn parses_mp_writer() {
        let mut locs = LocTable::new();
        let code = parse_thread("store(x, 37)\ndmb.sy\nstore(y, 42)", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Stmt::Store { .. }));
        assert!(matches!(stmts[1], Stmt::Fence(Fence::FULL)));
        assert_eq!(locs.get("x"), Some(Loc(0)));
        assert_eq!(locs.get("y"), Some(Loc(1)));
    }

    #[test]
    fn parses_loads_with_kinds() {
        let mut locs = LocTable::new();
        let code = parse_thread(
            "r1 = load(y)\nr2 = load_acq(x)\nr3 = loadx(x)\nr4 = load_wacq(x)",
            &mut locs,
        )
        .unwrap();
        let stmts = first_stmts(&code);
        assert!(matches!(
            &stmts[0],
            Stmt::Load {
                kind: ReadKind::Plain,
                exclusive: false,
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Load {
                kind: ReadKind::Acquire,
                exclusive: false,
                ..
            }
        ));
        assert!(matches!(
            &stmts[2],
            Stmt::Load {
                exclusive: true,
                ..
            }
        ));
        assert!(matches!(
            &stmts[3],
            Stmt::Load {
                kind: ReadKind::WeakAcquire,
                ..
            }
        ));
    }

    #[test]
    fn parses_store_exclusive_with_success_register() {
        let mut locs = LocTable::new();
        let code = parse_thread("r2 = storex(x, r1 + 1)", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        match &stmts[0] {
            Stmt::Store {
                succ, exclusive, ..
            } => {
                assert_eq!(*succ, Reg(2));
                assert!(exclusive);
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn bare_storex_is_rejected() {
        let mut locs = LocTable::new();
        let err = parse_thread("storex(x, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("success register"));
    }

    #[test]
    fn parses_control_flow() {
        let mut locs = LocTable::new();
        let code = parse_thread(
            "if (r0 == 42) { r2 = load(x) } else { r2 = 0 }\nwhile (r3 != 0) { r3 = r3 - 1 }",
            &mut locs,
        )
        .unwrap();
        let stmts = first_stmts(&code);
        assert!(matches!(stmts[0], Stmt::If { .. }));
        assert!(matches!(stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_program_with_thread_separators() {
        let src = "store(x, 1)\n---\nr1 = load(x)";
        let (prog, locs) = parse_program(src).unwrap();
        assert_eq!(prog.num_threads(), 2);
        assert_eq!(locs.get("x"), Some(Loc(0)));
    }

    #[test]
    fn locations_shared_across_threads() {
        let src = "store(y, 1)\n---\nr1 = load(x)\nr2 = load(y)";
        let (_, locs) = parse_program(src).unwrap();
        assert_eq!(locs.get("y"), Some(Loc(0)));
        assert_eq!(locs.get("x"), Some(Loc(1)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut locs = LocTable::new();
        let code = parse_thread("// header\n\nstore(x, 1) // trailing\n", &mut locs).unwrap();
        assert_eq!(first_stmts(&code).len(), 1);
    }

    #[test]
    fn address_dependency_idiom_parses() {
        let mut locs = LocTable::new();
        let code = parse_thread("r2 = load(x + (r1 - r1))", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        match &stmts[0] {
            Stmt::Load { addr, .. } => {
                assert_eq!(addr.registers(), vec![Reg(1)]);
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals_parse() {
        let mut locs = LocTable::new();
        let code = parse_thread("r1 = -5", &mut locs).unwrap();
        match &first_stmts(&code)[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(*expr, Expr::val(-5));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn rmw_statements_parse_with_strength_suffixes() {
        let mut locs = LocTable::new();
        let code = parse_thread(
            "r1 = cas(x, 0, 1)\nr2 = cas_acq_rel(x, r1, 2)\nr3 = amo_add(x, 1)\nr4 = amo_swap_rel(y, 7)\nr5 = amo_max_acq(y, r3)",
            &mut locs,
        )
        .unwrap();
        let stmts = first_stmts(&code);
        assert!(matches!(
            &stmts[0],
            Stmt::Rmw {
                op: RmwOp::Cas,
                rk: ReadKind::Plain,
                wk: WriteKind::Plain,
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Rmw {
                op: RmwOp::Cas,
                rk: ReadKind::Acquire,
                wk: WriteKind::Release,
                ..
            }
        ));
        assert!(matches!(
            &stmts[3],
            Stmt::Rmw {
                op: RmwOp::Swp,
                wk: WriteKind::Release,
                ..
            }
        ));
    }

    #[test]
    fn rmw_address_must_not_use_destination() {
        let mut locs = LocTable::new();
        let err = parse_thread("r1 = amo_add(r1, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("destination register"));
    }

    #[test]
    fn max_is_an_infix_operator() {
        let mut locs = LocTable::new();
        let code = parse_thread("r1 = 2 max r2", &mut locs).unwrap();
        match &first_stmts(&code)[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(*expr, Expr::binop(Op::Max, Expr::val(2), Expr::reg(Reg(2))));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn riscv_fences_parse() {
        let mut locs = LocTable::new();
        let code = parse_thread("fence(r, rw)\nfence.tso", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        assert_eq!(
            stmts[0],
            Stmt::Fence(Fence {
                pre: AccessSet::R,
                post: AccessSet::RW
            })
        );
        // fence.tso expands to two fences
        assert_eq!(stmts[1], Stmt::Fence(Fence::RR));
        assert_eq!(stmts[2], Stmt::Fence(Fence::RWW));
    }

    #[test]
    fn error_reports_line_numbers() {
        let mut locs = LocTable::new();
        let err = parse_thread("store(x, 1)\n???", &mut locs).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
