//! A text syntax for the calculus of Fig. 1, used by the litmus-test
//! format and the examples.
//!
//! ```text
//! r1 = load(y)                 // plain load
//! r2 = load_acq(x)             // acquire load
//! r3 = loadx(x)                // load exclusive
//! store(x, 37)                 // plain store
//! store_rel(y, 42)             // release store
//! r4 = storex(x, r3 + 1)       // store exclusive; r4 gets the success bit
//! r5 = r1 + 1                  // register assignment
//! dmb.sy ; dmb.ld ; dmb.st     // ARM barriers
//! fence(rw, w) ; fence.tso     // RISC-V barriers
//! isb
//! if (r1 == 42) { … } else { … }
//! while (r0 != 0) { … }
//! ```
//!
//! Statements are separated by `;` or newlines; `//` starts a line comment.
//! Identifiers that are not registers (`rN`) denote memory locations and
//! are assigned consecutive addresses by a [`LocTable`]; threads of a
//! program are separated by lines containing only `---`.

use crate::expr::{Expr, Op};
use crate::ids::{Loc, Reg};
use crate::stmt::{
    AccessSet, CodeBuilder, Fence, Program, ReadKind, RmwOp, StmtId, ThreadCode, WriteKind,
};
use std::collections::BTreeMap;
use std::fmt;

/// Maps location names to addresses, assigning fresh consecutive addresses
/// on first use. Shared across the threads of one program so that `x`
/// means the same address everywhere.
#[derive(Clone, Debug, Default)]
pub struct LocTable {
    by_name: BTreeMap<String, Loc>,
    next: u64,
}

impl LocTable {
    /// Empty table.
    pub fn new() -> LocTable {
        LocTable::default()
    }

    /// The address of `name`, allocating one if new.
    pub fn intern(&mut self, name: &str) -> Loc {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Loc(self.next);
        self.next += 1;
        self.by_name.insert(name.to_string(), l);
        l
    }

    /// The address of `name`, if already interned.
    pub fn get(&self, name: &str) -> Option<Loc> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup: the name of an address, if any.
    pub fn name_of(&self, loc: Loc) -> Option<&str> {
        self.by_name
            .iter()
            .find(|(_, &l)| l == loc)
            .map(|(n, _)| n.as_str())
    }

    /// All (name, location) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Loc)> {
        self.by_name.iter().map(|(n, &l)| (n.as_str(), l))
    }
}

/// A parse error with a human-readable message and the offending line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole program: thread sources separated by `---` lines. Returns
/// the program and the location table used.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_program(src: &str) -> Result<(Program, LocTable), ParseError> {
    let mut locs = LocTable::new();
    let mut threads = Vec::new();
    for section in split_threads(src) {
        threads.push(parse_thread(&section, &mut locs)?);
    }
    Ok((Program::new(threads), locs))
}

fn split_threads(src: &str) -> Vec<String> {
    let mut sections = vec![String::new()];
    for line in src.lines() {
        if line.trim() == "---" {
            sections.push(String::new());
        } else {
            let s = sections.last_mut().expect("non-empty");
            s.push_str(line);
            s.push('\n');
        }
    }
    sections
}

/// Parse a single thread's code, interning locations into `locs`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_thread(src: &str, locs: &mut LocTable) -> Result<ThreadCode, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        builder: CodeBuilder::new(),
        locs,
    };
    let stmts = p.stmt_list(None)?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input"));
    }
    let mut b = p.builder;
    let entry = b.seq(&stmts);
    Ok(b.finish(entry))
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

struct Located {
    tok: Tok,
    line: usize,
}

fn tokenize(src: &str) -> Result<Vec<Located>, ParseError> {
    let mut out = Vec::new();
    for (lno, raw_line) in src.lines().enumerate() {
        let line = lno + 1;
        let code = raw_line.split("//").next().unwrap_or("");
        let mut chars = code.char_indices().peekable();
        let mut line_had_token = false;
        while let Some(&(i, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            line_had_token = true;
            if c.is_ascii_digit()
                || (c == '-' && {
                    // unary minus before a digit, only in operand position
                    let mut it = chars.clone();
                    it.next();
                    matches!(it.peek(), Some(&(_, d)) if d.is_ascii_digit())
                        && matches!(
                            out.last(),
                            None | Some(Located {
                                tok: Tok::Sym(_),
                                ..
                            })
                        )
                })
            {
                let start = i;
                chars.next();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(code.len());
                let text = &code[start..end];
                let v = text.parse::<i64>().map_err(|_| ParseError {
                    message: format!("bad integer literal `{text}`"),
                    line,
                })?;
                out.push(Located {
                    tok: Tok::Int(v),
                    line,
                });
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                chars.next();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(code.len());
                out.push(Located {
                    tok: Tok::Ident(code[start..end].to_string()),
                    line,
                });
            } else {
                let two: Option<&'static str> = {
                    let rest = &code[i..];
                    ["==", "!=", "<="].into_iter().find(|s| rest.starts_with(s))
                };
                if let Some(sym) = two {
                    chars.next();
                    chars.next();
                    out.push(Located {
                        tok: Tok::Sym(sym),
                        line,
                    });
                } else {
                    let sym = match c {
                        '=' => "=",
                        ';' => ";",
                        ',' => ",",
                        '(' => "(",
                        ')' => ")",
                        '{' => "{",
                        '}' => "}",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '%' => "%",
                        '&' => "&",
                        '|' => "|",
                        '^' => "^",
                        '<' => "<",
                        _ => {
                            return Err(ParseError {
                                message: format!("unexpected character `{c}`"),
                                line,
                            })
                        }
                    };
                    chars.next();
                    out.push(Located {
                        tok: Tok::Sym(sym),
                        line,
                    });
                }
            }
        }
        if line_had_token {
            // implicit statement separator at end of line
            out.push(Located {
                tok: Tok::Sym(";"),
                line,
            });
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Located>,
    pos: usize,
    builder: CodeBuilder,
    locs: &'a mut LocTable,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0);
        ParseError {
            message: msg.into(),
            line,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, s: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Sym(t)) if *t == s => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{s}`, found {other:?}"))),
        }
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), Some(Tok::Sym(";"))) {
            self.pos += 1;
        }
    }

    /// Parse statements until `end` (a closing brace) or end of input.
    fn stmt_list(&mut self, end: Option<&'static str>) -> Result<Vec<StmtId>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_semis();
            match (self.peek(), end) {
                (None, None) => break,
                (None, Some(e)) => return Err(self.err(format!("expected `{e}`"))),
                (Some(Tok::Sym(s)), Some(e)) if *s == e => break,
                _ => out.push(self.stmt()?),
            }
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<StmtId, ParseError> {
        self.expect_sym("{")?;
        let stmts = self.stmt_list(Some("}"))?;
        self.expect_sym("}")?;
        Ok(self.builder.seq(&stmts))
    }

    fn stmt(&mut self) -> Result<StmtId, ParseError> {
        let tok = self.peek().cloned();
        match tok {
            Some(Tok::Ident(id)) => match id.as_str() {
                "skip" => {
                    self.pos += 1;
                    Ok(self.builder.skip())
                }
                "dmb.sy" => {
                    self.pos += 1;
                    Ok(self.builder.dmb_sy())
                }
                "dmb.ld" => {
                    self.pos += 1;
                    Ok(self.builder.dmb_ld())
                }
                "dmb.st" => {
                    self.pos += 1;
                    Ok(self.builder.dmb_st())
                }
                "isb" => {
                    self.pos += 1;
                    Ok(self.builder.isb())
                }
                "fence.tso" => {
                    self.pos += 1;
                    Ok(self.builder.fence_tso())
                }
                "fence" => {
                    self.pos += 1;
                    self.expect_sym("(")?;
                    let k1 = self.access_set()?;
                    self.expect_sym(",")?;
                    let k2 = self.access_set()?;
                    self.expect_sym(")")?;
                    Ok(self.builder.fence(Fence { pre: k1, post: k2 }))
                }
                "if" => {
                    self.pos += 1;
                    self.expect_sym("(")?;
                    let cond = self.expr()?;
                    self.expect_sym(")")?;
                    let then_b = self.block()?;
                    self.skip_semis();
                    let else_b = if matches!(self.peek(), Some(Tok::Ident(k)) if k == "else") {
                        self.pos += 1;
                        self.block()?
                    } else {
                        self.builder.skip()
                    };
                    Ok(self.builder.if_else(cond, then_b, else_b))
                }
                "while" => {
                    self.pos += 1;
                    self.expect_sym("(")?;
                    let cond = self.expr()?;
                    self.expect_sym(")")?;
                    let body = self.block()?;
                    Ok(self.builder.while_loop(cond, body))
                }
                s if store_kind(s).is_some() => {
                    let (wk, _xcl) = store_kind(s).expect("checked");
                    self.pos += 1;
                    self.expect_sym("(")?;
                    let addr = self.expr()?;
                    self.expect_sym(",")?;
                    let data = self.expr()?;
                    self.expect_sym(")")?;
                    // bare store form: non-exclusive only
                    if s.starts_with("storex") {
                        return Err(
                            self.err("store exclusive needs a success register: r = storex(…)")
                        );
                    }
                    Ok(match wk {
                        WriteKind::Plain => self.builder.store(addr, data),
                        WriteKind::WeakRelease => self.builder.store_wrel(addr, data),
                        WriteKind::Release => self.builder.store_rel(addr, data),
                    })
                }
                _ => {
                    // `rN = …` assignment / load / store-exclusive
                    let reg = parse_reg(&id).ok_or_else(|| {
                        self.err(format!("expected statement, found identifier `{id}`"))
                    })?;
                    self.pos += 1;
                    self.expect_sym("=")?;
                    self.rhs(reg)
                }
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn rhs(&mut self, reg: Reg) -> Result<StmtId, ParseError> {
        if let Some(Tok::Ident(id)) = self.peek().cloned() {
            if let Some((rk, xcl)) = load_kind(&id) {
                self.pos += 1;
                self.expect_sym("(")?;
                let addr = self.expr()?;
                self.expect_sym(")")?;
                return Ok(self.builder.load_kind(reg, addr, rk, xcl));
            }
            if let Some((wk, true)) = store_kind(&id) {
                self.pos += 1;
                self.expect_sym("(")?;
                let addr = self.expr()?;
                self.expect_sym(",")?;
                let data = self.expr()?;
                self.expect_sym(")")?;
                return Ok(self.builder.store_kind(reg, addr, data, wk, true));
            }
            if let Some((op, rk, wk)) = rmw_kind(&id) {
                self.pos += 1;
                self.expect_sym("(")?;
                let addr = self.expr()?;
                if addr.registers().contains(&reg) {
                    return Err(self.err("RMW address must not depend on the destination register"));
                }
                self.expect_sym(",")?;
                let expected = if op == RmwOp::Cas {
                    let e = self.expr()?;
                    self.expect_sym(",")?;
                    Some(e)
                } else {
                    None
                };
                let operand = self.expr()?;
                self.expect_sym(")")?;
                return Ok(match expected {
                    Some(exp) => self.builder.cas_kind(reg, addr, exp, operand, rk, wk),
                    None => self.builder.amo_kind(op, reg, addr, operand, rk, wk),
                });
            }
        }
        let e = self.expr()?;
        Ok(self.builder.assign(reg, e))
    }

    fn access_set(&mut self) -> Result<AccessSet, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => match s.as_str() {
                "r" => Ok(AccessSet::R),
                "w" => Ok(AccessSet::W),
                "rw" => Ok(AccessSet::RW),
                other => Err(self.err(format!("expected r/w/rw, found `{other}`"))),
            },
            other => Err(self.err(format!("expected r/w/rw, found {other:?}"))),
        }
    }

    // expr := cmp (== != < <=) level, then +/-, then * %, then atoms
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(Op::Eq),
            Some(Tok::Sym("!=")) => Some(Op::Ne),
            Some(Tok::Sym("<")) => Some(Op::Lt),
            Some(Tok::Sym("<=")) => Some(Op::Le),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            Ok(Expr::binop(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => Op::Add,
                Some(Tok::Sym("-")) => Op::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => Op::Mul,
                Some(Tok::Sym("%")) => Op::Mod,
                Some(Tok::Sym("&")) => Op::BitAnd,
                Some(Tok::Sym("|")) => Op::BitOr,
                Some(Tok::Sym("^")) => Op::BitXor,
                // `max` in operator position (after an operand) — the
                // infix spelling `Op::Max` pretty-prints as
                Some(Tok::Ident(id)) if id == "max" => Op::Max,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.atom()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::val(v)),
            Some(Tok::Ident(id)) => {
                if let Some(r) = parse_reg(&id) {
                    Ok(Expr::reg(r))
                } else {
                    let loc = self.locs.intern(&id);
                    Ok(Expr::val(loc.0 as i64))
                }
            }
            Some(Tok::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn parse_reg(id: &str) -> Option<Reg> {
    let digits = id.strip_prefix('r')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse::<u32>().ok().map(Reg)
}

fn load_kind(id: &str) -> Option<(ReadKind, bool)> {
    match id {
        "load" => Some((ReadKind::Plain, false)),
        "load_acq" => Some((ReadKind::Acquire, false)),
        "load_wacq" => Some((ReadKind::WeakAcquire, false)),
        "loadx" => Some((ReadKind::Plain, true)),
        "loadx_acq" => Some((ReadKind::Acquire, true)),
        "loadx_wacq" => Some((ReadKind::WeakAcquire, true)),
        _ => None,
    }
}

/// Parse an RMW mnemonic with optional `_wacq`/`_acq` and `_wrel`/`_rel`
/// ordering suffixes: `cas`, `cas_acq_rel`, `amo_add_acq`, …
fn rmw_kind(id: &str) -> Option<(RmwOp, ReadKind, WriteKind)> {
    for op in RmwOp::ALL {
        let Some(mut rest) = id.strip_prefix(op.mnemonic()) else {
            continue;
        };
        let mut rk = ReadKind::Plain;
        let mut wk = WriteKind::Plain;
        if let Some(r) = rest.strip_prefix("_wacq") {
            rk = ReadKind::WeakAcquire;
            rest = r;
        } else if let Some(r) = rest.strip_prefix("_acq") {
            rk = ReadKind::Acquire;
            rest = r;
        }
        if let Some(r) = rest.strip_prefix("_wrel") {
            wk = WriteKind::WeakRelease;
            rest = r;
        } else if let Some(r) = rest.strip_prefix("_rel") {
            wk = WriteKind::Release;
            rest = r;
        }
        if rest.is_empty() {
            return Some((op, rk, wk));
        }
    }
    None
}

fn store_kind(id: &str) -> Option<(WriteKind, bool)> {
    match id {
        "store" => Some((WriteKind::Plain, false)),
        "store_rel" => Some((WriteKind::Release, false)),
        "store_wrel" => Some((WriteKind::WeakRelease, false)),
        "storex" => Some((WriteKind::Plain, true)),
        "storex_rel" => Some((WriteKind::Release, true)),
        "storex_wrel" => Some((WriteKind::WeakRelease, true)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Stmt;

    fn first_stmts(code: &ThreadCode) -> Vec<Stmt> {
        // flatten the entry Seq spine
        let mut out = Vec::new();
        let mut stack = vec![code.entry()];
        while let Some(id) = stack.pop() {
            match code.stmt(id) {
                Stmt::Seq(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                s => out.push(s.clone()),
            }
        }
        out
    }

    #[test]
    fn parses_mp_writer() {
        let mut locs = LocTable::new();
        let code = parse_thread("store(x, 37)\ndmb.sy\nstore(y, 42)", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Stmt::Store { .. }));
        assert!(matches!(stmts[1], Stmt::Fence(Fence::FULL)));
        assert_eq!(locs.get("x"), Some(Loc(0)));
        assert_eq!(locs.get("y"), Some(Loc(1)));
    }

    #[test]
    fn parses_loads_with_kinds() {
        let mut locs = LocTable::new();
        let code = parse_thread(
            "r1 = load(y)\nr2 = load_acq(x)\nr3 = loadx(x)\nr4 = load_wacq(x)",
            &mut locs,
        )
        .unwrap();
        let stmts = first_stmts(&code);
        assert!(matches!(
            &stmts[0],
            Stmt::Load {
                kind: ReadKind::Plain,
                exclusive: false,
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Load {
                kind: ReadKind::Acquire,
                exclusive: false,
                ..
            }
        ));
        assert!(matches!(
            &stmts[2],
            Stmt::Load {
                exclusive: true,
                ..
            }
        ));
        assert!(matches!(
            &stmts[3],
            Stmt::Load {
                kind: ReadKind::WeakAcquire,
                ..
            }
        ));
    }

    #[test]
    fn parses_store_exclusive_with_success_register() {
        let mut locs = LocTable::new();
        let code = parse_thread("r2 = storex(x, r1 + 1)", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        match &stmts[0] {
            Stmt::Store {
                succ, exclusive, ..
            } => {
                assert_eq!(*succ, Reg(2));
                assert!(exclusive);
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn bare_storex_is_rejected() {
        let mut locs = LocTable::new();
        let err = parse_thread("storex(x, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("success register"));
    }

    #[test]
    fn parses_control_flow() {
        let mut locs = LocTable::new();
        let code = parse_thread(
            "if (r0 == 42) { r2 = load(x) } else { r2 = 0 }\nwhile (r3 != 0) { r3 = r3 - 1 }",
            &mut locs,
        )
        .unwrap();
        let stmts = first_stmts(&code);
        assert!(matches!(stmts[0], Stmt::If { .. }));
        assert!(matches!(stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_program_with_thread_separators() {
        let src = "store(x, 1)\n---\nr1 = load(x)";
        let (prog, locs) = parse_program(src).unwrap();
        assert_eq!(prog.num_threads(), 2);
        assert_eq!(locs.get("x"), Some(Loc(0)));
    }

    #[test]
    fn locations_shared_across_threads() {
        let src = "store(y, 1)\n---\nr1 = load(x)\nr2 = load(y)";
        let (_, locs) = parse_program(src).unwrap();
        assert_eq!(locs.get("y"), Some(Loc(0)));
        assert_eq!(locs.get("x"), Some(Loc(1)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut locs = LocTable::new();
        let code = parse_thread("// header\n\nstore(x, 1) // trailing\n", &mut locs).unwrap();
        assert_eq!(first_stmts(&code).len(), 1);
    }

    #[test]
    fn address_dependency_idiom_parses() {
        let mut locs = LocTable::new();
        let code = parse_thread("r2 = load(x + (r1 - r1))", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        match &stmts[0] {
            Stmt::Load { addr, .. } => {
                assert_eq!(addr.registers(), vec![Reg(1)]);
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals_parse() {
        let mut locs = LocTable::new();
        let code = parse_thread("r1 = -5", &mut locs).unwrap();
        match &first_stmts(&code)[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(*expr, Expr::val(-5));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn rmw_statements_parse_with_strength_suffixes() {
        let mut locs = LocTable::new();
        let code = parse_thread(
            "r1 = cas(x, 0, 1)\nr2 = cas_acq_rel(x, r1, 2)\nr3 = amo_add(x, 1)\nr4 = amo_swap_rel(y, 7)\nr5 = amo_max_acq(y, r3)",
            &mut locs,
        )
        .unwrap();
        let stmts = first_stmts(&code);
        assert!(matches!(
            &stmts[0],
            Stmt::Rmw {
                op: RmwOp::Cas,
                rk: ReadKind::Plain,
                wk: WriteKind::Plain,
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Rmw {
                op: RmwOp::Cas,
                rk: ReadKind::Acquire,
                wk: WriteKind::Release,
                ..
            }
        ));
        assert!(matches!(
            &stmts[3],
            Stmt::Rmw {
                op: RmwOp::Swp,
                wk: WriteKind::Release,
                ..
            }
        ));
    }

    #[test]
    fn rmw_address_must_not_use_destination() {
        let mut locs = LocTable::new();
        let err = parse_thread("r1 = amo_add(r1, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("destination register"));
    }

    #[test]
    fn max_is_an_infix_operator() {
        let mut locs = LocTable::new();
        let code = parse_thread("r1 = 2 max r2", &mut locs).unwrap();
        match &first_stmts(&code)[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(*expr, Expr::binop(Op::Max, Expr::val(2), Expr::reg(Reg(2))));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn riscv_fences_parse() {
        let mut locs = LocTable::new();
        let code = parse_thread("fence(r, rw)\nfence.tso", &mut locs).unwrap();
        let stmts = first_stmts(&code);
        assert_eq!(
            stmts[0],
            Stmt::Fence(Fence {
                pre: AccessSet::R,
                post: AccessSet::RW
            })
        );
        // fence.tso expands to two fences
        assert_eq!(stmts[1], Stmt::Fence(Fence::RR));
        assert_eq!(stmts[2], Stmt::Fence(Fence::RWW));
    }

    #[test]
    fn error_reports_line_numbers() {
        let mut locs = LocTable::new();
        let err = parse_thread("store(x, 1)\n???", &mut locs).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
