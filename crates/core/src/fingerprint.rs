//! Compact 128-bit state fingerprints for visited-set deduplication.
//!
//! The exploration engines visit millions of machine states; storing a
//! deep [`crate::machine::StateKey`] clone per state makes the visited
//! set the dominant cost (O(state size) hash + compare per lookup, and
//! memory growing with `states × state size`). Instead, states are
//! folded into a 128-bit [`Fingerprint`] over a canonical `u64`-stream
//! encoding, and the visited sets store only the fingerprint.
//!
//! Collisions are possible in principle (probability ≈ `n² / 2¹²⁹` for
//! `n` states — about 10⁻²⁰ at a billion states); the opt-in *paranoid*
//! mode ([`crate::config::Config::paranoid`]) stores the exact key
//! alongside each fingerprint and panics on any collision, and the test
//! suite runs the full litmus catalogue in that mode.
//!
//! The hasher is a two-lane splitmix64 absorption: each written word is
//! passed through an avalanche permutation into two independently-seeded
//! accumulators. It is *not* keyed (no HashDoS resistance) — state
//! encodings are not attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// A 128-bit state fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// splitmix64's avalanche permutation (Stafford variant 13).
#[inline]
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streaming 128-bit hasher over a canonical `u64` encoding.
///
/// Writers must emit an unambiguous encoding: every variable-length
/// collection is prefixed with its length ([`FpHasher::write_len`]) and
/// every enum with a discriminant tag.
#[derive(Clone, Debug)]
pub struct FpHasher {
    a: u64,
    b: u64,
}

impl Default for FpHasher {
    fn default() -> FpHasher {
        FpHasher::new()
    }
}

impl FpHasher {
    /// A fresh hasher with fixed lane seeds.
    pub fn new() -> FpHasher {
        FpHasher {
            a: 0x243f_6a88_85a3_08d3, // π
            b: 0x1319_8a2e_0370_7344,
        }
    }

    /// Absorb one 64-bit word.
    ///
    /// Mid-stream mixing is a cheap polynomial step per lane (one
    /// multiply each, distinct odd constants, rotated input on lane b so
    /// the lanes stay independent); the expensive avalanche permutation
    /// runs once per lane in [`FpHasher::finish128`]. This keeps the
    /// hot-path cost — exploration fingerprints a thread state per
    /// explored node — at ~2 multiplies per word.
    #[inline]
    pub fn write_u64(&mut self, x: u64) {
        self.a = (self.a ^ x).wrapping_mul(0x2d35_8dcc_aa6c_78a5);
        self.b = (self.b ^ x.rotate_left(32)).wrapping_mul(0x8bb8_4b93_962e_acc9);
    }

    /// Absorb a 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    /// Absorb a signed 64-bit word.
    #[inline]
    pub fn write_i64(&mut self, x: i64) {
        self.write_u64(x as u64);
    }

    /// Absorb a collection length (or any `usize`).
    #[inline]
    pub fn write_len(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Absorb a boolean.
    #[inline]
    pub fn write_bool(&mut self, b: bool) {
        self.write_u64(b as u64);
    }

    /// Finish, producing the 128-bit digest: a full avalanche round per
    /// lane, cross-mixed so each output half depends on both lanes.
    #[inline]
    pub fn finish128(self) -> Fingerprint {
        let a = avalanche(self.a ^ self.b.rotate_left(17));
        let b = avalanche(self.b ^ a);
        Fingerprint(((a as u128) << 64) | b as u128)
    }

    /// Absorb another hasher's lane state — used to fold an incrementally
    /// maintained digest (e.g. [`crate::memory::Memory`]'s running hash)
    /// into a larger encoding in O(1).
    #[inline]
    pub fn absorb(&mut self, other: &FpHasher) {
        self.write_u64(other.a);
        self.write_u64(other.b);
    }
}

/// A consumer of a canonical `u64`-word encoding.
///
/// State encoders (e.g. the flat machine's canonical per-location
/// encoding) are written once against this trait and serve two
/// consumers: a `Vec<u64>` sink materialises the stream for exact-key
/// comparison (paranoid mode), while an [`FpHasher`] sink folds the
/// stream straight into a fingerprint — no per-state buffer allocation
/// on the dedup hot path.
pub trait WordSink {
    /// Consume one word of the encoding.
    fn word(&mut self, w: u64);
}

impl WordSink for FpHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.write_u64(w);
    }
}

impl WordSink for Vec<u64> {
    #[inline]
    fn word(&mut self, w: u64) {
        self.push(w);
    }
}

/// A no-op [`Hasher`] for maps keyed by already-uniform fingerprints:
/// folds the 128-bit key into 64 bits instead of re-hashing it.
#[derive(Clone, Copy, Debug, Default)]
pub struct FpIdentityHasher(u64);

impl Hasher for FpIdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // generic fallback (not used on the hot path)
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = avalanche(self.0 ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 ^= n;
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.0 = (n as u64) ^ ((n >> 64) as u64).rotate_left(1);
    }
}

/// [`std::collections::HashMap`] build-hasher for fingerprint keys.
pub type FpBuildHasher = BuildHasherDefault<FpIdentityHasher>;

/// A `HashMap` keyed by [`Fingerprint`]s without redundant re-hashing.
pub type FpHashMap<V> = std::collections::HashMap<Fingerprint, V, FpBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(words: &[u64]) -> Fingerprint {
        let mut h = FpHasher::new();
        for &w in words {
            h.write_u64(w);
        }
        h.finish128()
    }

    #[test]
    fn deterministic() {
        assert_eq!(fp(&[1, 2, 3]), fp(&[1, 2, 3]));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fp(&[1, 2]), fp(&[2, 1]));
    }

    #[test]
    fn length_sensitive() {
        assert_ne!(fp(&[0]), fp(&[0, 0]));
        assert_ne!(fp(&[]), fp(&[0]));
    }

    #[test]
    fn single_bit_flips_diffuse() {
        let base = fp(&[7, 9]).0;
        for bit in 0..64 {
            let flipped = fp(&[7 ^ (1 << bit), 9]).0;
            let dist = (base ^ flipped).count_ones();
            assert!(dist > 20, "bit {bit}: hamming distance {dist}");
        }
    }

    #[test]
    fn no_collisions_on_small_dense_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100u64 {
            for j in 0..100u64 {
                assert!(seen.insert(fp(&[i, j])), "collision at ({i}, {j})");
            }
        }
    }

    #[test]
    fn fp_hashmap_roundtrips() {
        let mut m: FpHashMap<u32> = FpHashMap::default();
        m.insert(fp(&[1]), 10);
        m.insert(fp(&[2]), 20);
        assert_eq!(m.get(&fp(&[1])), Some(&10));
        assert_eq!(m.get(&fp(&[2])), Some(&20));
        assert_eq!(m.get(&fp(&[3])), None);
    }
}
