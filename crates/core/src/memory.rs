//! The memory: a growing list of write messages (§4.1, Fig. 2).
//!
//! "Memory is a list of writes, in the order they were propagated." A write
//! message records its location, value and originating thread. Timestamps
//! are one-based list indices; timestamp 0 denotes the initial writes,
//! which give value 0 (or a per-location initial value supplied for litmus
//! `{ x=1; }` sections) to every location.

use crate::fingerprint::FpHasher;
use crate::ids::{Loc, TId, Timestamp, Val};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A write message `⟨x := v⟩_tid` (Fig. 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Msg {
    /// Location written (`w.loc`).
    pub loc: Loc,
    /// Value written (`w.val`).
    pub val: Val,
    /// Originating thread (`w.tid`).
    pub tid: TId,
}

impl Msg {
    /// Construct `⟨loc := val⟩_tid`.
    pub fn new(loc: Loc, val: Val, tid: TId) -> Msg {
        Msg { loc, val, tid }
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} := {}>@{}", self.loc, self.val, self.tid)
    }
}

/// The shared memory: the propagated-write history plus initial values.
///
/// Both components are behind [`Arc`]s with copy-on-write mutation, so
/// cloning a `Memory` — which exploration does once per visited state —
/// is two reference-count bumps. [`Memory::push`] copies the message
/// list only when it is shared with another state.
///
/// A running fingerprint of the contents is maintained *incrementally*
/// ([`Memory::push`] absorbs the new message), so folding a memory into
/// a state fingerprint ([`Memory::feed`]) is O(1) instead of O(|M|) —
/// the certification engine fingerprints a memory per explored node.
#[derive(Clone, Debug)]
pub struct Memory {
    msgs: Arc<Vec<Msg>>,
    init: Arc<BTreeMap<Loc, Val>>,
    fp: FpHasher,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::with_init(BTreeMap::new())
    }
}

// Equality/hashing ignore the running fingerprint: it is a pure function
// of the absorbed contents, so comparing contents is both sufficient and
// collision-safe (exact keys exist to *catch* fingerprint collisions).
impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        self.msgs == other.msgs && self.init == other.init
    }
}

impl Eq for Memory {}

impl std::hash::Hash for Memory {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.msgs.hash(state);
        self.init.hash(state);
    }
}

impl Memory {
    /// Empty memory where every location initially holds 0.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Memory with explicit initial values for some locations (litmus
    /// `{ x=1; y=2; }` init sections); unmentioned locations hold 0.
    pub fn with_init(init: BTreeMap<Loc, Val>) -> Memory {
        let mut fp = FpHasher::new();
        fp.write_len(init.len());
        for (l, v) in &init {
            fp.write_u64(l.0);
            fp.write_i64(v.0);
        }
        Memory {
            msgs: Arc::new(Vec::new()),
            init: Arc::new(init),
            fp,
        }
    }

    /// The initial value of `loc` (timestamp 0).
    pub fn initial(&self, loc: Loc) -> Val {
        self.init.get(&loc).copied().unwrap_or(Val(0))
    }

    /// The explicit initial-value map.
    pub fn init_values(&self) -> &BTreeMap<Loc, Val> {
        self.init.as_ref()
    }

    /// Number of propagated writes; also the maximal timestamp.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no write has been propagated yet.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The maximal timestamp currently in memory (`|M|`).
    pub fn max_timestamp(&self) -> Timestamp {
        Timestamp(self.msgs.len() as u32)
    }

    /// Append a write at the next timestamp (`t = |M| + 1`), returning it.
    /// Copy-on-write: the message list is copied only if another state
    /// still shares it. The running fingerprint absorbs the message.
    pub fn push(&mut self, msg: Msg) -> Timestamp {
        Arc::make_mut(&mut self.msgs).push(msg);
        self.fp.write_u64(msg.loc.0);
        self.fp.write_i64(msg.val.0);
        self.fp.write_len(msg.tid.0);
        Timestamp(self.msgs.len() as u32)
    }

    /// Fold the memory into a state fingerprint: O(1), via the
    /// incrementally maintained digest of (initial values ++ messages).
    pub fn feed(&self, h: &mut FpHasher) {
        h.absorb(&self.fp);
        h.write_len(self.msgs.len());
    }

    /// Force private copies of all shared structure (see
    /// [`crate::machine::Machine::deep_clone`]).
    #[doc(hidden)]
    pub fn unshare(&mut self) {
        Arc::make_mut(&mut self.msgs);
        Arc::make_mut(&mut self.init);
    }

    /// The message at timestamp `t ≥ 1` (`M(t)`), if within bounds.
    pub fn get(&self, t: Timestamp) -> Option<&Msg> {
        if t.is_initial() {
            None
        } else {
            self.msgs.get(t.0 as usize - 1)
        }
    }

    /// The paper's `read(M, l, t)`: the value obtained by reading location
    /// `l` at timestamp `t` — the initial value for `t = 0`, the message
    /// value if `M(t).loc = l`, and `None` otherwise.
    pub fn read(&self, loc: Loc, t: Timestamp) -> Option<Val> {
        if t.is_initial() {
            Some(self.initial(loc))
        } else {
            let m = self.get(t)?;
            (m.loc == loc).then_some(m.val)
        }
    }

    /// All messages with their timestamps, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &Msg)> {
        self.msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (Timestamp(i as u32 + 1), m))
    }

    /// Timestamps of all writes to `loc`, ascending (excluding the initial
    /// write at 0).
    pub fn writes_to(&self, loc: Loc) -> impl Iterator<Item = Timestamp> + '_ {
        self.iter()
            .filter(move |(_, m)| m.loc == loc)
            .map(|(t, _)| t)
    }

    /// The latest write to `loc` at or below timestamp `bound` (timestamp 0
    /// — the initial write — if none).
    pub fn latest_write_at_most(&self, loc: Loc, bound: Timestamp) -> Timestamp {
        let hi = (bound.0 as usize).min(self.msgs.len());
        for i in (0..hi).rev() {
            if self.msgs[i].loc == loc {
                return Timestamp(i as u32 + 1);
            }
        }
        Timestamp::ZERO
    }

    /// Whether some write to `loc` exists with timestamp in `(lo, hi]`.
    /// Used by the read rule's no-interposing-write side condition and by
    /// the `atomic` predicate.
    pub fn has_write_between(&self, loc: Loc, lo: Timestamp, hi: Timestamp) -> bool {
        let lo = lo.0 as usize;
        let hi = (hi.0 as usize).min(self.msgs.len());
        (lo..hi).any(|i| self.msgs[i].loc == loc)
    }

    /// The `atomic(M, l, tid, tr, tw)` predicate of Fig. 5: an exclusive
    /// write at timestamp `tw` by `tid`, paired with an exclusive read that
    /// read timestamp `tr`, is permitted only if — when the read was from
    /// the same location — every write to `l` strictly between `tr` and
    /// `tw` is by `tid` itself.
    pub fn atomic(&self, loc: Loc, tid: TId, tr: Timestamp, tw: Timestamp) -> bool {
        // M(tr).loc = l ⇒ ∀t'. (tr < t' < tw ∧ M(t').loc = l) ⇒ M(t').tid = tid
        let read_same_loc = if tr.is_initial() {
            // Timestamp 0 is the initial write to *every* location,
            // including `l`.
            true
        } else {
            match self.get(tr) {
                Some(m) => m.loc == loc,
                None => false,
            }
        };
        if !read_same_loc {
            return true;
        }
        let lo = tr.0 as usize;
        let hi = (tw.0 as usize).saturating_sub(1).min(self.msgs.len());
        (lo..hi).all(|i| self.msgs[i].loc != loc || self.msgs[i].tid == tid)
    }

    /// The final (coherence-last) value of `loc`.
    pub fn final_value(&self, loc: Loc) -> Val {
        self.latest_write_at_most(loc, self.max_timestamp())
            .0
            .checked_sub(1)
            .map(|i| self.msgs[i as usize].val)
            .unwrap_or_else(|| self.initial(loc))
    }

    /// All locations either initialised or written.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> = self
            .init
            .keys()
            .copied()
            .chain(self.msgs.iter().map(|m| m.loc))
            .collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (t, m)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{t}: {m}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(writes: &[(u64, i64, usize)]) -> Memory {
        let mut m = Memory::new();
        for &(l, v, t) in writes {
            m.push(Msg::new(Loc(l), Val(v), TId(t)));
        }
        m
    }

    #[test]
    fn initial_values_default_to_zero() {
        let m = Memory::new();
        assert_eq!(m.read(Loc(3), Timestamp::ZERO), Some(Val(0)));
    }

    #[test]
    fn custom_initial_values() {
        let mut init = BTreeMap::new();
        init.insert(Loc(1), Val(5));
        let m = Memory::with_init(init);
        assert_eq!(m.read(Loc(1), Timestamp::ZERO), Some(Val(5)));
        assert_eq!(m.read(Loc(2), Timestamp::ZERO), Some(Val(0)));
    }

    #[test]
    fn push_assigns_sequential_timestamps() {
        let mut m = Memory::new();
        assert_eq!(m.push(Msg::new(Loc(0), Val(1), TId(0))), Timestamp(1));
        assert_eq!(m.push(Msg::new(Loc(0), Val(2), TId(1))), Timestamp(2));
        assert_eq!(m.max_timestamp(), Timestamp(2));
    }

    #[test]
    fn read_matches_paper_definition() {
        let m = mem_with(&[(0, 37, 0), (1, 42, 0)]);
        // read at the right location's timestamp gives its value
        assert_eq!(m.read(Loc(0), Timestamp(1)), Some(Val(37)));
        // read at a timestamp whose message is another location is none
        assert_eq!(m.read(Loc(0), Timestamp(2)), None);
        // timestamp 0 is the initial value
        assert_eq!(m.read(Loc(0), Timestamp::ZERO), Some(Val(0)));
        // out-of-range timestamps are none
        assert_eq!(m.read(Loc(0), Timestamp(9)), None);
    }

    #[test]
    fn latest_write_at_most_scans_backwards() {
        let m = mem_with(&[(0, 1, 0), (1, 2, 0), (0, 3, 0)]);
        assert_eq!(m.latest_write_at_most(Loc(0), Timestamp(3)), Timestamp(3));
        assert_eq!(m.latest_write_at_most(Loc(0), Timestamp(2)), Timestamp(1));
        assert_eq!(
            m.latest_write_at_most(Loc(1), Timestamp(1)),
            Timestamp::ZERO
        );
        assert_eq!(
            m.latest_write_at_most(Loc(9), Timestamp(3)),
            Timestamp::ZERO
        );
    }

    #[test]
    fn has_write_between_is_half_open_exclusive_low() {
        let m = mem_with(&[(0, 1, 0), (1, 2, 0), (0, 3, 0)]);
        assert!(m.has_write_between(Loc(0), Timestamp::ZERO, Timestamp(1)));
        assert!(!m.has_write_between(Loc(0), Timestamp(1), Timestamp(2)));
        assert!(m.has_write_between(Loc(0), Timestamp(1), Timestamp(3)));
        // hi beyond memory length is clamped
        assert!(m.has_write_between(Loc(0), Timestamp(1), Timestamp(99)));
    }

    #[test]
    fn atomic_allows_own_thread_interposition_only() {
        // Paper §A.2 example: c writes x=37 (ts1, T2), d writes x=51 (ts2, T2);
        // a successful store exclusive by T1 pairing with a read of ts1
        // cannot write at ts3 because T2's write interposes.
        let m = mem_with(&[(0, 37, 2), (0, 51, 2)]);
        assert!(!m.atomic(Loc(0), TId(1), Timestamp(1), Timestamp(3)));
        // But writing immediately after the read source is fine.
        assert!(m.atomic(Loc(0), TId(1), Timestamp(1), Timestamp(2)));
        // Interposing writes by the same thread are allowed.
        let m2 = mem_with(&[(0, 37, 2), (0, 51, 1)]);
        assert!(m2.atomic(Loc(0), TId(1), Timestamp(1), Timestamp(3)));
        // Different-location interposition is irrelevant.
        let m3 = mem_with(&[(0, 37, 2), (5, 51, 2)]);
        assert!(m3.atomic(Loc(0), TId(1), Timestamp(1), Timestamp(3)));
    }

    #[test]
    fn atomic_from_initial_read_requires_exclusivity_from_zero() {
        let m = mem_with(&[(0, 37, 2)]);
        // read from initial (ts 0), try to write at ts 2: T2's write at ts1
        // to the same location interposes.
        assert!(!m.atomic(Loc(0), TId(1), Timestamp::ZERO, Timestamp(2)));
        // but a write at ts1 directly succeeds
        let empty = Memory::new();
        assert!(empty.atomic(Loc(0), TId(1), Timestamp::ZERO, Timestamp(1)));
    }

    #[test]
    fn atomic_different_location_read_is_unconstrained() {
        // Load exclusive was to a *different* location: pairing allowed
        // regardless of interposing writes (the condition is vacuous).
        let m = mem_with(&[(1, 9, 2), (0, 37, 2)]);
        assert!(m.atomic(Loc(0), TId(1), Timestamp(1), Timestamp(3)));
    }

    #[test]
    fn final_value_is_last_write_or_initial() {
        let m = mem_with(&[(0, 1, 0), (0, 2, 0), (1, 5, 0)]);
        assert_eq!(m.final_value(Loc(0)), Val(2));
        assert_eq!(m.final_value(Loc(1)), Val(5));
        assert_eq!(m.final_value(Loc(7)), Val(0));
    }

    #[test]
    fn writes_to_filters_by_location() {
        let m = mem_with(&[(0, 1, 0), (1, 2, 0), (0, 3, 0)]);
        let ts: Vec<Timestamp> = m.writes_to(Loc(0)).collect();
        assert_eq!(ts, vec![Timestamp(1), Timestamp(3)]);
    }
}
