//! # Promising-ARM/RISC-V
//!
//! A Rust implementation of the operational concurrency model of
//! *"Promising-ARM/RISC-V: A Simpler and Faster Operational Concurrency
//! Model"* (Pulte, Pichon-Pharabod, Kang, Lee, Hur — PLDI 2019).
//!
//! The model computes the relaxed-memory behaviours of ARMv8 and RISC-V
//! assembly-like programs *incrementally* and *in program order*: memory is
//! a growing list of timestamped writes, loads may read "old" writes
//! subject to per-thread *views*, and early (out-of-order) writes are
//! modelled by *promises* validated by thread-local *certification*.
//!
//! ## Quick start
//!
//! ```
//! use promising_core::{CodeBuilder, Config, Expr, Machine, Program, Reg};
//! use promising_core::{TId, Timestamp, Transition, TransitionKind, Val};
//! use std::sync::Arc;
//!
//! // Message passing: P0: store x 37; dmb.sy; store y 42
//! //                  P1: r1 := load y; r2 := load x
//! let mut b = CodeBuilder::new();
//! let s1 = b.store(Expr::val(0), Expr::val(37));
//! let s2 = b.dmb_sy();
//! let s3 = b.store(Expr::val(1), Expr::val(42));
//! let p0 = b.finish_seq(&[s1, s2, s3]);
//!
//! let mut b = CodeBuilder::new();
//! let l1 = b.load(Reg(1), Expr::val(1));
//! let l2 = b.load(Reg(2), Expr::val(0));
//! let p1 = b.finish_seq(&[l1, l2]);
//!
//! let mut m = Machine::new(Arc::new(Program::new(vec![p0, p1])), Config::arm());
//! // Run the writer…
//! m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))?;
//! m.apply(&Transition::new(TId(0), TransitionKind::Internal))?;
//! m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))?;
//! // …then the reader may read y = 42 and still the *initial* x = 0:
//! m.apply(&Transition::new(TId(1), TransitionKind::Read { t: Timestamp(2) }))?;
//! m.apply(&Transition::new(TId(1), TransitionKind::Read { t: Timestamp::ZERO }))?;
//! assert_eq!(m.thread(TId(1)).state.regs.value(Reg(1)), Val(42));
//! assert_eq!(m.thread(TId(1)).state.regs.value(Reg(2)), Val(0));
//! # Ok::<(), promising_core::StepError>(())
//! ```
//!
//! Exhaustive and interactive exploration live in the companion
//! `promising-explorer` crate; the reference axiomatic model in
//! `promising-axiomatic`; the Flat baseline in `promising-flat`.

#![warn(missing_docs)]

pub mod arena;
pub mod certify;
pub mod config;
pub mod expr;
pub mod fingerprint;
pub mod footprint;
pub mod ids;
pub mod lex;
pub mod machine;
pub mod memory;
pub mod outcome;
pub mod parser;
pub mod pretty;
pub mod stmt;
pub mod thread;

pub use arena::{Arena, ArenaIx};
pub use certify::{
    find_and_certify, find_and_certify_with, find_promises_with, is_certified, CertMemo, CertResult,
};
pub use config::{Arch, Config, SharedLocs};
pub use expr::{Expr, Op};
pub use fingerprint::{
    Fingerprint, FpBuildHasher, FpHashMap, FpHasher, FpIdentityHasher, WordSink,
};
pub use footprint::{Footprint, LocSet};
pub use ids::{Loc, Reg, TId, Timestamp, Val, View};
pub use lex::{LocTable, Tokens};
pub use machine::{
    apply_step, enabled_steps, Cont, Machine, StateKey, StepError, StepEvent, ThreadInstance,
    Transition, TransitionKind,
};
pub use memory::{Memory, Msg};
pub use outcome::Outcome;
pub use parser::{parse_program, parse_thread, ParseError};
pub use stmt::{
    desugar_program_rmws, desugar_rmws, AccessSet, CodeBuilder, Fence, MayAccess, Program,
    ReadKind, RmwOp, Stmt, StmtId, ThreadCode, WriteKind,
};
pub use thread::{ExclBank, Forward, RegFile, StuckReason, ThreadState};
