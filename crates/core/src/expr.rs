//! Pure expressions of the calculus (Fig. 1) and their interpretation.
//!
//! The interpretation function `⟦e⟧m` (Fig. 5) returns a *value–view pair*
//! `v@ν`: constants have view 0, registers are looked up in the register
//! state, and an arithmetic expression's view is the join of its arguments'
//! views (rule r9). Views on registers are how the model tracks syntactic
//! dependencies.

use crate::ids::{Reg, Val, View};
use crate::thread::RegFile;
use std::fmt;

/// Binary arithmetic/comparison operators (`op ∈ O`, Fig. 1).
///
/// Comparison operators return `1` for true and `0` for false, which is the
/// boolean convention used by branches ([`Val::as_bool`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Equality test (1/0).
    Eq,
    /// Inequality test (1/0).
    Ne,
    /// Signed less-than (1/0).
    Lt,
    /// Signed less-or-equal (1/0).
    Le,
    /// Euclidean remainder (used by the circular-buffer workloads).
    Mod,
    /// Bitwise and (used by the `amo_and` desugaring).
    BitAnd,
    /// Bitwise or (used by the `amo_or` desugaring).
    BitOr,
    /// Bitwise xor (used by the `amo_xor` desugaring).
    BitXor,
    /// Signed maximum (used by the `amo_max` desugaring).
    Max,
}

impl Op {
    /// Apply the operator to two values (`v1 ⟦op⟧ v2`).
    pub fn apply(self, a: Val, b: Val) -> Val {
        match self {
            Op::Add => Val(a.0.wrapping_add(b.0)),
            Op::Sub => Val(a.0.wrapping_sub(b.0)),
            Op::Mul => Val(a.0.wrapping_mul(b.0)),
            Op::Eq => Val::from(a.0 == b.0),
            Op::Ne => Val::from(a.0 != b.0),
            Op::Lt => Val::from(a.0 < b.0),
            Op::Le => Val::from(a.0 <= b.0),
            Op::Mod => {
                if b.0 == 0 {
                    Val(0)
                } else {
                    Val(a.0.rem_euclid(b.0))
                }
            }
            Op::BitAnd => Val(a.0 & b.0),
            Op::BitOr => Val(a.0 | b.0),
            Op::BitXor => Val(a.0 ^ b.0),
            Op::Max => Val(a.0.max(b.0)),
        }
    }

    /// The concrete-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Eq => "==",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Mod => "%",
            Op::BitAnd => "&",
            Op::BitOr => "|",
            Op::BitXor => "^",
            Op::Max => "max",
        }
    }
}

/// A pure expression (`e ∈ Expr`, Fig. 1): a constant, a register, or a
/// binary operation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A constant value `v`.
    Const(Val),
    /// A register read `r`.
    Reg(Reg),
    /// A binary operation `(e1 op e2)`.
    Binop(Op, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A constant expression.
    pub fn val(v: impl Into<Val>) -> Expr {
        Expr::Const(v.into())
    }

    /// A register expression.
    pub fn reg(r: Reg) -> Expr {
        Expr::Reg(r)
    }

    /// Build a binary operation node.
    pub fn binop(op: Op, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on Expr values
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Add, self, rhs)
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Sub, self, rhs)
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Mul, self, rhs)
    }

    /// `self == rhs` (1/0).
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Eq, self, rhs)
    }

    /// `self != rhs` (1/0).
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Ne, self, rhs)
    }

    /// `self < rhs` (1/0).
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Lt, self, rhs)
    }

    /// `self <= rhs` (1/0).
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Le, self, rhs)
    }

    /// `self % rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::binop(Op::Mod, self, rhs)
    }

    /// The idiom `e + (r - r)`: value-preserving *artificial dependency* on
    /// `r`, used pervasively in litmus tests to create address/data
    /// dependencies (§4.1).
    pub fn with_dep(self, r: Reg) -> Expr {
        self.add(Expr::reg(r).sub(Expr::reg(r)))
    }

    /// The interpretation function `⟦e⟧m` of Fig. 5: evaluate to a
    /// value–view pair under register state `m`.
    pub fn eval(&self, m: &RegFile) -> (Val, View) {
        match self {
            Expr::Const(v) => (*v, View::ZERO),
            Expr::Reg(r) => m.get(*r),
            Expr::Binop(op, lhs, rhs) => {
                let (v1, n1) = lhs.eval(m);
                let (v2, n2) = rhs.eval(m);
                (op.apply(v1, v2), n1.join(n2))
            }
        }
    }

    /// All registers read by this expression, in first-occurrence order.
    pub fn registers(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.collect_registers(&mut out);
        out
    }

    fn collect_registers(&self, out: &mut Vec<Reg>) {
        match self {
            Expr::Const(_) => {}
            Expr::Reg(r) => {
                if !out.contains(r) {
                    out.push(*r);
                }
            }
            Expr::Binop(_, lhs, rhs) => {
                lhs.collect_registers(out);
                rhs.collect_registers(out);
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::val(v)
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Expr {
        Expr::reg(r)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Reg(r) => write!(f, "{r}"),
            Expr::Binop(op, lhs, rhs) => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Timestamp;

    fn regs_with(r: Reg, v: i64, view: u32) -> RegFile {
        let mut m = RegFile::default();
        m.set(r, Val(v), View(view));
        m
    }

    #[test]
    fn constants_have_view_zero() {
        let m = RegFile::default();
        assert_eq!(Expr::val(42).eval(&m), (Val(42), View::ZERO));
    }

    #[test]
    fn register_lookup_carries_view() {
        let m = regs_with(Reg(1), 7, 3);
        assert_eq!(Expr::reg(Reg(1)).eval(&m), (Val(7), View(3)));
    }

    #[test]
    fn unset_registers_read_zero_at_view_zero() {
        let m = RegFile::default();
        assert_eq!(Expr::reg(Reg(9)).eval(&m), (Val(0), View::ZERO));
    }

    #[test]
    fn binop_joins_views_r9() {
        let mut m = RegFile::default();
        m.set(Reg(0), Val(1), View(2));
        m.set(Reg(1), Val(2), View(5));
        let e = Expr::reg(Reg(0)).add(Expr::reg(Reg(1)));
        assert_eq!(e.eval(&m), (Val(3), View(5)));
    }

    #[test]
    fn artificial_dependency_preserves_value_but_not_view() {
        // e + (r - r): the classic litmus address-dependency idiom.
        let m = regs_with(Reg(2), 42, 9);
        let e = Expr::val(10).with_dep(Reg(2));
        assert_eq!(e.eval(&m), (Val(10), View(9)));
    }

    #[test]
    fn comparison_ops_return_bool_values() {
        let m = RegFile::default();
        assert_eq!(Expr::val(1).eq(Expr::val(1)).eval(&m).0, Val(1));
        assert_eq!(Expr::val(1).eq(Expr::val(2)).eval(&m).0, Val(0));
        assert_eq!(Expr::val(1).lt(Expr::val(2)).eval(&m).0, Val(1));
        assert_eq!(Expr::val(2).le(Expr::val(2)).eval(&m).0, Val(1));
        assert_eq!(Expr::val(3).ne(Expr::val(3)).eval(&m).0, Val(0));
    }

    #[test]
    fn mod_by_zero_is_zero_not_panic() {
        let m = RegFile::default();
        assert_eq!(Expr::val(5).rem(Expr::val(0)).eval(&m).0, Val(0));
    }

    #[test]
    fn registers_collects_unique_in_order() {
        let e = Expr::reg(Reg(3))
            .add(Expr::reg(Reg(1)))
            .add(Expr::reg(Reg(3)));
        assert_eq!(e.registers(), vec![Reg(3), Reg(1)]);
    }

    #[test]
    fn display_round_trips_symbols() {
        let e = Expr::reg(Reg(0)).add(Expr::val(1));
        assert_eq!(e.to_string(), "(r0 + 1)");
    }

    #[test]
    fn timestamp_view_conversion() {
        assert_eq!(Timestamp(4).view(), View(4));
    }
}
