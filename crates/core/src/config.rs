//! Model configuration: target architecture, loop/certification bounds,
//! and the shared-location optimisation of §7.

use crate::ids::Loc;
use std::collections::BTreeSet;

/// The architecture flag `a ∈ Arch ::= ARM | RISC-V` (Fig. 4).
///
/// The two architectures share all rules except the treatment of store
/// exclusives (§A.3): forwarding from exclusive writes, the success
/// register's view, and the pre-view contribution of the exclusives bank.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Arch {
    /// ARMv8 (AArch64).
    Arm,
    /// RISC-V (RVWMO).
    RiscV,
}

impl Arch {
    /// Short lowercase name ("arm" / "riscv").
    pub fn name(self) -> &'static str {
        match self {
            Arch::Arm => "arm",
            Arch::RiscV => "riscv",
        }
    }
}

/// Which locations are shared between threads (§7's optimisation): accesses
/// to non-shared locations are treated as register reads/writes, removing
/// them from the interleaving search.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum SharedLocs {
    /// Every location is potentially shared (the default, always sound).
    #[default]
    All,
    /// Only the listed locations are shared; the rest are thread-private.
    /// The *user* asserts privacy, exactly as in the paper's tool.
    Only(BTreeSet<Loc>),
}

impl SharedLocs {
    /// Is `loc` shared under this declaration?
    pub fn is_shared(&self, loc: Loc) -> bool {
        match self {
            SharedLocs::All => true,
            SharedLocs::Only(set) => set.contains(&loc),
        }
    }
}

/// Executable-model configuration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// Target architecture.
    pub arch: Arch,
    /// Maximum number of taken loop iterations per thread ("the executable
    /// model bounds loops", §3). A thread that would exceed the bound is
    /// marked stuck and its trace discarded from outcome enumeration.
    pub loop_fuel: u32,
    /// Maximum number of sequential steps explored per certification run
    /// (the *fuel* argument of §B's algorithm).
    pub cert_depth: u32,
    /// Shared-location declaration (§7 optimisation).
    pub shared: SharedLocs,
    /// Worker threads used by the exhaustive exploration engines. `1`
    /// (the default, overridable via the `PROMISING_WORKERS` environment
    /// variable) runs the serial fast path; higher values run the
    /// work-stealing parallel frontier with a sharded visited set; `0`
    /// means "use all available cores". The outcome set is identical for
    /// every value.
    pub workers: usize,
    /// Paranoid state deduplication: store the exact state next to its
    /// 128-bit fingerprint in every visited set and memo table, and
    /// panic if two distinct states ever collide. Slower; intended for
    /// tests validating the fingerprint layer.
    pub paranoid: bool,
    /// Partial-order reduction: prune provably redundant interleavings
    /// (persistent sets over transition footprints) from the exhaustive
    /// search. On by default; outcome sets are identical either way
    /// (`--no-por` in the table binaries is the escape hatch). See
    /// [`crate::footprint`].
    pub por: bool,
    /// Per-location dynamic layer on top of [`por`](Config::por):
    /// per-location append independence (with the flat model's canonical
    /// per-location state encoding), the generalized per-state
    /// persistent sets, and the restricted-memory certification memo
    /// key. On by default; only effective while `por` is on. `--no-dpor`
    /// in the table binaries falls back to the PR 5 whole-memory
    /// reduction. Outcome sets are identical either way.
    pub dpor: bool,
}

/// The default exploration worker count: `1` (the serial fast path)
/// unless the `PROMISING_WORKERS` environment variable overrides it.
/// The override exists so CI can run the whole test suite once with a
/// forced multi-worker frontier (work-stealing driver, sharded visited
/// set) without threading a flag through every call site; explicit
/// [`Config::with_workers`] calls still win.
fn default_workers() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PROMISING_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1)
    })
}

impl Config {
    /// Default ARM configuration.
    pub fn arm() -> Config {
        Config {
            arch: Arch::Arm,
            loop_fuel: 64,
            cert_depth: 10_000,
            shared: SharedLocs::All,
            workers: default_workers(),
            paranoid: false,
            por: true,
            dpor: true,
        }
    }

    /// Default RISC-V configuration.
    pub fn riscv() -> Config {
        Config {
            arch: Arch::RiscV,
            ..Config::arm()
        }
    }

    /// Configuration for the given architecture with defaults.
    pub fn for_arch(arch: Arch) -> Config {
        match arch {
            Arch::Arm => Config::arm(),
            Arch::RiscV => Config::riscv(),
        }
    }

    /// Set the loop bound.
    #[must_use]
    pub fn with_loop_fuel(mut self, fuel: u32) -> Config {
        self.loop_fuel = fuel;
        self
    }

    /// Set the certification step bound.
    #[must_use]
    pub fn with_cert_depth(mut self, depth: u32) -> Config {
        self.cert_depth = depth;
        self
    }

    /// Declare the set of shared locations (everything else thread-private).
    #[must_use]
    pub fn with_shared_locs(mut self, locs: impl IntoIterator<Item = Loc>) -> Config {
        self.shared = SharedLocs::Only(locs.into_iter().collect());
        self
    }

    /// Set the exploration worker count (`0` = use all available cores).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Config {
        self.workers = workers;
        self
    }

    /// Enable paranoid (collision-detecting) state deduplication.
    #[must_use]
    pub fn with_paranoid(mut self, paranoid: bool) -> Config {
        self.paranoid = paranoid;
        self
    }

    /// Enable or disable partial-order reduction (on by default).
    #[must_use]
    pub fn with_por(mut self, por: bool) -> Config {
        self.por = por;
        self
    }

    /// Enable or disable the per-location dynamic POR layer (on by
    /// default; only effective while [`por`](Config::por) is on).
    #[must_use]
    pub fn with_dpor(mut self, dpor: bool) -> Config {
        self.dpor = dpor;
        self
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::arm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_locations_shared_by_default() {
        let c = Config::arm();
        assert!(c.shared.is_shared(Loc(0)));
        assert!(c.shared.is_shared(Loc(999)));
    }

    #[test]
    fn only_listed_locations_are_shared() {
        let c = Config::arm().with_shared_locs([Loc(1), Loc(2)]);
        assert!(c.shared.is_shared(Loc(1)));
        assert!(!c.shared.is_shared(Loc(3)));
    }

    #[test]
    fn arch_names() {
        assert_eq!(Arch::Arm.name(), "arm");
        assert_eq!(Arch::RiscV.name(), "riscv");
    }
}
