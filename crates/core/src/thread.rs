//! Thread states (`TState`, Fig. 2/4) and their view bookkeeping.
//!
//! A thread state holds the promise set, the register file (values *with
//! views*, rule r8), the per-location coherence view (r11), the six scalar
//! views (`vrOld`, `vwOld`, `vrNew`, `vwNew`, `vCAP`, `vRel`), the forward
//! bank (r13) and the exclusives bank (ρ8). All collections are ordered
//! (`BTreeMap`/`BTreeSet`) so states hash and compare deterministically for
//! state-space deduplication.

use crate::config::Arch;
use crate::fingerprint::FpHasher;
use crate::ids::{Loc, Reg, Timestamp, Val, View};
use crate::stmt::ReadKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// The register state `regs : Reg → Val × V` (r8): every register holds a
/// value and the view that was required to produce it.
///
/// The map is behind an [`Arc`] with copy-on-write mutation: cloning a
/// thread state (once per explored transition) is a reference-count
/// bump, and [`RegFile::set`] copies the map only when it is shared.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RegFile {
    regs: Arc<BTreeMap<Reg, (Val, View)>>,
}

impl RegFile {
    /// Empty register file: every register reads `0@0`.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Current value and view of `r` (registers start as `0@0`).
    pub fn get(&self, r: Reg) -> (Val, View) {
        self.regs.get(&r).copied().unwrap_or((Val(0), View::ZERO))
    }

    /// Value of `r`, discarding the view.
    pub fn value(&self, r: Reg) -> Val {
        self.get(r).0
    }

    /// Write `v@view` to `r` (r9). Copy-on-write.
    pub fn set(&mut self, r: Reg, v: Val, view: View) {
        Arc::make_mut(&mut self.regs).insert(r, (v, view));
    }

    /// Iterate over explicitly-written registers.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, Val, View)> + '_ {
        self.regs.iter().map(|(&r, &(v, n))| (r, v, n))
    }
}

/// A forward-bank entry (r13): information about the thread's last
/// propagated write to a location, enabling store forwarding (r16).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Forward {
    /// Timestamp of the write (`time`).
    pub time: Timestamp,
    /// Join of the views of the store's address and data inputs (`view`).
    pub view: View,
    /// Whether the write was exclusive (`xcl`, ρ13).
    pub exclusive: bool,
}

impl Default for Forward {
    /// The initial entry `⟨time = 0, view = 0, xcl = false⟩` (r15).
    fn default() -> Forward {
        Forward {
            time: Timestamp::ZERO,
            view: View::ZERO,
            exclusive: false,
        }
    }
}

/// The exclusives bank `xclb` (ρ8): timestamp and post-view of the last
/// load exclusive, while no store exclusive has intervened.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ExclBank {
    /// Timestamp the load exclusive read from.
    pub time: Timestamp,
    /// The load exclusive's post-view.
    pub view: View,
}

/// Why a thread can no longer take steps (outside normal termination).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StuckReason {
    /// The loop bound ([`crate::config::Config::loop_fuel`]) was exhausted;
    /// the executable model bounds loops, so this trace is not a complete
    /// execution and is discarded from outcome enumeration.
    LoopBoundExceeded,
}

/// A thread state (`ts ∈ TState`, Fig. 4).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ThreadState {
    /// Outstanding promises: timestamps of promised-but-unfulfilled writes
    /// (r17).
    pub prom: BTreeSet<Timestamp>,
    /// Register file with views (r8).
    pub regs: RegFile,
    /// Per-location coherence view (r11); defaults to 0. Copy-on-write.
    coh: Arc<BTreeMap<Loc, View>>,
    /// Maximal post-view of all loads executed so far (r5).
    pub vr_old: View,
    /// Maximal post-view of all stores executed so far (r5).
    pub vw_old: View,
    /// Lower bound contributed to the pre-view of future loads (r6).
    pub vr_new: View,
    /// Lower bound contributed to the pre-view of future stores (r6).
    pub vw_new: View,
    /// Control/address-po dependency view (r21).
    pub v_cap: View,
    /// Maximal post-view of strong releases executed so far (ρ3).
    pub v_rel: View,
    /// Forward bank (r13); defaults to the initial entry. Copy-on-write.
    fwdb: Arc<BTreeMap<Loc, Forward>>,
    /// Exclusives bank (ρ8).
    pub xclb: Option<ExclBank>,
    /// Remaining taken-loop-iteration budget.
    pub fuel: u32,
    /// Thread-private memory for non-shared locations (§7 optimisation):
    /// value and view of the last private write per location.
    /// Copy-on-write.
    local: Arc<BTreeMap<Loc, (Val, View)>>,
    /// Set when the thread ran out of loop fuel.
    pub stuck: Option<StuckReason>,
}

impl ThreadState {
    /// Initial thread state with the given loop budget: all views 0, no
    /// promises, empty banks.
    pub fn new(fuel: u32) -> ThreadState {
        ThreadState {
            prom: BTreeSet::new(),
            regs: RegFile::new(),
            coh: Arc::new(BTreeMap::new()),
            vr_old: View::ZERO,
            vw_old: View::ZERO,
            vr_new: View::ZERO,
            vw_new: View::ZERO,
            v_cap: View::ZERO,
            v_rel: View::ZERO,
            fwdb: Arc::new(BTreeMap::new()),
            xclb: None,
            fuel,
            local: Arc::new(BTreeMap::new()),
            stuck: None,
        }
    }

    /// The coherence view `coh(l)` (r11), defaulting to 0.
    pub fn coh(&self, l: Loc) -> View {
        self.coh.get(&l).copied().unwrap_or(View::ZERO)
    }

    /// Join `v` into `coh(l)`. Copy-on-write.
    pub fn bump_coh(&mut self, l: Loc, v: View) {
        let coh = Arc::make_mut(&mut self.coh);
        let e = coh.entry(l).or_insert(View::ZERO);
        *e = e.join(v);
    }

    /// The forward-bank entry `fwdb(l)` (r13), defaulting to the initial
    /// entry (r15).
    pub fn fwd(&self, l: Loc) -> Forward {
        self.fwdb.get(&l).copied().unwrap_or_default()
    }

    /// Overwrite the forward-bank entry for `l` (r14). Copy-on-write.
    pub fn set_fwd(&mut self, l: Loc, f: Forward) {
        Arc::make_mut(&mut self.fwdb).insert(l, f);
    }

    /// The thread-private value and view of non-shared location `l`, if
    /// the thread has written it (§7 optimisation).
    pub fn local(&self, l: Loc) -> Option<(Val, View)> {
        self.local.get(&l).copied()
    }

    /// Write to thread-private (non-shared) location `l`. Copy-on-write.
    pub fn set_local(&mut self, l: Loc, v: Val, view: View) {
        Arc::make_mut(&mut self.local).insert(l, (v, view));
    }

    /// Iterate over the thread-private memory entries.
    pub fn local_entries(&self) -> impl Iterator<Item = (Loc, Val, View)> + '_ {
        self.local.iter().map(|(&l, &(v, n))| (l, v, n))
    }

    /// The `read-view(a, rk, f, t)` function of Fig. 5: when a load reads
    /// the thread's own last write to the location (`f.time = t`), it can
    /// acquire the (typically smaller) forward view instead of the write's
    /// timestamp — unless the forwarded write was exclusive and the
    /// architecture/read-kind combination forbids it (ρ13): forwarding from
    /// an exclusive write is only permitted for *plain* loads on *ARM*.
    pub fn read_view(&self, arch: Arch, rk: ReadKind, l: Loc, t: Timestamp) -> View {
        let f = self.fwd(l);
        let fwd_allowed = !f.exclusive || (arch == Arch::Arm && rk == ReadKind::Plain);
        if f.time == t && !t.is_initial() && fwd_allowed {
            f.view
        } else {
            t.view()
        }
    }

    /// Whether the thread has unfulfilled promises.
    pub fn has_promises(&self) -> bool {
        !self.prom.is_empty()
    }

    /// Iterate over the explicit coherence entries.
    pub fn coh_entries(&self) -> impl Iterator<Item = (Loc, View)> + '_ {
        self.coh.iter().map(|(&l, &v)| (l, v))
    }

    /// Fold the full thread state into a state fingerprint. All maps are
    /// ordered (`BTreeMap`/`BTreeSet`), so the encoding is canonical.
    pub fn feed(&self, h: &mut FpHasher) {
        h.write_len(self.prom.len());
        for t in &self.prom {
            h.write_u32(t.0);
        }
        h.write_len(self.regs.regs.len());
        for (r, (v, n)) in self.regs.regs.iter() {
            h.write_u32(r.0);
            h.write_i64(v.0);
            h.write_u32(n.0);
        }
        h.write_len(self.coh.len());
        for (l, v) in self.coh.iter() {
            h.write_u64(l.0);
            h.write_u32(v.0);
        }
        h.write_u32(self.vr_old.0);
        h.write_u32(self.vw_old.0);
        h.write_u32(self.vr_new.0);
        h.write_u32(self.vw_new.0);
        h.write_u32(self.v_cap.0);
        h.write_u32(self.v_rel.0);
        h.write_len(self.fwdb.len());
        for (l, f) in self.fwdb.iter() {
            h.write_u64(l.0);
            h.write_u32(f.time.0);
            h.write_u32(f.view.0);
            h.write_bool(f.exclusive);
        }
        match &self.xclb {
            None => h.write_bool(false),
            Some(x) => {
                h.write_bool(true);
                h.write_u32(x.time.0);
                h.write_u32(x.view.0);
            }
        }
        h.write_u32(self.fuel);
        h.write_len(self.local.len());
        for (l, (v, n)) in self.local.iter() {
            h.write_u64(l.0);
            h.write_i64(v.0);
            h.write_u32(n.0);
        }
        h.write_bool(self.stuck.is_some());
    }

    /// Force private copies of all shared structure (see
    /// [`crate::machine::Machine::deep_clone`]).
    #[doc(hidden)]
    pub fn unshare(&mut self) {
        Arc::make_mut(&mut self.regs.regs);
        Arc::make_mut(&mut self.coh);
        Arc::make_mut(&mut self.fwdb);
        Arc::make_mut(&mut self.local);
    }
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<prom={:?} vrOld={} vwOld={} vrNew={} vwNew={} vCAP={} vRel={}",
            self.prom.iter().map(|t| t.0).collect::<Vec<_>>(),
            self.vr_old,
            self.vw_old,
            self.vr_new,
            self.vw_new,
            self.v_cap,
            self.v_rel
        )?;
        if let Some(x) = &self.xclb {
            write!(f, " xclb=({},{})", x.time, x.view)?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_has_zero_views_and_no_promises() {
        let ts = ThreadState::new(10);
        assert_eq!(ts.vr_old, View::ZERO);
        assert_eq!(ts.coh(Loc(5)), View::ZERO);
        assert!(!ts.has_promises());
        assert_eq!(ts.fwd(Loc(1)), Forward::default());
        assert!(ts.xclb.is_none());
    }

    #[test]
    fn bump_coh_joins() {
        let mut ts = ThreadState::new(10);
        ts.bump_coh(Loc(1), View(3));
        ts.bump_coh(Loc(1), View(2));
        assert_eq!(ts.coh(Loc(1)), View(3));
    }

    #[test]
    fn read_view_uses_forward_view_on_hit() {
        let mut ts = ThreadState::new(10);
        ts.set_fwd(
            Loc(1),
            Forward {
                time: Timestamp(3),
                view: View(1),
                exclusive: false,
            },
        );
        // forwarding hit: gets the smaller forward view
        assert_eq!(
            ts.read_view(Arch::Arm, ReadKind::Plain, Loc(1), Timestamp(3)),
            View(1)
        );
        // miss: gets the message timestamp
        assert_eq!(
            ts.read_view(Arch::Arm, ReadKind::Plain, Loc(1), Timestamp(2)),
            View(2)
        );
    }

    #[test]
    fn exclusive_forwarding_restricted_by_arch_and_kind() {
        let mut ts = ThreadState::new(10);
        ts.set_fwd(
            Loc(1),
            Forward {
                time: Timestamp(3),
                view: View(0),
                exclusive: true,
            },
        );
        // ARM plain load may forward from an exclusive write
        assert_eq!(
            ts.read_view(Arch::Arm, ReadKind::Plain, Loc(1), Timestamp(3)),
            View(0)
        );
        // ARM acquire load may not (ρ13)
        assert_eq!(
            ts.read_view(Arch::Arm, ReadKind::Acquire, Loc(1), Timestamp(3)),
            View(3)
        );
        // RISC-V loads may never forward from exclusives
        assert_eq!(
            ts.read_view(Arch::RiscV, ReadKind::Plain, Loc(1), Timestamp(3)),
            View(3)
        );
    }

    #[test]
    fn read_view_never_forwards_the_initial_write() {
        // The default forward-bank entry has time = 0; a load reading the
        // initial write (t = 0) must get view 0 via the timestamp path,
        // not via a bogus "forward hit" on the default entry.
        let ts = ThreadState::new(10);
        assert_eq!(
            ts.read_view(Arch::Arm, ReadKind::Plain, Loc(1), Timestamp::ZERO),
            View::ZERO
        );
    }

    #[test]
    fn registers_default_to_zero_at_view_zero() {
        let rf = RegFile::new();
        assert_eq!(rf.get(Reg(7)), (Val(0), View::ZERO));
    }
}
