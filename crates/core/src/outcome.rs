//! Final-state outcomes of exhaustive exploration.

use crate::ids::{Loc, Reg, Val};
use crate::machine::Machine;
use crate::stmt::SCRATCH_REG_BASE;
use std::collections::BTreeMap;
use std::fmt;

/// The observable final state of one complete execution: per-thread
/// register valuations (user registers only — the scratch success bits of
/// plain stores are hidden) and the coherence-final value of every
/// location.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Outcome {
    /// Final register values per thread (thread-id order).
    pub regs: Vec<BTreeMap<Reg, Val>>,
    /// Final (coherence-last) value per location.
    pub memory: BTreeMap<Loc, Val>,
}

impl Outcome {
    /// Extract the outcome of a terminated machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine has not terminated (incomplete executions have
    /// no outcome).
    pub fn of_machine(machine: &Machine) -> Outcome {
        assert!(
            machine.terminated(),
            "outcomes exist only for terminated machines"
        );
        let regs = machine
            .threads()
            .iter()
            .map(|t| {
                t.state
                    .regs
                    .iter()
                    .filter(|(r, _, _)| r.0 < SCRATCH_REG_BASE)
                    .map(|(r, v, _)| (r, v))
                    .collect()
            })
            .collect();
        let memory = machine
            .memory()
            .locations()
            .into_iter()
            .map(|l| (l, machine.memory().final_value(l)))
            .collect();
        Outcome { regs, memory }
    }

    /// The final value of thread `tid`'s register `r` (0 if never written).
    pub fn reg(&self, tid: usize, r: Reg) -> Val {
        self.regs
            .get(tid)
            .and_then(|m| m.get(&r).copied())
            .unwrap_or(Val(0))
    }

    /// The final value of `loc` (0 if never written or initialised).
    pub fn loc(&self, loc: Loc) -> Val {
        self.memory.get(&loc).copied().unwrap_or(Val(0))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (tid, regs) in self.regs.iter().enumerate() {
            for (r, v) in regs {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "P{tid}:{r}={v};")?;
                first = false;
            }
        }
        for (l, v) in &self.memory {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{l}={v};")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_and_loc_default_to_zero() {
        let o = Outcome {
            regs: vec![BTreeMap::new()],
            memory: BTreeMap::new(),
        };
        assert_eq!(o.reg(0, Reg(1)), Val(0));
        assert_eq!(o.reg(7, Reg(1)), Val(0));
        assert_eq!(o.loc(Loc(3)), Val(0));
    }

    #[test]
    fn display_is_stable_and_nonempty() {
        let mut regs = BTreeMap::new();
        regs.insert(Reg(1), Val(42));
        let mut memory = BTreeMap::new();
        memory.insert(Loc(0), Val(1));
        let o = Outcome {
            regs: vec![regs],
            memory,
        };
        assert_eq!(o.to_string(), "P0:r1=42; x0=1;");
        let empty = Outcome {
            regs: vec![],
            memory: BTreeMap::new(),
        };
        assert_eq!(empty.to_string(), "(empty)");
    }
}
