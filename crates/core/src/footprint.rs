//! Transition footprints for partial-order reduction.
//!
//! A [`Footprint`] abstracts what one transition touches: the acting
//! thread, the shared locations it reads and writes, the locations at
//! which it *appends* fresh messages to memory, whether it is
//! *certification-coupled* (a promise, or any step of a thread holding
//! promises: such steps are filtered through certification), and whether
//! it is a view *fence*. Footprints drive the default
//! [`independent`](Footprint::independent_with) relation of the
//! exploration engine's `SearchModel` trait.
//!
//! Two append relations are offered. The strict one
//! ([`independent_with`](Footprint::independent_with)) keeps *any* two
//! appends dependent: in the promising machine, memory is a single total
//! order of messages and views are scalar timestamps into it, so the
//! relative order of two appends — even to different locations — is
//! observable (a view covering one message covers everything below it).
//! The per-location one
//! ([`independent_with_commuting_appends`](Footprint::independent_with_commuting_appends))
//! lets appends to *disjoint* location sets commute; it is sound only
//! for models whose states are identified up to per-location message
//! order (the flat model under its canonical per-location state
//! encoding — see `promising-flat`).
//!
//! Certification coupling is refined by an optional *certification
//! scope* ([`Footprint::cert_scope`]): when the certifying thread's
//! continuation can only ever access a known location set, appends
//! outside that set cannot change any certification verdict (they land
//! above every view and every in-scope message), so the coupled step and
//! the append are independent even under the strict relation.
//!
//! The relations are deliberately conservative: returning `true`
//! guarantees the two transitions are independent in the classical
//! sense — co-enabled in some state, they commute (executing them in
//! either order reaches the same state, up to the model's state
//! identification) and neither enables or disables the other. `false`
//! makes no claim. Same-thread transitions are always dependent (they
//! compete for the same program point), and an unknown agent
//! ([`Footprint::opaque`]) is dependent with everything.

use crate::ids::Loc;

/// A small set of locations, bitmask-backed: locations `0..64` live in
/// one machine word (set intersection is on the hot path of per-location
/// independence), anything above spills into a side vector. Litmus tests
/// and the workload suites use a handful of locations; the spill path is
/// the conservative fallback for programs with more than 64.
///
/// The spill vector is kept **sorted**, so the derived `PartialEq`/`Eq`
/// are set-semantic: two sets holding the same locations compare equal
/// regardless of insertion order. (An insertion-ordered spill would make
/// equality order-sensitive exactly for programs with more than 64
/// locations — the real-code workloads of the closure harness.)
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LocSet {
    bits: u64,
    spill: Vec<Loc>,
}

/// Width of the bitmask fast path: locations `0..SPILL_AT` are bits,
/// the rest spill.
const SPILL_AT: u64 = 64;

impl LocSet {
    /// The empty set.
    pub fn new() -> LocSet {
        LocSet::default()
    }

    /// A singleton set.
    pub fn of(loc: Loc) -> LocSet {
        let mut s = LocSet::new();
        s.insert(loc);
        s
    }

    /// Add a location.
    pub fn insert(&mut self, loc: Loc) {
        if loc.0 < SPILL_AT {
            self.bits |= 1 << loc.0;
        } else if let Err(at) = self.spill.binary_search(&loc) {
            self.spill.insert(at, loc);
        }
    }

    /// Whether `loc` is in the set.
    pub fn contains(&self, loc: Loc) -> bool {
        if loc.0 < SPILL_AT {
            self.bits & (1 << loc.0) != 0
        } else {
            self.spill.binary_search(&loc).is_ok()
        }
    }

    /// Whether the sets share a location.
    pub fn intersects(&self, other: &LocSet) -> bool {
        self.bits & other.bits != 0 || self.spill.iter().any(|l| other.spill.contains(l))
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0 && self.spill.is_empty()
    }

    /// Iterate over the locations in ascending order (bitmask part
    /// first, then the sorted spill).
    pub fn iter(&self) -> impl Iterator<Item = Loc> + '_ {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u64;
            bits &= bits - 1;
            Some(Loc(i))
        })
        .chain(self.spill.iter().copied())
    }
}

impl FromIterator<Loc> for LocSet {
    fn from_iter<I: IntoIterator<Item = Loc>>(iter: I) -> LocSet {
        let mut s = LocSet::new();
        for loc in iter {
            s.insert(loc);
        }
        s
    }
}

/// What one transition touches — see the module docs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// The acting thread (`None`: unknown — dependent with everything).
    pub agent: Option<usize>,
    /// Shared locations read from memory.
    pub reads: LocSet,
    /// Shared locations whose memory content the step writes.
    pub writes: LocSet,
    /// Locations at which the step appends fresh messages to memory
    /// (normal writes, RMW normal writes, promises). Always a subset of
    /// `writes`. Under the strict relation any two appends conflict
    /// regardless of location; the per-location relation conflicts them
    /// only when these sets intersect.
    pub appends: LocSet,
    /// Whether the step is certification-coupled: a promise, or any step
    /// of a thread that currently holds promises (r24 filters those
    /// through certification, which reads memory).
    pub promise: bool,
    /// When the step is certification-coupled and the certifying
    /// thread's continuation can only access a known location set, that
    /// set (reads ∪ writes of every remaining statement): appends
    /// outside it cannot change any certification verdict. `None` means
    /// unknown scope — couple with every append (today's conservative
    /// behaviour).
    pub cert_scope: Option<LocSet>,
    /// Whether the step is a view fence (thread-local; informational).
    pub fence: bool,
}

impl Footprint {
    /// The maximally conservative footprint: unknown agent, dependent
    /// with every other transition. The engine's default for models that
    /// do not override the footprint hook.
    pub fn opaque() -> Footprint {
        Footprint {
            agent: None,
            reads: LocSet::new(),
            writes: LocSet::new(),
            appends: LocSet::new(),
            promise: true,
            cert_scope: None,
            fence: false,
        }
    }

    /// A purely thread-local step of `agent` (register ops, branches,
    /// fences, exclusive-failures): no memory interaction at all.
    pub fn local(agent: usize) -> Footprint {
        Footprint {
            agent: Some(agent),
            reads: LocSet::new(),
            writes: LocSet::new(),
            appends: LocSet::new(),
            promise: false,
            cert_scope: None,
            fence: false,
        }
    }

    /// A read of `loc` by `agent`.
    pub fn read(agent: usize, loc: Loc) -> Footprint {
        Footprint {
            reads: LocSet::of(loc),
            ..Footprint::local(agent)
        }
    }

    /// A write of `loc` by `agent`; `appends` says whether it appends a
    /// fresh message (as opposed to fulfilling one already in memory).
    pub fn write(agent: usize, loc: Loc, appends: bool) -> Footprint {
        Footprint {
            writes: LocSet::of(loc),
            appends: if appends {
                LocSet::of(loc)
            } else {
                LocSet::new()
            },
            ..Footprint::local(agent)
        }
    }

    /// Mark the step certification-coupled (see the field docs).
    #[must_use]
    pub fn with_promise(mut self) -> Footprint {
        self.promise = true;
        self
    }

    /// Record the certifying thread's access scope (see the field docs).
    /// Only meaningful on certification-coupled footprints.
    #[must_use]
    pub fn with_cert_scope(mut self, scope: Option<LocSet>) -> Footprint {
        self.cert_scope = scope;
        self
    }

    /// Mark the step a view fence.
    #[must_use]
    pub fn with_fence(mut self) -> Footprint {
        self.fence = true;
        self
    }

    /// The strict independence relation: wherever both transitions are
    /// enabled they commute *state-identically*, and neither enables or
    /// disables the other. Any two appends conflict (global message
    /// order is observable through scalar views in the promising
    /// machine). Conservative — `false` makes no claim.
    pub fn independent_with(&self, other: &Footprint) -> bool {
        self.independent(other, false)
    }

    /// The per-location independence relation: appends conflict only
    /// when their location sets intersect. Sound only for models whose
    /// state identification quotients out the relative order of
    /// different-location messages (the flat model's canonical
    /// per-location encoding); under it, disjoint-location appends
    /// commute to the *same canonical state*.
    pub fn independent_with_commuting_appends(&self, other: &Footprint) -> bool {
        self.independent(other, true)
    }

    fn independent(&self, other: &Footprint, per_loc_appends: bool) -> bool {
        let (Some(a), Some(b)) = (self.agent, other.agent) else {
            return false;
        };
        if a == b {
            // same program point: alternative branches, never independent
            return false;
        }
        let both_append = !self.appends.is_empty() && !other.appends.is_empty();
        if !per_loc_appends && both_append {
            // strict mode: memory is a total order, appends never commute
            return false;
        }
        // r24: a certification-coupled step can be enabled or disabled by
        // an append into the certifying thread's access scope (an append
        // outside it lands above every view and every in-scope message,
        // so no certification verdict can change; unknown scope couples
        // with everything)
        let couples = |coupled: &Footprint, appender: &Footprint| {
            coupled.promise
                && !appender.appends.is_empty()
                && match &coupled.cert_scope {
                    None => true,
                    Some(scope) => scope.intersects(&appender.appends),
                }
        };
        if couples(self, other) || couples(other, self) {
            return false;
        }
        // location conflicts: a write races every same-location access
        // (same-location appends are caught here too: appends ⊆ writes)
        if self.writes.intersects(&other.reads)
            || self.writes.intersects(&other.writes)
            || other.writes.intersects(&self.reads)
        {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locset_basics() {
        let mut s = LocSet::of(Loc(1));
        s.insert(Loc(2));
        s.insert(Loc(1));
        assert!(s.contains(Loc(1)) && s.contains(Loc(2)) && !s.contains(Loc(3)));
        assert!(s.intersects(&LocSet::of(Loc(2))));
        assert!(!s.intersects(&LocSet::of(Loc(3))));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn locset_spill_boundary() {
        // Loc(63) is the last bitmask slot, Loc(64) the first spilled
        // one: membership, intersection, iteration, and idempotent
        // insertion must behave identically across the boundary.
        let mut s = LocSet::of(Loc(63));
        s.insert(Loc(64));
        s.insert(Loc(64));
        s.insert(Loc(1000));
        assert!(s.contains(Loc(63)) && s.contains(Loc(64)) && s.contains(Loc(1000)));
        assert!(!s.contains(Loc(62)) && !s.contains(Loc(65)));
        assert_eq!(s.iter().count(), 3);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![Loc(63), Loc(64), Loc(1000)]
        );
        // intersection across the representations
        assert!(s.intersects(&LocSet::of(Loc(64))));
        assert!(s.intersects(&LocSet::of(Loc(63))));
        assert!(!s.intersects(&LocSet::of(Loc(65))));
        assert!(!LocSet::of(Loc(64)).intersects(&LocSet::of(Loc(65))));
        assert!(LocSet::of(Loc(1000)).intersects(&s));
        assert!(!s.is_empty() && LocSet::new().is_empty());
    }

    #[test]
    fn locset_spill_equality_is_insertion_order_independent() {
        // regression: with an insertion-ordered spill vector the derived
        // PartialEq compared [Loc(70), Loc(80)] ≠ [Loc(80), Loc(70)]
        let mut a = LocSet::new();
        a.insert(Loc(70));
        a.insert(Loc(80));
        let mut b = LocSet::new();
        b.insert(Loc(80));
        b.insert(Loc(70));
        assert_eq!(a, b);
        // and across the bitmask boundary, mixed with duplicates
        let fwd: LocSet = [Loc(3), Loc(64), Loc(200), Loc(100)].into_iter().collect();
        let rev: LocSet = [Loc(100), Loc(200), Loc(200), Loc(64), Loc(3)]
            .into_iter()
            .collect();
        assert_eq!(fwd, rev);
        assert_ne!(fwd, LocSet::of(Loc(3)));
        // iteration is ascending regardless of insertion order
        assert_eq!(
            rev.iter().collect::<Vec<_>>(),
            vec![Loc(3), Loc(64), Loc(100), Loc(200)]
        );
    }

    #[test]
    fn locset_spill_equality_proptest_over_many_locations() {
        use proptest::{collection, Strategy, TestRng};
        // >64 locations so the spill path is exercised: insert a random
        // multiset in two different orders (forward and a deterministic
        // shuffle) and require set-semantic equality plus membership and
        // intersection agreement with a BTreeSet reference model.
        let mut rng = TestRng::new(0xF00D_F00D);
        let strat = collection::vec(0u64..160, 65..140);
        for _ in 0..64 {
            let locs: Vec<u64> = strat.sample(&mut rng);
            let fwd: LocSet = locs.iter().map(|&l| Loc(l)).collect();
            let mut shuffled = locs.clone();
            // Fisher–Yates with the proptest rng
            for i in (1..shuffled.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                shuffled.swap(i, j);
            }
            let bwd: LocSet = shuffled.iter().map(|&l| Loc(l)).collect();
            assert_eq!(fwd, bwd, "insertion order leaked into equality");
            let reference: std::collections::BTreeSet<u64> = locs.iter().copied().collect();
            for l in 0..170 {
                assert_eq!(fwd.contains(Loc(l)), reference.contains(&l));
            }
            assert_eq!(fwd.iter().count(), reference.len());
            assert!(fwd.intersects(&bwd) || reference.is_empty());
        }
    }

    #[test]
    fn locset_from_iter() {
        let s: LocSet = [Loc(2), Loc(70), Loc(2)].into_iter().collect();
        assert_eq!(s.iter().count(), 2);
        assert!(s.contains(Loc(2)) && s.contains(Loc(70)));
    }

    #[test]
    fn opaque_is_dependent_with_everything() {
        let o = Footprint::opaque();
        assert!(!o.independent_with(&Footprint::local(1)));
        assert!(!Footprint::local(1).independent_with(&o));
        assert!(!o.independent_with_commuting_appends(&Footprint::local(1)));
    }

    #[test]
    fn same_agent_is_dependent() {
        let a = Footprint::read(0, Loc(1));
        let b = Footprint::read(0, Loc(2));
        assert!(!a.independent_with(&b));
        assert!(!a.independent_with_commuting_appends(&b));
    }

    #[test]
    fn cross_thread_reads_are_independent() {
        let a = Footprint::read(0, Loc(1));
        let b = Footprint::read(1, Loc(1));
        assert!(a.independent_with(&b));
        assert!(b.independent_with(&a));
    }

    #[test]
    fn appends_conflict_even_across_locations_in_strict_mode() {
        let a = Footprint::write(0, Loc(1), true);
        let b = Footprint::write(1, Loc(2), true);
        assert!(!a.independent_with(&b));
        // …while the per-location relation commutes them
        assert!(a.independent_with_commuting_appends(&b));
        assert!(b.independent_with_commuting_appends(&a));
    }

    #[test]
    fn same_location_appends_conflict_in_both_modes() {
        let a = Footprint::write(0, Loc(1), true);
        let b = Footprint::write(1, Loc(1), true);
        assert!(!a.independent_with(&b));
        assert!(!a.independent_with_commuting_appends(&b));
    }

    #[test]
    fn write_conflicts_with_same_location_read() {
        let w = Footprint::write(0, Loc(1), true);
        let r = Footprint::read(1, Loc(1));
        assert!(!w.independent_with(&r));
        assert!(!r.independent_with(&w));
        assert!(!w.independent_with_commuting_appends(&r));
        let r2 = Footprint::read(1, Loc(2));
        assert!(w.independent_with(&r2));
    }

    #[test]
    fn promise_coupling_blocks_appends() {
        let fulfil = Footprint::write(0, Loc(1), false).with_promise();
        let append = Footprint::write(1, Loc(2), true);
        assert!(!fulfil.independent_with(&append));
        // …but not local steps of other threads
        assert!(fulfil.independent_with(&Footprint::local(1)));
    }

    #[test]
    fn cert_scope_releases_out_of_scope_appends() {
        // A coupled step whose certification can only touch {1, 3} is
        // independent of an append at 2 — the append lands above every
        // in-scope message — but still couples with an append at 3.
        let scope: LocSet = [Loc(1), Loc(3)].into_iter().collect();
        let fulfil = Footprint::write(0, Loc(1), false)
            .with_promise()
            .with_cert_scope(Some(scope));
        let out = Footprint::write(1, Loc(2), true);
        let into = Footprint::write(1, Loc(3), true);
        assert!(fulfil.independent_with(&out));
        assert!(out.independent_with(&fulfil));
        assert!(!fulfil.independent_with(&into));
        // unknown scope keeps today's conservative coupling
        let unknown = Footprint::write(0, Loc(1), false).with_promise();
        assert!(!unknown.independent_with(&out));
    }
}
