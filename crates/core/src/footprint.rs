//! Transition footprints for partial-order reduction.
//!
//! A [`Footprint`] abstracts what one transition touches: the acting
//! thread, the shared locations it reads and writes, and three flags —
//! whether it *appends* a message to memory (memory is a total order of
//! messages, so any two appends conflict), whether it is
//! *certification-coupled* (a promise, or any step of a thread holding
//! promises: such steps are filtered through certification, which reads
//! the whole memory, so any append can enable or disable them), and
//! whether it is a view *fence*. Footprints drive the default
//! [`independent`](Footprint::independent_with) relation of the
//! exploration engine's `SearchModel` trait.
//!
//! The relation is deliberately conservative: `independent_with` returning
//! `true` guarantees the two transitions are independent in the classical
//! sense — co-enabled in some state, they commute (executing them in
//! either order reaches the same state) and neither enables or disables
//! the other. `false` makes no claim. Same-thread transitions are always
//! dependent (they compete for the same program point), and an unknown
//! agent ([`Footprint::opaque`]) is dependent with everything.

use crate::ids::Loc;

/// A tiny set of locations (transitions touch at most one or two).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LocSet(Vec<Loc>);

impl LocSet {
    /// The empty set.
    pub fn new() -> LocSet {
        LocSet(Vec::new())
    }

    /// A singleton set.
    pub fn of(loc: Loc) -> LocSet {
        LocSet(vec![loc])
    }

    /// Add a location.
    pub fn insert(&mut self, loc: Loc) {
        if !self.0.contains(&loc) {
            self.0.push(loc);
        }
    }

    /// Whether `loc` is in the set.
    pub fn contains(&self, loc: Loc) -> bool {
        self.0.contains(&loc)
    }

    /// Whether the sets share a location.
    pub fn intersects(&self, other: &LocSet) -> bool {
        self.0.iter().any(|l| other.0.contains(l))
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the locations.
    pub fn iter(&self) -> impl Iterator<Item = Loc> + '_ {
        self.0.iter().copied()
    }
}

/// What one transition touches — see the module docs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// The acting thread (`None`: unknown — dependent with everything).
    pub agent: Option<usize>,
    /// Shared locations read from memory.
    pub reads: LocSet,
    /// Shared locations whose memory content the step writes.
    pub writes: LocSet,
    /// Whether the step appends a message to memory (normal writes,
    /// RMW normal writes, promises). Memory is a total order, so any two
    /// appends conflict regardless of location.
    pub appends: bool,
    /// Whether the step is certification-coupled: a promise, or any step
    /// of a thread that currently holds promises (r24 filters those
    /// through certification, which reads the whole memory).
    pub promise: bool,
    /// Whether the step is a view fence (thread-local; informational).
    pub fence: bool,
}

impl Footprint {
    /// The maximally conservative footprint: unknown agent, dependent
    /// with every other transition. The engine's default for models that
    /// do not override the footprint hook.
    pub fn opaque() -> Footprint {
        Footprint {
            agent: None,
            reads: LocSet::new(),
            writes: LocSet::new(),
            appends: true,
            promise: true,
            fence: false,
        }
    }

    /// A purely thread-local step of `agent` (register ops, branches,
    /// fences, exclusive-failures): no memory interaction at all.
    pub fn local(agent: usize) -> Footprint {
        Footprint {
            agent: Some(agent),
            reads: LocSet::new(),
            writes: LocSet::new(),
            appends: false,
            promise: false,
            fence: false,
        }
    }

    /// A read of `loc` by `agent`.
    pub fn read(agent: usize, loc: Loc) -> Footprint {
        Footprint {
            reads: LocSet::of(loc),
            ..Footprint::local(agent)
        }
    }

    /// A write of `loc` by `agent`; `appends` says whether it appends a
    /// fresh message (as opposed to fulfilling one already in memory).
    pub fn write(agent: usize, loc: Loc, appends: bool) -> Footprint {
        Footprint {
            writes: LocSet::of(loc),
            appends,
            ..Footprint::local(agent)
        }
    }

    /// Mark the step certification-coupled (see the field docs).
    #[must_use]
    pub fn with_promise(mut self) -> Footprint {
        self.promise = true;
        self
    }

    /// Mark the step a view fence.
    #[must_use]
    pub fn with_fence(mut self) -> Footprint {
        self.fence = true;
        self
    }

    /// Whether two transitions with these footprints are independent:
    /// wherever both are enabled they commute, and neither enables or
    /// disables the other. Conservative — `false` makes no claim.
    pub fn independent_with(&self, other: &Footprint) -> bool {
        let (Some(a), Some(b)) = (self.agent, other.agent) else {
            return false;
        };
        if a == b {
            // same program point: alternative branches, never independent
            return false;
        }
        if self.appends && other.appends {
            // memory is a total order: appends never commute
            return false;
        }
        // r24: a certification-coupled step can be enabled or disabled by
        // any append (certification reads the whole memory)
        if (self.promise && other.appends) || (other.promise && self.appends) {
            return false;
        }
        // location conflicts: a write races every same-location access
        if self.writes.intersects(&other.reads)
            || self.writes.intersects(&other.writes)
            || other.writes.intersects(&self.reads)
        {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locset_basics() {
        let mut s = LocSet::of(Loc(1));
        s.insert(Loc(2));
        s.insert(Loc(1));
        assert!(s.contains(Loc(1)) && s.contains(Loc(2)) && !s.contains(Loc(3)));
        assert!(s.intersects(&LocSet::of(Loc(2))));
        assert!(!s.intersects(&LocSet::of(Loc(3))));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn opaque_is_dependent_with_everything() {
        let o = Footprint::opaque();
        assert!(!o.independent_with(&Footprint::local(1)));
        assert!(!Footprint::local(1).independent_with(&o));
    }

    #[test]
    fn same_agent_is_dependent() {
        let a = Footprint::read(0, Loc(1));
        let b = Footprint::read(0, Loc(2));
        assert!(!a.independent_with(&b));
    }

    #[test]
    fn cross_thread_reads_are_independent() {
        let a = Footprint::read(0, Loc(1));
        let b = Footprint::read(1, Loc(1));
        assert!(a.independent_with(&b));
        assert!(b.independent_with(&a));
    }

    #[test]
    fn appends_conflict_even_across_locations() {
        let a = Footprint::write(0, Loc(1), true);
        let b = Footprint::write(1, Loc(2), true);
        assert!(!a.independent_with(&b));
    }

    #[test]
    fn write_conflicts_with_same_location_read() {
        let w = Footprint::write(0, Loc(1), true);
        let r = Footprint::read(1, Loc(1));
        assert!(!w.independent_with(&r));
        assert!(!r.independent_with(&w));
        let r2 = Footprint::read(1, Loc(2));
        assert!(w.independent_with(&r2));
    }

    #[test]
    fn promise_coupling_blocks_appends() {
        let fulfil = Footprint::write(0, Loc(1), false).with_promise();
        let append = Footprint::write(1, Loc(2), true);
        assert!(!fulfil.independent_with(&append));
        // …but not local steps of other threads
        assert!(fulfil.independent_with(&Footprint::local(1)));
    }
}
