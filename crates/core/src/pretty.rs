//! Pretty-printing of programs back into the [`crate::parser`] syntax.
//!
//! `parse_program(pretty(p))` reconstructs an equal program (up to arena
//! layout); the property tests in the workspace exercise this round trip.

use crate::expr::Expr;
use crate::ids::Loc;
use crate::parser::LocTable;
use crate::stmt::{
    AccessSet, Fence, Program, ReadKind, RmwOp, Stmt, StmtId, ThreadCode, WriteKind,
};
use std::fmt::Write as _;

/// Render a whole program in the parser's syntax, separating threads with
/// `---` lines. If `locs` is given, addresses that have names are printed
/// symbolically.
pub fn program_to_string(program: &Program, locs: Option<&LocTable>) -> String {
    let mut out = String::new();
    for (i, t) in program.threads().iter().enumerate() {
        if i > 0 {
            out.push_str("---\n");
        }
        out.push_str(&thread_to_string(t, locs));
    }
    out
}

/// Render one thread's code.
pub fn thread_to_string(code: &ThreadCode, locs: Option<&LocTable>) -> String {
    let mut p = Printer {
        code,
        locs,
        out: String::new(),
        indent: 0,
    };
    p.stmt_seq(code.entry());
    p.out
}

struct Printer<'a> {
    code: &'a ThreadCode,
    locs: Option<&'a LocTable>,
    out: String,
    indent: usize,
}

impl Printer<'_> {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn loc_name(&self, addr: &Expr) -> Option<String> {
        if let Expr::Const(v) = addr {
            let loc = Loc::from(*v);
            if let Some(name) = self.locs.and_then(|l| l.name_of(loc)) {
                return Some(name.to_string());
            }
        }
        None
    }

    fn expr(&self, e: &Expr) -> String {
        // Print the address symbolically where a name is known; otherwise
        // fall back on the expression's own Display.
        match e {
            Expr::Const(v) => self.loc_name(e).unwrap_or_else(|| v.to_string()),
            _ => e.to_string(),
        }
    }

    fn stmt_seq(&mut self, id: StmtId) {
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            match self.code.stmt(id) {
                Stmt::Seq(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                _ => self.stmt(id),
            }
        }
    }

    fn stmt(&mut self, id: StmtId) {
        match self.code.stmt(id) {
            Stmt::Skip => self.line("skip"),
            Stmt::Seq(..) => self.stmt_seq(id),
            Stmt::Assign { reg, expr } => {
                let text = format!("{reg} = {}", self.expr(expr));
                self.line(&text);
            }
            Stmt::Load {
                reg,
                addr,
                kind,
                exclusive,
            } => {
                let op = match (kind, exclusive) {
                    (ReadKind::Plain, false) => "load",
                    (ReadKind::WeakAcquire, false) => "load_wacq",
                    (ReadKind::Acquire, false) => "load_acq",
                    (ReadKind::Plain, true) => "loadx",
                    (ReadKind::WeakAcquire, true) => "loadx_wacq",
                    (ReadKind::Acquire, true) => "loadx_acq",
                };
                let text = format!("{reg} = {op}({})", self.expr(addr));
                self.line(&text);
            }
            Stmt::Store {
                succ,
                addr,
                data,
                kind,
                exclusive,
            } => {
                let op = match (kind, exclusive) {
                    (WriteKind::Plain, false) => "store",
                    (WriteKind::WeakRelease, false) => "store_wrel",
                    (WriteKind::Release, false) => "store_rel",
                    (WriteKind::Plain, true) => "storex",
                    (WriteKind::WeakRelease, true) => "storex_wrel",
                    (WriteKind::Release, true) => "storex_rel",
                };
                let mut text = String::new();
                if *exclusive {
                    let _ = write!(text, "{succ} = ");
                }
                let _ = write!(text, "{op}({}, {})", self.expr(addr), self.expr(data));
                self.line(&text);
            }
            Stmt::Rmw {
                op,
                dst,
                addr,
                expected,
                operand,
                rk,
                wk,
                ..
            } => {
                let sfx_r = match rk {
                    ReadKind::Plain => "",
                    ReadKind::WeakAcquire => "_wacq",
                    ReadKind::Acquire => "_acq",
                };
                let sfx_w = match wk {
                    WriteKind::Plain => "",
                    WriteKind::WeakRelease => "_wrel",
                    WriteKind::Release => "_rel",
                };
                let mut text = format!(
                    "{dst} = {}{sfx_r}{sfx_w}({}",
                    op.mnemonic(),
                    self.expr(addr)
                );
                if *op == RmwOp::Cas {
                    let exp = expected.as_ref().expect("CAS has an expected value");
                    let _ = write!(text, ", {}", self.expr(exp));
                }
                let _ = write!(text, ", {})", self.expr(operand));
                self.line(&text);
            }
            Stmt::Fence(f) => {
                let text = match *f {
                    Fence::FULL => "dmb.sy".to_string(),
                    Fence::LD => "dmb.ld".to_string(),
                    Fence::ST => "dmb.st".to_string(),
                    Fence { pre, post } => {
                        format!("fence({}, {})", access(pre), access(post))
                    }
                };
                self.line(&text);
            }
            Stmt::Isb => self.line("isb"),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let text = format!("if ({}) {{", self.expr(cond));
                self.line(&text);
                self.indent += 1;
                self.stmt_seq(*then_branch);
                self.indent -= 1;
                if !matches!(self.code.stmt(*else_branch), Stmt::Skip) {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmt_seq(*else_branch);
                    self.indent -= 1;
                }
                self.line("}");
            }
            Stmt::While { cond, body } => {
                let text = format!("while ({}) {{", self.expr(cond));
                self.line(&text);
                self.indent += 1;
                self.stmt_seq(*body);
                self.indent -= 1;
                self.line("}");
            }
        }
    }
}

fn access(a: AccessSet) -> &'static str {
    match a {
        AccessSet::R => "r",
        AccessSet::W => "w",
        AccessSet::RW => "rw",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn normalize(src: &str) -> String {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn mp_round_trips() {
        let src = "store(x, 37)\ndmb.sy\nstore(y, 42)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))";
        let (p1, locs) = parse_program(src).unwrap();
        let printed = program_to_string(&p1, Some(&locs));
        let (p2, _) = parse_program(&printed).unwrap();
        let reprinted = program_to_string(&p2, Some(&locs));
        assert_eq!(normalize(&printed), normalize(&reprinted));
    }

    #[test]
    fn control_flow_round_trips() {
        let src = "r1 = load(x)\nif (r1 == 42) {\nstore(y, 1)\n} else {\nstore(y, 2)\n}\nwhile (r2 != 0) {\nr2 = r2 - 1\n}";
        let (p1, locs) = parse_program(src).unwrap();
        let printed = program_to_string(&p1, Some(&locs));
        let (p2, _) = parse_program(&printed).unwrap();
        assert_eq!(
            normalize(&printed),
            normalize(&program_to_string(&p2, Some(&locs)))
        );
    }

    #[test]
    fn rmws_round_trip() {
        let src = "r1 = cas(x, 0, 1)\nr2 = cas_acq_rel(x, r1, 2)\nr3 = amo_add(x, 1)\nr4 = amo_swap_rel(y, 7)\nr5 = amo_max_acq(y, r3)\nr6 = amo_and(y, 3)";
        let (p1, locs) = parse_program(src).unwrap();
        let printed = program_to_string(&p1, Some(&locs));
        let (p2, _) = parse_program(&printed).unwrap();
        assert_eq!(
            normalize(&printed),
            normalize(&program_to_string(&p2, Some(&locs)))
        );
        // the desugared build (exclusive retry loops with `max`/`&` data
        // expressions) must round-trip too
        let desugared = crate::stmt::desugar_program_rmws(&p1);
        let printed = program_to_string(&desugared, Some(&locs));
        let (p3, _) = parse_program(&printed).unwrap();
        assert_eq!(
            normalize(&printed),
            normalize(&program_to_string(&p3, Some(&locs)))
        );
    }

    #[test]
    fn exclusives_and_kinds_round_trip() {
        let src = "r1 = loadx(x)\nr2 = storex(x, r1 + 1)\nstore_rel(y, 1)\nr3 = load_acq(y)\nfence(r, rw)\nisb";
        let (p1, locs) = parse_program(src).unwrap();
        let printed = program_to_string(&p1, Some(&locs));
        let (p2, _) = parse_program(&printed).unwrap();
        assert_eq!(
            normalize(&printed),
            normalize(&program_to_string(&p2, Some(&locs)))
        );
    }
}
