//! Certification (§4.3, r24) and the `find_and_certify` algorithm (§B,
//! Theorem 6.4).
//!
//! A thread configuration `⟨T, M⟩` is *certified* if the thread, executing
//! alone (every new promise immediately fulfilled, i.e. only *normal
//! writes*), can reach a state with no outstanding promises. Machine steps
//! are restricted to certified post-states.
//!
//! Following §B, the algorithm enumerates all sequential traces of the
//! thread under the current memory (bounded by
//! [`crate::config::Config::cert_depth`] and the loop fuel), discards
//! traces whose final state has unfulfilled promises, and derives:
//!
//! 1. the *certified first steps* — the non-promise steps that begin some
//!    completing trace;
//! 2. the *legal promises* — every normal write done on a completing trace
//!    whose pre-view and coherence view (at its location) are at most the
//!    maximal timestamp of the memory before certification started.
//!
//! The search is memoised on (continuation, thread state, memory) — as a
//! 128-bit fingerprint key by default (see [`crate::fingerprint`]), or an
//! exact collision-checked key in paranoid mode — which collapses the
//! exponential blow-up from read-value enumeration whenever different
//! orders reach the same state. The memo table ([`CertMemo`]) can be
//! shared across calls: sibling branches of an exploration repeatedly
//! certify near-identical configurations, and a shared memo turns those
//! repeats into hash lookups.

use crate::config::Config;
use crate::fingerprint::{Fingerprint, FpHashMap, FpHasher};
use crate::ids::{Loc, TId, Timestamp, Val};
use crate::machine::{
    apply_step, enabled_steps, Machine, StepEvent, ThreadInstance, TransitionKind,
};
use crate::memory::{Memory, Msg};
use crate::stmt::{MayAccess, ThreadCode};
use std::collections::BTreeSet;
use std::time::Instant;

/// Result of [`find_and_certify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CertResult {
    /// Whether the configuration is certified (some sequential execution
    /// fulfils all outstanding promises).
    pub certified: bool,
    /// The promises the thread may legally make in this configuration
    /// (Theorem 6.4): promising any of these leads to a certified state.
    pub promisable: BTreeSet<Msg>,
    /// The non-promise steps whose post-state is certified — i.e. the
    /// machine-step-enabled thread-local transitions.
    pub certified_first_steps: Vec<TransitionKind>,
    /// Whether the step bound was hit anywhere in the search; if so, the
    /// results are sound but possibly incomplete (like the paper's fuel).
    pub bound_hit: bool,
    /// Whether a wall-clock deadline cut the search short; the results
    /// are then a lower bound and the caller should report truncation
    /// (the benchmark tables' "ooT").
    pub deadline_hit: bool,
}

/// The exact identity of a certification sub-problem, kept alongside the
/// fingerprint in paranoid mode.
///
/// Two key families coexist in one memo (their fingerprints carry
/// distinct tags). `Full` is the conservative identity: base timestamp
/// plus the whole memory. `Restricted` is the incremental-recertification
/// key used at nodes whose memory is still the pre-certification one
/// (no cert-local appends yet) when the certifying thread's access scope
/// is statically known: only the in-scope slice of memory (with absolute
/// timestamps) identifies the sub-problem, so the entry survives sibling
/// appends to out-of-scope locations. Distinct full memories legitimately
/// share one `Restricted` key — the exact key compares the restricted
/// view, not the memory.
#[derive(PartialEq, Eq)]
enum ExactKey {
    Full(TId, Timestamp, ThreadInstance, Memory),
    Restricted {
        tid: TId,
        thread: ThreadInstance,
        /// The scope with each location's initial value.
        scope: Vec<(Loc, Val)>,
        /// The in-scope messages, absolute timestamps preserved.
        msgs: Vec<(Timestamp, Msg)>,
    },
}

/// A memoised sub-result: reachability, qualified promises, and whether
/// the sub-search below this node hit the depth bound — so a later query
/// that reuses the entry (possibly from a different call sharing the
/// memo) still reports `bound_hit` for its possibly-incomplete answer.
///
/// `depth` records the remaining budget the entry was computed with; a
/// *truncated* entry is an under-approximation specific to that budget,
/// so it only satisfies queries with no more budget than that (deeper
/// queries recompute and overwrite). Complete entries cover the full
/// subtree and are budget-independent.
#[derive(Clone)]
struct MemoValue {
    reached: bool,
    qualified: BTreeSet<Msg>,
    truncated: bool,
    depth: u32,
}

struct MemoEntry {
    /// Exact key for collision detection (paranoid mode only).
    exact: Option<ExactKey>,
    /// For restricted entries: a stamp of the full context (base
    /// timestamp + whole memory) at insertion time. A later hit whose
    /// context stamp differs is a *survived* hit — the certificate
    /// outlived appends the full key would have been invalidated by.
    stamp: Option<Fingerprint>,
    value: MemoValue,
}

/// A certification memo table, shareable across [`find_and_certify_with`]
/// calls (and across exploration branches within one worker).
///
/// Entries are keyed by a fingerprint of the sub-problem identity — see
/// [`ExactKey`] for the two key families (full and restricted-memory) —
/// so a single table is sound for any sequence of queries against
/// machines running the same program and configuration. The table counts
/// its hits, misses, and *survived* hits (restricted-key hits from a
/// different full-memory context than the entry was computed in).
#[derive(Default)]
pub struct CertMemo {
    paranoid: bool,
    map: FpHashMap<MemoEntry>,
    hits: u64,
    misses: u64,
    survived: u64,
}

impl CertMemo {
    /// An empty memo with fingerprint keys.
    pub fn new() -> CertMemo {
        CertMemo::default()
    }

    /// An empty memo for the given configuration (paranoid mode stores
    /// exact keys and panics on fingerprint collisions).
    pub fn for_config(config: &Config) -> CertMemo {
        CertMemo {
            paranoid: config.paranoid,
            ..CertMemo::default()
        }
    }

    /// Number of memoised sub-problems.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, survived)` since creation. *Survived* hits are
    /// restricted-key hits served in a different full-memory context
    /// than the one the entry was computed in — certificates that
    /// outlived sibling appends to out-of-scope locations.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.survived)
    }

    fn full_key(
        tid: TId,
        base_ts: Timestamp,
        thread: &ThreadInstance,
        memory: &Memory,
    ) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u64(0); // key-family tag: full
        h.write_len(tid.0);
        h.write_u32(base_ts.0);
        thread.feed(&mut h);
        memory.feed(&mut h);
        h.finish128()
    }

    /// The restricted-memory key: thread id, thread instance, and the
    /// in-scope slice of memory — scope locations with their initial
    /// values, then every in-scope message with its *absolute* timestamp.
    /// No base timestamp and no out-of-scope content: appends to
    /// out-of-scope locations land above every view and every in-scope
    /// message, so they change neither the key nor any certification
    /// verdict computable from it (see the soundness note on
    /// [`Engine::explore`]).
    fn restricted_key(
        tid: TId,
        thread: &ThreadInstance,
        memory: &Memory,
        scope: &BTreeSet<Loc>,
    ) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u64(1); // key-family tag: restricted
        h.write_len(tid.0);
        thread.feed(&mut h);
        h.write_len(scope.len());
        for &loc in scope {
            h.write_u64(loc.0);
            h.write_i64(memory.initial(loc).0);
        }
        for (ts, msg) in memory.iter() {
            if scope.contains(&msg.loc) {
                h.write_u32(ts.0);
                h.write_u64(msg.loc.0);
                h.write_i64(msg.val.0);
                h.write_len(msg.tid.0);
            }
        }
        h.finish128()
    }

    /// A stamp of the full certification context, for the survived-hit
    /// counter: two contexts with equal stamps have identical memories.
    fn context_stamp(base_ts: Timestamp, memory: &Memory) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u32(base_ts.0);
        memory.feed(&mut h);
        h.finish128()
    }

    fn get(
        &mut self,
        fp: Fingerprint,
        exact: impl FnOnce() -> ExactKey,
        stamp: Option<Fingerprint>,
        depth: u32,
    ) -> Option<&MemoValue> {
        let Some(entry) = self.map.get(&fp) else {
            self.misses += 1;
            return None;
        };
        if let Some(stored) = &entry.exact {
            assert!(
                *stored == exact(),
                "certification fingerprint collision at {fp}: distinct sub-problems"
            );
        }
        if entry.value.truncated && entry.value.depth < depth {
            // Computed under a smaller budget than this query has: the
            // under-approximation must not mask a deeper search.
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        if let (Some(now), Some(then)) = (stamp, entry.stamp) {
            if now != then {
                self.survived += 1;
            }
        }
        Some(&entry.value)
    }

    fn insert(
        &mut self,
        fp: Fingerprint,
        exact: impl FnOnce() -> ExactKey,
        stamp: Option<Fingerprint>,
        value: MemoValue,
    ) {
        let exact = self.paranoid.then(exact);
        self.map.insert(
            fp,
            MemoEntry {
                exact,
                stamp,
                value,
            },
        );
    }
}

/// Run §B's `find_and_certify` for thread `tid` of `machine` with a fresh
/// memo table and no deadline.
pub fn find_and_certify(machine: &Machine, tid: TId) -> CertResult {
    let mut memo = CertMemo::for_config(machine.config());
    find_and_certify_with(machine, tid, &mut memo, None)
}

/// Run §B's `find_and_certify` for thread `tid` of `machine`, reusing
/// `memo` across calls and aborting (with `deadline_hit`) past `deadline`.
pub fn find_and_certify_with(
    machine: &Machine,
    tid: TId,
    memo: &mut CertMemo,
    deadline: Option<Instant>,
) -> CertResult {
    let code = &machine.program().threads()[tid.0];
    let mut engine = Engine {
        config: machine.config(),
        code,
        tid,
        base_ts: machine.memory().max_timestamp(),
        scope: cert_scope(machine, tid),
        memo,
        bound_hit: false,
        deadline,
        deadline_hit: false,
        ticks: 0,
    };
    let root_thread = machine.thread(tid);
    let root_memory = machine.memory();
    let depth = machine.config().cert_depth;

    let (certified, promisable) = engine.explore(root_thread, root_memory, depth);

    // Certified first steps: re-expand the root one step and query the memo
    // (already warm from the exploration above).
    let mut certified_first_steps = Vec::new();
    for kind in enabled_steps(machine.config(), code, tid, root_thread, root_memory) {
        let mut th = root_thread.clone();
        let mut mem = root_memory.clone();
        apply_step(machine.config(), code, tid, &kind, &mut th, &mut mem)
            .expect("enabled step must apply");
        let (reached, _) = engine.explore(&th, &mem, depth.saturating_sub(1));
        if reached {
            certified_first_steps.push(kind);
        }
    }

    CertResult {
        certified,
        promisable,
        certified_first_steps,
        bound_hit: engine.bound_hit,
        deadline_hit: engine.deadline_hit,
    }
}

/// The promise-enumeration half of `find_and_certify` only (no certified
/// first steps — the promise-first search needs just the legal promises).
/// Returns the promisable set and whether the deadline cut the search.
pub fn find_promises_with(
    machine: &Machine,
    tid: TId,
    memo: &mut CertMemo,
    deadline: Option<Instant>,
) -> (BTreeSet<Msg>, bool) {
    let code = &machine.program().threads()[tid.0];
    let mut engine = Engine {
        config: machine.config(),
        code,
        tid,
        base_ts: machine.memory().max_timestamp(),
        scope: cert_scope(machine, tid),
        memo,
        bound_hit: false,
        deadline,
        deadline_hit: false,
        ticks: 0,
    };
    let depth = machine.config().cert_depth;
    let (_, promisable) = engine.explore(machine.thread(tid), machine.memory(), depth);
    (promisable, engine.deadline_hit)
}

/// The certifying thread's access scope as a concrete location set: the
/// union of its continuation's may-read and may-write sets. `None` when
/// any remaining access has a dynamic address ([`MayAccess::Any`]) or the
/// per-location layer is disabled ([`Config::dpor`] off) — the
/// conservative fallback under which every memo key is a full key,
/// reproducing the whole-memory behaviour exactly.
fn cert_scope(machine: &Machine, tid: TId) -> Option<BTreeSet<Loc>> {
    if !machine.config().dpor {
        return None;
    }
    let mut acc = machine.thread_may_reads(tid);
    acc.absorb(&machine.thread_may_writes(tid));
    match acc {
        MayAccess::Any => None,
        MayAccess::Locs(locs) => Some(locs),
    }
}

/// Cheap certification check only (no promise enumeration): is the
/// configuration of thread `tid` certified?
pub fn is_certified(machine: &Machine, tid: TId) -> bool {
    if !machine.thread(tid).state.has_promises() {
        return true;
    }
    find_and_certify(machine, tid).certified
}

/// How many explored nodes between wall-clock deadline checks.
const DEADLINE_CHECK_PERIOD: u32 = 64;

struct Engine<'a> {
    config: &'a Config,
    code: &'a ThreadCode,
    tid: TId,
    /// Maximal timestamp of the memory before certification (the promise
    /// qualification bound of §B step 3).
    base_ts: Timestamp,
    /// The certifying thread's statically-known access scope, when it
    /// has one (see [`cert_scope`]): enables restricted-memory memo keys
    /// at nodes with no cert-local appends yet.
    scope: Option<BTreeSet<Loc>>,
    memo: &'a mut CertMemo,
    bound_hit: bool,
    deadline: Option<Instant>,
    deadline_hit: bool,
    ticks: u32,
}

impl Engine<'_> {
    /// True once the deadline has passed (checked every
    /// [`DEADLINE_CHECK_PERIOD`] nodes; sticky once hit).
    fn out_of_time(&mut self) -> bool {
        if self.deadline_hit {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        self.ticks += 1;
        if self.ticks >= DEADLINE_CHECK_PERIOD {
            self.ticks = 0;
            if Instant::now() >= deadline {
                self.deadline_hit = true;
                return true;
            }
        }
        false
    }

    /// Returns `(reached, qualified)`: whether a promise-free state is
    /// reachable sequentially, and which normal writes on completing
    /// traces qualify as promises.
    ///
    /// # Restricted-key soundness
    ///
    /// Nodes whose memory is still the pre-certification one (the run
    /// has appended nothing yet — the root and every pure-read prefix)
    /// are keyed by the *restricted* key when the thread's access scope
    /// `A` is known: `(tid, thread state, memory slice at A with
    /// absolute timestamps)`. Two contexts sharing that key have
    /// identical certification answers:
    ///
    /// * every view in the thread state is ≤ that context's base
    ///   timestamp (a machine invariant — views point at existing
    ///   messages), so equal view numerics are below *both* bases;
    /// * the run only reads, forwards, and checks interposition at
    ///   `A`-locations, whose content and absolute positions agree;
    /// * cert-local appends land at `base+1, base+2, …` in each context;
    ///   the order-isomorphism mapping `base₁+i ↔ base₂+i` (identity
    ///   below `min(base₁, base₂)`) relates the two sub-searches
    ///   step-for-step, and §B's qualification check `pre_view ≤ base`
    ///   agrees on both sides (shared numerics sit below both bases,
    ///   iso-mapped ones sit above their own base).
    ///
    /// Nodes *with* cert-local appends are keyed by the full key: their
    /// thread states and memories embed absolute cert-append positions,
    /// so sharing them across contexts with different bases would
    /// confuse `pre_view ≤ base` verdicts (a position can be cert-local
    /// in one context and pre-existing in another).
    fn explore(
        &mut self,
        thread: &ThreadInstance,
        memory: &Memory,
        depth: u32,
    ) -> (bool, BTreeSet<Msg>) {
        let (tid, base_ts) = (self.tid, self.base_ts);
        // Cloned out of `self` (the sets are tiny) so the exact-key
        // closure below borrows no engine state across the recursion.
        let restricted: Option<BTreeSet<Loc>> = if memory.max_timestamp() == base_ts {
            self.scope.clone()
        } else {
            None
        };
        let restricted = restricted.as_ref();
        let (fp, stamp) = match restricted {
            Some(scope) => (
                CertMemo::restricted_key(tid, thread, memory, scope),
                Some(CertMemo::context_stamp(base_ts, memory)),
            ),
            None => (CertMemo::full_key(tid, base_ts, thread, memory), None),
        };
        let exact = || match restricted {
            Some(scope) => ExactKey::Restricted {
                tid,
                thread: thread.clone(),
                scope: scope.iter().map(|&l| (l, memory.initial(l))).collect(),
                msgs: memory
                    .iter()
                    .filter(|(_, m)| scope.contains(&m.loc))
                    .map(|(t, m)| (t, *m))
                    .collect(),
            },
            None => ExactKey::Full(tid, base_ts, thread.clone(), memory.clone()),
        };
        if let Some(hit) = self.memo.get(fp, exact, stamp, depth) {
            // A reused entry computed under a depth-truncated sub-search
            // must re-raise the incompleteness flag for *this* query too
            // (the memo may be shared across calls).
            self.bound_hit |= hit.truncated;
            return (hit.reached, hit.qualified.clone());
        }
        if self.out_of_time() {
            // Truncated: report what is locally known, memoise nothing.
            return (thread.state.prom.is_empty(), BTreeSet::new());
        }
        if depth == 0 {
            self.bound_hit = true;
            return (thread.state.prom.is_empty(), BTreeSet::new());
        }

        let mut reached = thread.state.prom.is_empty();
        let mut qualified = BTreeSet::new();
        // Track whether *this* subtree hits the bound, separately from the
        // engine-global sticky flag, to record it in the memo entry.
        let bound_before = std::mem::replace(&mut self.bound_hit, false);

        for kind in enabled_steps(self.config, self.code, self.tid, thread, memory) {
            if self.deadline_hit {
                break;
            }
            let mut th = thread.clone();
            let mut mem = memory.clone();
            // Record the coherence view at the store's location *before*
            // the write, for the §B qualification check.
            let ev = apply_step(self.config, self.code, self.tid, &kind, &mut th, &mut mem)
                .expect("enabled step must apply");
            let (sub_reached, sub_qualified) = self.explore(&th, &mem, depth - 1);
            if !sub_reached {
                continue;
            }
            reached = true;
            qualified.extend(sub_qualified);
            if kind.appends_write() {
                // §B step 3: pre-view and coherence view (before the
                // write) at most the pre-certification max timestamp. For
                // an RMW the event's pre_view already folds in the read's
                // post-view, so joining the pre-transition coherence view
                // reconstructs the bound at the write point.
                let (loc, val, pre_view) = match ev {
                    StepEvent::DidWrite {
                        loc, val, pre_view, ..
                    } => (loc, val, pre_view),
                    StepEvent::DidRmw {
                        loc, new, pre_view, ..
                    } => (loc, new, pre_view),
                    _ => unreachable!("appends_write steps report their write"),
                };
                let coh_before = thread.state.coh(loc);
                if pre_view.join(coh_before).timestamp() <= self.base_ts {
                    qualified.insert(Msg::new(loc, val, self.tid));
                }
            }
        }

        let truncated = self.bound_hit;
        self.bound_hit |= bound_before;
        if !self.deadline_hit {
            // A deadline-truncated sub-result is incomplete; memoising it
            // would poison later (untruncated) queries. Depth-truncated
            // results are memoised but carry the `truncated` flag.
            self.memo.insert(
                fp,
                exact,
                stamp,
                MemoValue {
                    reached,
                    qualified: qualified.clone(),
                    truncated,
                    depth,
                },
            );
        }
        (reached, qualified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::expr::Expr;
    use crate::ids::{Loc, Reg, Val};
    use crate::machine::Transition;
    use crate::stmt::{CodeBuilder, Program, ThreadCode};
    use std::sync::Arc;

    fn lb_thread_dependent() -> ThreadCode {
        // r1 := load x; store y r1 — the data-dependent LB thread.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        b.finish_seq(&[l, s])
    }

    fn lb_thread_independent() -> ThreadCode {
        // r2 := load y; store x 42 — the independent LB thread.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(2), Expr::val(1));
        let s = b.store(Expr::val(0), Expr::val(42));
        b.finish_seq(&[l, s])
    }

    #[test]
    fn independent_store_is_promisable_in_initial_state() {
        // §4.2: Thread 2 can promise x = 42 in the initial state…
        let program = Arc::new(Program::new(vec![
            lb_thread_dependent(),
            lb_thread_independent(),
        ]));
        let m = Machine::new(program, Config::arm());
        let cert = find_and_certify(&m, TId(1));
        assert!(cert.certified);
        assert!(cert.promisable.contains(&Msg::new(Loc(0), Val(42), TId(1))));
    }

    #[test]
    fn dependent_store_is_not_promisable_in_initial_state() {
        // …but Thread 1 cannot promise y = 37/42: executing sequentially
        // it must read x = 0, so it would write y = 0. Only y = 0 is
        // promisable.
        let program = Arc::new(Program::new(vec![
            lb_thread_dependent(),
            lb_thread_independent(),
        ]));
        let m = Machine::new(program, Config::arm());
        let cert = find_and_certify(&m, TId(0));
        assert!(cert.certified);
        assert_eq!(
            cert.promisable,
            BTreeSet::from([Msg::new(Loc(1), Val(0), TId(0))])
        );
    }

    #[test]
    fn certification_blocks_reads_breaking_promises() {
        // §4.2 "Memory barriers": T2 = load y; dmb.sy; store x 42, after
        // promising x = 42 and T1 writing y = 42, T2 must not read y = 42
        // (the certified steps exclude that read).
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let f = b.dmb_sy();
        let e = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, f, e]);
        let program = Arc::new(Program::new(vec![lb_thread_dependent(), t2]));
        let mut m = Machine::new(program, Config::arm());
        // T2 promises x = 42 @1
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(Loc(0), Val(42), TId(1)),
            },
        ))
        .unwrap();
        // T1: a reads x = 42, b writes y = 42 @2
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        // Certified steps for T2: only the read of the *initial* y.
        let cert = find_and_certify(&m, TId(1));
        assert!(cert.certified);
        assert_eq!(
            cert.certified_first_steps,
            vec![crate::machine::TransitionKind::Read { t: Timestamp::ZERO }]
        );
    }

    #[test]
    fn appendix_b_worked_example() {
        // §B: memory = [1: ⟨w := 1⟩₂, 2: ⟨z := 1⟩₁], Thread 1 =
        //   a: r1 := load w; b: store x 1; c: store_rel y 1; d: store z r1
        // with promise set {2}. Then:
        //   * the only certified first step reads w = 1;
        //   * promising x = 1 is certified;
        //   * promising y = 1 is NOT (pre-view 3 > 2).
        let (w, x, y, z) = (Loc(10), Loc(11), Loc(12), Loc(13));
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(w.0 as i64));
        let s1 = b.store(Expr::val(x.0 as i64), Expr::val(1));
        let s2 = b.store_rel(Expr::val(y.0 as i64), Expr::val(1));
        let s3 = b.store(Expr::val(z.0 as i64), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s1, s2, s3]);
        // Thread 2 only exists to own the w = 1 write.
        let mut b2 = CodeBuilder::new();
        let sw = b2.store(Expr::val(w.0 as i64), Expr::val(1));
        let t2 = b2.finish_seq(&[sw]);
        let program = Arc::new(Program::new(vec![t1, t2]));
        let mut m = Machine::new(program, Config::arm());
        // Build the §B memory: T2 writes w = 1 @1; T1 promises z = 1 @2.
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(z, Val(1), TId(0)),
            },
        ))
        .unwrap();
        assert_eq!(m.memory().len(), 2);

        let cert = find_and_certify(&m, TId(0));
        assert!(cert.certified);
        // 1. only reading w = 1 (timestamp 1) is certified
        assert_eq!(
            cert.certified_first_steps,
            vec![crate::machine::TransitionKind::Read { t: Timestamp(1) }]
        );
        // 2. x = 1 is promisable (pre-view 0, coh 0 ≤ 2)
        assert!(cert.promisable.contains(&Msg::new(x, Val(1), TId(0))));
        // 3. y = 1 is not (release store: pre-view includes b's post-view 3)
        assert!(!cert.promisable.contains(&Msg::new(y, Val(1), TId(0))));
        // and z = 1 is not a *new* promise (it is fulfilled, not promised)
        assert!(!cert.promisable.contains(&Msg::new(z, Val(1), TId(0))));
    }

    #[test]
    fn shared_memo_reuse_preserves_bound_hit() {
        // With a tiny cert depth, the search is depth-truncated. A second
        // query through the same (shared) memo must still report
        // bound_hit, even though it answers from memoised entries.
        let mut b = CodeBuilder::new();
        let stmts: Vec<_> = (0..6)
            .map(|i| b.store(Expr::val(0), Expr::val(i)))
            .collect();
        let t = b.finish_seq(&stmts);
        let program = Arc::new(Program::new(vec![t]));
        let config = Config::arm().with_cert_depth(2);
        let m = Machine::new(program, config);
        let mut memo = CertMemo::for_config(m.config());
        let first = find_and_certify_with(&m, TId(0), &mut memo, None);
        assert!(first.bound_hit, "depth 2 must truncate a 6-store thread");
        let second = find_and_certify_with(&m, TId(0), &mut memo, None);
        assert_eq!(first.promisable, second.promisable);
        assert!(
            second.bound_hit,
            "memo reuse must re-raise bound_hit for truncated entries"
        );
    }

    #[test]
    fn shallow_truncated_entries_do_not_answer_deeper_queries() {
        // Certifying S0 memoises the post-store configuration as a
        // *child* (remaining depth k-1, truncated). After the machine
        // takes that store, the same configuration is the *root* of the
        // next query with depth k: the memo must recompute rather than
        // return the shallower under-approximation.
        let mut b = CodeBuilder::new();
        let stmts: Vec<_> = (1..=6)
            .map(|i| b.store(Expr::val(0), Expr::val(i)))
            .collect();
        let t = b.finish_seq(&stmts);
        let program = Arc::new(Program::new(vec![t]));
        let config = Config::arm().with_cert_depth(3);
        let mut m = Machine::new(program, config);
        let mut shared = CertMemo::for_config(m.config());
        let _ = find_and_certify_with(&m, TId(0), &mut shared, None);
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        let via_shared = find_and_certify_with(&m, TId(0), &mut shared, None);
        let via_fresh = find_and_certify(&m, TId(0));
        assert_eq!(via_shared.promisable, via_fresh.promisable);
        assert_eq!(via_shared.certified, via_fresh.certified);
        assert_eq!(
            via_shared.certified_first_steps,
            via_fresh.certified_first_steps
        );
    }

    /// Build a machine whose certification tree is big and branchy
    /// enough that an expired deadline genuinely fires mid-search (the
    /// deadline is polled every [`DEADLINE_CHECK_PERIOD`] nodes): thread
    /// 0 alternates multi-candidate loads with data-dependent stores, so
    /// the promisable set differs sharply between a truncated and a
    /// complete search.
    fn branchy_machine() -> Machine {
        let mut b = CodeBuilder::new();
        let mut stmts = Vec::new();
        for i in 0..4 {
            stmts.push(b.load(Reg(i), Expr::val(0)));
            stmts.push(b.store(Expr::val(1), Expr::reg(Reg(i))));
        }
        let t0 = b.finish_seq(&stmts);
        let mut b = CodeBuilder::new();
        let s1: Vec<_> = (1..6)
            .map(|v| b.store(Expr::val(0), Expr::val(v)))
            .collect();
        let t1 = b.finish_seq(&s1);
        let mut m = Machine::new(Arc::new(Program::new(vec![t0, t1])), Config::arm());
        for _ in 0..5 {
            m.apply(&Transition::new(
                TId(1),
                crate::machine::TransitionKind::WriteNormal,
            ))
            .unwrap();
        }
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(Loc(1), Val(0), TId(0)),
            },
        ))
        .unwrap();
        m
    }

    #[test]
    fn deadline_truncated_search_does_not_poison_shared_memo() {
        // Regression (PR 5 correctness sweep): a shared memo must never
        // serve an entry computed under a deadline truncation as a
        // complete answer. A query whose deadline has already expired
        // runs partially (the engine only notices at the periodic check),
        // memoising only sub-results whose subtrees completed *before*
        // the cut; a later deadline-free query through the same memo must
        // recompute everything else and match a fresh-memo run exactly.
        let m = branchy_machine();
        let fresh = find_and_certify(&m, TId(0));
        assert!(!fresh.bound_hit && !fresh.deadline_hit);

        let mut shared = CertMemo::for_config(m.config());
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let cut = find_and_certify_with(&m, TId(0), &mut shared, Some(past));
        assert!(
            cut.deadline_hit,
            "the expired deadline must actually fire mid-search \
             (grow the program if this stops holding)"
        );
        assert!(
            cut.promisable.len() < fresh.promisable.len(),
            "the cut run must genuinely be truncated for this test to bite"
        );

        let reuse = find_and_certify_with(&m, TId(0), &mut shared, None);
        assert!(!reuse.deadline_hit);
        assert_eq!(
            reuse.promisable, fresh.promisable,
            "deadline-truncated memo entries leaked into a complete query"
        );
        assert_eq!(reuse.certified, fresh.certified);
        assert_eq!(reuse.certified_first_steps, fresh.certified_first_steps);
        assert!(!reuse.bound_hit, "no depth bound was hit anywhere");
    }

    #[test]
    fn deadline_and_depth_truncations_compose_in_one_memo() {
        // One memo fed by a deadline-cut query and a depth-bounded query
        // (same machine state, different budgets — the memo is keyed by
        // the sub-problem alone, not the budget) must still answer a
        // final unbounded query exactly like a fresh memo. A bounded
        // query against the warm memo may legitimately return *more*
        // than a cold bounded run (complete entries serve any budget)
        // but never more than the true answer, and never less than its
        // cold result.
        let m = branchy_machine();
        let fresh_full = find_and_certify(&m, TId(0));
        let shallow_config = Config::arm().with_cert_depth(3);
        let fresh_shallow = {
            // same dynamic state, shallow certification budget, cold memo
            let mut memo = CertMemo::for_config(&shallow_config);
            find_and_certify_shallow(&m, &shallow_config, &mut memo)
        };
        assert!(fresh_shallow.bound_hit, "depth 3 must truncate the search");
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let mut memo = CertMemo::for_config(m.config());
        let _ = find_and_certify_with(&m, TId(0), &mut memo, Some(past));
        let shallow_warm = find_and_certify_shallow(&m, &shallow_config, &mut memo);
        assert!(
            shallow_warm.promisable.is_subset(&fresh_full.promisable),
            "a bounded query must never exceed the true promisable set"
        );
        assert!(
            fresh_shallow.promisable.is_subset(&shallow_warm.promisable),
            "a warm memo must not lose promises a cold bounded run finds"
        );
        let full = find_and_certify_with(&m, TId(0), &mut memo, None);
        assert_eq!(full.promisable, fresh_full.promisable);
        assert_eq!(full.certified_first_steps, fresh_full.certified_first_steps);
        assert!(!full.bound_hit && !full.deadline_hit);
    }

    /// Run `find_and_certify_with` under a different (shallower)
    /// certification budget against the same dynamic state: rebuild the
    /// machine with `config` and replay nothing — the memo key ignores
    /// the config, so entries are shared with full-depth queries.
    fn find_and_certify_shallow(m: &Machine, config: &Config, memo: &mut CertMemo) -> CertResult {
        let mut replica = Machine::new(Arc::clone(m.program()), config.clone());
        // replay thread 1's writes and thread 0's promise (see
        // `branchy_machine`)
        for _ in 0..5 {
            replica
                .apply(&Transition::new(
                    TId(1),
                    crate::machine::TransitionKind::WriteNormal,
                ))
                .unwrap();
        }
        replica
            .apply(&Transition::new(
                TId(0),
                crate::machine::TransitionKind::Promise {
                    msg: Msg::new(Loc(1), Val(0), TId(0)),
                },
            ))
            .unwrap();
        find_and_certify_with(&replica, TId(0), memo, None)
    }

    #[test]
    fn shared_memo_reuse_matches_fresh_results() {
        // Reusing a memo across machine states must give the same
        // results as fresh memos (the naive explorer shares one per
        // worker across its whole search).
        let program = Arc::new(Program::new(vec![
            lb_thread_dependent(),
            lb_thread_independent(),
        ]));
        let mut m = Machine::new(program, Config::arm());
        let mut shared = CertMemo::for_config(m.config());
        let a1 = find_and_certify_with(&m, TId(1), &mut shared, None);
        assert_eq!(a1, find_and_certify(&m, TId(1)));
        // advance the machine and re-query through the same memo
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Read { t: Timestamp::ZERO },
        ))
        .unwrap();
        let a2 = find_and_certify_with(&m, TId(1), &mut shared, None);
        assert_eq!(a2, find_and_certify(&m, TId(1)));
        assert!(!shared.is_empty());
    }

    #[test]
    fn machine_steps_filter_by_certification() {
        // Same setup as certification_blocks_reads_breaking_promises, via
        // the Machine::machine_steps entry point.
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let f = b.dmb_sy();
        let e = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, f, e]);
        let program = Arc::new(Program::new(vec![lb_thread_dependent(), t2]));
        let mut m = Machine::new(program, Config::arm());
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(Loc(0), Val(42), TId(1)),
            },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        let steps = m.machine_steps();
        // T2's read of y@2 must not be among the machine steps.
        assert!(!steps.contains(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Read { t: Timestamp(2) }
        )));
        // T2's read of the initial y is.
        assert!(steps.contains(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Read { t: Timestamp::ZERO }
        )));
    }
}
