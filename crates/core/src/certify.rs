//! Certification (§4.3, r24) and the `find_and_certify` algorithm (§B,
//! Theorem 6.4).
//!
//! A thread configuration `⟨T, M⟩` is *certified* if the thread, executing
//! alone (every new promise immediately fulfilled, i.e. only *normal
//! writes*), can reach a state with no outstanding promises. Machine steps
//! are restricted to certified post-states.
//!
//! Following §B, the algorithm enumerates all sequential traces of the
//! thread under the current memory (bounded by
//! [`crate::config::Config::cert_depth`] and the loop fuel), discards
//! traces whose final state has unfulfilled promises, and derives:
//!
//! 1. the *certified first steps* — the non-promise steps that begin some
//!    completing trace;
//! 2. the *legal promises* — every normal write done on a completing trace
//!    whose pre-view and coherence view (at its location) are at most the
//!    maximal timestamp of the memory before certification started.
//!
//! The search is memoised on (continuation, thread state, memory), which
//! collapses the exponential blow-up from read-value enumeration whenever
//! different orders reach the same state.

use crate::machine::{
    apply_step, enabled_steps, Machine, StepEvent, ThreadInstance, TransitionKind,
};
use crate::config::Config;
use crate::ids::{TId, Timestamp};
use crate::memory::{Memory, Msg};
use crate::stmt::ThreadCode;
use std::collections::{BTreeSet, HashMap};

/// Result of [`find_and_certify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CertResult {
    /// Whether the configuration is certified (some sequential execution
    /// fulfils all outstanding promises).
    pub certified: bool,
    /// The promises the thread may legally make in this configuration
    /// (Theorem 6.4): promising any of these leads to a certified state.
    pub promisable: BTreeSet<Msg>,
    /// The non-promise steps whose post-state is certified — i.e. the
    /// machine-step-enabled thread-local transitions.
    pub certified_first_steps: Vec<TransitionKind>,
    /// Whether the step bound was hit anywhere in the search; if so, the
    /// results are sound but possibly incomplete (like the paper's fuel).
    pub bound_hit: bool,
}

/// Run §B's `find_and_certify` for thread `tid` of `machine`.
pub fn find_and_certify(machine: &Machine, tid: TId) -> CertResult {
    let code = &machine.program().threads()[tid.0];
    let mut engine = Engine {
        config: machine.config(),
        code,
        tid,
        base_ts: machine.memory().max_timestamp(),
        memo: HashMap::new(),
        bound_hit: false,
    };
    let root_thread = machine.thread(tid).clone();
    let root_memory = machine.memory().clone();
    let depth = machine.config().cert_depth;

    let (certified, promisable) = engine.explore(&root_thread, &root_memory, depth);

    // Certified first steps: re-expand the root one step and query the memo
    // (already warm from the exploration above).
    let mut certified_first_steps = Vec::new();
    for kind in enabled_steps(machine.config(), code, tid, &root_thread, &root_memory) {
        let mut th = root_thread.clone();
        let mut mem = root_memory.clone();
        apply_step(machine.config(), code, tid, &kind, &mut th, &mut mem)
            .expect("enabled step must apply");
        let (reached, _) = engine.explore(&th, &mem, depth.saturating_sub(1));
        if reached {
            certified_first_steps.push(kind);
        }
    }

    CertResult {
        certified,
        promisable,
        certified_first_steps,
        bound_hit: engine.bound_hit,
    }
}

/// Cheap certification check only (no promise enumeration): is the
/// configuration of thread `tid` certified?
pub fn is_certified(machine: &Machine, tid: TId) -> bool {
    if !machine.thread(tid).state.has_promises() {
        return true;
    }
    find_and_certify(machine, tid).certified
}

type MemoKey = (ThreadInstance, Memory);

struct Engine<'a> {
    config: &'a Config,
    code: &'a ThreadCode,
    tid: TId,
    /// Maximal timestamp of the memory before certification (the promise
    /// qualification bound of §B step 3).
    base_ts: Timestamp,
    memo: HashMap<MemoKey, (bool, BTreeSet<Msg>)>,
    bound_hit: bool,
}

impl Engine<'_> {
    /// Returns `(reached, qualified)`: whether a promise-free state is
    /// reachable sequentially, and which normal writes on completing
    /// traces qualify as promises.
    fn explore(
        &mut self,
        thread: &ThreadInstance,
        memory: &Memory,
        depth: u32,
    ) -> (bool, BTreeSet<Msg>) {
        let key = (thread.clone(), memory.clone());
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        if depth == 0 {
            self.bound_hit = true;
            return (thread.state.prom.is_empty(), BTreeSet::new());
        }

        let mut reached = thread.state.prom.is_empty();
        let mut qualified = BTreeSet::new();

        for kind in enabled_steps(self.config, self.code, self.tid, thread, memory) {
            let mut th = thread.clone();
            let mut mem = memory.clone();
            // Record the coherence view at the store's location *before*
            // the write, for the §B qualification check.
            let ev = apply_step(self.config, self.code, self.tid, &kind, &mut th, &mut mem)
                .expect("enabled step must apply");
            let (sub_reached, sub_qualified) = self.explore(&th, &mem, depth - 1);
            if !sub_reached {
                continue;
            }
            reached = true;
            qualified.extend(sub_qualified);
            if kind == TransitionKind::WriteNormal {
                if let StepEvent::DidWrite {
                    loc,
                    val,
                    pre_view,
                    ..
                } = ev
                {
                    // §B step 3: pre-view and coherence view (before the
                    // write) at most the pre-certification max timestamp.
                    let coh_before = thread.state.coh(loc);
                    if pre_view.join(coh_before).timestamp() <= self.base_ts {
                        qualified.insert(Msg::new(loc, val, self.tid));
                    }
                }
            }
        }

        let result = (reached, qualified);
        self.memo.insert(key, result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::expr::Expr;
    use crate::ids::{Loc, Reg, Val};
    use crate::machine::Transition;
    use crate::stmt::{CodeBuilder, Program, ThreadCode};
    use std::sync::Arc;

    fn lb_thread_dependent() -> ThreadCode {
        // r1 := load x; store y r1 — the data-dependent LB thread.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        b.finish_seq(&[l, s])
    }

    fn lb_thread_independent() -> ThreadCode {
        // r2 := load y; store x 42 — the independent LB thread.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(2), Expr::val(1));
        let s = b.store(Expr::val(0), Expr::val(42));
        b.finish_seq(&[l, s])
    }

    #[test]
    fn independent_store_is_promisable_in_initial_state() {
        // §4.2: Thread 2 can promise x = 42 in the initial state…
        let program = Arc::new(Program::new(vec![
            lb_thread_dependent(),
            lb_thread_independent(),
        ]));
        let m = Machine::new(program, Config::arm());
        let cert = find_and_certify(&m, TId(1));
        assert!(cert.certified);
        assert!(cert
            .promisable
            .contains(&Msg::new(Loc(0), Val(42), TId(1))));
    }

    #[test]
    fn dependent_store_is_not_promisable_in_initial_state() {
        // …but Thread 1 cannot promise y = 37/42: executing sequentially
        // it must read x = 0, so it would write y = 0. Only y = 0 is
        // promisable.
        let program = Arc::new(Program::new(vec![
            lb_thread_dependent(),
            lb_thread_independent(),
        ]));
        let m = Machine::new(program, Config::arm());
        let cert = find_and_certify(&m, TId(0));
        assert!(cert.certified);
        assert_eq!(
            cert.promisable,
            BTreeSet::from([Msg::new(Loc(1), Val(0), TId(0))])
        );
    }

    #[test]
    fn certification_blocks_reads_breaking_promises() {
        // §4.2 "Memory barriers": T2 = load y; dmb.sy; store x 42, after
        // promising x = 42 and T1 writing y = 42, T2 must not read y = 42
        // (the certified steps exclude that read).
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let f = b.dmb_sy();
        let e = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, f, e]);
        let program = Arc::new(Program::new(vec![lb_thread_dependent(), t2]));
        let mut m = Machine::new(program, Config::arm());
        // T2 promises x = 42 @1
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(Loc(0), Val(42), TId(1)),
            },
        ))
        .unwrap();
        // T1: a reads x = 42, b writes y = 42 @2
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        // Certified steps for T2: only the read of the *initial* y.
        let cert = find_and_certify(&m, TId(1));
        assert!(cert.certified);
        assert_eq!(
            cert.certified_first_steps,
            vec![crate::machine::TransitionKind::Read { t: Timestamp::ZERO }]
        );
    }

    #[test]
    fn appendix_b_worked_example() {
        // §B: memory = [1: ⟨w := 1⟩₂, 2: ⟨z := 1⟩₁], Thread 1 =
        //   a: r1 := load w; b: store x 1; c: store_rel y 1; d: store z r1
        // with promise set {2}. Then:
        //   * the only certified first step reads w = 1;
        //   * promising x = 1 is certified;
        //   * promising y = 1 is NOT (pre-view 3 > 2).
        let (w, x, y, z) = (Loc(10), Loc(11), Loc(12), Loc(13));
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(w.0 as i64));
        let s1 = b.store(Expr::val(x.0 as i64), Expr::val(1));
        let s2 = b.store_rel(Expr::val(y.0 as i64), Expr::val(1));
        let s3 = b.store(Expr::val(z.0 as i64), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s1, s2, s3]);
        // Thread 2 only exists to own the w = 1 write.
        let mut b2 = CodeBuilder::new();
        let sw = b2.store(Expr::val(w.0 as i64), Expr::val(1));
        let t2 = b2.finish_seq(&[sw]);
        let program = Arc::new(Program::new(vec![t1, t2]));
        let mut m = Machine::new(program, Config::arm());
        // Build the §B memory: T2 writes w = 1 @1; T1 promises z = 1 @2.
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(z, Val(1), TId(0)),
            },
        ))
        .unwrap();
        assert_eq!(m.memory().len(), 2);

        let cert = find_and_certify(&m, TId(0));
        assert!(cert.certified);
        // 1. only reading w = 1 (timestamp 1) is certified
        assert_eq!(
            cert.certified_first_steps,
            vec![crate::machine::TransitionKind::Read { t: Timestamp(1) }]
        );
        // 2. x = 1 is promisable (pre-view 0, coh 0 ≤ 2)
        assert!(cert.promisable.contains(&Msg::new(x, Val(1), TId(0))));
        // 3. y = 1 is not (release store: pre-view includes b's post-view 3)
        assert!(!cert.promisable.contains(&Msg::new(y, Val(1), TId(0))));
        // and z = 1 is not a *new* promise (it is fulfilled, not promised)
        assert!(!cert.promisable.contains(&Msg::new(z, Val(1), TId(0))));
    }

    #[test]
    fn machine_steps_filter_by_certification() {
        // Same setup as certification_blocks_reads_breaking_promises, via
        // the Machine::machine_steps entry point.
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let f = b.dmb_sy();
        let e = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, f, e]);
        let program = Arc::new(Program::new(vec![lb_thread_dependent(), t2]));
        let mut m = Machine::new(program, Config::arm());
        m.apply(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Promise {
                msg: Msg::new(Loc(0), Val(42), TId(1)),
            },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            crate::machine::TransitionKind::WriteNormal,
        ))
        .unwrap();
        let steps = m.machine_steps();
        // T2's read of y@2 must not be among the machine steps.
        assert!(!steps.contains(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Read { t: Timestamp(2) }
        )));
        // T2's read of the initial y is.
        assert!(steps.contains(&Transition::new(
            TId(1),
            crate::machine::TransitionKind::Read { t: Timestamp::ZERO }
        )));
    }
}
