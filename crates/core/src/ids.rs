//! Base identifier and value newtypes of the model.
//!
//! Following §5 of the paper: locations and values are mathematical
//! integers, thread identifiers and timestamps are naturals, and a *view*
//! is simply a timestamp (rule r1): the index of a write in the memory
//! history that has been "seen", with `0` denoting the initial writes.

use std::fmt;

/// A memory location (`Loc` in Fig. 2). Locations are values in the paper
/// (`Loc ≝ Val`); we keep them as a distinct newtype for type safety and
/// provide conversions where address arithmetic genuinely needs them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Loc(pub u64);

/// A machine value (`Val ≝ ℤ` in Fig. 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Val(pub i64);

/// A thread identifier (`TId ≝ ℕ`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TId(pub usize);

/// A register name (`Reg ≝ ℕ`, Fig. 1). The calculus assumes an infinite
/// supply of registers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(pub u32);

/// A timestamp (`T ≝ ℕ`): a one-based index into the memory message list,
/// with `0` standing for the initial writes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(pub u32);

/// A view (`V ≝ T`, rule r1): a timestamp recording that the write at that
/// position and all its predecessors have been seen.
///
/// Views form a join-semilattice under [`View::join`] (written `⊔` in the
/// paper); all view bookkeeping in the model is expressed with joins.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct View(pub u32);

impl Timestamp {
    /// The timestamp of the initial writes.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Whether this is the initial-write timestamp.
    #[inline]
    pub fn is_initial(self) -> bool {
        self.0 == 0
    }

    /// The view "this write and everything before it has been seen".
    #[inline]
    pub fn view(self) -> View {
        View(self.0)
    }
}

impl View {
    /// The empty view: nothing beyond the initial writes has been seen.
    pub const ZERO: View = View(0);

    /// Join (`⊔`) of two views: the maximum timestamp.
    #[inline]
    #[must_use]
    pub fn join(self, other: View) -> View {
        View(self.0.max(other.0))
    }

    /// Conditional view (`c ? ν` in Fig. 5): `v` if `cond` holds, else `0`.
    #[inline]
    #[must_use]
    pub fn when(cond: bool, v: View) -> View {
        if cond {
            v
        } else {
            View::ZERO
        }
    }

    /// The timestamp this view points at.
    #[inline]
    pub fn timestamp(self) -> Timestamp {
        Timestamp(self.0)
    }

    /// Whether the write at timestamp `t` is within (≤) this view.
    #[inline]
    pub fn includes(self, t: Timestamp) -> bool {
        t.0 <= self.0
    }
}

impl From<Timestamp> for View {
    fn from(t: Timestamp) -> View {
        t.view()
    }
}

impl Val {
    /// The success value written by store exclusives (`vsucc = 0`, ARM
    /// convention, §3).
    pub const SUCCESS: Val = Val(0);
    /// The failure value written by store exclusives (`vfail = 1`).
    pub const FAIL: Val = Val(1);

    /// Truthiness used by branches: any non-zero value is "true".
    #[inline]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Val {
        Val(v)
    }
}

impl From<Val> for Loc {
    /// Locations are values in the calculus (`Loc ≝ Val`, Fig. 2): address
    /// expressions evaluate to values that are then used as locations.
    fn from(v: Val) -> Loc {
        Loc(v.0 as u64)
    }
}

impl From<Loc> for Val {
    fn from(l: Loc) -> Val {
        Val(l.0 as i64)
    }
}

impl From<bool> for Val {
    fn from(b: bool) -> Val {
        Val(b as i64)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for TId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_join_is_max() {
        assert_eq!(View(3).join(View(5)), View(5));
        assert_eq!(View(5).join(View(3)), View(5));
        assert_eq!(View::ZERO.join(View::ZERO), View::ZERO);
    }

    #[test]
    fn view_when_guards() {
        assert_eq!(View::when(true, View(7)), View(7));
        assert_eq!(View::when(false, View(7)), View::ZERO);
    }

    #[test]
    fn view_includes_timestamps_up_to_itself() {
        let v = View(4);
        assert!(v.includes(Timestamp(0)));
        assert!(v.includes(Timestamp(4)));
        assert!(!v.includes(Timestamp(5)));
    }

    #[test]
    fn timestamp_zero_is_initial() {
        assert!(Timestamp::ZERO.is_initial());
        assert!(!Timestamp(1).is_initial());
    }

    #[test]
    fn val_truthiness() {
        assert!(!Val(0).as_bool());
        assert!(Val(1).as_bool());
        assert!(Val(-3).as_bool());
    }

    #[test]
    fn success_and_fail_follow_arm_convention() {
        assert_eq!(Val::SUCCESS, Val(0));
        assert_eq!(Val::FAIL, Val(1));
    }
}
