//! Shared lexing and expression parsing for the textual frontends.
//!
//! Both the hardware-level statement parser ([`crate::parser`]) and the
//! language-level atomics frontend (`promising-lang`) consume the same
//! token stream and expression grammar; this module hosts the pieces they
//! share: the tokenizer, the [`LocTable`] interning location names, the
//! [`ParseError`] type, and a [`Tokens`] cursor with the expression
//! grammar (`==`/`!=`/`<`/`<=` over `+`/`-` over `*`/`%`/`&`/`|`/`^`/
//! infix `max` over atoms).

use crate::expr::{Expr, Op};
use crate::ids::{Loc, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Maps location names to addresses, assigning fresh consecutive addresses
/// on first use. Shared across the threads of one program so that `x`
/// means the same address everywhere.
#[derive(Clone, Debug, Default)]
pub struct LocTable {
    by_name: BTreeMap<String, Loc>,
    next: u64,
}

impl LocTable {
    /// Empty table.
    pub fn new() -> LocTable {
        LocTable::default()
    }

    /// The address of `name`, allocating one if new.
    pub fn intern(&mut self, name: &str) -> Loc {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Loc(self.next);
        self.next += 1;
        self.by_name.insert(name.to_string(), l);
        l
    }

    /// The address of `name`, if already interned.
    pub fn get(&self, name: &str) -> Option<Loc> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup: the name of an address, if any.
    pub fn name_of(&self, loc: Loc) -> Option<&str> {
        self.by_name
            .iter()
            .find(|(_, &l)| l == loc)
            .map(|(n, _)| n.as_str())
    }

    /// All (name, location) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Loc)> {
        self.by_name.iter().map(|(n, &l)| (n.as_str(), l))
    }
}

/// A parse error with a human-readable message and the offending line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier (keywords, registers, location names; may contain `.`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation / operator.
    Sym(&'static str),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Located {
    /// The token.
    pub tok: Tok,
    /// 1-based source line it starts on.
    pub line: usize,
}

/// Tokenize a source fragment. `//` starts a line comment; every
/// non-empty line contributes an implicit `;` separator at its end.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed literals or unknown characters.
pub fn tokenize(src: &str) -> Result<Vec<Located>, ParseError> {
    let mut out = Vec::new();
    for (lno, raw_line) in src.lines().enumerate() {
        let line = lno + 1;
        let code = raw_line.split("//").next().unwrap_or("");
        let mut chars = code.char_indices().peekable();
        let mut line_had_token = false;
        while let Some(&(i, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            line_had_token = true;
            if c.is_ascii_digit()
                || (c == '-' && {
                    // unary minus before a digit, only in operand position
                    let mut it = chars.clone();
                    it.next();
                    matches!(it.peek(), Some(&(_, d)) if d.is_ascii_digit())
                        && matches!(
                            out.last(),
                            None | Some(Located {
                                tok: Tok::Sym(_),
                                ..
                            })
                        )
                })
            {
                let start = i;
                chars.next();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(code.len());
                let text = &code[start..end];
                let v = text.parse::<i64>().map_err(|_| ParseError {
                    message: format!("bad integer literal `{text}`"),
                    line,
                })?;
                out.push(Located {
                    tok: Tok::Int(v),
                    line,
                });
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                chars.next();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(code.len());
                out.push(Located {
                    tok: Tok::Ident(code[start..end].to_string()),
                    line,
                });
            } else {
                let two: Option<&'static str> = {
                    let rest = &code[i..];
                    ["==", "!=", "<="].into_iter().find(|s| rest.starts_with(s))
                };
                if let Some(sym) = two {
                    chars.next();
                    chars.next();
                    out.push(Located {
                        tok: Tok::Sym(sym),
                        line,
                    });
                } else {
                    let sym = match c {
                        '=' => "=",
                        ';' => ";",
                        ',' => ",",
                        '(' => "(",
                        ')' => ")",
                        '{' => "{",
                        '}' => "}",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '%' => "%",
                        '&' => "&",
                        '|' => "|",
                        '^' => "^",
                        '<' => "<",
                        _ => {
                            return Err(ParseError {
                                message: format!("unexpected character `{c}`"),
                                line,
                            })
                        }
                    };
                    chars.next();
                    out.push(Located {
                        tok: Tok::Sym(sym),
                        line,
                    });
                }
            }
        }
        if line_had_token {
            // implicit statement separator at end of line
            out.push(Located {
                tok: Tok::Sym(";"),
                line,
            });
        }
    }
    Ok(out)
}

/// Parse `rN` register names.
pub fn parse_reg(id: &str) -> Option<Reg> {
    let digits = id.strip_prefix('r')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse::<u32>().ok().map(Reg)
}

/// A cursor over a token stream, with the shared expression grammar.
/// Identifiers in expressions resolve to registers (`rN`) or are interned
/// as memory locations in the supplied [`LocTable`].
#[derive(Debug)]
pub struct Tokens {
    toks: Vec<Located>,
    pos: usize,
}

impl Tokens {
    /// Tokenize `src` into a fresh cursor.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on lexical errors.
    pub fn new(src: &str) -> Result<Tokens, ParseError> {
        Ok(Tokens {
            toks: tokenize(src)?,
            pos: 0,
        })
    }

    /// A parse error located at the current token (or the last line).
    pub fn err(&self, msg: impl Into<String>) -> ParseError {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0);
        ParseError {
            message: msg.into(),
            line,
        }
    }

    /// The next token, without consuming it.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// The token `n` places ahead of the cursor (`peek_ahead(0)` =
    /// [`Tokens::peek`]), without consuming anything.
    pub fn peek_ahead(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    /// Consume and return the next token. (Not an [`Iterator`]: parsers
    /// interleave this with `peek`/`expect_sym` cursor movement.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume one token without looking at it (after a successful peek).
    pub fn bump(&mut self) {
        self.pos += 1;
    }

    /// Whether every token has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.toks.len()
    }

    /// Consume the symbol `s` or fail.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the expected symbol.
    pub fn expect_sym(&mut self, s: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Sym(t)) if *t == s => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{s}`, found {other:?}"))),
        }
    }

    /// Consume the symbol `s` if it is next.
    pub fn eat_sym(&mut self, s: &'static str) -> bool {
        match self.peek() {
            Some(Tok::Sym(t)) if *t == s => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    /// Skip any run of statement separators.
    pub fn skip_semis(&mut self) {
        while matches!(self.peek(), Some(Tok::Sym(";"))) {
            self.pos += 1;
        }
    }

    /// Parse a full expression.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn expr(&mut self, locs: &mut LocTable) -> Result<Expr, ParseError> {
        let lhs = self.additive(locs)?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(Op::Eq),
            Some(Tok::Sym("!=")) => Some(Op::Ne),
            Some(Tok::Sym("<")) => Some(Op::Lt),
            Some(Tok::Sym("<=")) => Some(Op::Le),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive(locs)?;
            Ok(Expr::binop(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self, locs: &mut LocTable) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative(locs)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => Op::Add,
                Some(Tok::Sym("-")) => Op::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative(locs)?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self, locs: &mut LocTable) -> Result<Expr, ParseError> {
        let mut lhs = self.atom(locs)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => Op::Mul,
                Some(Tok::Sym("%")) => Op::Mod,
                Some(Tok::Sym("&")) => Op::BitAnd,
                Some(Tok::Sym("|")) => Op::BitOr,
                Some(Tok::Sym("^")) => Op::BitXor,
                // `max` in operator position (after an operand)
                Some(Tok::Ident(id)) if id == "max" => Op::Max,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.atom(locs)?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom(&mut self, locs: &mut LocTable) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::val(v)),
            Some(Tok::Ident(id)) => {
                if let Some(r) = parse_reg(&id) {
                    Ok(Expr::reg(r))
                } else {
                    let loc = locs.intern(&id);
                    Ok(Expr::val(loc.0 as i64))
                }
            }
            Some(Tok::Sym("(")) => {
                let e = self.expr(locs)?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_tracks_lines_and_inserts_separators() {
        let toks = tokenize("a = 1\nb = 2").unwrap();
        // a = 1 ; b = 2 ;
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[3].line, 1);
        assert!(matches!(toks[3].tok, Tok::Sym(";")));
        assert_eq!(toks[4].line, 2);
    }

    #[test]
    fn dotted_identifiers_lex_as_one_token() {
        let toks = tokenize("dmb.sy").unwrap();
        assert!(matches!(&toks[0].tok, Tok::Ident(s) if s == "dmb.sy"));
    }

    #[test]
    fn expr_grammar_resolves_registers_and_locations() {
        let mut locs = LocTable::new();
        let mut t = Tokens::new("x + (r1 - r1)").unwrap();
        t.skip_semis();
        let e = t.expr(&mut locs).unwrap();
        assert_eq!(e.registers(), vec![Reg(1)]);
        assert_eq!(locs.get("x"), Some(Loc(0)));
    }

    #[test]
    fn unary_minus_only_in_operand_position() {
        let toks = tokenize("r1 - 5").unwrap();
        assert!(matches!(toks[1].tok, Tok::Sym("-")));
        let toks = tokenize("-5").unwrap();
        assert!(matches!(toks[0].tok, Tok::Int(-5)));
    }
}
