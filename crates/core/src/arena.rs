//! A chunked bump arena for retained exploration data.
//!
//! The visited sets retain one record per distinct state for the whole
//! search — millions of small allocations whose lifetimes all end
//! together when the search does. Storing them individually (boxed keys
//! inline in hash-map slots) pays an allocator round-trip per state and
//! scatters the records across the heap; [`Arena`] instead bump-allocates
//! them into fixed-capacity chunks addressed by a stable [`ArenaIx`], so
//! a retained record costs one `Vec::push` amortised and the hash-map
//! slot shrinks to a 4-byte index.
//!
//! Chunks never grow or move once allocated (each chunk `Vec` is created
//! at full capacity and only ever pushed within it), so `&T` references
//! returned by [`Arena::get`] stay valid across later pushes — the
//! property the paranoid visited set relies on when comparing a stored
//! exact key against a freshly computed one while other keys are being
//! interned.
//!
//! The arena also tracks its own approximate resident footprint
//! ([`Arena::bytes`]) so the search's `SearchBudget::max_bytes`
//! accounting stays honest when keys move out of the hash-map slots.

/// Stable index of a value interned in an [`Arena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArenaIx(pub u32);

/// A chunked bump allocator: values are pushed, never removed, and all
/// freed together when the arena drops.
#[derive(Debug)]
pub struct Arena<T> {
    chunks: Vec<Vec<T>>,
    chunk_cap: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Arena<T> {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena with a chunk capacity targeting ~64 KiB chunks
    /// (at least 16 values per chunk).
    pub fn new() -> Arena<T> {
        let per_chunk = 64 * 1024 / std::mem::size_of::<T>().max(1);
        Arena::with_chunk_capacity(per_chunk.clamp(16, 4096))
    }

    /// An empty arena with an explicit chunk capacity.
    pub fn with_chunk_capacity(chunk_cap: usize) -> Arena<T> {
        assert!(chunk_cap > 0, "arena chunks must hold at least one value");
        Arena {
            chunks: Vec::new(),
            chunk_cap,
        }
    }

    /// Number of values interned.
    pub fn len(&self) -> usize {
        match self.chunks.last() {
            None => 0,
            Some(last) => (self.chunks.len() - 1) * self.chunk_cap + last.len(),
        }
    }

    /// Whether the arena holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern `value`, returning its stable index.
    ///
    /// # Panics
    ///
    /// Panics if the arena already holds `u32::MAX` values (a search
    /// that large would have tripped every budget long before).
    pub fn push(&mut self, value: T) -> ArenaIx {
        let ix = self.len();
        assert!(ix < u32::MAX as usize, "arena full");
        if self
            .chunks
            .last()
            .is_none_or(|last| last.len() == self.chunk_cap)
        {
            self.chunks.push(Vec::with_capacity(self.chunk_cap));
        }
        self.chunks
            .last_mut()
            .expect("chunk just ensured")
            .push(value);
        ArenaIx(ix as u32)
    }

    /// The value interned at `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` was not returned by this arena's [`Arena::push`].
    pub fn get(&self, ix: ArenaIx) -> &T {
        let ix = ix.0 as usize;
        &self.chunks[ix / self.chunk_cap][ix % self.chunk_cap]
    }

    /// Approximate resident bytes of the arena's own storage (chunk
    /// buffers at full capacity; does not chase heap data owned by the
    /// values themselves — the caller charges those via its per-state
    /// estimate).
    pub fn bytes(&self) -> usize {
        self.chunks.len() * self.chunk_cap * std::mem::size_of::<T>()
            + self.chunks.capacity() * std::mem::size_of::<Vec<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trips_across_chunks() {
        let mut a: Arena<u64> = Arena::with_chunk_capacity(4);
        let ixs: Vec<ArenaIx> = (0..19u64).map(|v| a.push(v * 3)).collect();
        assert_eq!(a.len(), 19);
        assert!(!a.is_empty());
        for (i, ix) in ixs.iter().enumerate() {
            assert_eq!(ix.0 as usize, i);
            assert_eq!(*a.get(*ix), i as u64 * 3);
        }
    }

    #[test]
    fn references_survive_later_pushes() {
        // Chunks are allocated at full capacity and never reallocated,
        // so a reference taken before more pushes stays valid. (Checked
        // via raw pointer identity — holding the `&T` across a `push`
        // would not borrow-check, which is why the paranoid visited set
        // clones out of `get` instead.)
        let mut a: Arena<String> = Arena::with_chunk_capacity(2);
        let ix = a.push("stable".to_string());
        let before = a.get(ix) as *const String;
        for i in 0..100 {
            a.push(format!("filler {i}"));
        }
        assert_eq!(before, a.get(ix) as *const String);
        assert_eq!(a.get(ix), "stable");
    }

    #[test]
    fn bytes_grow_with_chunks_not_values() {
        let mut a: Arena<u64> = Arena::with_chunk_capacity(8);
        assert_eq!(a.len(), 0);
        let empty = a.bytes();
        a.push(1);
        let one = a.bytes();
        assert!(one > empty, "first chunk allocated");
        for v in 2..=8 {
            a.push(v);
        }
        assert_eq!(a.bytes(), one, "within-chunk pushes are free");
        a.push(9);
        assert!(a.bytes() > one, "second chunk allocated");
    }

    #[test]
    fn default_chunk_capacity_is_sane_for_large_values() {
        let a: Arena<[u64; 100_000]> = Arena::new();
        assert!(a.is_empty());
        let b: Arena<u8> = Arena::new();
        assert_eq!(b.len(), 0);
    }
}
