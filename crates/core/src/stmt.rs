//! Statements and programs of the calculus (Fig. 1).
//!
//! Statements are stored in a per-thread *arena* and referenced by
//! [`StmtId`]. This makes thread continuations (stacks of `StmtId`) cheap to
//! clone, hash and compare — essential for exhaustive state-space search.

use crate::config::SharedLocs;
use crate::expr::{Expr, Op};
use crate::ids::{Loc, Reg, Val};
use std::collections::BTreeSet;
use std::fmt;

/// Read kinds (`rk ∈ RK`, Fig. 1), ordered `Plain ⊑ WeakAcquire ⊑ Acquire`.
///
/// `WeakAcquire` is ARMv8.3's LDAPR-style weak acquire (`wacq`); `Acquire`
/// is the strong load acquire (`acq`, ARM LDAR / RISC-V `.aq`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum ReadKind {
    /// Plain load (`pln`).
    #[default]
    Plain,
    /// Weak acquire (`wacq`).
    WeakAcquire,
    /// Strong acquire (`acq`).
    Acquire,
}

/// Write kinds (`wk ∈ WK`, Fig. 1), ordered `Plain ⊑ WeakRelease ⊑ Release`.
///
/// Only RISC-V features weak releases (§A.1); the model is uniform.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum WriteKind {
    /// Plain store (`pln`).
    #[default]
    Plain,
    /// Weak release (`wrel`).
    WeakRelease,
    /// Strong release (`rel`).
    Release,
}

/// The set of access directions a fence side talks about (`K ∈ FK`, Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AccessSet {
    /// Reads only.
    R,
    /// Writes only.
    W,
    /// Reads and writes.
    RW,
}

impl AccessSet {
    /// `R ⊑ self`: does the set include reads?
    pub fn includes_reads(self) -> bool {
        matches!(self, AccessSet::R | AccessSet::RW)
    }

    /// `W ⊑ self`: does the set include writes?
    pub fn includes_writes(self) -> bool {
        matches!(self, AccessSet::W | AccessSet::RW)
    }
}

/// A memory fence `fence_{K1,K2}` in RISC-V syntax (Fig. 5's `fence` rule):
/// orders program-order-earlier accesses in `pre` before program-order-later
/// accesses in `post`.
///
/// The ARM barriers are macros (§A.3): `dmb.sy = fence_{RW,RW}`,
/// `dmb.ld = fence_{R,RW}`, `dmb.st = fence_{W,W}`. RISC-V's `fence.tso` is
/// the sequence `fence_{R,R}; fence_{RW,W}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fence {
    /// Which earlier accesses are ordered (`K1`).
    pub pre: AccessSet,
    /// Which later accesses they are ordered before (`K2`).
    pub post: AccessSet,
}

impl Fence {
    /// ARM `dmb.sy` / RISC-V `fence rw,rw`: the full barrier.
    pub const FULL: Fence = Fence {
        pre: AccessSet::RW,
        post: AccessSet::RW,
    };
    /// ARM `dmb.ld` / RISC-V `fence r,rw`.
    pub const LD: Fence = Fence {
        pre: AccessSet::R,
        post: AccessSet::RW,
    };
    /// ARM `dmb.st` / RISC-V `fence w,w`.
    pub const ST: Fence = Fence {
        pre: AccessSet::W,
        post: AccessSet::W,
    };
    /// RISC-V `fence w,r` (mentioned in §A.1 as an additional barrier).
    pub const WR: Fence = Fence {
        pre: AccessSet::W,
        post: AccessSet::R,
    };
    /// RISC-V `fence r,r`.
    pub const RR: Fence = Fence {
        pre: AccessSet::R,
        post: AccessSet::R,
    };
    /// RISC-V `fence rw,w`.
    pub const RWW: Fence = Fence {
        pre: AccessSet::RW,
        post: AccessSet::W,
    };
}

/// The update performed by a single-instruction atomic read-modify-write
/// (ARMv8.1 LSE `CAS`/`SWP`/`LD<op>`, RISC-V `AMO<op>`).
///
/// Every op reads the old value into the destination register and
/// atomically stores a new value; `Cas` additionally compares the old
/// value against an expected value and only writes on a match.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RmwOp {
    /// Compare-and-swap: write the operand iff the old value equals the
    /// expected value (ARM `CAS`, RISC-V `lr/sc` idiom).
    Cas,
    /// Atomic exchange (ARM `SWP`, RISC-V `amoswap`).
    Swp,
    /// Atomic add (ARM `LDADD`, RISC-V `amoadd`).
    FetchAdd,
    /// Atomic bitwise and (ARM `LDCLR`-family, RISC-V `amoand`).
    FetchAnd,
    /// Atomic bitwise or (ARM `LDSET`, RISC-V `amoor`).
    FetchOr,
    /// Atomic bitwise xor (ARM `LDEOR`, RISC-V `amoxor`).
    FetchXor,
    /// Atomic signed maximum (ARM `LDSMAX`, RISC-V `amomax`).
    FetchMax,
}

impl RmwOp {
    /// All ops, for generators and property tests.
    pub const ALL: [RmwOp; 7] = [
        RmwOp::Cas,
        RmwOp::Swp,
        RmwOp::FetchAdd,
        RmwOp::FetchAnd,
        RmwOp::FetchOr,
        RmwOp::FetchXor,
        RmwOp::FetchMax,
    ];

    /// The value written by a successful RMW with this op.
    pub fn apply(self, old: Val, operand: Val) -> Val {
        match self {
            // a *successful* CAS writes the operand (the "new" value)
            RmwOp::Cas | RmwOp::Swp => operand,
            RmwOp::FetchAdd => Op::Add.apply(old, operand),
            RmwOp::FetchAnd => Op::BitAnd.apply(old, operand),
            RmwOp::FetchOr => Op::BitOr.apply(old, operand),
            RmwOp::FetchXor => Op::BitXor.apply(old, operand),
            RmwOp::FetchMax => Op::Max.apply(old, operand),
        }
    }

    /// The data expression of the canonical desugaring: what the store
    /// exclusive of the retry loop writes, given the loaded old value in
    /// `old` (see [`desugar_rmws`]).
    pub fn data_expr(self, old: Reg, operand: Expr) -> Expr {
        match self {
            RmwOp::Cas | RmwOp::Swp => operand,
            RmwOp::FetchAdd => Expr::binop(Op::Add, Expr::reg(old), operand),
            RmwOp::FetchAnd => Expr::binop(Op::BitAnd, Expr::reg(old), operand),
            RmwOp::FetchOr => Expr::binop(Op::BitOr, Expr::reg(old), operand),
            RmwOp::FetchXor => Expr::binop(Op::BitXor, Expr::reg(old), operand),
            RmwOp::FetchMax => Expr::binop(Op::Max, Expr::reg(old), operand),
        }
    }

    /// The concrete-syntax mnemonic (without an ordering suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            RmwOp::Cas => "cas",
            RmwOp::Swp => "amo_swap",
            RmwOp::FetchAdd => "amo_add",
            RmwOp::FetchAnd => "amo_and",
            RmwOp::FetchOr => "amo_or",
            RmwOp::FetchXor => "amo_xor",
            RmwOp::FetchMax => "amo_max",
        }
    }
}

/// An index into a thread's statement arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StmtId(pub u32);

/// A statement (`s ∈ St`, Fig. 1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `skip`.
    Skip,
    /// Register assignment `r := e`.
    Assign {
        /// Destination register.
        reg: Reg,
        /// Assigned expression.
        expr: Expr,
    },
    /// `r := load_{xcl,rk} [e]`.
    Load {
        /// Destination register.
        reg: Reg,
        /// Address expression.
        addr: Expr,
        /// Acquire strength.
        kind: ReadKind,
        /// Load exclusive (load reserve)?
        exclusive: bool,
    },
    /// `r_succ := store_{xcl,wk} [e1] e2`. Non-exclusive stores also write a
    /// success bit (always 0) to `succ`, "to an otherwise unused register"
    /// (§3); the builder allocates a scratch register for them.
    Store {
        /// Success-bit register (`rsucc`).
        succ: Reg,
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// Release strength.
        kind: WriteKind,
        /// Store exclusive (store conditional)?
        exclusive: bool,
    },
    /// A single-instruction atomic read-modify-write (ARMv8.1 LSE /
    /// RISC-V AMO): atomically read the old value into `dst` and store the
    /// updated value, in one machine transition. Semantically equivalent
    /// to the canonical load-/store-exclusive retry loop
    /// ([`desugar_rmws`]) executed without interruption; the machine
    /// reuses the exclusive-pair machinery (pairing bank, `atomic`
    /// predicate) internally.
    ///
    /// The address must not depend on `dst` (the desugaring would
    /// re-evaluate it after the load clobbers `dst`).
    Rmw {
        /// The update performed.
        op: RmwOp,
        /// Destination register: receives the value read (the "old" value).
        dst: Reg,
        /// Success-flag register: 0 on a successful write, 1 when a CAS
        /// observed a non-expected value and wrote nothing (other ops
        /// always succeed).
        succ: Reg,
        /// Address expression.
        addr: Expr,
        /// CAS only: the expected value, compared against the old value
        /// (evaluated after `dst` holds the old value, like the desugared
        /// guard). `None` for every other op.
        expected: Option<Expr>,
        /// The operand: the stored value for `Cas`/`Swp`, the second
        /// argument of the fetch-op otherwise.
        operand: Expr,
        /// Acquire strength of the read half.
        rk: ReadKind,
        /// Release strength of the write half.
        wk: WriteKind,
    },
    /// A `fence_{K1,K2}` barrier (covers the ARM `dmb.*` macros).
    Fence(Fence),
    /// ARM `isb` (no RISC-V equivalent, §A.1).
    Isb,
    /// Sequential composition `s1; s2`.
    Seq(StmtId, StmtId),
    /// Conditional `if (e) s1 s2`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond ≠ 0`.
        then_branch: StmtId,
        /// Taken when `cond = 0`.
        else_branch: StmtId,
    },
    /// Loop `while (e) s`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: StmtId,
    },
}

/// An over-approximation of the locations a statement subtree may access
/// (its *may-read* or *may-write* set), precomputed per arena node when a
/// [`ThreadCode`] is finished. Used by the partial-order reduction to
/// decide whether a thread's remaining continuation can ever write (or
/// read) a location — an access whose address expression is not a
/// constant may touch [`MayAccess::Any`] location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MayAccess {
    /// Some access's address is dynamic: any location may be touched.
    Any,
    /// Only the listed locations may be touched (possibly none).
    Locs(BTreeSet<Loc>),
}

impl MayAccess {
    /// The empty set.
    pub fn none() -> MayAccess {
        MayAccess::Locs(BTreeSet::new())
    }

    /// Whether `loc` may be touched.
    pub fn contains(&self, loc: Loc) -> bool {
        match self {
            MayAccess::Any => true,
            MayAccess::Locs(s) => s.contains(&loc),
        }
    }

    /// Whether no location may be touched.
    pub fn is_empty(&self) -> bool {
        matches!(self, MayAccess::Locs(s) if s.is_empty())
    }

    /// Whether any *shared* location may be touched (under the given
    /// shared-location declaration). A thread whose remaining code
    /// cannot write any shared location is a *pure observer*: its steps
    /// never append to memory, promise, or affect any other thread.
    pub fn any_shared(&self, shared: &SharedLocs) -> bool {
        match self {
            MayAccess::Any => true,
            MayAccess::Locs(s) => s.iter().any(|&l| shared.is_shared(l)),
        }
    }

    /// Whether the sets may share a location.
    pub fn intersects(&self, other: &MayAccess) -> bool {
        match (self, other) {
            (MayAccess::Any, o) | (o, MayAccess::Any) => o != &MayAccess::none(),
            (MayAccess::Locs(a), MayAccess::Locs(b)) => a.iter().any(|l| b.contains(l)),
        }
    }

    /// Merge `other` into `self`.
    pub fn absorb(&mut self, other: &MayAccess) {
        match (&mut *self, other) {
            (MayAccess::Any, _) => {}
            (_, MayAccess::Any) => *self = MayAccess::Any,
            (MayAccess::Locs(a), MayAccess::Locs(b)) => a.extend(b.iter().copied()),
        }
    }

    /// The set a single address expression may denote.
    pub fn of_addr(addr: &Expr) -> MayAccess {
        match addr {
            Expr::Const(v) => MayAccess::Locs(BTreeSet::from([Loc::from(*v)])),
            _ => MayAccess::Any,
        }
    }
}

/// The may-read/may-write sets of every node in a statement arena.
/// Children are always allocated before their parents (the builders
/// append bottom-up), so one forward pass suffices.
fn may_access_tables(stmts: &[Stmt]) -> (Vec<MayAccess>, Vec<MayAccess>) {
    let mut reads: Vec<MayAccess> = Vec::with_capacity(stmts.len());
    let mut writes: Vec<MayAccess> = Vec::with_capacity(stmts.len());
    for s in stmts {
        let (r, w) = match s {
            Stmt::Skip | Stmt::Assign { .. } | Stmt::Fence(_) | Stmt::Isb => {
                (MayAccess::none(), MayAccess::none())
            }
            Stmt::Load { addr, .. } => (MayAccess::of_addr(addr), MayAccess::none()),
            Stmt::Store { addr, .. } => (MayAccess::none(), MayAccess::of_addr(addr)),
            Stmt::Rmw { addr, .. } => (MayAccess::of_addr(addr), MayAccess::of_addr(addr)),
            Stmt::Seq(a, b) => {
                let mut r = reads[a.0 as usize].clone();
                r.absorb(&reads[b.0 as usize]);
                let mut w = writes[a.0 as usize].clone();
                w.absorb(&writes[b.0 as usize]);
                (r, w)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let mut r = reads[then_branch.0 as usize].clone();
                r.absorb(&reads[else_branch.0 as usize]);
                let mut w = writes[then_branch.0 as usize].clone();
                w.absorb(&writes[else_branch.0 as usize]);
                (r, w)
            }
            Stmt::While { body, .. } => (
                reads[body.0 as usize].clone(),
                writes[body.0 as usize].clone(),
            ),
        };
        reads.push(r);
        writes.push(w);
    }
    (reads, writes)
}

/// The code of a single thread: a statement arena plus its entry point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadCode {
    stmts: Vec<Stmt>,
    entry: StmtId,
    /// Per-statement may-read sets (parallel to `stmts`).
    may_read: Vec<MayAccess>,
    /// Per-statement may-write sets (parallel to `stmts`).
    may_write: Vec<MayAccess>,
}

impl ThreadCode {
    /// Look up a statement by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this thread's arena.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// The entry statement of the thread.
    pub fn entry(&self) -> StmtId {
        self.entry
    }

    /// The precomputed may-write set of the subtree rooted at `id`: an
    /// over-approximation of the locations it can store to.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this thread's arena.
    pub fn may_write(&self, id: StmtId) -> &MayAccess {
        &self.may_write[id.0 as usize]
    }

    /// The precomputed may-read set of the subtree rooted at `id`: an
    /// over-approximation of the locations it can load from.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this thread's arena.
    pub fn may_read(&self, id: StmtId) -> &MayAccess {
        &self.may_read[id.0 as usize]
    }

    /// Number of statements in the arena.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the arena holds only the entry `skip` of an empty thread.
    pub fn is_empty(&self) -> bool {
        matches!(self.stmt(self.entry), Stmt::Skip)
    }

    /// Number of store statements in the arena (used by the axiomatic
    /// model's value-pool chain bound). RMWs count: each successful RMW
    /// produces one write.
    pub fn store_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Store { .. } | Stmt::Rmw { .. }))
            .count()
    }

    /// Number of single-instruction RMW statements in the arena.
    pub fn rmw_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Rmw { .. }))
            .count()
    }

    /// Count of "instruction-like" statements (loads, stores, fences, isb,
    /// assignments) — the analogue of the paper's Table 1 LOC column.
    pub fn instruction_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::Load { .. }
                        | Stmt::Store { .. }
                        | Stmt::Rmw { .. }
                        | Stmt::Fence(_)
                        | Stmt::Isb
                        | Stmt::Assign { .. }
                )
            })
            .count()
    }
}

/// A complete program: a parallel composition of threads (`p ::= s1 ‖ … ‖ sn`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    threads: Vec<ThreadCode>,
}

impl Program {
    /// Build a program from per-thread code.
    pub fn new(threads: Vec<ThreadCode>) -> Program {
        Program { threads }
    }

    /// The threads of the program, in thread-id order.
    pub fn threads(&self) -> &[ThreadCode] {
        &self.threads
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total instruction count across threads (Table 1's LOC analogue).
    pub fn instruction_count(&self) -> usize {
        self.threads.iter().map(ThreadCode::instruction_count).sum()
    }

    /// Total single-instruction RMW count across threads.
    pub fn rmw_count(&self) -> usize {
        self.threads.iter().map(ThreadCode::rmw_count).sum()
    }
}

/// Builder for a single thread's code.
///
/// Statement constructors return [`StmtId`]s; [`CodeBuilder::finish`] takes
/// the entry statement. The builder provides the surface conveniences of
/// the paper's syntax: plain/acquire/release/exclusive accesses, all
/// barriers, and `seq` for statement lists.
#[derive(Debug, Default)]
pub struct CodeBuilder {
    stmts: Vec<Stmt>,
    scratch: u32,
}

/// Register space reserved for compiler-internal scratch registers (success
/// bits of non-exclusive stores). User code should stay below this.
pub const SCRATCH_REG_BASE: u32 = 1_000_000;

impl CodeBuilder {
    /// Fresh builder.
    pub fn new() -> CodeBuilder {
        CodeBuilder::default()
    }

    fn push(&mut self, s: Stmt) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(s);
        id
    }

    fn fresh_scratch(&mut self) -> Reg {
        let r = Reg(SCRATCH_REG_BASE + self.scratch);
        self.scratch += 1;
        r
    }

    /// `skip`.
    pub fn skip(&mut self) -> StmtId {
        self.push(Stmt::Skip)
    }

    /// `r := e`.
    pub fn assign(&mut self, reg: Reg, expr: impl Into<Expr>) -> StmtId {
        self.push(Stmt::Assign {
            reg,
            expr: expr.into(),
        })
    }

    /// Plain load `r := load [addr]`.
    pub fn load(&mut self, reg: Reg, addr: impl Into<Expr>) -> StmtId {
        self.load_kind(reg, addr, ReadKind::Plain, false)
    }

    /// Acquire load `r := load_acq [addr]`.
    pub fn load_acq(&mut self, reg: Reg, addr: impl Into<Expr>) -> StmtId {
        self.load_kind(reg, addr, ReadKind::Acquire, false)
    }

    /// Weak-acquire load `r := load_wacq [addr]`.
    pub fn load_wacq(&mut self, reg: Reg, addr: impl Into<Expr>) -> StmtId {
        self.load_kind(reg, addr, ReadKind::WeakAcquire, false)
    }

    /// Load exclusive (load reserve) `r := load_x [addr]`.
    pub fn load_excl(&mut self, reg: Reg, addr: impl Into<Expr>) -> StmtId {
        self.load_kind(reg, addr, ReadKind::Plain, true)
    }

    /// Acquire load exclusive `r := load_x_acq [addr]`.
    pub fn load_excl_acq(&mut self, reg: Reg, addr: impl Into<Expr>) -> StmtId {
        self.load_kind(reg, addr, ReadKind::Acquire, true)
    }

    /// General load with explicit kind and exclusivity.
    pub fn load_kind(
        &mut self,
        reg: Reg,
        addr: impl Into<Expr>,
        kind: ReadKind,
        exclusive: bool,
    ) -> StmtId {
        self.push(Stmt::Load {
            reg,
            addr: addr.into(),
            kind,
            exclusive,
        })
    }

    /// Plain store `store [addr] data`.
    pub fn store(&mut self, addr: impl Into<Expr>, data: impl Into<Expr>) -> StmtId {
        let succ = self.fresh_scratch();
        self.store_kind(succ, addr, data, WriteKind::Plain, false)
    }

    /// Release store `store_rel [addr] data`.
    pub fn store_rel(&mut self, addr: impl Into<Expr>, data: impl Into<Expr>) -> StmtId {
        let succ = self.fresh_scratch();
        self.store_kind(succ, addr, data, WriteKind::Release, false)
    }

    /// Weak-release store `store_wrel [addr] data`.
    pub fn store_wrel(&mut self, addr: impl Into<Expr>, data: impl Into<Expr>) -> StmtId {
        let succ = self.fresh_scratch();
        self.store_kind(succ, addr, data, WriteKind::WeakRelease, false)
    }

    /// Store exclusive (store conditional): `succ := store_x [addr] data`.
    pub fn store_excl(
        &mut self,
        succ: Reg,
        addr: impl Into<Expr>,
        data: impl Into<Expr>,
    ) -> StmtId {
        self.store_kind(succ, addr, data, WriteKind::Plain, true)
    }

    /// Release store exclusive: `succ := store_x_rel [addr] data`.
    pub fn store_excl_rel(
        &mut self,
        succ: Reg,
        addr: impl Into<Expr>,
        data: impl Into<Expr>,
    ) -> StmtId {
        self.store_kind(succ, addr, data, WriteKind::Release, true)
    }

    /// General store with explicit kind and exclusivity.
    pub fn store_kind(
        &mut self,
        succ: Reg,
        addr: impl Into<Expr>,
        data: impl Into<Expr>,
        kind: WriteKind,
        exclusive: bool,
    ) -> StmtId {
        self.push(Stmt::Store {
            succ,
            addr: addr.into(),
            data: data.into(),
            kind,
            exclusive,
        })
    }

    /// General single-instruction RMW with explicit success register and
    /// strengths. `expected` must be `Some` exactly for [`RmwOp::Cas`].
    ///
    /// # Panics
    ///
    /// Panics if `expected` presence does not match the op.
    #[allow(clippy::too_many_arguments)]
    pub fn rmw_kind(
        &mut self,
        op: RmwOp,
        dst: Reg,
        succ: Reg,
        addr: impl Into<Expr>,
        expected: Option<Expr>,
        operand: impl Into<Expr>,
        rk: ReadKind,
        wk: WriteKind,
    ) -> StmtId {
        assert_eq!(
            expected.is_some(),
            op == RmwOp::Cas,
            "expected value iff CAS"
        );
        let addr = addr.into();
        // the desugaring re-evaluates the address after the load clobbers
        // `dst`, so a dst-dependent address has no coherent semantics
        assert!(
            !addr.registers().contains(&dst),
            "RMW address must not depend on the destination register {dst}"
        );
        self.push(Stmt::Rmw {
            op,
            dst,
            succ,
            addr,
            expected,
            operand: operand.into(),
            rk,
            wk,
        })
    }

    /// Plain CAS `dst = cas(addr, expected, new)` (success flag in a
    /// scratch register; success is observable as `dst == expected`).
    pub fn cas(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
    ) -> StmtId {
        self.cas_kind(dst, addr, expected, new, ReadKind::Plain, WriteKind::Plain)
    }

    /// Acquire CAS `dst = cas_acq(addr, expected, new)`.
    pub fn cas_acq(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
    ) -> StmtId {
        self.cas_kind(
            dst,
            addr,
            expected,
            new,
            ReadKind::Acquire,
            WriteKind::Plain,
        )
    }

    /// Release CAS `dst = cas_rel(addr, expected, new)`.
    pub fn cas_rel(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
    ) -> StmtId {
        self.cas_kind(
            dst,
            addr,
            expected,
            new,
            ReadKind::Plain,
            WriteKind::Release,
        )
    }

    /// Acquire-release CAS `dst = cas_acq_rel(addr, expected, new)`.
    pub fn cas_acq_rel(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
    ) -> StmtId {
        self.cas_kind(
            dst,
            addr,
            expected,
            new,
            ReadKind::Acquire,
            WriteKind::Release,
        )
    }

    /// CAS with explicit strengths (success flag in a scratch register).
    pub fn cas_kind(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
        rk: ReadKind,
        wk: WriteKind,
    ) -> StmtId {
        let succ = self.fresh_scratch();
        self.rmw_kind(
            RmwOp::Cas,
            dst,
            succ,
            addr,
            Some(expected.into()),
            new,
            rk,
            wk,
        )
    }

    /// Non-CAS atomic `dst = amo_<op>(addr, operand)` with explicit
    /// strengths.
    ///
    /// # Panics
    ///
    /// Panics if `op` is [`RmwOp::Cas`] (use [`CodeBuilder::cas_kind`]).
    pub fn amo_kind(
        &mut self,
        op: RmwOp,
        dst: Reg,
        addr: impl Into<Expr>,
        operand: impl Into<Expr>,
        rk: ReadKind,
        wk: WriteKind,
    ) -> StmtId {
        let succ = self.fresh_scratch();
        self.rmw_kind(op, dst, succ, addr, None, operand, rk, wk)
    }

    /// Plain atomic exchange `dst = amo_swap(addr, operand)`.
    pub fn swp(&mut self, dst: Reg, addr: impl Into<Expr>, operand: impl Into<Expr>) -> StmtId {
        self.amo_kind(
            RmwOp::Swp,
            dst,
            addr,
            operand,
            ReadKind::Plain,
            WriteKind::Plain,
        )
    }

    /// Plain atomic fetch-add `dst = amo_add(addr, operand)`.
    pub fn fetch_add(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        operand: impl Into<Expr>,
    ) -> StmtId {
        self.amo_kind(
            RmwOp::FetchAdd,
            dst,
            addr,
            operand,
            ReadKind::Plain,
            WriteKind::Plain,
        )
    }

    /// A `fence_{K1,K2}` barrier (or an ARM `dmb.*` via the [`Fence`]
    /// constants).
    pub fn fence(&mut self, f: Fence) -> StmtId {
        self.push(Stmt::Fence(f))
    }

    /// ARM `dmb.sy`.
    pub fn dmb_sy(&mut self) -> StmtId {
        self.fence(Fence::FULL)
    }

    /// ARM `dmb.ld`.
    pub fn dmb_ld(&mut self) -> StmtId {
        self.fence(Fence::LD)
    }

    /// ARM `dmb.st`.
    pub fn dmb_st(&mut self) -> StmtId {
        self.fence(Fence::ST)
    }

    /// RISC-V `fence.tso`, the macro `fence_{R,R}; fence_{RW,W}` (§A.3).
    pub fn fence_tso(&mut self) -> StmtId {
        let a = self.fence(Fence::RR);
        let b = self.fence(Fence::RWW);
        self.push(Stmt::Seq(a, b))
    }

    /// ARM `isb`.
    pub fn isb(&mut self) -> StmtId {
        self.push(Stmt::Isb)
    }

    /// `s1; s2`.
    pub fn then(&mut self, s1: StmtId, s2: StmtId) -> StmtId {
        self.push(Stmt::Seq(s1, s2))
    }

    /// Right-nested sequence of statements; empty input yields `skip`.
    pub fn seq(&mut self, stmts: &[StmtId]) -> StmtId {
        match stmts.split_last() {
            None => self.skip(),
            Some((&last, rest)) => {
                let mut acc = last;
                for &s in rest.iter().rev() {
                    acc = self.push(Stmt::Seq(s, acc));
                }
                acc
            }
        }
    }

    /// `if (cond) then_branch else_branch`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        then_branch: StmtId,
        else_branch: StmtId,
    ) -> StmtId {
        self.push(Stmt::If {
            cond: cond.into(),
            then_branch,
            else_branch,
        })
    }

    /// `if (cond) then_branch skip`.
    pub fn if_then(&mut self, cond: impl Into<Expr>, then_branch: StmtId) -> StmtId {
        let e = self.skip();
        self.if_else(cond, then_branch, e)
    }

    /// `while (cond) body`.
    pub fn while_loop(&mut self, cond: impl Into<Expr>, body: StmtId) -> StmtId {
        self.push(Stmt::While {
            cond: cond.into(),
            body,
        })
    }

    /// Finish the thread with the given entry statement.
    pub fn finish(self, entry: StmtId) -> ThreadCode {
        assert!(
            (entry.0 as usize) < self.stmts.len(),
            "entry statement out of range"
        );
        let (may_read, may_write) = may_access_tables(&self.stmts);
        ThreadCode {
            stmts: self.stmts,
            entry,
            may_read,
            may_write,
        }
    }

    /// Finish the thread as the sequence of the given statements.
    pub fn finish_seq(mut self, stmts: &[StmtId]) -> ThreadCode {
        let entry = self.seq(stmts);
        self.finish(entry)
    }
}

/// Register space used by [`desugar_rmws`] for its retry-loop flags:
/// above [`SCRATCH_REG_BASE`] (so the flags stay hidden from outcomes)
/// and disjoint from the scratch registers the original builder may have
/// allocated.
pub const DESUGAR_REG_BASE: u32 = 2_000_000;

/// Rewrite every [`Stmt::Rmw`] of `code` into its canonical
/// load-/store-exclusive retry loop:
///
/// ```text
/// flag = 0
/// while (flag == 0) {
///     dst = loadx_rk(addr)
///     // CAS only:
///     if (dst == expected) { succ = storex_wk(addr, new); if (succ == 0) { flag = 1 } }
///     else                 { succ = 1; flag = 1 }
///     // other ops:
///     succ = storex_wk(addr, op(dst, operand)); if (succ == 0) { flag = 1 }
/// }
/// ```
///
/// This is the reference semantics of the single-instruction RMW: its
/// outcome sets equal the desugared loop's on every strategy and
/// architecture (`tests/rmw_equivalence.rs`), but each desugared RMW
/// costs a fuel-bounded loop of exclusive attempts (extra transitions,
/// failure branches) instead of one transition — the LL/SC-vs-LSE
/// ablation measures exactly that gap.
pub fn desugar_rmws(code: &ThreadCode) -> ThreadCode {
    let mut d = Desugarer {
        b: CodeBuilder::new(),
        fresh: 0,
    };
    let entry = d.copy(code, code.entry());
    d.b.finish(entry)
}

/// [`desugar_rmws`] applied to every thread of a program.
pub fn desugar_program_rmws(program: &Program) -> Program {
    Program::new(program.threads().iter().map(desugar_rmws).collect())
}

struct Desugarer {
    b: CodeBuilder,
    fresh: u32,
}

impl Desugarer {
    fn fresh_flag(&mut self) -> Reg {
        let r = Reg(DESUGAR_REG_BASE + self.fresh);
        self.fresh += 1;
        r
    }

    fn copy(&mut self, code: &ThreadCode, id: StmtId) -> StmtId {
        match code.stmt(id).clone() {
            Stmt::Skip => self.b.skip(),
            Stmt::Assign { reg, expr } => self.b.assign(reg, expr),
            Stmt::Load {
                reg,
                addr,
                kind,
                exclusive,
            } => self.b.load_kind(reg, addr, kind, exclusive),
            Stmt::Store {
                succ,
                addr,
                data,
                kind,
                exclusive,
            } => self.b.store_kind(succ, addr, data, kind, exclusive),
            Stmt::Fence(f) => self.b.fence(f),
            Stmt::Isb => self.b.isb(),
            Stmt::Seq(a, c) => {
                let a = self.copy(code, a);
                let c = self.copy(code, c);
                self.b.then(a, c)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let t = self.copy(code, then_branch);
                let e = self.copy(code, else_branch);
                self.b.if_else(cond, t, e)
            }
            Stmt::While { cond, body } => {
                let body = self.copy(code, body);
                self.b.while_loop(cond, body)
            }
            Stmt::Rmw {
                op,
                dst,
                succ,
                addr,
                expected,
                operand,
                rk,
                wk,
            } => {
                let flag = self.fresh_flag();
                let b = &mut self.b;
                let init = b.assign(flag, Expr::val(0));
                let ld = b.load_kind(dst, addr.clone(), rk, true);
                let data = op.data_expr(dst, operand);
                let stx = b.store_kind(succ, addr, data, wk, true);
                let set = b.assign(flag, Expr::val(1));
                let on_success = b.if_then(Expr::reg(succ).eq(Expr::val(0)), set);
                let attempt = b.then(stx, on_success);
                let body = match expected {
                    None => b.then(ld, attempt),
                    Some(exp) => {
                        let fail_succ = b.assign(succ, Expr::val(1));
                        let fail_set = b.assign(flag, Expr::val(1));
                        let fail = b.then(fail_succ, fail_set);
                        let guard = b.if_else(Expr::reg(dst).eq(exp), attempt, fail);
                        b.then(ld, guard)
                    }
                };
                let w = b.while_loop(Expr::reg(flag).eq(Expr::val(0)), body);
                b.then(init, w)
            }
        }
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    #[test]
    fn kinds_are_ordered_as_in_the_paper() {
        assert!(ReadKind::Plain < ReadKind::WeakAcquire);
        assert!(ReadKind::WeakAcquire < ReadKind::Acquire);
        assert!(WriteKind::Plain < WriteKind::WeakRelease);
        assert!(WriteKind::WeakRelease < WriteKind::Release);
    }

    #[test]
    fn access_sets_decompose() {
        assert!(AccessSet::RW.includes_reads() && AccessSet::RW.includes_writes());
        assert!(AccessSet::R.includes_reads() && !AccessSet::R.includes_writes());
        assert!(!AccessSet::W.includes_reads() && AccessSet::W.includes_writes());
    }

    #[test]
    fn builder_seq_of_empty_is_skip() {
        let mut b = CodeBuilder::new();
        let s = b.seq(&[]);
        let code = b.finish(s);
        assert!(matches!(code.stmt(code.entry()), Stmt::Skip));
    }

    #[test]
    fn builder_seq_nests_right() {
        let mut b = CodeBuilder::new();
        let s1 = b.skip();
        let s2 = b.skip();
        let s3 = b.skip();
        let seq = b.seq(&[s1, s2, s3]);
        let code = b.finish(seq);
        match code.stmt(code.entry()) {
            Stmt::Seq(a, rest) => {
                assert_eq!(*a, s1);
                match code.stmt(*rest) {
                    Stmt::Seq(b_, c) => {
                        assert_eq!(*b_, s2);
                        assert_eq!(*c, s3);
                    }
                    other => panic!("expected Seq, got {other:?}"),
                }
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn plain_stores_get_scratch_success_registers() {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(1));
        let s2 = b.store(Expr::val(0), Expr::val(2));
        let code = b.finish_seq(&[s1, s2]);
        let succs: Vec<Reg> = code
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Store { succ, .. } => Some(*succ),
                _ => None,
            })
            .collect();
        assert_eq!(succs.len(), 2);
        assert_ne!(succs[0], succs[1]);
        assert!(succs.iter().all(|r| r.0 >= SCRATCH_REG_BASE));
    }

    #[test]
    fn instruction_count_counts_memory_ops_and_fences() {
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(0), Expr::val(0));
        let f = b.dmb_sy();
        let s = b.store(Expr::val(1), Expr::val(1));
        let code = b.finish_seq(&[l, f, s]);
        assert_eq!(code.instruction_count(), 3);
    }

    #[test]
    fn fence_tso_is_the_two_fence_macro() {
        let mut b = CodeBuilder::new();
        let t = b.fence_tso();
        let code = b.finish(t);
        match code.stmt(code.entry()) {
            Stmt::Seq(a, b_) => {
                assert_eq!(*code.stmt(*a), Stmt::Fence(Fence::RR));
                assert_eq!(*code.stmt(*b_), Stmt::Fence(Fence::RWW));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }
}
