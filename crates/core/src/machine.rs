//! The machine: thread pool × memory, and the operational rules of Fig. 5.
//!
//! Transitions come in three layers, mirroring the paper:
//!
//! * *thread-local steps* (`read`, `fulfil`, `exclusive-failure`, `fence`,
//!   `isb`, `register`, `branch`, `while`, …) — [`Machine::thread_steps`] /
//!   [`Machine::apply`];
//! * *thread steps* add `promise`;
//! * *machine steps* are thread steps filtered by certification (r24) —
//!   [`Machine::machine_steps`], using [`crate::certify::find_and_certify`].
//!
//! Deterministic statements (assignments, branches, fences, `isb`,
//! non-shared accesses) are exposed as a single [`TransitionKind::Internal`]
//! step; the nondeterministic choices are the read timestamp of a load,
//! which promise a store fulfils (or a fresh normal write), the failure of
//! a store exclusive, and promises themselves.

use crate::config::{Arch, Config};
use crate::expr::Expr;
use crate::fingerprint::{Fingerprint, FpHasher};
use crate::footprint::{Footprint, LocSet};
use crate::ids::{Loc, Reg, TId, Timestamp, Val, View};
use crate::memory::{Memory, Msg};
use crate::stmt::{MayAccess, Program, ReadKind, RmwOp, Stmt, StmtId, ThreadCode, WriteKind};
use crate::thread::{ExclBank, Forward, RegFile, StuckReason, ThreadState};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A continuation: the stack of statement ids still to run (next on top).
///
/// The stack is behind an [`Arc`] with copy-on-write mutation, so
/// cloning a thread — which exploration does once per transition — is a
/// reference-count bump; only the acting thread's stack is ever copied.
/// Reads go through [`Deref`] to `[StmtId]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cont(Arc<Vec<StmtId>>);

impl Cont {
    /// A continuation from the given stack (next statement last).
    pub fn new(stack: Vec<StmtId>) -> Cont {
        Cont(Arc::new(stack))
    }

    /// Push a statement on top. Copy-on-write.
    pub fn push(&mut self, s: StmtId) {
        Arc::make_mut(&mut self.0).push(s);
    }

    /// Pop the top statement. Copy-on-write.
    pub fn pop(&mut self) -> Option<StmtId> {
        Arc::make_mut(&mut self.0).pop()
    }

    /// Force a private copy of the stack (see [`Machine::deep_clone`]).
    #[doc(hidden)]
    pub fn unshare(&mut self) {
        Arc::make_mut(&mut self.0);
    }
}

impl Deref for Cont {
    type Target = [StmtId];

    fn deref(&self) -> &[StmtId] {
        &self.0
    }
}

/// A thread of the pool: its continuation (a stack of statement ids; the
/// next statement is the last element) and its state (`Thread ≝ St × TState`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ThreadInstance {
    /// Remaining code, as a stack of arena ids (next on top).
    pub cont: Cont,
    /// The thread state.
    pub state: ThreadState,
}

impl ThreadInstance {
    /// Whether the thread has run its whole program (promises may remain).
    pub fn is_done(&self) -> bool {
        self.cont.is_empty()
    }

    /// Fold the thread (continuation + state) into a state fingerprint.
    pub fn feed(&self, h: &mut FpHasher) {
        h.write_len(self.cont.len());
        for s in self.cont.iter() {
            h.write_u32(s.0);
        }
        self.state.feed(h);
    }

    /// Force private copies of all shared structure (see
    /// [`Machine::deep_clone`]).
    #[doc(hidden)]
    pub fn unshare(&mut self) {
        self.cont.unshare();
        self.state.unshare();
    }
}

/// One nondeterministic choice a thread can take.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TransitionKind {
    /// Run the next deterministic statement (assignment, fence, `isb`,
    /// branch, loop test, or an access to a non-shared location).
    Internal,
    /// The next load reads from timestamp `t` (the `read` rule).
    Read {
        /// Timestamp read from.
        t: Timestamp,
    },
    /// The next store fulfils the outstanding promise at `t` (the `fulfil`
    /// rule).
    Fulfil {
        /// Promise being fulfilled.
        t: Timestamp,
    },
    /// The next store executes as a *normal write*: a promise at the end of
    /// memory immediately followed by its fulfilment (r20).
    WriteNormal,
    /// The next store exclusive fails (the `exclusive-failure` rule).
    ExclFail,
    /// The next single-instruction RMW reads from `tr` and atomically
    /// writes: fulfilling the outstanding promise `tw`, or (`tw = None`)
    /// as a *normal write* at the end of memory (r20). The read and the
    /// write happen in one transition; `atomic(M, l, tid, tr, tw)` must
    /// hold, exactly as for a paired exclusive. A CAS observing a
    /// non-expected value takes a [`TransitionKind::Read`] instead (the
    /// read half alone, no write).
    Rmw {
        /// Timestamp the read half reads from.
        tr: Timestamp,
        /// Promise fulfilled by the write half (`None`: fresh normal
        /// write at the end of memory).
        tw: Option<Timestamp>,
    },
    /// Promise the write `msg`, appending it to memory (the `promise` rule).
    Promise {
        /// The promised message.
        msg: Msg,
    },
}

impl TransitionKind {
    /// Whether applying this transition appends a *fresh* write to memory
    /// (a store or RMW executing as a normal write, r20) — as opposed to
    /// fulfilling an existing promise. The promise-first phase-2 searches
    /// skip exactly these.
    pub fn appends_write(&self) -> bool {
        matches!(
            self,
            TransitionKind::WriteNormal | TransitionKind::Rmw { tw: None, .. }
        )
    }
}

/// A transition: a thread plus its choice.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Transition {
    /// Acting thread.
    pub tid: TId,
    /// The choice taken.
    pub kind: TransitionKind,
}

impl Transition {
    /// Convenience constructor.
    pub fn new(tid: TId, kind: TransitionKind) -> Transition {
        Transition { tid, kind }
    }
}

/// What a successfully applied transition did (for traces and debugging).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepEvent {
    /// Register assignment `r := v`.
    Assigned(Reg, Val),
    /// A branch (or loop test) evaluated, taking the given direction.
    Branched(bool),
    /// A fence executed.
    Fenced,
    /// An `isb` executed.
    Isb,
    /// A non-shared-location load observed the given value.
    LocalRead(Loc, Val),
    /// A non-shared-location store.
    LocalWrite(Loc, Val),
    /// A (shared) load read `loc = val` from timestamp `t`.
    DidRead {
        /// Location read.
        loc: Loc,
        /// Value obtained.
        val: Val,
        /// Timestamp read from.
        t: Timestamp,
    },
    /// A store fulfilled (or normally wrote) `loc = val` at `t`.
    DidWrite {
        /// Location written.
        loc: Loc,
        /// Value written.
        val: Val,
        /// Timestamp of the write.
        t: Timestamp,
        /// The store's pre-view (used by §B's promise qualification).
        pre_view: View,
    },
    /// A store exclusive failed.
    ExclFailed,
    /// A single-instruction RMW read `old` from `tr` and atomically wrote
    /// `new` at `tw`. `pre_view` is the write's pre-view *joined with the
    /// read's post-view* — i.e. the §B promise-qualification bound
    /// `νpre ⊔ coh-before-the-write` minus the pre-transition coherence
    /// view, which certification joins back in.
    DidRmw {
        /// Location updated.
        loc: Loc,
        /// Value the read half obtained.
        old: Val,
        /// Value the write half wrote.
        new: Val,
        /// Timestamp read from.
        tr: Timestamp,
        /// Timestamp written at.
        tw: Timestamp,
        /// Write pre-view ⊔ read post-view (see above).
        pre_view: View,
    },
    /// A promise was made at timestamp `t`.
    Promised(Msg, Timestamp),
    /// The loop bound was exhausted; the thread is stuck.
    LoopBoundHit,
}

/// Errors from applying a transition that is not enabled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepError {
    /// The thread has no code left.
    ThreadDone,
    /// The thread is stuck (loop bound exhausted).
    ThreadStuck,
    /// The transition kind does not match the thread's next statement.
    WrongShape,
    /// The read timestamp is not a write to the load's location.
    NoSuchWrite,
    /// The read would violate the no-newer-seen-write condition (r2/r12).
    ReadSuperseded,
    /// The fulfilled timestamp is not an outstanding promise of the thread,
    /// or its message does not match the store.
    NotAPromise,
    /// The store's pre-view/coherence constraint `νpre ⊔ coh(l) < t` fails.
    TooLate,
    /// A store exclusive is not atomic with its paired load exclusive, or
    /// is unpaired.
    NotAtomic,
    /// A promise names a different thread.
    ForeignPromise,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            StepError::ThreadDone => "thread has terminated",
            StepError::ThreadStuck => "thread is stuck (loop bound exhausted)",
            StepError::WrongShape => "transition does not match the next statement",
            StepError::NoSuchWrite => "timestamp is not a write to the load's location",
            StepError::ReadSuperseded => "read would violate the view/coherence constraint",
            StepError::NotAPromise => "timestamp is not a matching outstanding promise",
            StepError::TooLate => "store pre-view/coherence is not below the timestamp",
            StepError::NotAtomic => "store exclusive is unpaired or not atomic",
            StepError::ForeignPromise => "promise names a different thread",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for StepError {}

/// The machine state `⟨T⃗, M⟩` (Fig. 2): a thread pool and a memory.
///
/// All slow-changing structure (configuration, program, continuation
/// stacks, thread-state maps, memory) is structurally shared behind
/// [`Arc`]s, so `Machine::clone` — the per-transition cost of every
/// exploration strategy — is O(threads) reference-count bumps, and
/// [`Machine::apply`] copies only the pieces the step actually mutates.
#[derive(Clone, Debug)]
pub struct Machine {
    config: Arc<Config>,
    program: Arc<Program>,
    threads: Vec<ThreadInstance>,
    memory: Memory,
}

impl Machine {
    /// Initial machine for `program` (all locations initially 0).
    pub fn new(program: Arc<Program>, config: Config) -> Machine {
        Machine::with_init(program, config, BTreeMap::new())
    }

    /// Initial machine with explicit initial values (litmus init section).
    pub fn with_init(program: Arc<Program>, config: Config, init: BTreeMap<Loc, Val>) -> Machine {
        let threads = program
            .threads()
            .iter()
            .map(|code| {
                let mut t = ThreadInstance {
                    cont: Cont::new(vec![code.entry()]),
                    state: ThreadState::new(config.loop_fuel),
                };
                normalize(code, &mut t.cont);
                t
            })
            .collect();
        Machine {
            config: Arc::new(config),
            program,
            threads,
            memory: Memory::with_init(init),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        self.config.as_ref()
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The threads, in thread-id order.
    pub fn threads(&self) -> &[ThreadInstance] {
        &self.threads
    }

    /// A single thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread(&self, tid: TId) -> &ThreadInstance {
        &self.threads[tid.0]
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The next statement of a thread, if any.
    pub fn head(&self, tid: TId) -> Option<(StmtId, &Stmt)> {
        let t = &self.threads[tid.0];
        let id = *t.cont.last()?;
        Some((id, self.program.threads()[tid.0].stmt(id)))
    }

    /// Whether every thread has terminated with an empty promise set:
    /// a *valid* final state (§D).
    pub fn terminated(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.is_done() && !t.state.has_promises() && t.state.stuck.is_none())
    }

    /// Whether some thread hit the loop bound (the trace is incomplete and
    /// must not contribute an outcome).
    pub fn any_stuck(&self) -> bool {
        self.threads.iter().any(|t| t.state.stuck.is_some())
    }

    /// The raw *thread-local* steps currently enabled for `tid` (no
    /// promises, no certification filtering).
    pub fn thread_steps(&self, tid: TId) -> Vec<TransitionKind> {
        let code = &self.program.threads()[tid.0];
        enabled_steps(&self.config, code, tid, &self.threads[tid.0], &self.memory)
    }

    /// Whether `tid`'s only enabled thread-local step is the
    /// deterministic [`TransitionKind::Internal`] — equivalent to
    /// `thread_steps(tid) == [Internal]` but without enumerating read
    /// candidates or allocating. The explorers use this to drain
    /// deterministic steps eagerly.
    pub fn internal_only(&self, tid: TId) -> bool {
        let thread = &self.threads[tid.0];
        if thread.state.stuck.is_some() {
            return false;
        }
        let Some(&top) = thread.cont.last() else {
            return false;
        };
        match self.program.threads()[tid.0].stmt(top) {
            Stmt::Skip | Stmt::Seq(..) => unreachable!("continuation is normalized"),
            Stmt::Assign { .. }
            | Stmt::Fence(_)
            | Stmt::Isb
            | Stmt::If { .. }
            | Stmt::While { .. } => true,
            Stmt::Load { addr, .. } | Stmt::Store { addr, .. } | Stmt::Rmw { addr, .. } => {
                let (loc, _) = eval_addr(addr, &thread.state);
                !self.config.shared.is_shared(loc)
            }
        }
    }

    /// Apply a transition, returning what happened.
    ///
    /// # Errors
    ///
    /// Returns a [`StepError`] (leaving the machine unchanged) if the
    /// transition is not enabled in the current state.
    pub fn apply(&mut self, tr: &Transition) -> Result<StepEvent, StepError> {
        let code = Arc::clone(&self.program);
        let code = &code.threads()[tr.tid.0];
        apply_step(
            &self.config,
            code,
            tr.tid,
            &tr.kind,
            &mut self.threads[tr.tid.0],
            &mut self.memory,
        )
    }

    /// The *machine steps* of Fig. 5: thread steps filtered so that the
    /// post-state is certified (r24), plus certified promises (via
    /// `find_and_certify`, Thm 6.4).
    ///
    /// Threads with an empty promise set are trivially certified after any
    /// non-promise step, so only promising threads pay for certification.
    pub fn machine_steps(&self) -> Vec<Transition> {
        let mut out = Vec::new();
        for tid in (0..self.threads.len()).map(TId) {
            let cert = crate::certify::find_and_certify(self, tid);
            if self.threads[tid.0].state.has_promises() {
                for k in cert.certified_first_steps {
                    out.push(Transition::new(tid, k));
                }
            } else {
                for k in self.thread_steps(tid) {
                    out.push(Transition::new(tid, k));
                }
            }
            for msg in cert.promisable {
                out.push(Transition::new(tid, TransitionKind::Promise { msg }));
            }
        }
        out
    }

    /// The [`Footprint`] of an enabled transition: acting thread, the
    /// shared locations it touches, and the append/certification-coupling
    /// flags. Computed from the transition kind plus the acting thread's
    /// head statement (the `enabled_steps`/`apply_step` shapes), without
    /// applying anything. Conservative: a transition whose shape cannot
    /// be classified gets [`Footprint::opaque`].
    pub fn transition_footprint(&self, tr: &Transition) -> Footprint {
        let tid = tr.tid.0;
        let promising = self.threads[tid].state.has_promises();
        // any step of a promising thread is certification-filtered (r24),
        // so its enabledness is coupled to memory — but only through the
        // locations the certifying continuation can ever access: an
        // append outside that scope lands above every view and every
        // in-scope message, so no certification verdict changes
        let couple = |fp: Footprint| {
            if promising {
                fp.with_promise()
                    .with_cert_scope(self.thread_cert_scope(tr.tid))
            } else {
                fp
            }
        };
        let head_loc = |stmt_addr: Option<&Expr>| {
            stmt_addr.map(|addr| eval_addr(addr, &self.threads[tid].state).0)
        };
        match &tr.kind {
            TransitionKind::Promise { msg } => Footprint::write(tid, msg.loc, true).with_promise(),
            TransitionKind::Internal => match self.head(tr.tid) {
                Some((_, Stmt::Fence(_))) => couple(Footprint::local(tid).with_fence()),
                _ => couple(Footprint::local(tid)),
            },
            TransitionKind::ExclFail => couple(Footprint::local(tid)),
            TransitionKind::Read { .. } => {
                let addr = match self.head(tr.tid) {
                    Some((_, Stmt::Load { addr, .. })) | Some((_, Stmt::Rmw { addr, .. })) => {
                        Some(addr)
                    }
                    _ => None,
                };
                match head_loc(addr) {
                    Some(loc) => couple(Footprint::read(tid, loc)),
                    None => Footprint::opaque(),
                }
            }
            TransitionKind::Fulfil { .. } => {
                // fulfilment is memory-silent: the message has been in
                // memory (and readable by everyone) since promise time,
                // and only the acting thread's state changes — so no
                // write-set entry. The thread is promising by definition,
                // hence certification-coupled (within its access scope).
                Footprint::local(tid)
                    .with_promise()
                    .with_cert_scope(self.thread_cert_scope(tr.tid))
            }
            TransitionKind::WriteNormal => {
                let addr = match self.head(tr.tid) {
                    Some((_, Stmt::Store { addr, .. })) => Some(addr),
                    _ => None,
                };
                match head_loc(addr) {
                    Some(loc) => couple(Footprint::write(tid, loc, true)),
                    None => Footprint::opaque(),
                }
            }
            TransitionKind::Rmw { tw, .. } => {
                let addr = match self.head(tr.tid) {
                    Some((_, Stmt::Rmw { addr, .. })) => Some(addr),
                    _ => None,
                };
                match head_loc(addr) {
                    Some(loc) => {
                        let mut fp = Footprint::write(tid, loc, tw.is_none());
                        fp.reads.insert(loc);
                        couple(fp)
                    }
                    None => Footprint::opaque(),
                }
            }
        }
    }

    /// Whether thread `tid`'s *remaining* code can never write a shared
    /// location (checked against the precomputed per-statement
    /// [`crate::stmt::MayWrite`] sets of its continuation). Such a
    /// thread is a *pure observer*: every step it will ever take is
    /// thread-local or a read — it can never append to memory, promise,
    /// or influence any other thread. The partial-order reduction
    /// collapses the interleavings of co-enabled pure observers.
    pub fn thread_is_pure_observer(&self, tid: TId) -> bool {
        let code = &self.program.threads()[tid.0];
        self.threads[tid.0]
            .cont
            .iter()
            .all(|&id| !code.may_write(id).any_shared(&self.config.shared))
    }

    /// The union of the may-read sets of thread `tid`'s remaining
    /// continuation: every location any future step of the thread could
    /// possibly read.
    pub fn thread_may_reads(&self, tid: TId) -> MayAccess {
        let code = &self.program.threads()[tid.0];
        let mut acc = MayAccess::none();
        for &id in self.threads[tid.0].cont.iter() {
            acc.absorb(code.may_read(id));
            if acc == MayAccess::Any {
                break;
            }
        }
        acc
    }

    /// The union of the may-write sets of thread `tid`'s remaining
    /// continuation.
    pub fn thread_may_writes(&self, tid: TId) -> MayAccess {
        let code = &self.program.threads()[tid.0];
        let mut acc = MayAccess::none();
        for &id in self.threads[tid.0].cont.iter() {
            acc.absorb(code.may_write(id));
            if acc == MayAccess::Any {
                break;
            }
        }
        acc
    }

    /// The *certification scope* of thread `tid`: the set of locations a
    /// certification run of the thread could ever touch — the union of
    /// the may-read and may-write sets of its remaining continuation
    /// (certification reads at may-read locations, appends and checks
    /// interposition at may-write ones). `None` when any remaining
    /// access has a dynamic address ([`MayAccess::Any`]): unknown scope,
    /// couple with every append.
    pub fn thread_cert_scope(&self, tid: TId) -> Option<LocSet> {
        let code = &self.program.threads()[tid.0];
        let mut scope = LocSet::new();
        for &id in self.threads[tid.0].cont.iter() {
            for may in [code.may_read(id), code.may_write(id)] {
                match may {
                    MayAccess::Any => return None,
                    MayAccess::Locs(locs) => {
                        for &l in locs {
                            scope.insert(l);
                        }
                    }
                }
            }
        }
        Some(scope)
    }

    /// The exact dynamic state (continuations, thread states, memory) as
    /// a hashable key. Used by the *paranoid* dedup mode
    /// ([`crate::config::Config::paranoid`]) to detect fingerprint
    /// collisions; the normal mode stores only [`Machine::fingerprint`].
    /// Cheap: the clones are structural shares.
    pub fn state_key(&self) -> StateKey {
        StateKey {
            threads: self.threads.clone(),
            memory: self.memory.clone(),
        }
    }

    /// A 128-bit fingerprint of the dynamic state, for visited-set
    /// deduplication. Two machines running the same program under the
    /// same configuration are behaviourally identical whenever their
    /// fingerprinted components agree; collisions across *different*
    /// states are possible but vanishingly rare (see
    /// [`crate::fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_len(self.threads.len());
        for t in &self.threads {
            t.feed(&mut h);
        }
        self.memory.feed(&mut h);
        h.finish128()
    }

    /// A clone that shares *no* structure with `self` (every `Arc` is
    /// copied). Only useful for benchmarking the pre-COW cost model —
    /// exploration should always use the structural `Clone`.
    pub fn deep_clone(&self) -> Machine {
        let mut m = self.clone();
        for t in &mut m.threads {
            t.unshare();
        }
        m.memory.unshare();
        m
    }
}

/// The dynamic part of a machine state (hashable, for visited-set dedup).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StateKey {
    /// Thread continuations and states.
    pub threads: Vec<ThreadInstance>,
    /// Memory contents.
    pub memory: Memory,
}

/// Drain administrative structure from the top of a continuation:
/// `Seq(a, b)` unfolds to `a` then `b`; `skip` is dropped.
pub(crate) fn normalize(code: &ThreadCode, cont: &mut Cont) {
    while let Some(&top) = cont.last() {
        match code.stmt(top) {
            Stmt::Seq(a, b) => {
                cont.pop();
                cont.push(*b);
                cont.push(*a);
            }
            Stmt::Skip => {
                cont.pop();
            }
            _ => break,
        }
    }
}

fn eval_addr(addr: &Expr, state: &ThreadState) -> (Loc, View) {
    let (v, view) = addr.eval(&state.regs);
    (Loc::from(v), view)
}

/// The pre-view of a load (r10, r6, ρ4):
/// `νpre = νaddr ⊔ vrNew ⊔ (rk ⊒ acq ? vRel)`.
fn load_pre_view(state: &ThreadState, rk: ReadKind, v_addr: View) -> View {
    v_addr
        .join(state.vr_new)
        .join(View::when(rk >= ReadKind::Acquire, state.v_rel))
}

/// The pre-view of a store (r10, r6, r23, ρ1, ρ14):
/// `νpre = νaddr ⊔ νdata ⊔ vwNew ⊔ vCAP ⊔ (wk ⊒ wrel ? vrOld ⊔ vwOld)
///        ⊔ ((a = RISC-V ∧ xcl) ? xclb.view)`.
fn store_pre_view(
    arch: Arch,
    state: &ThreadState,
    wk: WriteKind,
    exclusive: bool,
    v_addr: View,
    v_data: View,
) -> View {
    let xclb_view = match (arch, exclusive, &state.xclb) {
        (Arch::RiscV, true, Some(x)) => x.view,
        _ => View::ZERO,
    };
    v_addr
        .join(v_data)
        .join(state.vw_new)
        .join(state.v_cap)
        .join(View::when(
            wk >= WriteKind::WeakRelease,
            state.vr_old.join(state.vw_old),
        ))
        .join(xclb_view)
}

/// Timestamps a load of `loc` may read from (the `read` rule's side
/// conditions): the latest same-location write at or below
/// `νpre ⊔ coh(loc)`, and every same-location write above that bound.
pub(crate) fn read_candidates(
    state: &ThreadState,
    memory: &Memory,
    loc: Loc,
    v_pre: View,
) -> Vec<Timestamp> {
    let bound = v_pre.join(state.coh(loc));
    let tmin = memory.latest_write_at_most(loc, bound.timestamp());
    let mut out = vec![tmin];
    out.extend(memory.writes_to(loc).filter(|t| t.0 > bound.0));
    out
}

/// The state update of the `read` rule (Fig. 5), shared by `Load` and the
/// read half of `Rmw`: validates the timestamp against the
/// no-newer-seen-write condition (r2/r12) *before* mutating, then writes
/// the register, bumps coherence and the scalar views, and (for
/// exclusives) charges the exclusives bank. Returns the value read and
/// the read's post-view.
#[allow(clippy::too_many_arguments)]
fn apply_read_effects(
    config: &Config,
    memory: &Memory,
    st: &mut ThreadState,
    reg: Reg,
    rk: ReadKind,
    exclusive: bool,
    loc: Loc,
    v_addr: View,
    t: Timestamp,
) -> Result<(Val, View), StepError> {
    let Some(val) = memory.read(loc, t) else {
        return Err(StepError::NoSuchWrite);
    };
    let v_pre = load_pre_view(st, rk, v_addr);
    // ∀t'. t < t' ≤ (νpre ⊔ coh(l)) ⇒ M(t').loc ≠ l
    let bound = v_pre.join(st.coh(loc));
    if memory.has_write_between(loc, t, bound.timestamp()) {
        return Err(StepError::ReadSuperseded);
    }
    let v_post = v_pre.join(st.read_view(config.arch, rk, loc, t));
    st.regs.set(reg, val, v_post);
    st.bump_coh(loc, v_post);
    st.vr_old = st.vr_old.join(v_post);
    if rk >= ReadKind::WeakAcquire {
        st.vr_new = st.vr_new.join(v_post);
        st.vw_new = st.vw_new.join(v_post);
    }
    st.v_cap = st.v_cap.join(v_addr);
    if exclusive {
        st.xclb = Some(ExclBank {
            time: t,
            view: v_post,
        });
    }
    Ok((val, v_post))
}

/// The state update of the `fulfil` rule (Fig. 5) *after* the
/// promise-matching and atomicity checks, shared by `Store` and the write
/// half of `Rmw`: enforces the pre-view/coherence constraint (`TooLate`),
/// removes the promise, writes the success register (exclusives), bumps
/// coherence/`vwOld`/`vCAP`/`vRel`, refreshes the forward bank, and
/// clears the exclusives bank. Returns the write's pre-view.
#[allow(clippy::too_many_arguments)]
fn apply_write_effects(
    config: &Config,
    st: &mut ThreadState,
    succ: Reg,
    wk: WriteKind,
    exclusive: bool,
    loc: Loc,
    v_addr: View,
    v_data: View,
    t: Timestamp,
) -> Result<View, StepError> {
    let v_pre = store_pre_view(config.arch, st, wk, exclusive, v_addr, v_data);
    if v_pre.join(st.coh(loc)).timestamp() >= t {
        return Err(StepError::TooLate);
    }
    let v_post = t.view();
    st.prom.remove(&t);
    if exclusive {
        let v_succ = match config.arch {
            Arch::RiscV => v_post,
            Arch::Arm => View::ZERO,
        };
        st.regs.set(succ, Val::SUCCESS, v_succ);
    }
    st.bump_coh(loc, v_post);
    st.vw_old = st.vw_old.join(v_post);
    st.v_cap = st.v_cap.join(v_addr);
    if wk >= WriteKind::Release {
        st.v_rel = st.v_rel.join(v_post);
    }
    st.set_fwd(
        loc,
        Forward {
            time: t,
            view: v_addr.join(v_data),
            exclusive,
        },
    );
    if exclusive {
        st.xclb = None;
    }
    Ok(v_pre)
}

/// The CAS compare of an [`Stmt::Rmw`]: the expected value, evaluated as
/// the desugared guard does — with `dst` reading as the just-loaded old
/// value — without cloning or mutating the register file (this runs on
/// the exploration hot path).
fn cas_expected(regs: &RegFile, dst: Reg, old: Val, expected: &Expr) -> Val {
    match expected {
        Expr::Const(v) => *v,
        Expr::Reg(r) if *r == dst => old,
        Expr::Reg(r) => regs.value(*r),
        Expr::Binop(op, a, b) => op.apply(
            cas_expected(regs, dst, old, a),
            cas_expected(regs, dst, old, b),
        ),
    }
}

/// Classify and enumerate the enabled thread-local steps of one thread
/// against a memory, outside a full machine. Exploration engines use this
/// to run threads in isolation (certification, promise-first phase 2).
pub fn enabled_steps(
    config: &Config,
    code: &ThreadCode,
    tid: TId,
    thread: &ThreadInstance,
    memory: &Memory,
) -> Vec<TransitionKind> {
    if thread.state.stuck.is_some() {
        return Vec::new();
    }
    let Some(&top) = thread.cont.last() else {
        return Vec::new();
    };
    let state = &thread.state;
    match code.stmt(top) {
        Stmt::Skip | Stmt::Seq(..) => unreachable!("continuation is normalized"),
        Stmt::Assign { .. } | Stmt::Fence(_) | Stmt::Isb | Stmt::If { .. } | Stmt::While { .. } => {
            vec![TransitionKind::Internal]
        }
        Stmt::Load { addr, kind, .. } => {
            let (loc, v_addr) = eval_addr(addr, state);
            if !config.shared.is_shared(loc) {
                return vec![TransitionKind::Internal];
            }
            let v_pre = load_pre_view(state, *kind, v_addr);
            read_candidates(state, memory, loc, v_pre)
                .into_iter()
                .map(|t| TransitionKind::Read { t })
                .collect()
        }
        Stmt::Store {
            addr,
            data,
            kind,
            exclusive,
            ..
        } => {
            let (loc, v_addr) = eval_addr(addr, state);
            if !config.shared.is_shared(loc) {
                return vec![TransitionKind::Internal];
            }
            let (val, v_data) = data.eval(&state.regs);
            let v_pre = store_pre_view(config.arch, state, *kind, *exclusive, v_addr, v_data);
            let floor = v_pre.join(state.coh(loc));
            let mut out = Vec::new();
            // Fulfil an outstanding promise with a matching message.
            for &t in &state.prom {
                if floor.timestamp() >= t {
                    continue;
                }
                let matches = memory.get(t).is_some_and(|m| m.loc == loc && m.val == val);
                if !matches {
                    continue;
                }
                if *exclusive {
                    match &state.xclb {
                        Some(x) if memory.atomic(loc, tid, x.time, t) => {}
                        _ => continue,
                    }
                }
                out.push(TransitionKind::Fulfil { t });
            }
            // Normal write at the end of memory (always beats the views).
            let fresh = Timestamp(memory.max_timestamp().0 + 1);
            let normal_ok = if *exclusive {
                match &state.xclb {
                    Some(x) => memory.atomic(loc, tid, x.time, fresh),
                    None => false,
                }
            } else {
                true
            };
            debug_assert!(floor.timestamp() < fresh);
            if normal_ok {
                out.push(TransitionKind::WriteNormal);
            }
            if *exclusive {
                out.push(TransitionKind::ExclFail);
            }
            out
        }
        Stmt::Rmw {
            op,
            dst,
            addr,
            expected,
            operand,
            rk,
            wk,
            ..
        } => {
            let (loc, v_addr) = eval_addr(addr, state);
            if !config.shared.is_shared(loc) {
                return vec![TransitionKind::Internal];
            }
            let v_pre = load_pre_view(state, *rk, v_addr);
            let mut out = Vec::new();
            for tr in read_candidates(state, memory, loc, v_pre) {
                let old = memory.read(loc, tr).expect("candidate reads back");
                // simulate the read half on a (structurally-shared) copy
                // to evaluate the compare, the data, and the write
                // placement constraints in the post-read state
                let mut st = state.clone();
                let (_, v_old) =
                    apply_read_effects(config, memory, &mut st, *dst, *rk, true, loc, v_addr, tr)
                        .expect("candidate read applies");
                if let Some(exp) = expected {
                    let (ev, v_exp) = exp.eval(&st.regs);
                    st.v_cap = st.v_cap.join(v_old).join(v_exp);
                    if old != ev {
                        // compare failure: the read half alone
                        out.push(TransitionKind::Read { t: tr });
                        continue;
                    }
                }
                let (opv, v_op) = operand.eval(&st.regs);
                let new = op.apply(old, opv);
                let v_data = match op {
                    RmwOp::Cas | RmwOp::Swp => v_op,
                    _ => v_op.join(v_old),
                };
                let v_pre_w = store_pre_view(config.arch, &st, *wk, true, v_addr, v_data);
                let floor = v_pre_w.join(st.coh(loc));
                // fulfil an outstanding promise with a matching message
                for &t in &state.prom {
                    if floor.timestamp() >= t {
                        continue;
                    }
                    let matches = memory.get(t).is_some_and(|m| m.loc == loc && m.val == new);
                    if matches && memory.atomic(loc, tid, tr, t) {
                        out.push(TransitionKind::Rmw { tr, tw: Some(t) });
                    }
                }
                // normal write at the end of memory: permitted whenever no
                // other thread's write to `loc` interposes after `tr`
                let fresh = Timestamp(memory.max_timestamp().0 + 1);
                debug_assert!(floor.timestamp() < fresh);
                if memory.atomic(loc, tid, tr, fresh) {
                    out.push(TransitionKind::Rmw { tr, tw: None });
                }
            }
            out
        }
    }
}

/// Apply one transition to a single thread (+ memory). This is the
/// authoritative implementation of Fig. 5's rules; [`Machine::apply`], the
/// certification engine, and the exploration engines all use it.
///
/// # Errors
///
/// Returns a [`StepError`] if the transition is not enabled; the thread and
/// memory may have been partially modified only in the `WriteNormal` error
/// paths, so callers should treat an `Err` as poisoning the copies they
/// passed in.
pub fn apply_step(
    config: &Config,
    code: &ThreadCode,
    tid: TId,
    kind: &TransitionKind,
    thread: &mut ThreadInstance,
    memory: &mut Memory,
) -> Result<StepEvent, StepError> {
    if thread.state.stuck.is_some() {
        return Err(StepError::ThreadStuck);
    }
    if let TransitionKind::Promise { msg } = kind {
        // promise: append to memory, record the timestamp (r18).
        if msg.tid != tid {
            return Err(StepError::ForeignPromise);
        }
        let t = memory.push(*msg);
        thread.state.prom.insert(t);
        return Ok(StepEvent::Promised(*msg, t));
    }
    let Some(&top) = thread.cont.last() else {
        return Err(StepError::ThreadDone);
    };
    let event = match (code.stmt(top), kind) {
        (Stmt::Assign { reg, expr }, TransitionKind::Internal) => {
            let (v, view) = expr.eval(&thread.state.regs);
            thread.state.regs.set(*reg, v, view);
            thread.cont.pop();
            StepEvent::Assigned(*reg, v)
        }
        (Stmt::Fence(f), TransitionKind::Internal) => {
            // fence rule: ν1 = (R ⊑ K1 ? vrOld) ⊔ (W ⊑ K1 ? vwOld);
            // vrNew ⊔= (R ⊑ K2 ? ν1); vwNew ⊔= (W ⊑ K2 ? ν1).
            let st = &mut thread.state;
            let v1 = View::when(f.pre.includes_reads(), st.vr_old)
                .join(View::when(f.pre.includes_writes(), st.vw_old));
            if f.post.includes_reads() {
                st.vr_new = st.vr_new.join(v1);
            }
            if f.post.includes_writes() {
                st.vw_new = st.vw_new.join(v1);
            }
            thread.cont.pop();
            StepEvent::Fenced
        }
        (Stmt::Isb, TransitionKind::Internal) => {
            // isb rule: vrNew ⊔= vCAP (ρ7).
            thread.state.vr_new = thread.state.vr_new.join(thread.state.v_cap);
            thread.cont.pop();
            StepEvent::Isb
        }
        (
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            },
            TransitionKind::Internal,
        ) => {
            // branch rule: evaluate, merge the condition's view into vCAP
            // (r22), continue with the chosen branch.
            let (v, view) = cond.eval(&thread.state.regs);
            thread.state.v_cap = thread.state.v_cap.join(view);
            thread.cont.pop();
            thread.cont.push(if v.as_bool() {
                *then_branch
            } else {
                *else_branch
            });
            StepEvent::Branched(v.as_bool())
        }
        (Stmt::While { cond, body }, TransitionKind::Internal) => {
            // while unfolds to a branch (Fig. 5): same vCAP update; taken
            // iterations consume loop fuel.
            let (v, view) = cond.eval(&thread.state.regs);
            thread.state.v_cap = thread.state.v_cap.join(view);
            if v.as_bool() {
                if thread.state.fuel == 0 {
                    thread.state.stuck = Some(StuckReason::LoopBoundExceeded);
                    return Ok(StepEvent::LoopBoundHit);
                }
                thread.state.fuel -= 1;
                // keep the While on the stack beneath the body
                thread.cont.push(*body);
                StepEvent::Branched(true)
            } else {
                thread.cont.pop();
                StepEvent::Branched(false)
            }
        }
        (Stmt::Load { reg, addr, .. }, TransitionKind::Internal) => {
            // non-shared location: a register read (§7 optimisation).
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if config.shared.is_shared(loc) {
                return Err(StepError::WrongShape);
            }
            let (v, v_loc) = thread
                .state
                .local(loc)
                .unwrap_or((memory.initial(loc), View::ZERO));
            thread.state.regs.set(*reg, v, v_addr.join(v_loc));
            thread.cont.pop();
            StepEvent::LocalRead(loc, v)
        }
        (
            Stmt::Store {
                succ, addr, data, ..
            },
            TransitionKind::Internal,
        ) => {
            // non-shared location: a register write (§7 optimisation).
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if config.shared.is_shared(loc) {
                return Err(StepError::WrongShape);
            }
            let (v, v_data) = data.eval(&thread.state.regs);
            thread.state.set_local(loc, v, v_addr.join(v_data));
            thread.state.regs.set(*succ, Val::SUCCESS, View::ZERO);
            thread.cont.pop();
            StepEvent::LocalWrite(loc, v)
        }
        (
            Stmt::Rmw {
                op,
                dst,
                succ,
                addr,
                expected,
                operand,
                ..
            },
            TransitionKind::Internal,
        ) => {
            // non-shared location: a register read-modify-write (§7
            // optimisation); trivially atomic, so it always succeeds
            // except for a failed CAS compare.
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if config.shared.is_shared(loc) {
                return Err(StepError::WrongShape);
            }
            let st = &mut thread.state;
            let (old, v_loc) = st.local(loc).unwrap_or((memory.initial(loc), View::ZERO));
            let v_old = v_addr.join(v_loc);
            st.regs.set(*dst, old, v_old);
            let compare_failed = match expected {
                None => false,
                Some(exp) => {
                    let (ev, v_exp) = exp.eval(&st.regs);
                    // the desugared compare guard merges its inputs into vCAP
                    st.v_cap = st.v_cap.join(v_old).join(v_exp);
                    old != ev
                }
            };
            let event = if compare_failed {
                st.regs.set(*succ, Val::FAIL, View::ZERO);
                StepEvent::LocalRead(loc, old)
            } else {
                let (opv, v_op) = operand.eval(&st.regs);
                let new = op.apply(old, opv);
                let v_data = match op {
                    RmwOp::Cas | RmwOp::Swp => v_op,
                    _ => v_op.join(v_old),
                };
                st.set_local(loc, new, v_addr.join(v_data));
                st.regs.set(*succ, Val::SUCCESS, View::ZERO);
                StepEvent::LocalWrite(loc, new)
            };
            thread.cont.pop();
            event
        }
        (
            Stmt::Load {
                reg,
                addr,
                kind: rk,
                exclusive,
            },
            TransitionKind::Read { t },
        ) => {
            let t = *t;
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if !config.shared.is_shared(loc) {
                return Err(StepError::WrongShape);
            }
            let (val, _) = apply_read_effects(
                config,
                memory,
                &mut thread.state,
                *reg,
                *rk,
                *exclusive,
                loc,
                v_addr,
                t,
            )?;
            thread.cont.pop();
            StepEvent::DidRead { loc, val, t }
        }
        (
            Stmt::Rmw {
                op,
                dst,
                succ,
                addr,
                expected,
                rk,
                ..
            },
            TransitionKind::Read { t },
        ) => {
            // CAS compare-failure: the read half alone (the desugared
            // loop's `else` branch). Only enabled when the value read
            // differs from the expected value.
            let t = *t;
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if !config.shared.is_shared(loc) || *op != RmwOp::Cas {
                return Err(StepError::WrongShape);
            }
            let Some(old) = memory.read(loc, t) else {
                return Err(StepError::NoSuchWrite);
            };
            let expected = expected.as_ref().expect("CAS carries an expected value");
            if old == cas_expected(&thread.state.regs, *dst, old, expected) {
                return Err(StepError::WrongShape);
            }
            let st = &mut thread.state;
            let (_, v_old) =
                apply_read_effects(config, memory, st, *dst, *rk, true, loc, v_addr, t)?;
            // the desugared compare guard merges its inputs into vCAP (r22)
            let (_, v_exp) = expected.eval(&st.regs);
            st.v_cap = st.v_cap.join(v_old).join(v_exp);
            st.regs.set(*succ, Val::FAIL, View::ZERO);
            thread.cont.pop();
            StepEvent::DidRead { loc, val: old, t }
        }
        (
            Stmt::Rmw {
                op,
                dst,
                succ,
                addr,
                expected,
                operand,
                rk,
                wk,
            },
            TransitionKind::Rmw { tr, tw },
        ) => {
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if !config.shared.is_shared(loc) {
                return Err(StepError::WrongShape);
            }
            let Some(old) = memory.read(loc, *tr) else {
                return Err(StepError::NoSuchWrite);
            };
            if let Some(exp) = expected {
                if old != cas_expected(&thread.state.regs, *dst, old, exp) {
                    // the compare fails: only the read-only transition is
                    // enabled for this timestamp
                    return Err(StepError::WrongShape);
                }
            }
            // Run the whole step against a scratch copy of the thread
            // state (structural share, O(1) to clone) so a disabled
            // transition leaves the machine — including the memory, for
            // the normal-write case — completely untouched.
            let mut st = thread.state.clone();
            let (_, v_old) =
                apply_read_effects(config, memory, &mut st, *dst, *rk, true, loc, v_addr, *tr)?;
            if let Some(exp) = expected {
                // the desugared compare guard merges its inputs into vCAP
                let (_, v_exp) = exp.eval(&st.regs);
                st.v_cap = st.v_cap.join(v_old).join(v_exp);
            }
            // the data of the canonical desugaring: the fetch-ops read the
            // old value, swap and CAS write the operand alone
            let (opv, v_op) = operand.eval(&st.regs);
            let new = op.apply(old, opv);
            let v_data = match op {
                RmwOp::Cas | RmwOp::Swp => v_op,
                _ => v_op.join(v_old),
            };
            // the write placement: fulfil `tw`, or a fresh normal write at
            // the end of memory (r20) — appended only after every check
            let t = match tw {
                Some(t) => *t,
                None => Timestamp(memory.max_timestamp().0 + 1),
            };
            if tw.is_some()
                && (!st.prom.contains(&t) || memory.get(t) != Some(&Msg::new(loc, new, tid)))
            {
                return Err(StepError::NotAPromise);
            }
            // the read half charged the exclusives bank, so the pairing
            // check is exactly the exclusive-pair `atomic` predicate
            match &st.xclb {
                Some(x) if memory.atomic(loc, tid, x.time, t) => {}
                _ => return Err(StepError::NotAtomic),
            }
            if store_pre_view(config.arch, &st, *wk, true, v_addr, v_data)
                .join(st.coh(loc))
                .timestamp()
                >= t
            {
                return Err(StepError::TooLate);
            }
            // every check passed: commit
            if tw.is_none() {
                let pushed = memory.push(Msg::new(loc, new, tid));
                debug_assert_eq!(pushed, t);
                st.prom.insert(t);
            }
            let v_pre =
                apply_write_effects(config, &mut st, *succ, *wk, true, loc, v_addr, v_data, t)
                    .expect("pre-view/coherence constraint checked above");
            // the desugared loop exit branches on the success register,
            // which on RISC-V carries the write's view (ρ12)
            let (_, v_succ) = st.regs.get(*succ);
            st.v_cap = st.v_cap.join(v_succ);
            thread.state = st;
            thread.cont.pop();
            StepEvent::DidRmw {
                loc,
                old,
                new,
                tr: *tr,
                tw: t,
                pre_view: v_pre.join(v_old),
            }
        }
        (
            Stmt::Store {
                succ,
                addr,
                data,
                kind: wk,
                exclusive,
            },
            TransitionKind::Fulfil { .. } | TransitionKind::WriteNormal,
        ) => {
            let (loc, v_addr) = eval_addr(addr, &thread.state);
            if !config.shared.is_shared(loc) {
                return Err(StepError::WrongShape);
            }
            let (val, v_data) = data.eval(&thread.state.regs);
            // For a normal write, first promise at the end of memory (r20).
            let t = match kind {
                TransitionKind::Fulfil { t } => *t,
                TransitionKind::WriteNormal => {
                    let t = memory.push(Msg::new(loc, val, tid));
                    thread.state.prom.insert(t);
                    t
                }
                _ => unreachable!(),
            };
            // fulfil pre-conditions
            if !thread.state.prom.contains(&t) || memory.get(t) != Some(&Msg::new(loc, val, tid)) {
                return Err(StepError::NotAPromise);
            }
            if *exclusive {
                match &thread.state.xclb {
                    Some(x) if memory.atomic(loc, tid, x.time, t) => {}
                    _ => return Err(StepError::NotAtomic),
                }
            }
            let v_pre = apply_write_effects(
                config,
                &mut thread.state,
                *succ,
                *wk,
                *exclusive,
                loc,
                v_addr,
                v_data,
                t,
            )?;
            thread.cont.pop();
            StepEvent::DidWrite {
                loc,
                val,
                t,
                pre_view: v_pre,
            }
        }
        (
            Stmt::Store {
                succ, exclusive, ..
            },
            TransitionKind::ExclFail,
        ) => {
            if !*exclusive {
                return Err(StepError::WrongShape);
            }
            thread.state.regs.set(*succ, Val::FAIL, View::ZERO);
            thread.state.xclb = None;
            thread.cont.pop();
            StepEvent::ExclFailed
        }
        _ => return Err(StepError::WrongShape),
    };
    normalize(code, &mut thread.cont);
    Ok(event)
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionKind::Internal => write!(f, "internal"),
            TransitionKind::Read { t } => write!(f, "read@{t}"),
            TransitionKind::Fulfil { t } => write!(f, "fulfil@{t}"),
            TransitionKind::WriteNormal => write!(f, "write"),
            TransitionKind::ExclFail => write!(f, "excl-fail"),
            TransitionKind::Rmw { tr, tw: Some(t) } => write!(f, "rmw@{tr}->fulfil@{t}"),
            TransitionKind::Rmw { tr, tw: None } => write!(f, "rmw@{tr}->write"),
            TransitionKind::Promise { msg } => write!(f, "promise {msg}"),
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.tid, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::CodeBuilder;

    fn x() -> Loc {
        Loc(0)
    }
    fn y() -> Loc {
        Loc(1)
    }

    /// Build the MP writer thread: store x 37; dmb.sy; store y 42.
    fn mp_writer() -> ThreadCode {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.dmb_sy();
        let s3 = b.store(Expr::val(1), Expr::val(42));
        b.finish_seq(&[s1, s2, s3])
    }

    fn mp_reader_plain() -> ThreadCode {
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0));
        b.finish_seq(&[l1, l2])
    }

    fn machine_of(threads: Vec<ThreadCode>) -> Machine {
        Machine::new(Arc::new(Program::new(threads)), Config::arm())
    }

    fn run_writer(m: &mut Machine) {
        // store x 37 (normal write), fence, store y 42
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::Internal))
            .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
    }

    #[test]
    fn mp_relaxed_outcome_reachable_via_old_read() {
        // §4.1: after a,b,c, Thread 2 reads y = 42 then the *initial* x = 0.
        let mut m = machine_of(vec![mp_writer(), mp_reader_plain()]);
        run_writer(&mut m);
        assert_eq!(m.memory().len(), 2);
        // d reads y = 42 at timestamp 2
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        assert_eq!(m.thread(TId(1)).state.regs.value(Reg(1)), Val(42));
        // e may still read the initial x = 0 (timestamp 0)
        let steps = m.thread_steps(TId(1));
        assert!(steps.contains(&TransitionKind::Read { t: Timestamp::ZERO }));
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp::ZERO },
        ))
        .unwrap();
        assert_eq!(m.thread(TId(1)).state.regs.value(Reg(2)), Val(0));
        assert!(m.terminated());
    }

    #[test]
    fn mp_with_dmb_forbids_stale_read() {
        // §4.1 r7: dmb.sy between the loads forbids r1=42 ∧ r2=0.
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let f = b.dmb_sy();
        let l2 = b.load(Reg(2), Expr::val(0));
        let reader = b.finish_seq(&[l1, f, l2]);
        let mut m = machine_of(vec![mp_writer(), reader]);
        run_writer(&mut m);
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        m.apply(&Transition::new(TId(1), TransitionKind::Internal))
            .unwrap(); // dmb.sy
        let steps = m.thread_steps(TId(1));
        assert_eq!(steps, vec![TransitionKind::Read { t: Timestamp(1) }]);
    }

    #[test]
    fn mp_with_address_dependency_forbids_stale_read() {
        // §4.1 r10: address dependency x + (r1 - r1) orders the loads.
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let reader = b.finish_seq(&[l1, l2]);
        let mut m = machine_of(vec![mp_writer(), reader]);
        run_writer(&mut m);
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        let steps = m.thread_steps(TId(1));
        assert_eq!(steps, vec![TransitionKind::Read { t: Timestamp(1) }]);
    }

    #[test]
    fn coherence_prevents_rereading_older_write() {
        // §4.1 r11/r12: after e reads x = 37 via a dependency, a later
        // independent load f of x must not read the initial 0.
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let l3 = b.load(Reg(3), Expr::val(0));
        let reader = b.finish_seq(&[l1, l2, l3]);
        let mut m = machine_of(vec![mp_writer(), reader]);
        run_writer(&mut m);
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        // f: pre-view is 0 but coh(x) = 2 forbids the initial write
        let steps = m.thread_steps(TId(1));
        assert_eq!(steps, vec![TransitionKind::Read { t: Timestamp(1) }]);
    }

    #[test]
    fn store_forwarding_gives_smaller_view() {
        // §4.1 store forwarding: Thread 2 = load y; store y 51; load y;
        // load x with addr dep on the second load — can still read x = 0.
        let mut b = CodeBuilder::new();
        let d = b.load(Reg(0), Expr::val(1));
        let e = b.store(Expr::val(1), Expr::val(51));
        let f_ = b.load(Reg(1), Expr::val(1));
        let g = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let reader = b.finish_seq(&[d, e, f_, g]);
        let mut m = machine_of(vec![mp_writer(), reader]);
        run_writer(&mut m);
        // d reads y = 42@2
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        // e writes y = 51@3
        m.apply(&Transition::new(TId(1), TransitionKind::WriteNormal))
            .unwrap();
        // f reads its own write by forwarding: post-view is the forward
        // view 0, not 3.
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(3) },
        ))
        .unwrap();
        let (v, view) = m.thread(TId(1)).state.regs.get(Reg(1));
        assert_eq!(v, Val(51));
        assert_eq!(view, View::ZERO);
        // g can read the initial x = 0
        let steps = m.thread_steps(TId(1));
        assert!(steps.contains(&TransitionKind::Read { t: Timestamp::ZERO }));
    }

    #[test]
    fn promise_then_fulfil_lb_cycle() {
        // §4.2 LB: T1: r1 = load x; store y r1 — T2: r2 = load y; store x 42.
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let d = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, d]);
        let mut m = machine_of(vec![t1, t2]);
        // T2 promises x = 42 at timestamp 1
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Promise {
                msg: Msg::new(x(), Val(42), TId(1)),
            },
        ))
        .unwrap();
        assert!(m.thread(TId(1)).state.has_promises());
        // T1 reads x = 42 and writes y = 42
        m.apply(&Transition::new(
            TId(0),
            TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        // T2 reads y = 42 … must NOT be able to fulfil afterwards if it
        // read too new? Here there is no dependency, so it can.
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        let steps = m.thread_steps(TId(1));
        assert!(steps.contains(&TransitionKind::Fulfil { t: Timestamp(1) }));
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Fulfil { t: Timestamp(1) },
        ))
        .unwrap();
        assert!(m.terminated());
        assert_eq!(m.thread(TId(0)).state.regs.value(Reg(1)), Val(42));
        assert_eq!(m.thread(TId(1)).state.regs.value(Reg(2)), Val(42));
    }

    #[test]
    fn data_dependency_blocks_fulfilment() {
        // §4.2: store x + data dependency: T2: r2 = load y; store x (42+(r2-r2))
        // cannot fulfil a promise made before reading y = 42.
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let d = b.store(Expr::val(0), Expr::val(42).with_dep(Reg(2)));
        let t2 = b.finish_seq(&[c, d]);
        let mut m = machine_of(vec![t1, t2]);
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Promise {
                msg: Msg::new(x(), Val(42), TId(1)),
            },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        // T2 reads y = 42@2 — now r2 has view 2, so the store's pre-view is
        // 2 ≥ 1 and the promise cannot be fulfilled.
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        let steps = m.thread_steps(TId(1));
        assert!(!steps.contains(&TransitionKind::Fulfil { t: Timestamp(1) }));
        // it can only do a (wrong-valued) fresh write — promise stays
        // unfulfilled, so this trace is discarded.
        assert_eq!(
            m.apply(&Transition::new(
                TId(1),
                TransitionKind::Fulfil { t: Timestamp(1) }
            )),
            Err(StepError::TooLate)
        );
    }

    #[test]
    fn control_dependency_blocks_fulfilment_via_vcap() {
        // §4.2 control dependency: if ((r2 - r2) == 0) store x 42.
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let st = b.store(Expr::val(0), Expr::val(42));
        let br = b.if_then(
            Expr::reg(Reg(2)).sub(Expr::reg(Reg(2))).eq(Expr::val(0)),
            st,
        );
        let t2 = b.finish_seq(&[c, br]);
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut m = machine_of(vec![t1, t2]);
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Promise {
                msg: Msg::new(x(), Val(42), TId(1)),
            },
        ))
        .unwrap();
        m.apply(&Transition::new(
            TId(0),
            TransitionKind::Read { t: Timestamp(1) },
        ))
        .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        // branch merges r2's view into vCAP
        m.apply(&Transition::new(TId(1), TransitionKind::Internal))
            .unwrap();
        assert_eq!(m.thread(TId(1)).state.v_cap, View(2));
        let steps = m.thread_steps(TId(1));
        assert!(!steps.contains(&TransitionKind::Fulfil { t: Timestamp(1) }));
    }

    #[test]
    fn release_acquire_forbids_mp_stale_read() {
        // §A.1: store release + load acquire forbid the MP weak outcome
        // without any barrier.
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.store_rel(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, s2]);
        let mut b = CodeBuilder::new();
        let l1 = b.load_acq(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let mut m = machine_of(vec![t1, t2]);
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        // acquire-read y = 42@2: post-view 2 flows into vrNew
        m.apply(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        let steps = m.thread_steps(TId(1));
        assert_eq!(steps, vec![TransitionKind::Read { t: Timestamp(1) }]);
    }

    #[test]
    fn exclusive_pair_success_and_failure() {
        let mut b = CodeBuilder::new();
        let l = b.load_excl(Reg(1), Expr::val(0));
        let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
        let t1 = b.finish_seq(&[l, s]);
        let mut m = machine_of(vec![t1]);
        m.apply(&Transition::new(
            TId(0),
            TransitionKind::Read { t: Timestamp::ZERO },
        ))
        .unwrap();
        let steps = m.thread_steps(TId(0));
        assert!(steps.contains(&TransitionKind::WriteNormal));
        assert!(steps.contains(&TransitionKind::ExclFail));
        m.apply(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        assert_eq!(m.thread(TId(0)).state.regs.value(Reg(2)), Val::SUCCESS);
        assert_eq!(m.memory().final_value(x()), Val(1));
    }

    #[test]
    fn store_exclusive_fails_without_pairing() {
        let mut b = CodeBuilder::new();
        let s = b.store_excl(Reg(2), Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let mut m = machine_of(vec![t1]);
        // no load exclusive has run: xclb is none, success impossible
        let steps = m.thread_steps(TId(0));
        assert_eq!(steps, vec![TransitionKind::ExclFail]);
        m.apply(&Transition::new(TId(0), TransitionKind::ExclFail))
            .unwrap();
        assert_eq!(m.thread(TId(0)).state.regs.value(Reg(2)), Val::FAIL);
    }

    #[test]
    fn loop_fuel_marks_thread_stuck() {
        let mut b = CodeBuilder::new();
        let body = b.skip();
        let w = b.while_loop(Expr::val(1), body);
        let t1 = b.finish(w);
        let cfg = Config::arm().with_loop_fuel(2);
        let mut m = Machine::new(Arc::new(Program::new(vec![t1])), cfg);
        for _ in 0..2 {
            m.apply(&Transition::new(TId(0), TransitionKind::Internal))
                .unwrap();
        }
        let ev = m
            .apply(&Transition::new(TId(0), TransitionKind::Internal))
            .unwrap();
        assert_eq!(ev, StepEvent::LoopBoundHit);
        assert!(m.any_stuck());
        assert!(m.thread_steps(TId(0)).is_empty());
    }

    #[test]
    fn rmw_fetch_add_is_one_transition() {
        let mut b = CodeBuilder::new();
        let r = b.fetch_add(Reg(1), Expr::val(0), Expr::val(5));
        let t0 = b.finish_seq(&[r]);
        let mut m = machine_of(vec![t0]);
        let steps = m.thread_steps(TId(0));
        assert_eq!(
            steps,
            vec![TransitionKind::Rmw {
                tr: Timestamp::ZERO,
                tw: None
            }]
        );
        m.apply(&Transition::new(TId(0), steps[0].clone())).unwrap();
        assert!(m.terminated());
        assert_eq!(m.thread(TId(0)).state.regs.value(Reg(1)), Val(0));
        assert_eq!(m.memory().final_value(x()), Val(5));
    }

    #[test]
    fn disabled_rmw_transition_leaves_machine_untouched() {
        // Unlike the documented WriteNormal poisoning, a disabled RMW
        // normal write must fail *before* touching memory or the thread:
        // interactive steppers feed user-picked transitions to apply.
        let mut b = CodeBuilder::new();
        let r = b.fetch_add(Reg(1), Expr::val(0), Expr::val(1));
        let t0 = b.finish_seq(&[r]);
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(7));
        let t1 = b.finish_seq(&[s1]);
        let mut m = machine_of(vec![t0, t1]);
        m.apply(&Transition::new(TId(1), TransitionKind::WriteNormal))
            .unwrap();
        let before_len = m.memory().len();
        let before_fp = m.fingerprint();
        // reading the initial write with T1's write interposing: the
        // atomicity check fails, and nothing may have been appended
        let err = m.apply(&Transition::new(
            TId(0),
            TransitionKind::Rmw {
                tr: Timestamp::ZERO,
                tw: None,
            },
        ));
        assert_eq!(err, Err(StepError::NotAtomic));
        assert_eq!(m.memory().len(), before_len);
        assert_eq!(m.fingerprint(), before_fp);
    }

    #[test]
    fn shared_loc_optimisation_turns_private_accesses_internal() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(5), Expr::val(9));
        let l = b.load(Reg(1), Expr::val(5));
        let t1 = b.finish_seq(&[s, l]);
        let cfg = Config::arm().with_shared_locs([y()]);
        let mut m = Machine::new(Arc::new(Program::new(vec![t1])), cfg);
        assert_eq!(m.thread_steps(TId(0)), vec![TransitionKind::Internal]);
        m.apply(&Transition::new(TId(0), TransitionKind::Internal))
            .unwrap();
        m.apply(&Transition::new(TId(0), TransitionKind::Internal))
            .unwrap();
        assert_eq!(m.thread(TId(0)).state.regs.value(Reg(1)), Val(9));
        assert!(m.memory().is_empty());
    }
}
