//! A small calculus of finite binary relations over event indices, enough
//! to express the axiomatic model of Fig. 6 (unions, compositions,
//! restrictions, acyclicity).

/// A binary relation over `0..n` represented as adjacency sets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    n: usize,
    adj: Vec<Vec<bool>>,
}

impl Relation {
    /// The empty relation over `0..n`.
    pub fn new(n: usize) -> Relation {
        Relation {
            n,
            adj: vec![vec![false; n]; n],
        }
    }

    /// Number of elements of the carrier.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the relation has no edges.
    pub fn is_empty(&self) -> bool {
        self.adj.iter().all(|row| row.iter().all(|&b| !b))
    }

    /// Add the edge `a → b`.
    pub fn add(&mut self, a: usize, b: usize) {
        self.adj[a][b] = true;
    }

    /// Whether `a → b` is in the relation.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        self.adj[a][b]
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Relation {
        let mut r = Relation::new(n);
        for (a, b) in edges {
            r.add(a, b);
        }
        r
    }

    /// All edges, in index order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in 0..self.n {
                if self.adj[a][b] {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Union of two relations.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n);
        let mut r = self.clone();
        for a in 0..self.n {
            for b in 0..self.n {
                if other.adj[a][b] {
                    r.adj[a][b] = true;
                }
            }
        }
        r
    }

    /// In-place union.
    pub fn extend(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if other.adj[a][b] {
                    self.adj[a][b] = true;
                }
            }
        }
    }

    /// Relational composition `self ; other`.
    #[must_use]
    pub fn compose(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n);
        let mut r = Relation::new(self.n);
        for a in 0..self.n {
            for m in 0..self.n {
                if self.adj[a][m] {
                    for b in 0..self.n {
                        if other.adj[m][b] {
                            r.adj[a][b] = true;
                        }
                    }
                }
            }
        }
        r
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n);
        let mut r = Relation::new(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                r.adj[a][b] = self.adj[a][b] && other.adj[a][b];
            }
        }
        r
    }

    /// Inverse relation.
    #[must_use]
    pub fn inverse(&self) -> Relation {
        let mut r = Relation::new(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if self.adj[a][b] {
                    r.adj[b][a] = true;
                }
            }
        }
        r
    }

    /// Keep only edges whose source satisfies `dom` and target satisfies
    /// `rng` (the `[A]; r; [B]` idiom of cat files).
    #[must_use]
    pub fn restrict(&self, dom: impl Fn(usize) -> bool, rng: impl Fn(usize) -> bool) -> Relation {
        let mut r = Relation::new(self.n);
        for a in 0..self.n {
            if !dom(a) {
                continue;
            }
            for b in 0..self.n {
                if self.adj[a][b] && rng(b) {
                    r.adj[a][b] = true;
                }
            }
        }
        r
    }

    /// Keep only edges satisfying `keep`.
    #[must_use]
    pub fn filter(&self, keep: impl Fn(usize, usize) -> bool) -> Relation {
        let mut r = Relation::new(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if self.adj[a][b] && keep(a, b) {
                    r.adj[a][b] = true;
                }
            }
        }
        r
    }

    /// Whether the relation is acyclic (no directed cycle; a self-edge is a
    /// cycle).
    pub fn is_acyclic(&self) -> bool {
        // iterative DFS with colours
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.n];
        for start in 0..self.n {
            if colour[start] != Colour::White {
                continue;
            }
            // stack of (node, next-child-index)
            let mut stack = vec![(start, 0usize)];
            colour[start] = Colour::Grey;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let mut advanced = false;
                while *next < self.n {
                    let child = *next;
                    *next += 1;
                    if !self.adj[node][child] {
                        continue;
                    }
                    match colour[child] {
                        Colour::Grey => return false,
                        Colour::White => {
                            colour[child] = Colour::Grey;
                            stack.push((child, 0));
                            advanced = true;
                            break;
                        }
                        Colour::Black => {}
                    }
                }
                if !advanced && stack.last().map(|&(n_, _)| n_) == Some(node) {
                    colour[node] = Colour::Black;
                    stack.pop();
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_relation_is_acyclic() {
        assert!(Relation::new(5).is_acyclic());
        assert!(Relation::new(0).is_acyclic());
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let r = Relation::from_edges(3, [(1, 1)]);
        assert!(!r.is_acyclic());
    }

    #[test]
    fn two_cycle_detected() {
        let r = Relation::from_edges(4, [(0, 1), (1, 2), (2, 0)]);
        assert!(!r.is_acyclic());
    }

    #[test]
    fn dag_is_acyclic() {
        let r = Relation::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        assert!(r.is_acyclic());
    }

    #[test]
    fn compose_follows_paths() {
        let a = Relation::from_edges(4, [(0, 1), (2, 3)]);
        let b = Relation::from_edges(4, [(1, 2)]);
        let c = a.compose(&b);
        assert_eq!(c.edges(), vec![(0, 2)]);
    }

    #[test]
    fn union_and_intersect() {
        let a = Relation::from_edges(3, [(0, 1)]);
        let b = Relation::from_edges(3, [(1, 2), (0, 1)]);
        assert_eq!(a.union(&b).edges(), vec![(0, 1), (1, 2)]);
        assert_eq!(a.intersect(&b).edges(), vec![(0, 1)]);
    }

    #[test]
    fn inverse_swaps_edges() {
        let a = Relation::from_edges(3, [(0, 2)]);
        assert_eq!(a.inverse().edges(), vec![(2, 0)]);
    }

    #[test]
    fn restrict_applies_domain_and_range() {
        let a = Relation::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = a.restrict(|x| x != 1, |y| y != 3);
        assert_eq!(r.edges(), vec![(0, 1)]);
    }

    #[test]
    fn long_chain_acyclic_and_with_backedge_cyclic() {
        let n = 60;
        let mut r = Relation::new(n);
        for i in 0..n - 1 {
            r.add(i, i + 1);
        }
        assert!(r.is_acyclic());
        r.add(n - 1, 0);
        assert!(!r.is_acyclic());
    }
}
