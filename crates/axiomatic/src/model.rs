//! Candidate-execution enumeration and the unified ARMv8/RISC-V axiomatic
//! model of Fig. 6 (§D).
//!
//! A candidate execution is a combination of per-thread local traces plus
//! a reads-from (`rf`) and a per-location coherence order (`co`). The
//! model accepts a candidate iff:
//!
//! ```text
//! let obs = rfe | fr | co
//! let dob = addr | data | (addr|data); rfi
//!         | (ctrl | (addr; po)); [W]
//!         | (ctrl | (addr; po)); [ISB]; po; [R]
//! let aob = [range(rmw)]; rfi; (RISC-V ? [R] : [AQ|AQpc])
//! let bob = fences | [RL]; po; [AQ] | [AQ|AQpc]; po | po; [RL|RLpc]
//!         | (RISC-V ? rmw)
//! let ob  = obs | dob | aob | bob
//! acyclic po-loc | fr | co | rf   (internal)
//! acyclic ob                      (external)
//! empty   rmw & (fre; coe)        (atomic)
//! ```

use crate::exec::{unfold_thread, value_pools, Event, EventKind, Limits, LocalTrace};
use crate::relations::Relation;
use crate::AxError;
use promising_core::config::Arch;
use promising_core::ids::{Loc, TId, Val};
use promising_core::outcome::Outcome;
use promising_core::stmt::{Program, ReadKind, WriteKind, SCRATCH_REG_BASE};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for the axiomatic enumeration.
#[derive(Clone, Debug)]
pub struct AxConfig {
    /// Architecture (affects `aob`, `bob`, and success-register deps).
    pub arch: Arch,
    /// Loop unrolling bound (matching the operational model's fuel).
    pub loop_fuel: u32,
    /// Initial values (litmus init section).
    pub init: BTreeMap<Loc, Val>,
    /// Resource caps.
    pub limits: Limits,
}

impl AxConfig {
    /// Defaults for an architecture.
    pub fn new(arch: Arch) -> AxConfig {
        AxConfig {
            arch,
            loop_fuel: 64,
            init: BTreeMap::new(),
            limits: Limits::default(),
        }
    }
}

/// Statistics from one enumeration.
#[derive(Clone, Copy, Debug, Default)]
pub struct AxStats {
    /// Local-trace combinations examined.
    pub trace_combos: u64,
    /// Full candidates (trace combo + rf + co) checked against the axioms.
    pub candidates: u64,
    /// Candidates satisfying all axioms.
    pub allowed: u64,
}

/// Result of the enumeration: the set of allowed outcomes.
#[derive(Clone, Debug)]
pub struct AxResult {
    /// Outcomes of all axiom-satisfying candidates.
    pub outcomes: BTreeSet<Outcome>,
    /// Enumeration statistics.
    pub stats: AxStats,
}

/// Enumerate all behaviours of `program` allowed by the axiomatic model.
///
/// # Errors
///
/// Returns an [`AxError`] if a resource cap is exceeded (too many traces,
/// divergent value pool, too many candidates).
pub fn enumerate_outcomes(program: &Program, config: &AxConfig) -> Result<AxResult, AxError> {
    let pools = value_pools(
        program,
        config.arch,
        &config.init,
        config.loop_fuel,
        &config.limits,
    )?;
    let mut per_thread = Vec::new();
    for (i, code) in program.threads().iter().enumerate() {
        per_thread.push(unfold_thread(
            code,
            TId(i),
            config.arch,
            &pools,
            &config.init,
            config.loop_fuel,
            &config.limits,
        )?);
    }

    let mut stats = AxStats::default();
    let mut outcomes = BTreeSet::new();

    // Cartesian product of local traces.
    let mut idx = vec![0usize; per_thread.len()];
    if per_thread.iter().any(|t| t.is_empty()) {
        return Ok(AxResult { outcomes, stats });
    }
    loop {
        let combo: Vec<&LocalTrace> = idx
            .iter()
            .enumerate()
            .map(|(t, &i)| &per_thread[t][i])
            .collect();
        stats.trace_combos += 1;
        check_combo(&combo, config, &mut stats, &mut outcomes)?;

        // advance the odometer
        let mut k = 0;
        loop {
            if k == idx.len() {
                stats_done(&stats);
                return Ok(AxResult { outcomes, stats });
            }
            idx[k] += 1;
            if idx[k] < per_thread[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn stats_done(_stats: &AxStats) {}

/// A fully-assembled candidate skeleton (events fixed; rf/co enumerated).
struct Skeleton<'a> {
    events: Vec<GEvent<'a>>,
    /// Global indices of read events.
    reads: Vec<usize>,
    /// Global indices of write events (including init).
    writes_by_loc: BTreeMap<Loc, Vec<usize>>,
    /// rmw pairs in global indices.
    rmw: Vec<(usize, usize)>,
    /// Per-thread final regs.
    final_regs: Vec<BTreeMap<promising_core::ids::Reg, Val>>,
    po: Relation,
}

/// A global event: the local event plus identity.
struct GEvent<'a> {
    tid: Option<TId>,
    kind: EKind<'a>,
}

enum EKind<'a> {
    Init(Loc, Val),
    Real(&'a Event),
}

impl GEvent<'_> {
    fn loc(&self) -> Option<Loc> {
        match &self.kind {
            EKind::Init(l, _) => Some(*l),
            EKind::Real(e) => e.kind.loc(),
        }
    }
    fn is_read(&self) -> bool {
        matches!(&self.kind, EKind::Real(e) if e.kind.is_read())
    }
    fn is_write(&self) -> bool {
        match &self.kind {
            EKind::Init(..) => true,
            EKind::Real(e) => e.kind.is_write(),
        }
    }
    fn is_init(&self) -> bool {
        matches!(&self.kind, EKind::Init(..))
    }
    fn val(&self) -> Option<Val> {
        match &self.kind {
            EKind::Init(_, v) => Some(*v),
            EKind::Real(e) => match e.kind {
                EventKind::Read { val, .. } | EventKind::Write { val, .. } => Some(val),
                _ => None,
            },
        }
    }
    fn read_kind(&self) -> Option<ReadKind> {
        match &self.kind {
            EKind::Real(e) => match e.kind {
                EventKind::Read { rk, .. } => Some(rk),
                _ => None,
            },
            _ => None,
        }
    }
    fn write_kind(&self) -> Option<WriteKind> {
        match &self.kind {
            EKind::Real(e) => match e.kind {
                EventKind::Write { wk, .. } => Some(wk),
                _ => None,
            },
            _ => None,
        }
    }
    fn is_isb(&self) -> bool {
        matches!(&self.kind, EKind::Real(e) if matches!(e.kind, EventKind::Isb))
    }
}

fn build_skeleton<'a>(combo: &[&'a LocalTrace], config: &AxConfig) -> Skeleton<'a> {
    // relevant locations: everything accessed
    let mut locs: BTreeSet<Loc> = BTreeSet::new();
    for tr in combo {
        for ev in &tr.events {
            if let Some(l) = ev.kind.loc() {
                locs.insert(l);
            }
        }
    }
    let mut events: Vec<GEvent<'a>> = Vec::new();
    for &l in &locs {
        let v = config.init.get(&l).copied().unwrap_or(Val(0));
        events.push(GEvent {
            tid: None,
            kind: EKind::Init(l, v),
        });
    }
    let mut offsets = Vec::new();
    let mut rmw = Vec::new();
    for (t, tr) in combo.iter().enumerate() {
        let off = events.len();
        offsets.push(off);
        for ev in &tr.events {
            events.push(GEvent {
                tid: Some(TId(t)),
                kind: EKind::Real(ev),
            });
        }
        for &(a, b) in &tr.rmw {
            rmw.push((off + a, off + b));
        }
    }
    let n = events.len();
    let mut po = Relation::new(n);
    for (t, tr) in combo.iter().enumerate() {
        let off = offsets[t];
        for i in 0..tr.events.len() {
            for j in (i + 1)..tr.events.len() {
                po.add(off + i, off + j);
            }
        }
    }
    let reads: Vec<usize> = (0..n).filter(|&i| events[i].is_read()).collect();
    let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.is_write() {
            writes_by_loc
                .entry(e.loc().expect("writes have locations"))
                .or_default()
                .push(i);
        }
    }
    Skeleton {
        events,
        reads,
        writes_by_loc,
        rmw,
        final_regs: combo
            .iter()
            .map(|tr| {
                tr.final_regs
                    .iter()
                    .filter(|(r, _)| r.0 < SCRATCH_REG_BASE)
                    .map(|(&r, &v)| (r, v))
                    .collect()
            })
            .collect(),
        po,
    }
}

fn check_combo(
    combo: &[&LocalTrace],
    config: &AxConfig,
    stats: &mut AxStats,
    outcomes: &mut BTreeSet<Outcome>,
) -> Result<(), AxError> {
    let sk = build_skeleton(combo, config);

    // rf candidates per read: same location, same value.
    let mut rf_cands: Vec<Vec<usize>> = Vec::with_capacity(sk.reads.len());
    for &r in &sk.reads {
        let loc = sk.events[r].loc().expect("reads have locations");
        let val = sk.events[r].val().expect("reads have values");
        let cands: Vec<usize> = sk
            .writes_by_loc
            .get(&loc)
            .map(|ws| {
                ws.iter()
                    .copied()
                    .filter(|&w| sk.events[w].val() == Some(val))
                    .collect()
            })
            .unwrap_or_default();
        if cands.is_empty() {
            return Ok(()); // some read has no source: combo infeasible
        }
        rf_cands.push(cands);
    }

    // enumerate rf (odometer over candidates)
    let mut rf_idx = vec![0usize; sk.reads.len()];
    loop {
        let rf_pairs: Vec<(usize, usize)> = sk
            .reads
            .iter()
            .enumerate()
            .map(|(k, &r)| (rf_cands[k][rf_idx[k]], r))
            .collect();
        enumerate_co(&sk, config, &rf_pairs, stats, outcomes)?;

        let mut k = 0;
        loop {
            if k == rf_idx.len() {
                return Ok(());
            }
            rf_idx[k] += 1;
            if rf_idx[k] < rf_cands[k].len() {
                break;
            }
            rf_idx[k] = 0;
            k += 1;
        }
    }
}

/// Enumerate coherence orders: per location, all linear orders of the
/// non-init writes that respect program order within each thread (init
/// first). Then check the axioms.
fn enumerate_co(
    sk: &Skeleton<'_>,
    config: &AxConfig,
    rf_pairs: &[(usize, usize)],
    stats: &mut AxStats,
    outcomes: &mut BTreeSet<Outcome>,
) -> Result<(), AxError> {
    // per-location write lists (non-init)
    let locs: Vec<(&Loc, Vec<usize>)> = sk
        .writes_by_loc
        .iter()
        .map(|(l, ws)| {
            (
                l,
                ws.iter()
                    .copied()
                    .filter(|&w| !sk.events[w].is_init())
                    .collect::<Vec<usize>>(),
            )
        })
        .collect();

    // all linear extensions per location
    let mut per_loc_orders: Vec<Vec<Vec<usize>>> = Vec::with_capacity(locs.len());
    for (_, ws) in &locs {
        let mut orders = Vec::new();
        linear_extensions(ws, &sk.po, &mut Vec::new(), &mut orders);
        if orders.is_empty() {
            return Ok(());
        }
        per_loc_orders.push(orders);
    }

    let mut idx = vec![0usize; per_loc_orders.len()];
    loop {
        stats.candidates += 1;
        if stats.candidates > config.limits.max_candidates {
            return Err(AxError::CandidateOverflow(config.limits.max_candidates));
        }
        // build co
        let n = sk.events.len();
        let mut co = Relation::new(n);
        let mut co_last: BTreeMap<Loc, usize> = BTreeMap::new();
        for (k, (l, _)) in locs.iter().enumerate() {
            let order = &per_loc_orders[k][idx[k]];
            // init write for this location
            let init = sk.writes_by_loc[*l]
                .iter()
                .copied()
                .find(|&w| sk.events[w].is_init())
                .expect("init write exists for every accessed location");
            let mut prev = init;
            co_last.insert(**l, init);
            for &w in order {
                co.add(prev, w);
                prev = w;
                co_last.insert(**l, w);
            }
            // transitive closure per location (chain): add all pairs
            for i in 0..order.len() {
                co.add(init, order[i]);
                for j in (i + 1)..order.len() {
                    co.add(order[i], order[j]);
                }
            }
        }

        if check_axioms(sk, config, rf_pairs, &co) {
            stats.allowed += 1;
            // Mirror the operational Memory::locations(): a location
            // appears in the outcome iff it was initialised explicitly or
            // actually written (read-only locations are not reported).
            let memory: BTreeMap<Loc, Val> = {
                let mut m: BTreeMap<Loc, Val> = config.init.clone();
                for (l, &w) in &co_last {
                    if !sk.events[w].is_init() {
                        m.insert(*l, sk.events[w].val().expect("writes have values"));
                    }
                }
                m
            };
            outcomes.insert(Outcome {
                regs: sk.final_regs.clone(),
                memory,
            });
        }

        let mut k = 0;
        loop {
            if k == idx.len() {
                return Ok(());
            }
            idx[k] += 1;
            if idx[k] < per_loc_orders[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn linear_extensions(
    ws: &[usize],
    po: &Relation,
    prefix: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if prefix.len() == ws.len() {
        out.push(prefix.clone());
        return;
    }
    for &w in ws {
        if prefix.contains(&w) {
            continue;
        }
        // w can come next if no remaining write must precede it (po)
        let blocked = ws
            .iter()
            .any(|&u| u != w && !prefix.contains(&u) && po.contains(u, w));
        if blocked {
            continue;
        }
        prefix.push(w);
        linear_extensions(ws, po, prefix, out);
        prefix.pop();
    }
}

fn check_axioms(
    sk: &Skeleton<'_>,
    config: &AxConfig,
    rf_pairs: &[(usize, usize)],
    co: &Relation,
) -> bool {
    let n = sk.events.len();
    let ev = &sk.events;
    let rf = Relation::from_edges(n, rf_pairs.iter().copied());
    let fr = rf.inverse().compose(co);

    // internal: acyclic (po-loc | fr | co | rf)
    let po_loc = sk
        .po
        .filter(|a, b| ev[a].loc().is_some() && ev[a].loc() == ev[b].loc());
    let mut internal = po_loc;
    internal.extend(&fr);
    internal.extend(co);
    internal.extend(&rf);
    if !internal.is_acyclic() {
        return false;
    }

    // atomic: empty (rmw & (fre; coe))
    let ext = |a: usize, b: usize| ev[a].tid != ev[b].tid;
    let fre = fr.filter(ext);
    let coe = co.filter(ext);
    let fre_coe = fre.compose(&coe);
    for &(r, w) in &sk.rmw {
        if fre_coe.contains(r, w) {
            return false;
        }
    }

    // external: acyclic ob
    let rfe = rf.filter(ext);
    let rfi = rf.filter(|a, b| !ext(a, b));
    let mut obs = rfe.clone();
    obs.extend(&fr);
    obs.extend(co);

    // dob
    let mut addr = Relation::new(n);
    let mut data = Relation::new(n);
    let mut ctrl = Relation::new(n);
    for (i, e) in ev.iter().enumerate() {
        if let EKind::Real(real) = &e.kind {
            let off = i - real.po; // events of a thread are contiguous
            for &d in &real.addr_deps {
                addr.add(off + d, i);
            }
            for &d in &real.data_deps {
                data.add(off + d, i);
            }
            for &d in &real.ctrl_deps {
                ctrl.add(off + d, i);
            }
        }
    }
    let addr_data = addr.union(&data);
    let mut dob = addr_data.clone();
    dob.extend(&addr_data.compose(&rfi));
    let ctrl_or_addrpo = ctrl.union(&addr.compose(&sk.po));
    dob.extend(&ctrl_or_addrpo.restrict(|_| true, |b| ev[b].is_write()));
    let to_isb = ctrl_or_addrpo.restrict(|_| true, |b| ev[b].is_isb());
    let isb_po_r = sk.po.restrict(|a| ev[a].is_isb(), |b| ev[b].is_read());
    dob.extend(&to_isb.compose(&isb_po_r));

    // aob
    let rmw_targets: BTreeSet<usize> = sk.rmw.iter().map(|&(_, w)| w).collect();
    let aob = rfi.filter(|a, b| {
        rmw_targets.contains(&a)
            && match config.arch {
                Arch::RiscV => ev[b].is_read(),
                Arch::Arm => ev[b]
                    .read_kind()
                    .is_some_and(|rk| rk >= ReadKind::WeakAcquire),
            }
    });

    // bob
    let mut bob = Relation::new(n);
    for (f, e) in ev.iter().enumerate() {
        if let EKind::Real(real) = &e.kind {
            if let EventKind::Fence(fence) = real.kind {
                for a in 0..n {
                    if !sk.po.contains(a, f) {
                        continue;
                    }
                    let a_matches = (ev[a].is_read() && fence.pre.includes_reads())
                        || (ev[a].is_write() && fence.pre.includes_writes());
                    if !a_matches {
                        continue;
                    }
                    #[allow(clippy::needless_range_loop)] // a/b symmetry
                    for b in 0..n {
                        if !sk.po.contains(f, b) {
                            continue;
                        }
                        let b_matches = (ev[b].is_read() && fence.post.includes_reads())
                            || (ev[b].is_write() && fence.post.includes_writes());
                        if b_matches {
                            bob.add(a, b);
                        }
                    }
                }
            }
        }
    }
    // [RL]; po; [AQ]
    bob.extend(&sk.po.restrict(
        |a| ev[a].write_kind() == Some(WriteKind::Release),
        |b| ev[b].read_kind() == Some(ReadKind::Acquire),
    ));
    // [AQ|AQpc]; po
    bob.extend(&sk.po.restrict(
        |a| {
            ev[a]
                .read_kind()
                .is_some_and(|rk| rk >= ReadKind::WeakAcquire)
        },
        |_| true,
    ));
    // po; [RL|RLpc]
    bob.extend(&sk.po.restrict(
        |_| true,
        |b| {
            ev[b]
                .write_kind()
                .is_some_and(|wk| wk >= WriteKind::WeakRelease)
        },
    ));
    // RISC-V: rmw in bob
    if config.arch == Arch::RiscV {
        for &(r, w) in &sk.rmw {
            bob.add(r, w);
        }
    }

    let mut ob = obs;
    ob.extend(&dob);
    ob.extend(&aob);
    ob.extend(&bob);
    ob.is_acyclic()
}
