//! Per-thread symbolic unfolding into candidate-execution events.
//!
//! herd-style candidate generation (§8, §D): each thread is unfolded into
//! all of its *local traces* — sequences of memory events where every load
//! is annotated with a value chosen from a per-location *value pool*, and
//! every store exclusive branches on success/failure. Dependencies
//! (`addr`, `data`, `ctrl`) are tracked by tainting registers with the
//! events their values derive from.
//!
//! The value pool is computed as a fixpoint: starting from the initial
//! values, repeatedly unfold all threads and add every value any store
//! writes, until no new values appear.

use crate::AxError;
use promising_core::config::Arch;
use promising_core::expr::Expr;
use promising_core::ids::{Loc, Reg, TId, Val};
use promising_core::stmt::{Fence, ReadKind, RmwOp, Stmt, StmtId, ThreadCode, WriteKind};
use std::collections::{BTreeMap, BTreeSet};

/// A memory-model event of a candidate execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Originating thread; `None` for the initial writes.
    pub tid: Option<TId>,
    /// Position in its thread's program order (meaningless for init).
    pub po: usize,
    /// What the event is.
    pub kind: EventKind,
    /// Events (trace-local indices) the *address* derives from.
    pub addr_deps: BTreeSet<usize>,
    /// Events the written *data* derives from (stores only).
    pub data_deps: BTreeSet<usize>,
    /// Events any program-order-earlier branch condition derives from.
    pub ctrl_deps: BTreeSet<usize>,
}

/// Event payloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A read of `loc` obtaining `val`.
    Read {
        /// Location read.
        loc: Loc,
        /// Value obtained.
        val: Val,
        /// Acquire strength.
        rk: ReadKind,
        /// Load exclusive?
        exclusive: bool,
    },
    /// A write of `val` to `loc`.
    Write {
        /// Location written.
        loc: Loc,
        /// Value written.
        val: Val,
        /// Release strength.
        wk: WriteKind,
        /// (Successful) store exclusive?
        exclusive: bool,
    },
    /// A fence.
    Fence(Fence),
    /// An ARM `isb`.
    Isb,
}

impl EventKind {
    /// The location accessed, if a memory access.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            EventKind::Read { loc, .. } | EventKind::Write { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Is this a read?
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::Read { .. })
    }

    /// Is this a write?
    pub fn is_write(&self) -> bool {
        matches!(self, EventKind::Write { .. })
    }
}

/// One local trace of a thread: its events in program order, its final
/// registers, and its successful load/store-exclusive pairs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalTrace {
    /// Events in program order (trace-local indices).
    pub events: Vec<Event>,
    /// Final register valuation (including scratch registers; filtered at
    /// outcome assembly).
    pub final_regs: BTreeMap<Reg, Val>,
    /// Successful exclusive pairs `(load index, store index)`.
    pub rmw: Vec<(usize, usize)>,
}

/// Per-location pools of readable values (initial values are implicit and
/// always readable).
pub type ValuePools = BTreeMap<Loc, BTreeSet<Val>>;

/// Resource caps for the enumeration (the axiomatic model is
/// litmus-test-scale by design, like herd; these keep it honest).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum local traces per thread.
    pub max_traces: usize,
    /// Maximum value-pool fixpoint iterations.
    pub max_pool_iters: usize,
    /// Maximum pool size per location.
    pub max_pool_size: usize,
    /// Maximum candidate executions checked.
    pub max_candidates: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_traces: 200_000,
            max_pool_iters: 64,
            max_pool_size: 256,
            max_candidates: 50_000_000,
        }
    }
}

struct Unfolder<'a> {
    code: &'a ThreadCode,
    tid: TId,
    arch: Arch,
    pools: &'a ValuePools,
    init: &'a BTreeMap<Loc, Val>,
    limits: &'a Limits,
    out: Vec<LocalTrace>,
}

/// The symbolic state of one unfolding path.
#[derive(Clone)]
struct Path {
    cont: Vec<StmtId>,
    regs: BTreeMap<Reg, (Val, BTreeSet<usize>)>,
    ctrl: BTreeSet<usize>,
    events: Vec<Event>,
    rmw: Vec<(usize, usize)>,
    pending_ldx: Option<usize>,
    fuel: u32,
}

impl Path {
    fn eval(&self, e: &Expr) -> (Val, BTreeSet<usize>) {
        match e {
            Expr::Const(v) => (*v, BTreeSet::new()),
            Expr::Reg(r) => self
                .regs
                .get(r)
                .cloned()
                .unwrap_or((Val(0), BTreeSet::new())),
            Expr::Binop(op, a, b) => {
                let (va, da) = self.eval(a);
                let (vb, db) = self.eval(b);
                let mut deps = da;
                deps.extend(db);
                (op.apply(va, vb), deps)
            }
        }
    }

    fn normalize(&mut self, code: &ThreadCode) {
        while let Some(&top) = self.cont.last() {
            match code.stmt(top) {
                Stmt::Seq(a, b) => {
                    self.cont.pop();
                    let (a, b) = (*a, *b);
                    self.cont.push(b);
                    self.cont.push(a);
                }
                Stmt::Skip => {
                    self.cont.pop();
                }
                _ => break,
            }
        }
    }
}

/// Unfold one thread into all of its local traces under the given pools.
///
/// # Errors
///
/// Returns [`AxError::TraceOverflow`] if the number of traces exceeds the
/// limit.
pub fn unfold_thread(
    code: &ThreadCode,
    tid: TId,
    arch: Arch,
    pools: &ValuePools,
    init: &BTreeMap<Loc, Val>,
    loop_fuel: u32,
    limits: &Limits,
) -> Result<Vec<LocalTrace>, AxError> {
    let mut u = Unfolder {
        code,
        tid,
        arch,
        pools,
        init,
        limits,
        out: Vec::new(),
    };
    let mut path = Path {
        cont: vec![code.entry()],
        regs: BTreeMap::new(),
        ctrl: BTreeSet::new(),
        events: Vec::new(),
        rmw: Vec::new(),
        pending_ldx: None,
        fuel: loop_fuel,
    };
    path.normalize(code);
    u.go(path)?;
    Ok(u.out)
}

impl Unfolder<'_> {
    fn readable_values(&self, loc: Loc) -> BTreeSet<Val> {
        let mut vals: BTreeSet<Val> = self.pools.get(&loc).cloned().unwrap_or_default();
        vals.insert(self.init.get(&loc).copied().unwrap_or(Val(0)));
        vals
    }

    fn emit(&mut self, path: Path) -> Result<(), AxError> {
        if self.out.len() >= self.limits.max_traces {
            return Err(AxError::TraceOverflow(self.limits.max_traces));
        }
        self.out.push(LocalTrace {
            events: path.events,
            final_regs: path.regs.iter().map(|(&r, (v, _))| (r, *v)).collect(),
            rmw: path.rmw,
        });
        Ok(())
    }

    fn go(&mut self, mut path: Path) -> Result<(), AxError> {
        loop {
            path.normalize(self.code);
            let Some(&top) = path.cont.last() else {
                return self.emit(path);
            };
            match self.code.stmt(top).clone() {
                Stmt::Skip | Stmt::Seq(..) => unreachable!("normalized"),
                Stmt::Assign { reg, expr } => {
                    let v = path.eval(&expr);
                    path.regs.insert(reg, v);
                    path.cont.pop();
                }
                Stmt::Fence(f) => {
                    let po = path.events.len();
                    path.events.push(Event {
                        tid: Some(self.tid),
                        po,
                        kind: EventKind::Fence(f),
                        addr_deps: BTreeSet::new(),
                        data_deps: BTreeSet::new(),
                        ctrl_deps: path.ctrl.clone(),
                    });
                    path.cont.pop();
                }
                Stmt::Isb => {
                    let po = path.events.len();
                    path.events.push(Event {
                        tid: Some(self.tid),
                        po,
                        kind: EventKind::Isb,
                        addr_deps: BTreeSet::new(),
                        data_deps: BTreeSet::new(),
                        ctrl_deps: path.ctrl.clone(),
                    });
                    path.cont.pop();
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let (v, deps) = path.eval(&cond);
                    path.ctrl.extend(deps);
                    path.cont.pop();
                    path.cont.push(if v.as_bool() {
                        then_branch
                    } else {
                        else_branch
                    });
                }
                Stmt::While { cond, body } => {
                    let (v, deps) = path.eval(&cond);
                    path.ctrl.extend(deps);
                    if v.as_bool() {
                        if path.fuel == 0 {
                            // bounded out: discard this path entirely (it is
                            // not a complete execution)
                            return Ok(());
                        }
                        path.fuel -= 1;
                        path.cont.push(body);
                    } else {
                        path.cont.pop();
                    }
                }
                Stmt::Load {
                    reg,
                    addr,
                    kind,
                    exclusive,
                } => {
                    let (av, addr_deps) = path.eval(&addr);
                    let loc = Loc::from(av);
                    path.cont.pop();
                    // The address registers feed vCAP in the operational
                    // model, which orders *stores*; axiomatically this is
                    // the (addr; po); [W] row, derived relationally — no
                    // state needed here beyond the recorded addr_deps.
                    let values = self.readable_values(loc);
                    for v in values {
                        let mut p = path.clone();
                        let idx = p.events.len();
                        p.events.push(Event {
                            tid: Some(self.tid),
                            po: idx,
                            kind: EventKind::Read {
                                loc,
                                val: v,
                                rk: kind,
                                exclusive,
                            },
                            addr_deps: addr_deps.clone(),
                            data_deps: BTreeSet::new(),
                            ctrl_deps: p.ctrl.clone(),
                        });
                        p.regs.insert(reg, (v, BTreeSet::from([idx])));
                        if exclusive {
                            p.pending_ldx = Some(idx);
                        }
                        self.go(p)?;
                    }
                    return Ok(());
                }
                Stmt::Rmw {
                    op,
                    dst,
                    succ,
                    addr,
                    expected,
                    operand,
                    rk,
                    wk,
                } => {
                    let (av, addr_deps) = path.eval(&addr);
                    let loc = Loc::from(av);
                    path.cont.pop();
                    for old in self.readable_values(loc) {
                        let mut p = path.clone();
                        let ridx = p.events.len();
                        p.events.push(Event {
                            tid: Some(self.tid),
                            po: ridx,
                            kind: EventKind::Read {
                                loc,
                                val: old,
                                rk,
                                exclusive: true,
                            },
                            addr_deps: addr_deps.clone(),
                            data_deps: BTreeSet::new(),
                            ctrl_deps: p.ctrl.clone(),
                        });
                        p.regs.insert(dst, (old, BTreeSet::from([ridx])));
                        // CAS: the desugared compare guard taints control
                        // on both branches (it feeds vCAP operationally)
                        let success = match &expected {
                            None => true,
                            Some(exp) => {
                                let (ev, deps) = p.eval(exp);
                                p.ctrl.insert(ridx);
                                p.ctrl.extend(deps);
                                old == ev
                            }
                        };
                        if !success {
                            // compare failure: the read half alone; the
                            // read stays charged in the pairing bank
                            p.regs.insert(succ, (Val::FAIL, BTreeSet::new()));
                            p.pending_ldx = Some(ridx);
                            self.go(p)?;
                            continue;
                        }
                        let (opv, op_deps) = p.eval(&operand);
                        let new = op.apply(old, opv);
                        let widx = p.events.len();
                        let mut data_deps = op_deps;
                        if !matches!(op, RmwOp::Cas | RmwOp::Swp) {
                            // the fetch-ops' data reads the old value
                            data_deps.insert(ridx);
                        }
                        p.events.push(Event {
                            tid: Some(self.tid),
                            po: widx,
                            kind: EventKind::Write {
                                loc,
                                val: new,
                                wk,
                                exclusive: true,
                            },
                            addr_deps: addr_deps.clone(),
                            data_deps,
                            ctrl_deps: p.ctrl.clone(),
                        });
                        p.rmw.push((ridx, widx));
                        // ρ12: the success register's dependency — none on
                        // ARM, the write itself on RISC-V; branching on it
                        // (the desugared loop exit) taints control there.
                        let succ_deps = match self.arch {
                            Arch::Arm => BTreeSet::new(),
                            Arch::RiscV => BTreeSet::from([widx]),
                        };
                        if self.arch == Arch::RiscV {
                            p.ctrl.insert(widx);
                        }
                        p.regs.insert(succ, (Val::SUCCESS, succ_deps));
                        p.pending_ldx = None;
                        self.go(p)?;
                    }
                    return Ok(());
                }
                Stmt::Store {
                    succ,
                    addr,
                    data,
                    kind,
                    exclusive,
                } => {
                    let (av, addr_deps) = path.eval(&addr);
                    let (dv, data_deps) = path.eval(&data);
                    let loc = Loc::from(av);
                    path.cont.pop();
                    if !exclusive {
                        let idx = path.events.len();
                        path.events.push(Event {
                            tid: Some(self.tid),
                            po: idx,
                            kind: EventKind::Write {
                                loc,
                                val: dv,
                                wk: kind,
                                exclusive: false,
                            },
                            addr_deps,
                            data_deps,
                            ctrl_deps: path.ctrl.clone(),
                        });
                        continue;
                    }
                    // store exclusive: fail branch always; success branch
                    // only when paired with a pending load exclusive.
                    {
                        let mut p = path.clone();
                        p.regs.insert(succ, (Val::FAIL, BTreeSet::new()));
                        p.pending_ldx = None;
                        self.go(p)?;
                    }
                    if let Some(ldx) = path.pending_ldx {
                        let mut p = path;
                        let idx = p.events.len();
                        p.events.push(Event {
                            tid: Some(self.tid),
                            po: idx,
                            kind: EventKind::Write {
                                loc,
                                val: dv,
                                wk: kind,
                                exclusive: true,
                            },
                            addr_deps,
                            data_deps,
                            ctrl_deps: p.ctrl.clone(),
                        });
                        p.rmw.push((ldx, idx));
                        // ρ12: the success register's dependency — none on
                        // ARM (view 0), the store-exclusive write itself on
                        // RISC-V (view = the write's timestamp).
                        let succ_deps = match self.arch {
                            Arch::Arm => BTreeSet::new(),
                            Arch::RiscV => BTreeSet::from([idx]),
                        };
                        p.regs.insert(succ, (Val::SUCCESS, succ_deps));
                        p.pending_ldx = None;
                        self.go(p)?;
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// Compute the per-location value pools by fixpoint (see module docs).
///
/// # Errors
///
/// Propagates unfolding overflows and reports pool divergence.
pub fn value_pools(
    program: &promising_core::Program,
    arch: Arch,
    init: &BTreeMap<Loc, Val>,
    loop_fuel: u32,
    limits: &Limits,
) -> Result<ValuePools, AxError> {
    // Every value read in a *legal* execution is produced by a chain of
    // reads-from edges through distinct write events, so chains are no
    // longer than the number of write events an execution can contain.
    // Iterating that many times therefore yields a complete pool even when
    // the syntactic fixpoint diverges (e.g. mutually-recursive `r + 1`
    // CAS increments, whose extra values are later pruned because no
    // candidate write event matches them).
    let chain_bound: usize = program
        .threads()
        .iter()
        .map(|code| code.store_count() * (loop_fuel as usize + 1))
        .sum::<usize>()
        + 1;
    let mut pools = ValuePools::new();
    for iter in 0.. {
        if iter >= chain_bound {
            return Ok(pools);
        }
        if iter >= limits.max_pool_iters {
            return Err(AxError::PoolDiverged(limits.max_pool_iters));
        }
        let mut next = pools.clone();
        for (i, code) in program.threads().iter().enumerate() {
            let traces = unfold_thread(code, TId(i), arch, &pools, init, loop_fuel, limits)?;
            for tr in traces {
                for ev in &tr.events {
                    if let EventKind::Write { loc, val, .. } = ev.kind {
                        let pool = next.entry(loc).or_default();
                        pool.insert(val);
                        if pool.len() > limits.max_pool_size {
                            return Err(AxError::PoolOverflow(limits.max_pool_size));
                        }
                    }
                }
            }
        }
        if next == pools {
            return Ok(pools);
        }
        pools = next;
    }
    unreachable!("loop returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::stmt::CodeBuilder;
    use promising_core::{Expr, Program};

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn straight_line_store_has_one_trace() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let code = b.finish_seq(&[s]);
        let traces = unfold_thread(
            &code,
            TId(0),
            Arch::Arm,
            &ValuePools::new(),
            &BTreeMap::new(),
            8,
            &limits(),
        )
        .unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].events.len(), 1);
        assert!(traces[0].events[0].kind.is_write());
    }

    #[test]
    fn loads_branch_over_pool_values() {
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let code = b.finish_seq(&[l]);
        let mut pools = ValuePools::new();
        pools.insert(Loc(0), BTreeSet::from([Val(1), Val(2)]));
        let traces = unfold_thread(
            &code,
            TId(0),
            Arch::Arm,
            &pools,
            &BTreeMap::new(),
            8,
            &limits(),
        )
        .unwrap();
        // initial 0 plus pool values 1, 2
        assert_eq!(traces.len(), 3);
        let finals: BTreeSet<i64> = traces.iter().map(|t| t.final_regs[&Reg(1)].0).collect();
        assert_eq!(finals, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn control_dependencies_taint_later_events() {
        // r1 = load x; if (r1) { store y 1 }
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let st = b.store(Expr::val(1), Expr::val(1));
        let br = b.if_then(Expr::reg(Reg(1)), st);
        let code = b.finish_seq(&[l, br]);
        let mut pools = ValuePools::new();
        pools.insert(Loc(0), BTreeSet::from([Val(1)]));
        let traces = unfold_thread(
            &code,
            TId(0),
            Arch::Arm,
            &pools,
            &BTreeMap::new(),
            8,
            &limits(),
        )
        .unwrap();
        let taken: Vec<_> = traces.iter().filter(|t| t.events.len() == 2).collect();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].events[1].ctrl_deps, BTreeSet::from([0]));
    }

    #[test]
    fn exclusive_success_records_rmw_and_arch_deps() {
        let mut b = CodeBuilder::new();
        let l = b.load_excl(Reg(1), Expr::val(0));
        let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
        let st2 = b.store(Expr::val(1), Expr::reg(Reg(2)));
        let code = b.finish_seq(&[l, s, st2]);
        for arch in [Arch::Arm, Arch::RiscV] {
            let traces = unfold_thread(
                &code,
                TId(0),
                arch,
                &ValuePools::new(),
                &BTreeMap::new(),
                8,
                &limits(),
            )
            .unwrap();
            // success and failure branches
            assert_eq!(traces.len(), 2);
            let success = traces
                .iter()
                .find(|t| !t.rmw.is_empty())
                .expect("success branch");
            assert_eq!(success.rmw, vec![(0, 1)]);
            // the dependent store of the success bit:
            let dep_store = success.events.last().unwrap();
            match arch {
                Arch::Arm => assert!(dep_store.data_deps.is_empty()),
                Arch::RiscV => assert_eq!(dep_store.data_deps, BTreeSet::from([1])),
            }
        }
    }

    #[test]
    fn while_loops_are_fuel_bounded_and_incomplete_paths_discarded() {
        // while (r1 == 0) { r1 = load x } with pool {0}: never terminates,
        // every path is discarded.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let w = b.while_loop(Expr::reg(Reg(1)).eq(Expr::val(0)), l);
        let code = b.finish(w);
        let traces = unfold_thread(
            &code,
            TId(0),
            Arch::Arm,
            &ValuePools::new(),
            &BTreeMap::new(),
            4,
            &limits(),
        )
        .unwrap();
        assert!(traces.is_empty());
    }

    #[test]
    fn pool_fixpoint_propagates_values_across_threads() {
        // T0: store x 1 — T1: r1 = load x; store y r1
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t0 = b.finish_seq(&[s]);
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[l, s]);
        let program = Program::new(vec![t0, t1]);
        let pools = value_pools(&program, Arch::Arm, &BTreeMap::new(), 8, &limits()).unwrap();
        assert_eq!(pools[&Loc(0)], BTreeSet::from([Val(1)]));
        // y can be written 0 (from init x) or 1 (from T0's write)
        assert_eq!(pools[&Loc(1)], BTreeSet::from([Val(0), Val(1)]));
    }
}
