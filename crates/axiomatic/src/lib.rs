//! The unified ARMv8/RISC-V **axiomatic** memory model of the paper's §D
//! (Fig. 6), implemented herd-style: enumerate candidate executions
//! (per-thread unfoldings × reads-from × coherence), keep those satisfying
//! the `internal`, `external` and `atomic` axioms.
//!
//! This is the reference the operational Promising model is proven
//! equivalent to in the paper's Coq development (Theorems 6.1/D.1); here
//! the equivalence is checked *experimentally* on the litmus catalogue,
//! the generated suites, and proptest-random programs — mirroring the
//! paper's own validation of the executable model against herd on ~6,500
//! ARM and ~7,000 RISC-V litmus tests (§7).
//!
//! ```
//! use promising_axiomatic::{enumerate_outcomes, AxConfig};
//! use promising_core::{parse_program, Arch, Reg, Val};
//!
//! let (program, _) = parse_program(
//!     "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\ndmb.sy\nr2 = load(x)",
//! )?;
//! let result = enumerate_outcomes(&program, &AxConfig::new(Arch::Arm)).unwrap();
//! // fully-fenced MP forbids r1 = 1 ∧ r2 = 0
//! assert!(!result
//!     .outcomes
//!     .iter()
//!     .any(|o| o.reg(1, Reg(1)) == Val(1) && o.reg(1, Reg(2)) == Val(0)));
//! # Ok::<(), promising_core::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod model;
pub mod relations;

pub use exec::{Event, EventKind, Limits, LocalTrace, ValuePools};
pub use model::{enumerate_outcomes, AxConfig, AxResult, AxStats};
pub use relations::Relation;

use std::fmt;

/// Errors from the axiomatic enumeration (resource caps — the enumeration
/// itself is total on bounded programs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AxError {
    /// A thread has more local traces than the limit.
    TraceOverflow(usize),
    /// A location's value pool exceeded the size limit.
    PoolOverflow(usize),
    /// The value-pool fixpoint did not converge within the iteration limit.
    PoolDiverged(usize),
    /// More candidates than the limit were generated.
    CandidateOverflow(u64),
}

impl fmt::Display for AxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxError::TraceOverflow(n) => write!(f, "more than {n} local traces for one thread"),
            AxError::PoolOverflow(n) => write!(f, "value pool exceeded {n} values"),
            AxError::PoolDiverged(n) => {
                write!(f, "value-pool fixpoint did not converge in {n} iterations")
            }
            AxError::CandidateOverflow(n) => write!(f, "more than {n} candidate executions"),
        }
    }
}

impl std::error::Error for AxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{parse_program, Arch, Config, Machine, Reg, Val};
    use promising_explorer::explore;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn ax_pairs(src: &str, arch: Arch, r1: (usize, Reg), r2: (usize, Reg)) -> BTreeSet<(i64, i64)> {
        let (program, _) = parse_program(src).unwrap();
        let res = enumerate_outcomes(&program, &AxConfig::new(arch)).unwrap();
        res.outcomes
            .iter()
            .map(|o| (o.reg(r1.0, r1.1).0, o.reg(r2.0, r2.1).0))
            .collect()
    }

    const MP_PLAIN: &str = "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)";
    const MP_DMB: &str =
        "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\ndmb.sy\nr2 = load(x)";
    const MP_ADDR: &str =
        "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))";
    const LB: &str = "r1 = load(x)\nstore(y, r1)\n---\nr2 = load(y)\nstore(x, 1)";
    const SB: &str = "store(x, 1)\nr1 = load(y)\n---\nstore(y, 1)\nr2 = load(x)";
    const SB_DMB: &str =
        "store(x, 1)\ndmb.sy\nr1 = load(y)\n---\nstore(y, 1)\ndmb.sy\nr2 = load(x)";

    #[test]
    fn mp_plain_allows_weak_outcome() {
        let set = ax_pairs(MP_PLAIN, Arch::Arm, (1, Reg(1)), (1, Reg(2)));
        assert!(set.contains(&(1, 0)));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn mp_dmb_and_addr_forbid_weak_outcome() {
        for src in [MP_DMB, MP_ADDR] {
            let set = ax_pairs(src, Arch::Arm, (1, Reg(1)), (1, Reg(2)));
            assert!(!set.contains(&(1, 0)), "{src} must forbid 1/0");
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn lb_allows_cycle_only_without_double_dependency() {
        // LB with data dep on T0 only: (1, 1) allowed via T1's early store.
        let set = ax_pairs(LB, Arch::Arm, (0, Reg(1)), (1, Reg(2)));
        assert!(set.contains(&(1, 1)));
        // LB+datas (dependency both sides) forbids it.
        let lb_datas = "r1 = load(x)\nstore(y, r1)\n---\nr2 = load(y)\nstore(x, r2 - r2 + 1)";
        let set = ax_pairs(lb_datas, Arch::Arm, (0, Reg(1)), (1, Reg(2)));
        assert!(!set.contains(&(1, 1)), "LB+datas must be forbidden");
    }

    #[test]
    fn sb_weak_outcome_needs_fences() {
        let set = ax_pairs(SB, Arch::Arm, (0, Reg(1)), (1, Reg(2)));
        assert!(set.contains(&(0, 0)));
        let set = ax_pairs(SB_DMB, Arch::Arm, (0, Reg(1)), (1, Reg(2)));
        assert!(!set.contains(&(0, 0)), "SB+dmbs must forbid 0/0");
    }

    #[test]
    fn coherence_axiom_forbids_corr_violation() {
        let corr = "store(x, 1)\n---\nr1 = load(x)\nr2 = load(x)";
        let set = ax_pairs(corr, Arch::Arm, (1, Reg(1)), (1, Reg(2)));
        assert!(!set.contains(&(1, 0)));
        assert_eq!(set, BTreeSet::from([(0, 0), (0, 1), (1, 1)]));
    }

    #[test]
    fn atomicity_axiom_enforced() {
        // §A.2 example: T0: r1 = loadx x; r2 = storex x 42
        //               T1: store x 37; store x 51; r3 = load x
        // r1 = 37 ∧ r2 = success ∧ r3 = 42 forbidden.
        let src =
            "r1 = loadx(x)\nr2 = storex(x, 42)\n---\nstore(x, 37)\nstore(x, 51)\nr3 = load(x)";
        let (program, _) = parse_program(src).unwrap();
        let res = enumerate_outcomes(&program, &AxConfig::new(Arch::Arm)).unwrap();
        assert!(!res.outcomes.iter().any(|o| o.reg(0, Reg(1)) == Val(37)
            && o.reg(0, Reg(2)) == Val::SUCCESS
            && o.reg(1, Reg(3)) == Val(42)));
        // the interleaving where the stx lands right after 37 and 51
        // overwrites it is allowed: r1 = 37, success, r3 = 51
        assert!(res.outcomes.iter().any(|o| o.reg(0, Reg(1)) == Val(37)
            && o.reg(0, Reg(2)) == Val::SUCCESS
            && o.reg(1, Reg(3)) == Val(51)));
    }

    #[test]
    fn release_acquire_message_passing() {
        let src = "store(x, 1)\nstore_rel(y, 1)\n---\nr1 = load_acq(y)\nr2 = load(x)";
        for arch in [Arch::Arm, Arch::RiscV] {
            let set = ax_pairs(src, arch, (1, Reg(1)), (1, Reg(2)));
            assert!(!set.contains(&(1, 0)), "rel/acq MP forbids 1/0 on {arch:?}");
        }
    }

    #[test]
    fn agreement_with_operational_model_on_classics() {
        // Theorem 6.1, experimentally: identical outcome sets.
        for src in [MP_PLAIN, MP_DMB, MP_ADDR, LB, SB, SB_DMB] {
            for arch in [Arch::Arm, Arch::RiscV] {
                let (program, _) = parse_program(src).unwrap();
                let program = Arc::new(program);
                let ax = enumerate_outcomes(&program, &AxConfig::new(arch)).unwrap();
                let op = explore(&Machine::new(Arc::clone(&program), Config::for_arch(arch)));
                assert_eq!(
                    ax.outcomes, op.outcomes,
                    "axiomatic and promising disagree on {src} ({arch:?})"
                );
            }
        }
    }

    #[test]
    fn init_values_respected() {
        let (program, locs) = parse_program("r1 = load(x)").unwrap();
        let mut config = AxConfig::new(Arch::Arm);
        config.init.insert(locs.get("x").unwrap(), Val(7));
        let res = enumerate_outcomes(&program, &config).unwrap();
        assert_eq!(res.outcomes.len(), 1);
        assert!(res.outcomes.iter().all(|o| o.reg(0, Reg(1)) == Val(7)));
    }
}
