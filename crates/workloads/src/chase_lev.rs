//! The Chase-Lev work-stealing deque (DQ) in its ARM form (Lê, Pop,
//! Cohen, Zappa Nardelli — PPoPP 2013): the owner pushes and pops at the
//! bottom; thieves steal from the top with a CAS; the owner's pop uses the
//! famous full fence between publishing the decremented bottom and reading
//! the top.

use crate::util::{record_value, Checker, Workload};
use promising_core::stmt::CodeBuilder;
use promising_core::{Expr, Loc, Outcome, Program, Reg, StmtId};
use std::sync::Arc;

const BOTTOM: Loc = Loc(0);
const TOP: Loc = Loc(1);
const ARR: i64 = 10;

/// Owner op counts: `a` pushes, `b` pops, `c` pushes (`abc` naming).
pub use crate::treiber::Ops;

fn arr_at(e: Expr) -> Expr {
    Expr::val(ARR).add(e)
}

fn push(b: &mut CodeBuilder, local_bottom: Reg, value: i64, optimised: bool) -> StmtId {
    let st = b.store(arr_at(Expr::reg(local_bottom)), Expr::val(value));
    let publish = if optimised {
        // dmb.st + plain store: W→W ordering only, enough because thieves
        // acquire-read bottom
        let f = b.dmb_st();
        let pb = b.store(
            Expr::val(BOTTOM.0 as i64),
            Expr::reg(local_bottom).add(Expr::val(1)),
        );
        b.seq(&[f, pb])
    } else {
        b.store_rel(
            Expr::val(BOTTOM.0 as i64),
            Expr::reg(local_bottom).add(Expr::val(1)),
        )
    };
    let bump = b.assign(local_bottom, Expr::reg(local_bottom).add(Expr::val(1)));
    b.seq(&[st, publish, bump])
}

fn pop(b: &mut CodeBuilder, local_bottom: Reg) -> StmtId {
    let bm1 = Reg(11);
    let t = Reg(12);
    let v = Reg(13);
    let dec = b.assign(bm1, Expr::reg(local_bottom).sub(Expr::val(1)));
    let stb = b.store(Expr::val(BOTTOM.0 as i64), Expr::reg(bm1));
    let fence = b.dmb_sy();
    let ldt = b.load(t, Expr::val(TOP.0 as i64));
    // t < b-1: plain take
    let take = {
        let getv = b.load(v, arr_at(Expr::reg(bm1)));
        let rec = record_value(b, Expr::reg(v));
        let setb = b.assign(local_bottom, Expr::reg(bm1));
        b.seq(&[getv, rec, setb])
    };
    // t == b-1: last element, race the thieves with CAS(top, t -> t+1)
    let race = {
        let getv = b.load(v, arr_at(Expr::reg(bm1)));
        let ldx = b.load_excl(Reg(14), Expr::val(TOP.0 as i64));
        let stx = b.store_excl(
            Reg(15),
            Expr::val(TOP.0 as i64),
            Expr::reg(t).add(Expr::val(1)),
        );
        let rec = record_value(b, Expr::reg(v));
        let won = b.if_then(Expr::reg(Reg(15)).eq(Expr::val(0)), rec);
        let attempt = b.seq(&[stx, won]);
        let guard = b.if_then(Expr::reg(Reg(14)).eq(Expr::reg(t)), attempt);
        let restore = b.store(Expr::val(BOTTOM.0 as i64), Expr::reg(bm1).add(Expr::val(1)));
        let keep = b.assign(local_bottom, Expr::reg(bm1).add(Expr::val(1)));
        b.seq(&[getv, ldx, guard, restore, keep])
    };
    // t > b-1: empty, restore bottom
    let empty = {
        let restore = b.store(Expr::val(BOTTOM.0 as i64), Expr::reg(bm1).add(Expr::val(1)));
        let keep = b.assign(local_bottom, Expr::reg(bm1).add(Expr::val(1)));
        b.seq(&[restore, keep])
    };
    let non_plain = b.if_else(Expr::reg(t).eq(Expr::reg(bm1)), race, empty);
    let branch = b.if_else(Expr::reg(t).lt(Expr::reg(bm1)), take, non_plain);
    b.seq(&[dec, stb, fence, ldt, branch])
}

fn steal(b: &mut CodeBuilder) -> StmtId {
    let t = Reg(11);
    let bo = Reg(12);
    let v = Reg(13);
    let ldt = b.load_acq(t, Expr::val(TOP.0 as i64));
    let fence = b.dmb_sy();
    let ldb = b.load_acq(bo, Expr::val(BOTTOM.0 as i64));
    let attempt = {
        let getv = b.load(v, arr_at(Expr::reg(t)));
        let ldx = b.load_excl(Reg(14), Expr::val(TOP.0 as i64));
        let stx = b.store_excl(
            Reg(15),
            Expr::val(TOP.0 as i64),
            Expr::reg(t).add(Expr::val(1)),
        );
        let rec = record_value(b, Expr::reg(v));
        let won = b.if_then(Expr::reg(Reg(15)).eq(Expr::val(0)), rec);
        let cas = b.seq(&[stx, won]);
        let guard = b.if_then(Expr::reg(Reg(14)).eq(Expr::reg(t)), cas);
        b.seq(&[getv, ldx, guard])
    };
    let nonempty = b.if_then(Expr::reg(t).lt(Expr::reg(bo)), attempt);
    b.seq(&[ldt, fence, ldb, nonempty])
}

/// DQ-abc-d-e: the owner pushes `a`, pops `b`, pushes `c`; two thieves
/// make `d` and `e` steal attempts.
pub fn chase_lev(owner: Ops, d: u32, e: u32, optimised: bool) -> Workload {
    let Ops(a, bp, c) = owner;
    let mut pushed: Vec<i64> = Vec::new();
    let owner_thread = {
        let mut b = CodeBuilder::new();
        let local_bottom = Reg(10);
        let mut stmts = vec![b.assign(local_bottom, Expr::val(0))];
        let mut op = 0i64;
        for _ in 0..a {
            let value = 100 + op + 1;
            pushed.push(value);
            stmts.push(push(&mut b, local_bottom, value, optimised));
            op += 1;
        }
        for _ in 0..bp {
            stmts.push(pop(&mut b, local_bottom));
        }
        for _ in 0..c {
            let value = 100 + op + 1;
            pushed.push(value);
            stmts.push(push(&mut b, local_bottom, value, optimised));
            op += 1;
        }
        b.finish_seq(&stmts)
    };
    let thief = |attempts: u32| {
        let mut b = CodeBuilder::new();
        let stmts: Vec<StmtId> = (0..attempts).map(|_| steal(&mut b)).collect();
        b.finish_seq(&stmts)
    };

    let total = pushed.len();
    let (psum, psumsq): (i64, i64) = pushed.iter().fold((0, 0), |(s, q), v| (s + v, q + v * v));
    let check: Checker = Arc::new(move |o: &Outcome| {
        let top = o.loc(TOP).0;
        let bottom = o.loc(BOTTOM).0;
        if !(0..=total as i64).contains(&top) || !(0..=total as i64).contains(&bottom) {
            return Err(format!("index corruption: top = {top}, bottom = {bottom}"));
        }
        let mut rem_sum = 0;
        let mut rem_sumsq = 0;
        for i in top..bottom {
            let v = o.loc(Loc((ARR + i) as u64)).0;
            rem_sum += v;
            rem_sumsq += v * v;
        }
        let mut got_sum = rem_sum;
        let mut got_sumsq = rem_sumsq;
        let mut taken = 0;
        for t in 0..3 {
            let (s, q, ops) = crate::util::observed(o, t);
            got_sum += s;
            got_sumsq += q;
            taken += ops;
        }
        if (got_sum, got_sumsq) != (psum, psumsq) {
            return Err(format!(
                "element conservation violated: taken+remaining ({got_sum}, {got_sumsq}) ≠ pushed ({psum}, {psumsq})"
            ));
        }
        if taken + (bottom - top).max(0) != total as i64 {
            return Err(format!(
                "element count violated: {taken} taken + {} remaining ≠ {total}",
                (bottom - top).max(0)
            ));
        }
        Ok(())
    });

    let mut shared = vec![BOTTOM, TOP];
    shared.extend((0..total as u64).map(|i| Loc(ARR as u64 + i)));
    Workload {
        name: format!(
            "DQ{}-{a}{bp}{c}-{d}-{e}",
            if optimised { "(opt)" } else { "" }
        ),
        family: "DQ",
        program: Arc::new(Program::new(vec![owner_thread, thief(d), thief(e)])),
        shared,
        loop_fuel: 4 * (a + bp + c).max(1),
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Machine};
    use promising_explorer::explore;

    fn run_and_check(w: &Workload) {
        let m = Machine::new(w.program.clone(), w.config(Arch::Arm));
        let exp = explore(&m);
        assert!(!exp.outcomes.is_empty(), "{}: no outcomes", w.name);
        let violations = w.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{}: {violations:?}", w.name);
    }

    #[test]
    fn push_then_steal() {
        run_and_check(&chase_lev(Ops(1, 0, 0), 1, 0, false));
    }

    #[test]
    fn push_pop_against_thief() {
        run_and_check(&chase_lev(Ops(1, 1, 0), 1, 0, false));
    }

    #[test]
    fn optimised_variant_correct() {
        run_and_check(&chase_lev(Ops(1, 0, 0), 1, 0, true));
    }

    #[test]
    fn metadata() {
        let w = chase_lev(Ops(2, 1, 1), 2, 1, false);
        assert_eq!(w.name, "DQ-211-2-1");
        assert_eq!(w.num_threads(), 3);
        let w = chase_lev(Ops(1, 1, 0), 1, 0, true);
        assert_eq!(w.name, "DQ(opt)-110-1-0");
    }
}
