//! The Michael & Scott queue (QU) — the paper's §8 case study. Three
//! variants:
//!
//! * **conservative** — acquire loads and a release publish everywhere;
//! * **optimised** — the §8 experiment: acquire loads weakened to plain
//!   loads where address dependencies already order the dereference
//!   (unsound in C++, sound under ARM);
//! * **buggy** — the §8 bug: the publish CAS (writing the predecessor's
//!   `next` field) is *not* a release, so the element can be published
//!   before its data is written, and a dequeuer can read uninitialised
//!   data — the "incorrect state" the paper's tool finds in ~2 minutes.

use crate::util::{record_value, regs, Checker, Workload};
use promising_core::stmt::CodeBuilder;
use promising_core::{Expr, Loc, Outcome, Program, Reg, StmtId, Val};
use std::collections::BTreeMap;
use std::sync::Arc;

const HEAD: Loc = Loc(0);
const TAIL: Loc = Loc(1);
const DUMMY: i64 = 10;
const ARENA: i64 = 12;
const MAX_OPS: usize = 3;

/// Ordering discipline of a queue build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Acquire/release everywhere.
    Conservative,
    /// Address-dependency-justified plain loads (§8 optimisation).
    Optimised,
    /// Publication CAS is not a release: the paper's bug.
    Buggy,
}

/// Per-thread op counts: `a` enqueues, `b` dequeues, `c` enqueues.
pub use crate::treiber::Ops;

fn node_addr(tid: usize, op: usize) -> i64 {
    ARENA + ((tid * MAX_OPS + op) * 2) as i64
}

fn enqueue(b: &mut CodeBuilder, tid: usize, op: usize, value: i64, variant: Variant) -> StmtId {
    let node = node_addr(tid, op);
    let t = Reg(11);
    let tn = Reg(12);
    let data = b.store(Expr::val(node), Expr::val(value));
    let init = b.assign(regs::T0, Expr::val(0));
    // t = load TAIL (acquire in the conservative variant; the optimised
    // variant relies on the address dependency t → t+1)
    let ld_tail = match variant {
        Variant::Conservative => b.load_acq(t, Expr::val(TAIL.0 as i64)),
        Variant::Optimised | Variant::Buggy => b.load(t, Expr::val(TAIL.0 as i64)),
    };
    let ld_next = b.load(tn, Expr::reg(t).add(Expr::val(1)));
    // try to link: CAS(t.next, 0 -> node); the publish must be a release
    // except in the buggy variant
    let link = match variant {
        Variant::Buggy => b.cas(
            regs::T1,
            Expr::reg(t).add(Expr::val(1)),
            Expr::val(0),
            Expr::val(node),
        ),
        _ => b.cas_rel(
            regs::T1,
            Expr::reg(t).add(Expr::val(1)),
            Expr::val(0),
            Expr::val(node),
        ),
    };
    // help the tail forward after a successful link (failure ignored)
    let swing = b.cas(
        Reg(13),
        Expr::val(TAIL.0 as i64),
        Expr::reg(t),
        Expr::val(node),
    );
    let set = b.assign(regs::T0, Expr::val(1));
    let linked = b.seq(&[swing, set]);
    let won = b.if_then(Expr::reg(regs::T1).eq(Expr::val(0)), linked);
    let try_link = b.seq(&[link, won]);
    // tail was behind: help swing it forward
    let help = b.cas(
        Reg(13),
        Expr::val(TAIL.0 as i64),
        Expr::reg(t),
        Expr::reg(tn),
    );
    let branch = b.if_else(Expr::reg(tn).eq(Expr::val(0)), try_link, help);
    let body = b.seq(&[ld_tail, ld_next, branch]);
    let w = b.while_loop(Expr::reg(regs::T0).eq(Expr::val(0)), body);
    b.seq(&[data, init, w])
}

fn dequeue(b: &mut CodeBuilder, variant: Variant) -> StmtId {
    let h = Reg(11);
    let t = Reg(12);
    let hn = Reg(13);
    let v = Reg(14);
    let init = b.assign(regs::T0, Expr::val(0));
    let ld_head = b.load_acq(h, Expr::val(HEAD.0 as i64));
    let ld_tail = match variant {
        Variant::Conservative => b.load_acq(t, Expr::val(TAIL.0 as i64)),
        _ => b.load(t, Expr::val(TAIL.0 as i64)),
    };
    // next-of-head: the dereference of hn is address-dependent, so the
    // optimised (and buggy) variants read it plain
    let ld_next = match variant {
        Variant::Conservative => b.load_acq(hn, Expr::reg(h).add(Expr::val(1))),
        _ => b.load(hn, Expr::reg(h).add(Expr::val(1))),
    };
    // empty: h == t and h.next == 0
    let done = b.assign(regs::T0, Expr::val(1));
    let help = b.cas(
        Reg(15),
        Expr::val(TAIL.0 as i64),
        Expr::reg(t),
        Expr::reg(hn),
    );
    let empty_or_help = b.if_else(Expr::reg(hn).eq(Expr::val(0)), done, help);
    // non-empty: read the value of h.next (address-dependent), then
    // CAS(head, h -> hn); record the value only if the CAS wins
    let pop_branch = {
        let getv = b.load(v, Expr::reg(hn));
        let cas = b.cas(
            Reg(15),
            Expr::val(HEAD.0 as i64),
            Expr::reg(h),
            Expr::reg(hn),
        );
        let rec = record_value(b, Expr::reg(v));
        let set = b.assign(regs::T0, Expr::val(1));
        let taken = b.seq(&[rec, set]);
        let won = b.if_then(Expr::reg(Reg(15)).eq(Expr::reg(h)), taken);
        let body = b.seq(&[getv, cas, won]);
        b.if_then(Expr::reg(hn).ne(Expr::val(0)), body)
    };
    let branch = b.if_else(Expr::reg(h).eq(Expr::reg(t)), empty_or_help, pop_branch);
    let body = b.seq(&[ld_head, ld_tail, ld_next, branch]);
    let w = b.while_loop(Expr::reg(regs::T0).eq(Expr::val(0)), body);
    b.seq(&[init, w])
}

/// Build a QU workload from per-thread `abc` specs.
pub fn michael_scott(specs: &[Ops], variant: Variant) -> Workload {
    let mut threads = Vec::new();
    let mut enqueued: Vec<i64> = Vec::new();
    for (tid, &Ops(a, bp, c)) in specs.iter().enumerate() {
        let mut b = CodeBuilder::new();
        let mut stmts = Vec::new();
        let mut op = 0;
        for _ in 0..a {
            let value = (tid as i64 + 1) * 10 + op as i64 + 1;
            enqueued.push(value);
            stmts.push(enqueue(&mut b, tid, op, value, variant));
            op += 1;
        }
        for _ in 0..bp {
            stmts.push(dequeue(&mut b, variant));
        }
        for _ in 0..c {
            let value = (tid as i64 + 1) * 10 + op as i64 + 1;
            enqueued.push(value);
            stmts.push(enqueue(&mut b, tid, op, value, variant));
            op += 1;
        }
        assert!(op <= MAX_OPS, "arena too small for spec");
        threads.push(b.finish_seq(&stmts));
    }
    let n_threads = threads.len();
    let total = enqueued.len();
    let (esum, esumsq): (i64, i64) = enqueued.iter().fold((0, 0), |(s, q), v| (s + v, q + v * v));

    let check: Checker = Arc::new(move |o: &Outcome| {
        for t in 0..n_threads {
            let (s, q, ops) = crate::util::observed(o, t);
            // a zero value contributes nothing to sum but bumps ops; catch
            // the §8 bug (dequeue of published-but-unwritten data) directly
            if ops > 0 && s == 0 {
                return Err(format!("thread {t} dequeued uninitialised data (value 0)"));
            }
            let _ = q;
        }
        // conservation: dequeued + remaining = enqueued
        let mut rem_sum = 0;
        let mut rem_sumsq = 0;
        let mut cur = o.loc(HEAD).0;
        let mut steps = 0;
        loop {
            let next = o.loc(Loc(cur as u64 + 1)).0;
            if next == 0 {
                break;
            }
            steps += 1;
            if steps > total + 1 {
                return Err("queue is cyclic or over-long".to_string());
            }
            let v = o.loc(Loc(next as u64)).0;
            if v == 0 {
                return Err(format!("queue node {next} holds uninitialised data"));
            }
            rem_sum += v;
            rem_sumsq += v * v;
            cur = next;
        }
        let mut got_sum = rem_sum;
        let mut got_sumsq = rem_sumsq;
        for t in 0..n_threads {
            let (s, q, _) = crate::util::observed(o, t);
            got_sum += s;
            got_sumsq += q;
        }
        if (got_sum, got_sumsq) != (esum, esumsq) {
            return Err(format!(
                "element conservation violated: dequeued+remaining ({got_sum}, {got_sumsq}) ≠ enqueued ({esum}, {esumsq})"
            ));
        }
        Ok(())
    });

    let suffix: Vec<String> = specs
        .iter()
        .map(|o| format!("{}{}{}", o.0, o.1, o.2))
        .collect();
    let tag = match variant {
        Variant::Conservative => "",
        Variant::Optimised => "(opt)",
        Variant::Buggy => "(buggy)",
    };
    let mut shared = vec![HEAD, TAIL, Loc(DUMMY as u64), Loc(DUMMY as u64 + 1)];
    shared.extend((0..(n_threads * MAX_OPS * 2) as u64).map(|i| Loc(ARENA as u64 + i)));
    let max_ops = specs
        .iter()
        .map(|&Ops(a, bp, c)| a + bp + c)
        .max()
        .unwrap_or(1);
    Workload {
        name: format!("QU{tag}-{}", suffix.join("-")),
        family: "QU",
        program: Arc::new(Program::new(threads)),
        shared,
        loop_fuel: 4 * max_ops.max(1),
        check,
    }
}

/// The initial memory for a QU machine: head and tail point at the dummy
/// node.
pub fn qu_init() -> BTreeMap<Loc, Val> {
    BTreeMap::from([(HEAD, Val(DUMMY)), (TAIL, Val(DUMMY))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Machine};
    use promising_explorer::explore;

    fn run(w: &Workload) -> std::collections::BTreeSet<Outcome> {
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), qu_init());
        explore(&m).outcomes
    }

    #[test]
    fn enqueue_dequeue_single_thread() {
        let w = michael_scott(&[Ops(1, 1, 0)], Variant::Conservative);
        let outcomes = run(&w);
        assert!(!outcomes.is_empty());
        assert!(w.violations(&outcomes).is_empty());
        // the single dequeue must return the enqueued value 11
        assert!(outcomes
            .iter()
            .all(|o| crate::util::observed(o, 0) == (11, 121, 1)));
    }

    #[test]
    fn concurrent_enqueue_dequeue_correct() {
        let w = michael_scott(&[Ops(1, 0, 0), Ops(0, 1, 0)], Variant::Conservative);
        let outcomes = run(&w);
        assert!(!outcomes.is_empty());
        let violations = w.violations(&outcomes);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn optimised_variant_still_correct() {
        let w = michael_scott(&[Ops(1, 0, 0), Ops(0, 1, 0)], Variant::Optimised);
        let outcomes = run(&w);
        assert!(!outcomes.is_empty());
        let violations = w.violations(&outcomes);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn buggy_variant_found_incorrect_as_in_the_paper() {
        // §8: with the publish weakened from release to relaxed, the tool
        // reports an execution where the dequeuer reads value 0.
        let w = michael_scott(&[Ops(1, 0, 0), Ops(0, 1, 0)], Variant::Buggy);
        let outcomes = run(&w);
        let violations = w.violations(&outcomes);
        assert!(
            violations.iter().any(|v| v.contains("uninitialised")),
            "the publication bug must be detected: {violations:?}"
        );
    }
}
