//! Shared building blocks for the §8 workloads: CAS/fetch-add atomics
//! (single-instruction LSE/AMO RMWs, with mechanically-desugared LL/SC
//! variants for the ablation), spin-acquire, and the `Workload` bundle
//! the harness and benchmark tables consume.

use promising_core::stmt::{desugar_program_rmws, CodeBuilder};
use promising_core::{Config, Expr, Loc, Outcome, Program, Reg, StmtId};
use std::fmt;
use std::sync::Arc;

/// A checker: `Ok(())` for a correct final state, `Err(description)` for a
/// violation (the "incorrect states" the paper's tool reports).
pub type Checker = Arc<dyn Fn(&Outcome) -> Result<(), String> + Send + Sync>;

/// A packaged evaluation workload.
#[derive(Clone)]
pub struct Workload {
    /// Paper-style name (e.g. `SLA-7`, `QU-100-010-000`).
    pub name: String,
    /// Which datastructure family it belongs to (Table 1 row).
    pub family: &'static str,
    /// The program.
    pub program: Arc<Program>,
    /// Locations genuinely shared between threads (§7 optimisation); all
    /// other locations are thread-private.
    pub shared: Vec<Loc>,
    /// Loop bound.
    pub loop_fuel: u32,
    /// Correctness predicate on final states.
    pub check: Checker,
}

impl Workload {
    /// The model configuration for running this workload (with the
    /// shared-location optimisation on).
    pub fn config(&self, arch: promising_core::Arch) -> Config {
        Config::for_arch(arch)
            .with_loop_fuel(self.loop_fuel)
            .with_shared_locs(self.shared.iter().copied())
    }

    /// The configuration without the shared-location optimisation (for the
    /// ablation benchmarks and for the Flat baseline, which has no such
    /// optimisation).
    pub fn config_unshared(&self, arch: promising_core::Arch) -> Config {
        Config::for_arch(arch).with_loop_fuel(self.loop_fuel)
    }

    /// Threads in the program (Table 1's `Ts`).
    pub fn num_threads(&self) -> usize {
        self.program.num_threads()
    }

    /// Instruction count (Table 1's `LOC` analogue).
    pub fn instruction_count(&self) -> usize {
        self.program.instruction_count()
    }

    /// Check every outcome, returning the violations.
    pub fn violations(&self, outcomes: &std::collections::BTreeSet<Outcome>) -> Vec<String> {
        outcomes
            .iter()
            .filter_map(|o| (self.check)(o).err().map(|e| format!("{e} in [{o}]")))
            .collect()
    }

    /// The LL/SC variant of this workload: every single-instruction RMW
    /// mechanically desugared into its load-/store-exclusive retry loop
    /// ([`desugar_program_rmws`]), with `extra_fuel` more loop budget (one
    /// taken iteration per executed RMW at minimum — give failures room to
    /// retry). Outcome sets are unchanged; the explored state space is the
    /// LL/SC-vs-LSE ablation's measurement.
    pub fn desugared(&self, extra_fuel: u32) -> Workload {
        Workload {
            name: format!("{}(llsc)", self.name),
            family: self.family,
            program: Arc::new(desugar_program_rmws(&self.program)),
            shared: self.shared.clone(),
            loop_fuel: self.loop_fuel + extra_fuel,
            check: Arc::clone(&self.check),
        }
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("threads", &self.num_threads())
            .field("instructions", &self.instruction_count())
            .finish()
    }
}

/// Per-thread register conventions used across the workloads.
pub mod regs {
    use promising_core::Reg;

    /// Scratch registers (loop flags, temporaries).
    pub const T0: Reg = Reg(1);
    /// Scratch.
    pub const T1: Reg = Reg(2);
    /// Scratch.
    pub const T2: Reg = Reg(3);
    /// Scratch.
    pub const T3: Reg = Reg(4);
    /// Accumulator: sum of observed values.
    pub const SUM: Reg = Reg(20);
    /// Accumulator: sum of squares of observed values.
    pub const SUMSQ: Reg = Reg(21);
    /// Count of successful operations.
    pub const OPS: Reg = Reg(22);
}

/// Emit `SUM += v; SUMSQ += v*v; OPS += 1` for an observed value in `v`.
/// The (sum, sum-of-squares, count) triple identifies the small distinct
/// value multisets the workloads use, so checkers can verify conservation
/// without reading thread-private memory.
pub fn record_value(b: &mut CodeBuilder, v: Expr) -> StmtId {
    let s1 = b.assign(regs::SUM, Expr::reg(regs::SUM).add(v.clone()));
    let s2 = b.assign(regs::SUMSQ, Expr::reg(regs::SUMSQ).add(v.clone().mul(v)));
    let s3 = b.assign(regs::OPS, Expr::reg(regs::OPS).add(Expr::val(1)));
    b.seq(&[s1, s2, s3])
}

/// Emit a bounded CAS-acquire spin: loop until a single-instruction
/// acquire CAS of `0 → 1` on `lock` succeeds (the old value lands in
/// `old`). Uses `flag` as the loop flag register. A compare failure (lock
/// held) retries — but unlike the LL/SC loop there is no spurious
/// store-exclusive failure branch, so the state space is one transition
/// per attempt.
pub fn spin_lock_cas(b: &mut CodeBuilder, lock: Loc, flag: Reg, old: Reg) -> StmtId {
    let init = b.assign(flag, Expr::val(0));
    let cas = b.cas_acq(old, Expr::val(lock.0 as i64), Expr::val(0), Expr::val(1));
    let set = b.assign(flag, Expr::val(1));
    let won = b.if_then(Expr::reg(old).eq(Expr::val(0)), set);
    let body = b.seq(&[cas, won]);
    let w = b.while_loop(Expr::reg(flag).eq(Expr::val(0)), body);
    b.seq(&[init, w])
}

/// Release the lock: `store_rel(lock, 0)`.
pub fn spin_unlock(b: &mut CodeBuilder, lock: Loc) -> StmtId {
    b.store_rel(Expr::val(lock.0 as i64), Expr::val(0))
}

/// Atomically `out := loc; loc += n` — a single `amo_add` instruction
/// (ARMv8.1 `LDADD` / RISC-V `amoadd`): one transition, no retry loop.
pub fn fetch_add(b: &mut CodeBuilder, loc: Loc, n: i64, out: Reg) -> StmtId {
    b.fetch_add(out, Expr::val(loc.0 as i64), Expr::val(n))
}

/// Emit a bounded spin `while (load_acq(loc) != reg) {}` (ticket-lock
/// wait). `tmp` receives the loaded value.
pub fn spin_until_eq(b: &mut CodeBuilder, loc: Loc, reg: Reg, tmp: Reg) -> StmtId {
    let ld0 = b.load_acq(tmp, Expr::val(loc.0 as i64));
    let ld = b.load_acq(tmp, Expr::val(loc.0 as i64));
    let w = b.while_loop(Expr::reg(tmp).ne(Expr::reg(reg)), ld);
    b.seq(&[ld0, w])
}

/// Decode a `(sum, sumsq, ops)` observation triple from an outcome.
pub fn observed(o: &Outcome, tid: usize) -> (i64, i64, i64) {
    (
        o.reg(tid, regs::SUM).0,
        o.reg(tid, regs::SUMSQ).0,
        o.reg(tid, regs::OPS).0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Machine, TId};
    use promising_explorer::explore;

    #[test]
    fn fetch_add_is_atomic_across_threads() {
        // two threads fetch-add the same counter; with retries bounded,
        // completed executions must show counter = 2 and distinct tickets.
        let mk = || {
            let mut b = CodeBuilder::new();
            let fa = fetch_add(&mut b, Loc(0), 1, regs::SUM);
            b.finish_seq(&[fa])
        };
        let program = Arc::new(Program::new(vec![mk(), mk()]));
        let m = Machine::new(program, Config::arm().with_loop_fuel(3));
        let exp = explore(&m);
        assert!(!exp.outcomes.is_empty());
        for o in &exp.outcomes {
            assert_eq!(o.loc(Loc(0)).0, 2, "both increments land: {o}");
            let t0 = o.reg(0, regs::SUM).0;
            let t1 = o.reg(1, regs::SUM).0;
            assert_ne!(t0, t1, "tickets must be distinct: {o}");
        }
    }

    #[test]
    fn spin_lock_provides_mutual_exclusion() {
        // two threads: lock; counter++; unlock. Every complete execution
        // ends with counter = 2.
        let mk = || {
            let mut b = CodeBuilder::new();
            let acq = spin_lock_cas(&mut b, Loc(0), regs::T0, regs::T1);
            let ld = b.load(regs::T3, Expr::val(1));
            let st = b.store(Expr::val(1), Expr::reg(regs::T3).add(Expr::val(1)));
            let rel = spin_unlock(&mut b, Loc(0));
            b.finish_seq(&[acq, ld, st, rel])
        };
        let program = Arc::new(Program::new(vec![mk(), mk()]));
        let m = Machine::new(program, Config::arm().with_loop_fuel(4));
        let exp = explore(&m);
        assert!(!exp.outcomes.is_empty());
        for o in &exp.outcomes {
            assert_eq!(o.loc(Loc(1)).0, 2, "mutual exclusion: {o}");
        }
    }

    #[test]
    fn record_value_accumulates_sum_and_squares() {
        let mut b = CodeBuilder::new();
        let r1 = record_value(&mut b, Expr::val(2));
        let r2 = record_value(&mut b, Expr::val(3));
        let code = b.finish_seq(&[r1, r2]);
        let program = Arc::new(Program::new(vec![code]));
        let m = Machine::new(program, Config::arm());
        let exp = explore(&m);
        assert_eq!(exp.outcomes.len(), 1);
        let o = exp.outcomes.iter().next().expect("one outcome");
        assert_eq!(observed(o, 0), (5, 13, 2));
        let _ = TId(0);
    }
}
