//! The ticket lock (TL): fetch-and-add a ticket from `next` (one
//! `amo_add` instruction), spin until `owner` equals the ticket, then
//! release by publishing `ticket + 1`.

use crate::util::{fetch_add, regs, spin_until_eq, Checker, Workload};
use promising_core::stmt::CodeBuilder;
use promising_core::{Expr, Loc, Program, Reg, Val};
use std::sync::Arc;

const NEXT: Loc = Loc(0);
const OWNER: Loc = Loc(1);
const COUNTER: Loc = Loc(2);

/// TL-n: three threads each acquire the ticket lock once, increment the
/// shared counter, and release; `n` bounds the acquire/spin loops.
pub fn ticket_lock(n: u32) -> Workload {
    let ticket = Reg(10);
    let mk = || {
        let mut b = CodeBuilder::new();
        let take = fetch_add(&mut b, NEXT, 1, ticket);
        let wait = spin_until_eq(&mut b, OWNER, ticket, regs::T2);
        let ld = b.load(regs::T3, Expr::val(COUNTER.0 as i64));
        let st = b.store(
            Expr::val(COUNTER.0 as i64),
            Expr::reg(regs::T3).add(Expr::val(1)),
        );
        let rel = b.store_rel(
            Expr::val(OWNER.0 as i64),
            Expr::reg(ticket).add(Expr::val(1)),
        );
        b.finish_seq(&[take, wait, ld, st, rel])
    };
    let threads = vec![mk(), mk(), mk()];
    let count = threads.len() as i64;
    let check: Checker = Arc::new(move |o| {
        if o.loc(COUNTER) != Val(count) {
            return Err(format!(
                "ticket lock mutual exclusion violated: counter = {}",
                o.loc(COUNTER)
            ));
        }
        if o.loc(NEXT) != Val(count) || o.loc(OWNER) != Val(count) {
            return Err(format!(
                "ticket bookkeeping corrupt: next = {}, owner = {}",
                o.loc(NEXT),
                o.loc(OWNER)
            ));
        }
        Ok(())
    });
    Workload {
        name: format!("TL-{n}"),
        family: "TL",
        program: Arc::new(Program::new(threads)),
        shared: vec![NEXT, OWNER, COUNTER],
        // spinning for the owner can take several lock handovers: scale
        // the bound so completed handovers fit
        loop_fuel: 3 * n.max(2),
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Machine};
    use promising_explorer::explore;

    #[test]
    fn two_thread_variant_is_correct() {
        // use a cut-down two-thread version for the unit test; the full
        // TL-n rows run in the benchmark harness
        let w = ticket_lock(1);
        let two = Workload {
            program: Arc::new(Program::new(w.program.threads()[..2].to_vec())),
            check: Arc::new(|o| {
                if o.loc(COUNTER) == Val(2) {
                    Ok(())
                } else {
                    Err(format!("counter = {}", o.loc(COUNTER)))
                }
            }),
            ..w
        };
        let m = Machine::new(two.program.clone(), two.config(Arch::Arm));
        let exp = explore(&m);
        assert!(!exp.outcomes.is_empty());
        let violations = two.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn metadata() {
        let w = ticket_lock(2);
        assert_eq!(w.num_threads(), 3);
        assert_eq!(w.family, "TL");
    }
}
