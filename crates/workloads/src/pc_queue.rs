//! Producer–consumer circular queues: PCS (single producer, single
//! consumer — index-per-side, release/acquire) and PCM (single producer,
//! multiple consumers — consumers race on `head` with CAS).

use crate::util::{record_value, regs, Checker, Workload};
use promising_core::stmt::CodeBuilder;
use promising_core::{Expr, Loc, Program, Reg, StmtId, Val};
use std::sync::Arc;

const HEAD: Loc = Loc(0);
const TAIL: Loc = Loc(1);
const BUF: u64 = 10;

/// Positional order accumulator (PCS checks FIFO order, not just the
/// multiset).
const ORD: Reg = Reg(23);

fn buf_at(index: Expr, size: i64) -> Expr {
    Expr::val(BUF as i64).add(index.rem(Expr::val(size)))
}

/// PCS-n-m: producer enqueues values `1..=n` into a circular buffer of
/// size 2; the consumer dequeues `m` values, recording them in order.
pub fn pcs(n: u32, m: u32) -> Workload {
    let size = 2i64;
    // producer: local tail index in r10
    let producer = {
        let mut b = CodeBuilder::new();
        let t = Reg(10);
        let mut stmts = vec![b.assign(t, Expr::val(0))];
        for i in 1..=n {
            // wait while (t - head >= size)
            let h = regs::T0;
            let ld = b.load_acq(h, Expr::val(HEAD.0 as i64));
            let ld2 = b.load_acq(h, Expr::val(HEAD.0 as i64));
            let full = |b: &Expr| Expr::val(size).le(Expr::reg(t).sub(b.clone()));
            let w = b.while_loop(full(&Expr::reg(h)), ld2);
            let st = b.store(buf_at(Expr::reg(t), size), Expr::val(i as i64));
            let pubt = b.store_rel(Expr::val(TAIL.0 as i64), Expr::reg(t).add(Expr::val(1)));
            let bump = b.assign(t, Expr::reg(t).add(Expr::val(1)));
            stmts.extend([ld, w, st, pubt, bump]);
        }
        b.finish_seq(&stmts)
    };
    // consumer: local head index in r10, order checksum in ORD
    let consumer = {
        let mut b = CodeBuilder::new();
        let h = Reg(10);
        let mut stmts = vec![b.assign(h, Expr::val(0)), b.assign(ORD, Expr::val(0))];
        for _ in 0..m {
            let t = regs::T0;
            let ld = b.load_acq(t, Expr::val(TAIL.0 as i64));
            let ld2 = b.load_acq(t, Expr::val(TAIL.0 as i64));
            let w = b.while_loop(Expr::reg(t).le(Expr::reg(h)), ld2);
            let v = regs::T1;
            let get = b.load(v, buf_at(Expr::reg(h), size));
            let rec = record_value(&mut b, Expr::reg(v));
            let ord = b.assign(
                ORD,
                Expr::reg(ORD)
                    .mul(Expr::val(n as i64 + 1))
                    .add(Expr::reg(v)),
            );
            let pubh = b.store_rel(Expr::val(HEAD.0 as i64), Expr::reg(h).add(Expr::val(1)));
            let bump = b.assign(h, Expr::reg(h).add(Expr::val(1)));
            stmts.extend([ld, w, get, rec, ord, pubh, bump]);
        }
        b.finish_seq(&stmts)
    };

    let expect_ord: i64 = (1..=m as i64).fold(0, |acc, i| acc * (n as i64 + 1) + i);
    let (esum, esumsq) = sums(1, m as i64);
    let check: Checker = Arc::new(move |o| {
        let (sum, sumsq, ops) = crate::util::observed(o, 1);
        if (sum, sumsq, ops) != (esum, esumsq, m as i64) {
            return Err(format!(
                "consumer observed wrong multiset: ({sum}, {sumsq}, {ops}) ≠ ({esum}, {esumsq}, {m})"
            ));
        }
        if o.reg(1, ORD) != Val(expect_ord) {
            return Err(format!(
                "FIFO order violated: order code {} ≠ {expect_ord}",
                o.reg(1, ORD)
            ));
        }
        Ok(())
    });
    let mut shared = vec![HEAD, TAIL];
    shared.extend((0..size as u64).map(|i| Loc(BUF + i)));
    Workload {
        name: format!("PCS-{n}-{m}"),
        family: "PCS",
        program: Arc::new(Program::new(vec![producer, consumer])),
        shared,
        loop_fuel: 4 * n.max(m).max(1),
        check,
    }
}

/// PCM-n-a-b: one producer enqueues `1..=n` (buffer large enough not to
/// wrap); two consumers make `a` and `b` single-shot dequeue *attempts*
/// (an attempt may find the queue empty or lose the `head` CAS).
pub fn pcm(n: u32, a: u32, b_attempts: u32) -> Workload {
    let size = n.max(1) as i64; // no wraparound: sidesteps ABA on head
    let producer = {
        let mut b = CodeBuilder::new();
        let t = Reg(10);
        let mut stmts = vec![b.assign(t, Expr::val(0))];
        for i in 1..=n {
            let st = b.store(buf_at(Expr::reg(t), size), Expr::val(i as i64));
            let pubt = b.store_rel(Expr::val(TAIL.0 as i64), Expr::reg(t).add(Expr::val(1)));
            let bump = b.assign(t, Expr::reg(t).add(Expr::val(1)));
            stmts.extend([st, pubt, bump]);
        }
        b.finish_seq(&stmts)
    };
    let consumer = |attempts: u32| {
        let mut b = CodeBuilder::new();
        let mut stmts: Vec<StmtId> = Vec::new();
        for _ in 0..attempts {
            let t = regs::T0;
            let h = regs::T1;
            let succ = regs::T2;
            let v = regs::T3;
            let ldt = b.load_acq(t, Expr::val(TAIL.0 as i64));
            let ldh = b.load_excl_acq(h, Expr::val(HEAD.0 as i64));
            let get = b.load(v, buf_at(Expr::reg(h), size));
            let stx = b.store_excl(
                succ,
                Expr::val(HEAD.0 as i64),
                Expr::reg(h).add(Expr::val(1)),
            );
            let rec = record_value(&mut b, Expr::reg(v));
            let won = b.if_then(Expr::reg(succ).eq(Expr::val(0)), rec);
            let try_pop = b.seq(&[get, stx, won]);
            let nonempty = b.if_then(Expr::reg(h).lt(Expr::reg(t)), try_pop);
            stmts.extend([ldt, ldh, nonempty]);
        }
        b.finish_seq(&stmts)
    };
    let check: Checker = Arc::new(move |o| {
        // conservation: consumed multiset ⊎ remaining = produced
        let (s1, q1, c1) = crate::util::observed(o, 1);
        let (s2, q2, c2) = crate::util::observed(o, 2);
        let head = o.loc(HEAD).0;
        let tail = o.loc(TAIL).0;
        if !(0..=tail).contains(&head) || tail != n as i64 {
            return Err(format!("index corruption: head = {head}, tail = {tail}"));
        }
        let mut rem_sum = 0;
        let mut rem_sumsq = 0;
        for i in head..tail {
            let v = o.loc(Loc(BUF + (i % size) as u64)).0;
            rem_sum += v;
            rem_sumsq += v * v;
        }
        let (esum, esumsq) = sums(1, n as i64);
        if s1 + s2 + rem_sum != esum || q1 + q2 + rem_sumsq != esumsq || c1 + c2 != head {
            return Err(format!(
                "conservation violated: consumed ({s1}+{s2}, {q1}+{q2}, {c1}+{c2}) + rest ({rem_sum}, {rem_sumsq}) ≠ produced ({esum}, {esumsq}, head {head})"
            ));
        }
        Ok(())
    });
    let mut shared = vec![HEAD, TAIL];
    shared.extend((0..size as u64).map(|i| Loc(BUF + i)));
    Workload {
        name: format!("PCM-{n}-{a}-{b_attempts}"),
        family: "PCM",
        program: Arc::new(Program::new(vec![
            producer,
            consumer(a),
            consumer(b_attempts),
        ])),
        shared,
        loop_fuel: 4 * n.max(1),
        check,
    }
}

fn sums(from: i64, to: i64) -> (i64, i64) {
    let mut s = 0;
    let mut q = 0;
    for v in from..=to {
        s += v;
        q += v * v;
    }
    (s, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Machine};
    use promising_explorer::explore;

    fn run_and_check(w: &Workload) {
        let m = Machine::new(w.program.clone(), w.config(Arch::Arm));
        let exp = explore(&m);
        assert!(!exp.outcomes.is_empty(), "{}: no outcomes", w.name);
        let violations = w.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{}: {violations:?}", w.name);
    }

    #[test]
    fn pcs_1_1_is_correct() {
        run_and_check(&pcs(1, 1));
    }

    #[test]
    fn pcs_2_2_is_correct() {
        run_and_check(&pcs(2, 2));
    }

    #[test]
    fn pcm_1_1_1_is_correct() {
        run_and_check(&pcm(1, 1, 1));
    }

    #[test]
    fn metadata() {
        assert_eq!(pcs(3, 3).num_threads(), 2);
        assert_eq!(pcm(2, 2, 2).num_threads(), 3);
        assert_eq!(pcs(3, 3).name, "PCS-3-3");
        assert_eq!(pcm(3, 3, 3).name, "PCM-3-3-3");
    }
}
