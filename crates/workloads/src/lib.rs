//! The §8 evaluation workloads of the paper, written in the model's
//! calculus with the same access-ordering structure as the paper's
//! C++/Rust/assembly sources: three spinlocks (SLA/SLC/SLR), a ticket
//! lock (TL), producer–consumer queues (PCS/PCM), the Treiber stack
//! (STC/STR), the Michael-Scott queue (QU — including the §8 buggy
//! variant), and the Chase-Lev deque (DQ).
//!
//! Each [`Workload`] bundles the program, its genuinely-shared locations
//! (for the §7 optimisation), a loop bound, and a *checker* that flags
//! incorrect final states (mutual-exclusion violations, lost or
//! uninitialised elements) — the "incorrect states" the paper's tool
//! reports.

#![warn(missing_docs)]

pub mod chase_lev;
pub mod michael_scott;
pub mod pc_queue;
pub mod spinlock;
pub mod ticket_lock;
pub mod treiber;
pub mod util;

pub use chase_lev::chase_lev;
pub use michael_scott::{michael_scott, qu_init, Variant};
pub use pc_queue::{pcm, pcs};
pub use spinlock::{sla, slc, slr};
pub use ticket_lock::ticket_lock;
pub use treiber::{stc, str_stack, Ops};
pub use util::{Checker, Workload};

use promising_core::{Loc, Val};
use std::collections::BTreeMap;

/// Build a workload from a paper-style spec string:
/// `SLA-7`, `SLC-3`, `SLR-2`, `TL-3`, `PCS-2-2`, `PCM-1-1-1`,
/// `STC-100-010-010`, `STR(opt)-210-011-000`, `QU(buggy)-100-010-000`,
/// `DQ(opt)-110-1-0`.
pub fn by_spec(spec: &str) -> Option<Workload> {
    let (family, rest) = spec.split_once('-')?;
    let (family, tag) = match family.find('(') {
        Some(i) => (
            &family[..i],
            family[i..].trim_matches(|c| c == '(' || c == ')'),
        ),
        None => (family, ""),
    };
    let optimised = tag == "opt";
    let parts: Vec<&str> = rest.split('-').collect();
    match family {
        "SLA" => Some(sla(parts.first()?.parse().ok()?)),
        "SLC" => Some(slc(parts.first()?.parse().ok()?)),
        "SLR" => Some(slr(parts.first()?.parse().ok()?)),
        "TL" => Some(ticket_lock(parts.first()?.parse().ok()?)),
        "PCS" => Some(pcs(
            parts.first()?.parse().ok()?,
            parts.get(1)?.parse().ok()?,
        )),
        "PCM" => Some(pcm(
            parts.first()?.parse().ok()?,
            parts.get(1)?.parse().ok()?,
            parts.get(2)?.parse().ok()?,
        )),
        "STC" | "STR" => {
            let specs: Vec<Ops> = parts.iter().map(|p| Ops::parse(p)).collect::<Option<_>>()?;
            Some(if family == "STC" {
                stc(&specs, optimised)
            } else {
                str_stack(&specs, optimised)
            })
        }
        "QU" => {
            let specs: Vec<Ops> = parts.iter().map(|p| Ops::parse(p)).collect::<Option<_>>()?;
            let variant = match tag {
                "opt" => Variant::Optimised,
                "buggy" => Variant::Buggy,
                _ => Variant::Conservative,
            };
            Some(michael_scott(&specs, variant))
        }
        "DQ" => {
            let owner = Ops::parse(parts.first()?)?;
            Some(chase_lev(
                owner,
                parts.get(1)?.parse().ok()?,
                parts.get(2)?.parse().ok()?,
                optimised,
            ))
        }
        _ => None,
    }
}

/// The initial memory a workload needs (only QU requires one: head/tail
/// point at the dummy node).
pub fn init_for(w: &Workload) -> BTreeMap<Loc, Val> {
    if w.family == "QU" {
        qu_init()
    } else {
        BTreeMap::new()
    }
}

/// The ten Table 1 rows: one representative instance per family.
pub fn table1_rows() -> Vec<Workload> {
    vec![
        sla(2),
        slc(2),
        slr(2),
        pcs(3, 3),
        pcm(3, 3, 3),
        ticket_lock(3),
        stc(&[Ops(1, 0, 0), Ops(0, 1, 0), Ops(0, 1, 0)], false),
        str_stack(&[Ops(1, 0, 0), Ops(0, 1, 0), Ops(0, 1, 0)], false),
        chase_lev(Ops(1, 1, 0), 1, 0, false),
        michael_scott(
            &[Ops(1, 0, 0), Ops(0, 1, 0), Ops(0, 0, 0)],
            Variant::Conservative,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_spec_parses_every_family() {
        for spec in [
            "SLA-7",
            "SLC-3",
            "SLR-2",
            "TL-3",
            "PCS-2-2",
            "PCM-1-1-1",
            "STC-100-010-010",
            "STR-210-011-000",
            "STC(opt)-100-010-000",
            "QU-100-010-000",
            "QU(opt)-100-000-000",
            "QU(buggy)-100-010-000",
            "DQ-110-1-0",
            "DQ(opt)-211-2-1",
        ] {
            let w = by_spec(spec).unwrap_or_else(|| panic!("spec `{spec}` must parse"));
            assert!(w.num_threads() >= 1);
        }
    }

    #[test]
    fn by_spec_rejects_nonsense() {
        assert!(by_spec("XX-1").is_none());
        assert!(by_spec("SLA").is_none());
        assert!(by_spec("STC-9").is_none());
    }

    #[test]
    fn spec_round_trips_name() {
        for spec in ["SLA-3", "PCS-2-2", "STC-100-010-010", "DQ-110-1-0"] {
            assert_eq!(by_spec(spec).expect("parses").name, spec);
        }
    }

    #[test]
    fn table1_has_ten_families() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 10);
        let families: std::collections::BTreeSet<&str> = rows.iter().map(|w| w.family).collect();
        assert_eq!(families.len(), 10);
    }
}
