//! The Treiber stack (STC: C++ flavour, STR: Rust flavour), with the
//! ARM-optimised `(opt)` variants of §8: acquire loads weakened to plain
//! loads where an address dependency already provides the ordering —
//! unsound in the source language, sound under the hardware model.

use crate::util::{record_value, regs, Checker, Workload};
use promising_core::stmt::CodeBuilder;
use promising_core::{Expr, Loc, Outcome, Program, Reg, StmtId};
use std::sync::Arc;

const HEAD: Loc = Loc(0);
const ARENA: u64 = 10;
const MAX_OPS: usize = 4;

fn node_addr(tid: usize, op: usize) -> i64 {
    (ARENA + ((tid * MAX_OPS + op) * 2) as u64) as i64
}

/// Operation counts per thread: `a` pushes, then `b` pops, then `c`
/// pushes (the paper's `abc` digit naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ops(pub u32, pub u32, pub u32);

impl Ops {
    /// Parse a digit triple like `210`.
    pub fn parse(s: &str) -> Option<Ops> {
        let d: Vec<u32> = s.chars().map(|c| c.to_digit(10)).collect::<Option<_>>()?;
        if d.len() != 3 {
            return None;
        }
        Some(Ops(d[0], d[1], d[2]))
    }
}

fn push(b: &mut CodeBuilder, tid: usize, op: usize, value: i64, acquire_head: bool) -> StmtId {
    let node = node_addr(tid, op);
    let data = b.store(Expr::val(node), Expr::val(value));
    let init = b.assign(regs::T0, Expr::val(0));
    let h = Reg(11);
    let ld = if acquire_head {
        b.load_acq(h, Expr::val(HEAD.0 as i64))
    } else {
        b.load(h, Expr::val(HEAD.0 as i64))
    };
    let setnext = b.store(Expr::val(node + 1), Expr::reg(h));
    // publish with a single release CAS: head h → node
    let cas = b.cas_rel(
        regs::T1,
        Expr::val(HEAD.0 as i64),
        Expr::reg(h),
        Expr::val(node),
    );
    let set = b.assign(regs::T0, Expr::val(1));
    let won = b.if_then(Expr::reg(regs::T1).eq(Expr::reg(h)), set);
    let body = b.seq(&[ld, setnext, cas, won]);
    let w = b.while_loop(Expr::reg(regs::T0).eq(Expr::val(0)), body);
    b.seq(&[data, init, w])
}

fn pop(b: &mut CodeBuilder, value_before_cas: bool) -> StmtId {
    let init = b.assign(regs::T0, Expr::val(0));
    let h = Reg(11);
    let n = Reg(12);
    let v = Reg(13);
    let ld = b.load_acq(h, Expr::val(HEAD.0 as i64));
    let empty = b.assign(regs::T0, Expr::val(1));
    let getnext = b.load(n, Expr::reg(h).add(Expr::val(1)));
    let cas = b.cas(
        regs::T1,
        Expr::val(HEAD.0 as i64),
        Expr::reg(h),
        Expr::reg(n),
    );
    let getv = b.load(v, Expr::reg(h));
    let rec = record_value(b, Expr::reg(v));
    let set = b.assign(regs::T0, Expr::val(1));
    let taken = if value_before_cas {
        // STR flavour: read the value before attempting the CAS
        let inner = b.seq(&[rec, set]);
        let won = b.if_then(Expr::reg(regs::T1).eq(Expr::reg(h)), inner);
        b.seq(&[getnext, getv, cas, won])
    } else {
        // STC flavour: read the value only after winning the CAS
        let inner = b.seq(&[getv, rec, set]);
        let won = b.if_then(Expr::reg(regs::T1).eq(Expr::reg(h)), inner);
        b.seq(&[getnext, cas, won])
    };
    let branch = b.if_else(Expr::reg(h).eq(Expr::val(0)), empty, taken);
    let body = b.seq(&[ld, branch]);
    let w = b.while_loop(Expr::reg(regs::T0).eq(Expr::val(0)), body);
    b.seq(&[init, w])
}

fn build(
    name: String,
    family: &'static str,
    specs: &[Ops],
    rust_flavour: bool,
    optimised: bool,
) -> Workload {
    let mut threads = Vec::new();
    let mut pushed: Vec<i64> = Vec::new();
    for (tid, &Ops(a, bp, c)) in specs.iter().enumerate() {
        let mut b = CodeBuilder::new();
        let mut stmts = Vec::new();
        let mut op = 0;
        for _ in 0..a {
            let value = (tid as i64 + 1) * 10 + op as i64 + 1;
            pushed.push(value);
            stmts.push(push(&mut b, tid, op, value, !optimised));
            op += 1;
        }
        for _ in 0..bp {
            stmts.push(pop(&mut b, rust_flavour));
        }
        for _ in 0..c {
            let value = (tid as i64 + 1) * 10 + op as i64 + 1;
            pushed.push(value);
            stmts.push(push(&mut b, tid, op, value, !optimised));
            op += 1;
        }
        assert!(op <= MAX_OPS, "arena too small for spec");
        threads.push(b.finish_seq(&stmts));
    }
    let n_threads = threads.len();
    let total_pushes = pushed.len();
    let (psum, psumsq): (i64, i64) = pushed.iter().fold((0, 0), |(s, q), v| (s + v, q + v * v));

    let check: Checker = Arc::new(move |o: &Outcome| {
        // walk the remaining stack
        let mut rem_sum = 0;
        let mut rem_sumsq = 0;
        let mut cur = o.loc(HEAD).0;
        let mut steps = 0;
        while cur != 0 {
            steps += 1;
            if steps > total_pushes + 1 {
                return Err("stack is cyclic or over-long".to_string());
            }
            let v = o.loc(Loc(cur as u64)).0;
            if v == 0 {
                return Err(format!("node {cur} holds uninitialised data"));
            }
            rem_sum += v;
            rem_sumsq += v * v;
            cur = o.loc(Loc(cur as u64 + 1)).0;
        }
        let mut got_sum = rem_sum;
        let mut got_sumsq = rem_sumsq;
        for t in 0..n_threads {
            let (s, q, _) = crate::util::observed(o, t);
            got_sum += s;
            got_sumsq += q;
        }
        if (got_sum, got_sumsq) != (psum, psumsq) {
            return Err(format!(
                "element conservation violated: popped+remaining ({got_sum}, {got_sumsq}) ≠ pushed ({psum}, {psumsq})"
            ));
        }
        Ok(())
    });

    let mut shared = vec![HEAD];
    shared.extend((0..(n_threads * MAX_OPS * 2) as u64).map(|i| Loc(ARENA + i)));
    let max_ops = specs
        .iter()
        .map(|&Ops(a, bp, c)| a + bp + c)
        .max()
        .unwrap_or(1);
    Workload {
        name,
        family,
        program: Arc::new(Program::new(threads)),
        shared,
        loop_fuel: 3 * max_ops.max(1),
        check,
    }
}

/// STC: the C++ Treiber stack. `specs` gives the per-thread `abc` op
/// counts; `optimised` selects the §8 ARM-optimised variant.
pub fn stc(specs: &[Ops], optimised: bool) -> Workload {
    let suffix: Vec<String> = specs
        .iter()
        .map(|o| format!("{}{}{}", o.0, o.1, o.2))
        .collect();
    let name = format!(
        "STC{}-{}",
        if optimised { "(opt)" } else { "" },
        suffix.join("-")
    );
    build(name, "STC", specs, false, optimised)
}

/// STR: the Rust Treiber stack (reads the value before the CAS).
pub fn str_stack(specs: &[Ops], optimised: bool) -> Workload {
    let suffix: Vec<String> = specs
        .iter()
        .map(|o| format!("{}{}{}", o.0, o.1, o.2))
        .collect();
    let name = format!(
        "STR{}-{}",
        if optimised { "(opt)" } else { "" },
        suffix.join("-")
    );
    build(name, "STR", specs, true, optimised)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Machine};
    use promising_explorer::explore;

    fn run_and_check(w: &Workload) {
        let m = Machine::new(w.program.clone(), w.config(Arch::Arm));
        let exp = explore(&m);
        assert!(!exp.outcomes.is_empty(), "{}: no outcomes", w.name);
        let violations = w.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{}: {violations:?}", w.name);
    }

    #[test]
    fn push_then_pop_single_thread() {
        run_and_check(&stc(&[Ops(1, 1, 0)], false));
    }

    #[test]
    fn producer_and_consumer_threads() {
        run_and_check(&stc(&[Ops(1, 0, 0), Ops(0, 1, 0)], false));
    }

    #[test]
    fn optimised_variant_still_correct() {
        run_and_check(&stc(&[Ops(1, 0, 0), Ops(0, 1, 0)], true));
    }

    #[test]
    fn rust_flavour_correct() {
        run_and_check(&str_stack(&[Ops(1, 0, 0), Ops(0, 1, 0)], false));
    }

    #[test]
    fn ops_parsing() {
        assert_eq!(Ops::parse("210"), Some(Ops(2, 1, 0)));
        assert_eq!(Ops::parse("10"), None);
        assert_eq!(Ops::parse("abc"), None);
    }
}
