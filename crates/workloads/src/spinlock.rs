//! The three spinlock variants of §8: SLA (assembly-style, the Linux
//! kernel spinlock example), SLC (C++ exchange-based) and SLR (Rust
//! test-and-CAS). Each thread acquires the lock once, increments a shared
//! counter in the critical section, and releases; the checker verifies
//! mutual exclusion (no lost increment).

use crate::util::{regs, spin_lock_cas, spin_unlock, Checker, Workload};
use promising_core::stmt::CodeBuilder;
use promising_core::{Expr, Loc, Program, Reg, StmtId, Val};
use std::sync::Arc;

const LOCK: Loc = Loc(0);
const COUNTER: Loc = Loc(1);

fn critical_section(b: &mut CodeBuilder) -> StmtId {
    let ld = b.load(regs::T3, Expr::val(COUNTER.0 as i64));
    let st = b.store(
        Expr::val(COUNTER.0 as i64),
        Expr::reg(regs::T3).add(Expr::val(1)),
    );
    b.seq(&[ld, st])
}

fn counter_checker(threads: usize) -> Checker {
    Arc::new(move |o| {
        if o.loc(COUNTER) == Val(threads as i64) {
            Ok(())
        } else {
            Err(format!(
                "mutual exclusion violated: counter = {} after {} increments",
                o.loc(COUNTER),
                threads
            ))
        }
    })
}

fn bundle(
    name: String,
    family: &'static str,
    threads: Vec<promising_core::ThreadCode>,
    fuel: u32,
) -> Workload {
    let n = threads.len();
    Workload {
        name,
        family,
        program: Arc::new(Program::new(threads)),
        shared: vec![LOCK, COUNTER],
        loop_fuel: fuel,
        check: counter_checker(n),
    }
}

/// SLA-n: the assembly-style spinlock (ARMv8.1 `CASA` acquire loop,
/// release store unlock), two threads, spin bound `n`.
pub fn sla(n: u32) -> Workload {
    let mk = || {
        let mut b = CodeBuilder::new();
        let acq = spin_lock_cas(&mut b, LOCK, regs::T0, regs::T1);
        let cs = critical_section(&mut b);
        let rel = spin_unlock(&mut b, LOCK);
        b.finish_seq(&[acq, cs, rel])
    };
    bundle(format!("SLA-{n}"), "SLA", vec![mk(), mk()], n)
}

/// SLC-n: the C++ spinlock — acquire by atomic exchange
/// (`swap(lock, 1)` until the old value is 0), which writes even when the
/// lock is held; three threads.
pub fn slc(n: u32) -> Workload {
    let mk = || {
        let mut b = CodeBuilder::new();
        // flag = 0; while (flag == 0) { old = swap_acq(lock, 1);
        //   if (old == 0) flag = 1 }
        let init = b.assign(regs::T0, Expr::val(0));
        let swap = b.amo_kind(
            promising_core::stmt::RmwOp::Swp,
            regs::T1,
            Expr::val(LOCK.0 as i64),
            Expr::val(1),
            promising_core::ReadKind::Acquire,
            promising_core::WriteKind::Plain,
        );
        let set = b.assign(regs::T0, Expr::val(1));
        let cond = b.if_then(Expr::reg(regs::T1).eq(Expr::val(0)), set);
        let body = b.seq(&[swap, cond]);
        let w = b.while_loop(Expr::reg(regs::T0).eq(Expr::val(0)), body);
        let cs = critical_section(&mut b);
        let rel = spin_unlock(&mut b, LOCK);
        b.finish_seq(&[init, w, cs, rel])
    };
    bundle(format!("SLC-{n}"), "SLC", vec![mk(), mk(), mk()], n)
}

/// SLR-n: the Rust spinlock — test-and-test-and-set: spin on a plain load
/// until the lock looks free, then a single acquire CAS; three threads.
pub fn slr(n: u32) -> Workload {
    let mk = || {
        let mut b = CodeBuilder::new();
        let init = b.assign(regs::T0, Expr::val(0));
        // inner: observe free with a plain load first
        let observe = b.load(Reg(5), Expr::val(LOCK.0 as i64));
        let cas = b.cas_acq(
            regs::T1,
            Expr::val(LOCK.0 as i64),
            Expr::val(0),
            Expr::val(1),
        );
        let set = b.assign(regs::T0, Expr::val(1));
        let cond = b.if_then(Expr::reg(regs::T1).eq(Expr::val(0)), set);
        let attempt = b.seq(&[cas, cond]);
        let try_cas = b.if_then(Expr::reg(Reg(5)).eq(Expr::val(0)), attempt);
        let body = b.seq(&[observe, try_cas]);
        let w = b.while_loop(Expr::reg(regs::T0).eq(Expr::val(0)), body);
        let cs = critical_section(&mut b);
        let rel = spin_unlock(&mut b, LOCK);
        b.finish_seq(&[init, w, cs, rel])
    };
    bundle(format!("SLR-{n}"), "SLR", vec![mk(), mk(), mk()], n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Machine};
    use promising_explorer::explore;

    fn run_and_check(w: &Workload) {
        let m = Machine::new(w.program.clone(), w.config(Arch::Arm));
        let exp = explore(&m);
        assert!(
            !exp.outcomes.is_empty(),
            "{}: no complete execution within the bound",
            w.name
        );
        let violations = w.violations(&exp.outcomes);
        assert!(violations.is_empty(), "{}: {:?}", w.name, violations);
    }

    #[test]
    fn sla_small_is_correct() {
        run_and_check(&sla(2));
    }

    #[test]
    fn slc_small_is_correct() {
        run_and_check(&slc(1));
    }

    #[test]
    fn slr_small_is_correct() {
        run_and_check(&slr(1));
    }

    #[test]
    fn workload_metadata_is_sensible() {
        let w = sla(3);
        assert_eq!(w.num_threads(), 2);
        assert!(w.instruction_count() >= 6);
        assert_eq!(w.name, "SLA-3");
        let w = slc(2);
        assert_eq!(w.num_threads(), 3);
    }

    #[test]
    fn llsc_variant_agrees_and_explores_more_states() {
        // The mechanically-desugared LL/SC build must produce the same
        // outcome set while visiting strictly more machine states under
        // the naive (full-interleaving) search — the ablation's headline
        // claim, checked at unit scale. (Promise-first counts only
        // promise-mode states, which the desugaring does not change.)
        let w = sla(1);
        let l = w.desugared(2);
        assert_eq!(l.name, "SLA-1(llsc)");
        let m = Machine::new(w.program.clone(), w.config(Arch::Arm));
        let ml = Machine::new(l.program.clone(), l.config(Arch::Arm));
        let a = promising_explorer::explore_naive(&m, promising_explorer::CertMode::Online);
        let b = promising_explorer::explore_naive(&ml, promising_explorer::CertMode::Online);
        assert_eq!(a.outcomes, b.outcomes);
        assert!(
            a.stats.states < b.stats.states,
            "rmw {} vs llsc {} states",
            a.stats.states,
            b.stats.states
        );
    }
}
