//! The two compilation schemes: C11 orderings → ARMv8 access strengths /
//! RISC-V fence placement, following the IMM mappings (Podkopaev,
//! Lahav, Vafeiadis, *Bridging the Gap between Programming Languages and
//! Hardware Weak Memory Models*, POPL 2019) and the RVWMO mapping table
//! of the RISC-V specification (Table A.6).
//!
//! | ordering | ARM load        | RISC-V load                      |
//! |----------|-----------------|----------------------------------|
//! | na / rlx | `ldr`           | `l`                              |
//! | acq      | `ldapr` (wacq)  | `l; fence r,rw`                  |
//! | sc       | `ldar` (acq)    | `fence rw,rw; l; fence r,rw`     |
//!
//! | ordering | ARM store | RISC-V store       |
//! |----------|-----------|--------------------|
//! | na / rlx | `str`     | `s`                |
//! | rel / sc | `stlr`    | `fence rw,w; s`    |
//!
//! | ordering | ARM fence | RISC-V fence   |
//! |----------|-----------|----------------|
//! | acq      | `dmb.ld`  | `fence r,rw`   |
//! | rel      | `dmb.sy`  | `fence rw,w`   |
//! | acq_rel  | `dmb.sy`  | `fence.tso`    |
//! | sc       | `dmb.sy`  | `fence rw,rw`  |
//!
//! RMWs compile identically on both architectures — to a
//! single-instruction atomic ([`promising_core::Stmt::Rmw`], ARMv8.1 LSE
//! / RISC-V AMO) whose read half is `acq` iff the ordering includes
//! acquire and whose write half is `rel` iff it includes release
//! (`sc` ⇒ both, the `casal`/`amoadd.aqrl` mapping).
//!
//! Notable choices:
//!
//! * **`acq` loads compile to `ldapr`, not `ldar`, on ARM** — the
//!   RCpc mapping verified by IMM. It is exactly as strong as the
//!   RISC-V `l; fence r,rw` lowering in this model, whereas `ldar`
//!   would additionally order the load after program-order-earlier
//!   `stlr`s (the RCsc `[rel]; po; [acq]` edge), making e.g. SB+rel+acq
//!   forbidden on ARM but allowed on RISC-V.
//! * **`sc` loads keep `ldar`** (no leading barrier): SC↔SC ordering
//!   with earlier `sc`/`rel` stores comes from the release view the
//!   `stlr` mapping leaves behind, which is what the paper's model
//!   gives `ldar` (`vRel ⊑` the load's pre-view).
//!
//! The schemes are *sound* for arbitrary programs (each compiled program
//! is checked against the axiomatic model), but their outcome sets only
//! provably *coincide* across architectures on the fence-agreement
//! fragment documented in `docs/architecture.md` (no `rlx` access
//! program-order-before an `sc` load in the same thread, no store or RMW
//! program-order-after an RMW, no `rel`/`acq_rel` fence between a store
//! and a later load) — the fragment every litmus shape in the language
//! catalogue and generated corpus lives in, enforced empirically by
//! `tests/compilation_soundness.rs`.

use crate::ast::{Ordering, Program, Stmt, Thread};
use promising_core::stmt::{
    CodeBuilder, Fence, Program as CoreProgram, ReadKind, StmtId, ThreadCode, WriteKind,
};
use promising_core::Arch;
use std::fmt;

/// An invalid surface program reached the compiler: an access carries an
/// ordering its access type does not admit. The parser rejects these at
/// parse time; programmatically-built ASTs (the closure-recording
/// harness, library users constructing [`Stmt`] values directly) hit
/// them here — as an error, not a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// Thread index of the offending statement.
    pub thread: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread {}: {}", self.thread, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Check every access's ordering against its access type — the same
/// validity tables the parser enforces ([`Ordering::valid_for_load`]
/// and friends), applied to an arbitrary AST.
///
/// # Errors
///
/// Returns the first offending statement as a [`CompileError`].
pub fn validate(program: &Program) -> Result<(), CompileError> {
    fn check(tid: usize, stmts: &[Stmt]) -> Result<(), CompileError> {
        let err = |message: String| {
            Err(CompileError {
                thread: tid,
                message,
            })
        };
        for s in stmts {
            match s {
                Stmt::Load { ord, .. } if !ord.valid_for_load() => {
                    return err(format!(
                        "`{ord}` is not a load ordering; C11 loads are rlx, acq or sc \
                         (or non-atomic)"
                    ));
                }
                Stmt::Store { ord, .. } if !ord.valid_for_store() => {
                    return err(format!(
                        "`{ord}` is not a store ordering; C11 stores are rlx, rel or sc \
                         (or non-atomic)"
                    ));
                }
                Stmt::Rmw { op, ord, .. } if !ord.valid_for_rmw() => {
                    return err(format!(
                        "an RMW is always atomic; give `{}` an atomic ordering \
                         (rlx, acq, rel, acq_rel or sc)",
                        crate::ast::rmw_surface_name(*op)
                    ));
                }
                Stmt::Fence(ord) if !ord.valid_for_fence() => {
                    return err(format!(
                        "`{ord}` is not a fence ordering; C11 fences are acq, rel, \
                         acq_rel or sc"
                    ));
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    check(tid, then_branch)?;
                    check(tid, else_branch)?;
                }
                Stmt::While { body, .. } => check(tid, body)?,
                _ => {}
            }
        }
        Ok(())
    }
    for (tid, t) in program.threads().iter().enumerate() {
        check(tid, &t.0)?;
    }
    Ok(())
}

/// Compile a surface program for `arch`, validating it first.
///
/// # Errors
///
/// Returns a [`CompileError`] if an access carries an ordering its
/// access type does not admit (see [`validate`]).
pub fn try_compile(program: &Program, arch: Arch) -> Result<CoreProgram, CompileError> {
    validate(program)?;
    Ok(CoreProgram::new(
        program
            .threads()
            .iter()
            .map(|t| compile_thread_unchecked(t, arch))
            .collect(),
    ))
}

/// Compile a surface program for `arch`.
///
/// # Panics
///
/// Panics if the program is invalid (an ordering its access type does
/// not admit). Parser- and recorder-produced programs are always valid;
/// for hand-built ASTs prefer [`try_compile`].
pub fn compile(program: &Program, arch: Arch) -> CoreProgram {
    try_compile(program, arch)
        .unwrap_or_else(|e| panic!("compiling an invalid surface program: {e}"))
}

/// Compile for ARMv8: orderings become access strengths
/// (`ldapr`/`ldar`/`stlr`) plus `dmb` barriers for standalone fences.
///
/// # Panics
///
/// Panics on an invalid program — see [`compile`]/[`try_compile`].
pub fn compile_arm(program: &Program) -> CoreProgram {
    compile(program, Arch::Arm)
}

/// Compile for RISC-V: orderings become `fence` placements around plain
/// accesses (AMOs keep their `aq`/`rl` bits).
///
/// # Panics
///
/// Panics on an invalid program — see [`compile`]/[`try_compile`].
pub fn compile_riscv(program: &Program) -> CoreProgram {
    compile(program, Arch::RiscV)
}

/// Compile one thread for `arch`, validating it first.
///
/// # Errors
///
/// Returns a [`CompileError`] (with thread index 0) if an access
/// carries an ordering its access type does not admit.
pub fn try_compile_thread(thread: &Thread, arch: Arch) -> Result<ThreadCode, CompileError> {
    validate(&Program::new(vec![thread.clone()]))?;
    Ok(compile_thread_unchecked(thread, arch))
}

/// Compile one thread for `arch`.
///
/// # Panics
///
/// Panics on an invalid thread — see [`compile`]/[`try_compile`].
pub fn compile_thread(thread: &Thread, arch: Arch) -> ThreadCode {
    try_compile_thread(thread, arch)
        .unwrap_or_else(|e| panic!("compiling an invalid surface thread: {e}"))
}

fn compile_thread_unchecked(thread: &Thread, arch: Arch) -> ThreadCode {
    let mut b = CodeBuilder::new();
    let entry = compile_block(&mut b, &thread.0, arch);
    b.finish(entry)
}

fn compile_block(b: &mut CodeBuilder, stmts: &[Stmt], arch: Arch) -> StmtId {
    let ids: Vec<StmtId> = stmts.iter().map(|s| compile_stmt(b, s, arch)).collect();
    b.seq(&ids)
}

/// The ARM access strength of a load ordering (the RISC-V scheme keeps
/// loads plain and expresses the ordering with fences instead).
fn arm_read_kind(ord: Ordering) -> ReadKind {
    match ord {
        Ordering::NotAtomic | Ordering::Relaxed => ReadKind::Plain,
        // the IMM RCpc mapping: C11 acquire is LDAPR-strength
        Ordering::Acquire => ReadKind::WeakAcquire,
        Ordering::SeqCst => ReadKind::Acquire,
        Ordering::Release | Ordering::AcqRel => unreachable!("not a load ordering"),
    }
}

fn compile_stmt(b: &mut CodeBuilder, s: &Stmt, arch: Arch) -> StmtId {
    match s {
        Stmt::Skip => b.skip(),
        Stmt::Assign { reg, expr } => b.assign(*reg, expr.clone()),
        Stmt::Load { reg, addr, ord } => match arch {
            Arch::Arm => b.load_kind(*reg, addr.clone(), arm_read_kind(*ord), false),
            Arch::RiscV => {
                let mut seq = Vec::new();
                if *ord == Ordering::SeqCst {
                    seq.push(b.fence(Fence::FULL));
                }
                seq.push(b.load(*reg, addr.clone()));
                if matches!(ord, Ordering::Acquire | Ordering::SeqCst) {
                    seq.push(b.fence(Fence::LD));
                }
                b.seq(&seq)
            }
        },
        Stmt::Store { addr, data, ord } => match arch {
            Arch::Arm => match ord {
                Ordering::NotAtomic | Ordering::Relaxed => b.store(addr.clone(), data.clone()),
                Ordering::Release | Ordering::SeqCst => b.store_rel(addr.clone(), data.clone()),
                Ordering::Acquire | Ordering::AcqRel => unreachable!("not a store ordering"),
            },
            Arch::RiscV => match ord {
                Ordering::NotAtomic | Ordering::Relaxed => b.store(addr.clone(), data.clone()),
                Ordering::Release | Ordering::SeqCst => {
                    let f = b.fence(Fence::RWW);
                    let s = b.store(addr.clone(), data.clone());
                    b.then(f, s)
                }
                Ordering::Acquire | Ordering::AcqRel => unreachable!("not a store ordering"),
            },
        },
        Stmt::Rmw {
            op,
            dst,
            addr,
            expected,
            operand,
            ord,
        } => {
            // identical on both architectures: the `aq`/`rl` bits of the
            // single-instruction atomic (ARM `casa`/`casl`/`casal`,
            // RISC-V `amo….aq/.rl/.aqrl`)
            let rk = if ord.is_acquire() {
                ReadKind::Acquire
            } else {
                ReadKind::Plain
            };
            let wk = if ord.is_release() {
                WriteKind::Release
            } else {
                WriteKind::Plain
            };
            match expected {
                Some(e) => b.cas_kind(*dst, addr.clone(), e.clone(), operand.clone(), rk, wk),
                None => b.amo_kind(*op, *dst, addr.clone(), operand.clone(), rk, wk),
            }
        }
        Stmt::Fence(ord) => match arch {
            Arch::Arm => match ord {
                Ordering::Acquire => b.dmb_ld(),
                // ARM has no rw,w barrier; rel/acq_rel/sc all take dmb.sy
                Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => b.dmb_sy(),
                Ordering::NotAtomic | Ordering::Relaxed => unreachable!("not a fence ordering"),
            },
            Arch::RiscV => match ord {
                Ordering::Acquire => b.fence(Fence::LD),
                Ordering::Release => b.fence(Fence::RWW),
                Ordering::AcqRel => b.fence_tso(),
                Ordering::SeqCst => b.fence(Fence::FULL),
                Ordering::NotAtomic | Ordering::Relaxed => unreachable!("not a fence ordering"),
            },
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let t = compile_block(b, then_branch, arch);
            let e = compile_block(b, else_branch, arch);
            b.if_else(cond.clone(), t, e)
        }
        Stmt::While { cond, body } => {
            let body = compile_block(b, body, arch);
            b.while_loop(cond.clone(), body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use promising_core::lex::LocTable;
    use promising_core::stmt::Stmt as CoreStmt;

    fn flatten(code: &ThreadCode) -> Vec<CoreStmt> {
        let mut out = Vec::new();
        let mut stack = vec![code.entry()];
        while let Some(id) = stack.pop() {
            match code.stmt(id) {
                CoreStmt::Seq(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                CoreStmt::Skip => {}
                s => out.push(s.clone()),
            }
        }
        out
    }

    fn thread(src: &str) -> Thread {
        let mut locs = LocTable::new();
        crate::parser::parse_thread(src, &mut locs).unwrap()
    }

    #[test]
    fn arm_loads_lower_to_access_strengths() {
        let t = thread("r1 = load(x, rlx)\nr2 = load(x, acq)\nr3 = load(x, sc)");
        let code = compile_thread(&t, Arch::Arm);
        let stmts = flatten(&code);
        assert_eq!(stmts.len(), 3);
        assert!(matches!(
            &stmts[0],
            CoreStmt::Load {
                kind: ReadKind::Plain,
                exclusive: false,
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            CoreStmt::Load {
                kind: ReadKind::WeakAcquire,
                ..
            }
        ));
        assert!(matches!(
            &stmts[2],
            CoreStmt::Load {
                kind: ReadKind::Acquire,
                ..
            }
        ));
    }

    #[test]
    fn riscv_loads_lower_to_fence_brackets() {
        let t = thread("r1 = load(x, acq)\nr2 = load(x, sc)");
        let code = compile_thread(&t, Arch::RiscV);
        let stmts = flatten(&code);
        // acq: l; fence r,rw — sc: fence rw,rw; l; fence r,rw
        assert!(matches!(
            &stmts[0],
            CoreStmt::Load {
                kind: ReadKind::Plain,
                ..
            }
        ));
        assert_eq!(stmts[1], CoreStmt::Fence(Fence::LD));
        assert_eq!(stmts[2], CoreStmt::Fence(Fence::FULL));
        assert!(matches!(
            &stmts[3],
            CoreStmt::Load {
                kind: ReadKind::Plain,
                ..
            }
        ));
        assert_eq!(stmts[4], CoreStmt::Fence(Fence::LD));
    }

    #[test]
    fn stores_lower_per_scheme() {
        let t = thread("store(x, 1, rel)\nstore(x, 2, sc)\nstore(x, 3, rlx)");
        let arm = flatten(&compile_thread(&t, Arch::Arm));
        assert!(matches!(
            &arm[0],
            CoreStmt::Store {
                kind: WriteKind::Release,
                ..
            }
        ));
        assert!(matches!(
            &arm[1],
            CoreStmt::Store {
                kind: WriteKind::Release,
                ..
            }
        ));
        assert!(matches!(
            &arm[2],
            CoreStmt::Store {
                kind: WriteKind::Plain,
                ..
            }
        ));
        let riscv = flatten(&compile_thread(&t, Arch::RiscV));
        assert_eq!(riscv[0], CoreStmt::Fence(Fence::RWW));
        assert!(matches!(
            &riscv[1],
            CoreStmt::Store {
                kind: WriteKind::Plain,
                ..
            }
        ));
        assert_eq!(riscv[2], CoreStmt::Fence(Fence::RWW));
        assert!(matches!(
            &riscv[3],
            CoreStmt::Store {
                kind: WriteKind::Plain,
                ..
            }
        ));
        assert!(matches!(
            &riscv[4],
            CoreStmt::Store {
                kind: WriteKind::Plain,
                ..
            }
        ));
    }

    #[test]
    fn fences_lower_per_scheme() {
        let t = thread("fence(acq)\nfence(rel)\nfence(acq_rel)\nfence(sc)");
        let arm = flatten(&compile_thread(&t, Arch::Arm));
        assert_eq!(
            arm,
            vec![
                CoreStmt::Fence(Fence::LD),
                CoreStmt::Fence(Fence::FULL),
                CoreStmt::Fence(Fence::FULL),
                CoreStmt::Fence(Fence::FULL),
            ]
        );
        let riscv = flatten(&compile_thread(&t, Arch::RiscV));
        assert_eq!(
            riscv,
            vec![
                CoreStmt::Fence(Fence::LD),
                CoreStmt::Fence(Fence::RWW),
                // fence.tso = fence r,r; fence rw,w
                CoreStmt::Fence(Fence::RR),
                CoreStmt::Fence(Fence::RWW),
                CoreStmt::Fence(Fence::FULL),
            ]
        );
    }

    #[test]
    fn rmws_lower_identically_on_both_architectures() {
        let t = thread("r1 = cas(x, 0, 1, sc)\nr2 = fetch_add(x, 1, acq)\nr3 = swap(x, 2, rel)");
        for arch in [Arch::Arm, Arch::RiscV] {
            let stmts = flatten(&compile_thread(&t, arch));
            assert!(matches!(
                &stmts[0],
                CoreStmt::Rmw {
                    rk: ReadKind::Acquire,
                    wk: WriteKind::Release,
                    expected: Some(_),
                    ..
                }
            ));
            assert!(matches!(
                &stmts[1],
                CoreStmt::Rmw {
                    rk: ReadKind::Acquire,
                    wk: WriteKind::Plain,
                    ..
                }
            ));
            assert!(matches!(
                &stmts[2],
                CoreStmt::Rmw {
                    rk: ReadKind::Plain,
                    wk: WriteKind::Release,
                    ..
                }
            ));
        }
    }

    #[test]
    fn control_flow_compiles_recursively() {
        let (p, _) = parse_program(
            "r1 = load(x, acq)\nif (r1 == 1) { store(y, 1, rel) } else { skip }\nwhile (r2 != 0) { r2 = r2 - 1 }",
        )
        .unwrap();
        for arch in [Arch::Arm, Arch::RiscV] {
            let code = compile(&p, arch);
            assert_eq!(code.num_threads(), 1);
            // the compiled arena contains an If and a While
            let t = &code.threads()[0];
            let has = |pred: fn(&CoreStmt) -> bool| {
                (0..t.len()).any(|i| pred(t.stmt(promising_core::StmtId(i as u32))))
            };
            assert!(has(|s| matches!(s, CoreStmt::If { .. })));
            assert!(has(|s| matches!(s, CoreStmt::While { .. })));
        }
    }
}
