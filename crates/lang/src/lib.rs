//! # promising-lang
//!
//! A C11-flavoured surface language over the Promising-ARM/RISC-V
//! hardware calculus: loads/stores/RMWs/fences annotated with the C11
//! orderings (`na`/`rlx`/`acq`/`rel`/`acq_rel`/`sc`) instead of hardware
//! access strengths, plus two verified-style compilation schemes
//! lowering each access to the hardware statement layer following the
//! IMM mappings — `ldapr`/`ldar`/`stlr` strengths on ARMv8,
//! fence-bracketed plain accesses on RISC-V, `aq`/`rl` AMO bits on both.
//!
//! Write a litmus shape once, run it on either architecture:
//!
//! ```
//! use promising_lang::{compile_arm, compile_riscv, parse_program};
//!
//! let (p, locs) = parse_program(
//!     "store(x, 1, rlx)\nstore(y, 1, rel)\n---\nr1 = load(y, acq)\nr2 = load(x, rlx)",
//! ).unwrap();
//! let arm = compile_arm(&p);      // str; stlr ‖ ldapr; ldr
//! let riscv = compile_riscv(&p);  // s; fence rw,w; s ‖ l; fence r,rw; l
//! assert_eq!(locs.get("x").unwrap().0, 0);
//! assert!(arm.instruction_count() < riscv.instruction_count());
//! ```
//!
//! The `promising-litmus` crate wires this through the litmus format
//! (`LANG` headers), a language-level catalogue, and a conformance
//! harness checking that both compilations produce identical outcome
//! sets under every engine.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod parser;

pub use ast::{rmw_surface_name, Ordering, Program, Stmt, Thread};
pub use compile::{
    compile, compile_arm, compile_riscv, compile_thread, try_compile, try_compile_thread, validate,
    CompileError,
};
pub use parser::{parse_program, parse_thread};
