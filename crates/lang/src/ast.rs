//! The surface-language AST: C11-flavoured atomics over the shared
//! expression language of `promising-core`.
//!
//! A program is a parallel composition of threads; a thread is a
//! statement list. Accesses carry a C11 [`Ordering`] instead of the
//! hardware acquire/release strengths — the two compilation schemes
//! ([`crate::compile`]) lower orderings to per-architecture instruction
//! sequences following the IMM mappings.

use promising_core::{Expr, Reg, RmwOp};
use std::fmt;

/// C11 memory orderings (plus `na` for non-atomic accesses).
///
/// `na` and `rlx` compile identically on both architectures (a plain
/// access); the language keeps them distinct because they differ at the
/// language level (data races on `na` accesses are undefined behaviour in
/// C11 — the operational model here gives them the `rlx` semantics).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Ordering {
    /// Non-atomic (plain) access.
    #[default]
    NotAtomic,
    /// `memory_order_relaxed`.
    Relaxed,
    /// `memory_order_acquire`.
    Acquire,
    /// `memory_order_release`.
    Release,
    /// `memory_order_acq_rel`.
    AcqRel,
    /// `memory_order_seq_cst`.
    SeqCst,
}

impl Ordering {
    /// All orderings, for generators and property tests.
    pub const ALL: [Ordering; 6] = [
        Ordering::NotAtomic,
        Ordering::Relaxed,
        Ordering::Acquire,
        Ordering::Release,
        Ordering::AcqRel,
        Ordering::SeqCst,
    ];

    /// The surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Ordering::NotAtomic => "na",
            Ordering::Relaxed => "rlx",
            Ordering::Acquire => "acq",
            Ordering::Release => "rel",
            Ordering::AcqRel => "acq_rel",
            Ordering::SeqCst => "sc",
        }
    }

    /// Parse a surface keyword.
    pub fn from_keyword(kw: &str) -> Option<Ordering> {
        Ordering::ALL.into_iter().find(|o| o.keyword() == kw)
    }

    /// Does the ordering include acquire semantics (for RMWs)?
    pub fn is_acquire(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// Does the ordering include release semantics (for RMWs)?
    pub fn is_release(self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// Valid on a load? (C11: loads are `rlx`/`acq`/`sc`, or non-atomic.)
    pub fn valid_for_load(self) -> bool {
        matches!(
            self,
            Ordering::NotAtomic | Ordering::Relaxed | Ordering::Acquire | Ordering::SeqCst
        )
    }

    /// Valid on a store? (C11: stores are `rlx`/`rel`/`sc`, or non-atomic.)
    pub fn valid_for_store(self) -> bool {
        matches!(
            self,
            Ordering::NotAtomic | Ordering::Relaxed | Ordering::Release | Ordering::SeqCst
        )
    }

    /// Valid on an RMW? (Always atomic: everything except `na`.)
    pub fn valid_for_rmw(self) -> bool {
        self != Ordering::NotAtomic
    }

    /// Valid on a fence? (C11 fences: `acq`/`rel`/`acq_rel`/`sc`.)
    pub fn valid_for_fence(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A surface-language statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `skip`.
    Skip,
    /// `r = e`.
    Assign {
        /// Destination register.
        reg: Reg,
        /// Assigned expression.
        expr: Expr,
    },
    /// `r = load(addr, ord)` (omitted ordering: non-atomic).
    Load {
        /// Destination register.
        reg: Reg,
        /// Address expression (location names intern via the shared
        /// [`promising_core::LocTable`]; dependency idioms like
        /// `x + (r1 - r1)` are allowed).
        addr: Expr,
        /// C11 ordering (must satisfy [`Ordering::valid_for_load`]).
        ord: Ordering,
    },
    /// `store(addr, data, ord)` (omitted ordering: non-atomic).
    Store {
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// C11 ordering (must satisfy [`Ordering::valid_for_store`]).
        ord: Ordering,
    },
    /// An atomic read-modify-write:
    /// `r = cas(addr, expected, new, ord)`, `r = swap(addr, v, ord)`,
    /// `r = fetch_add(addr, v, ord)`, … The destination register receives
    /// the old value (CAS success is observable as `r == expected`).
    Rmw {
        /// The update performed.
        op: RmwOp,
        /// Destination register (old value).
        dst: Reg,
        /// Address expression (must not depend on `dst`).
        addr: Expr,
        /// CAS only: the expected value.
        expected: Option<Expr>,
        /// Stored value (`cas`/`swap`) or second fetch-op argument.
        operand: Expr,
        /// C11 ordering (must satisfy [`Ordering::valid_for_rmw`]).
        ord: Ordering,
    },
    /// `fence(ord)` — a standalone C11 fence.
    Fence(Ordering),
    /// `if (cond) { … } else { … }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond ≠ 0`.
        then_branch: Vec<Stmt>,
        /// Taken when `cond = 0`.
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { … }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// The surface spelling of an RMW op (no ordering suffix; the ordering is
/// a trailing argument in the surface language).
pub fn rmw_surface_name(op: RmwOp) -> &'static str {
    match op {
        RmwOp::Cas => "cas",
        RmwOp::Swp => "swap",
        RmwOp::FetchAdd => "fetch_add",
        RmwOp::FetchAnd => "fetch_and",
        RmwOp::FetchOr => "fetch_or",
        RmwOp::FetchXor => "fetch_xor",
        RmwOp::FetchMax => "fetch_max",
    }
}

/// One thread: a statement list.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Thread(pub Vec<Stmt>);

/// A surface-language program: a parallel composition of threads.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    threads: Vec<Thread>,
}

impl Program {
    /// Build a program from per-thread statement lists.
    pub fn new(threads: Vec<Thread>) -> Program {
        Program { threads }
    }

    /// The threads, in thread-id order.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of memory accesses + fences (the language-level
    /// analogue of [`promising_core::Program::instruction_count`]).
    pub fn access_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Load { .. } | Stmt::Store { .. } | Stmt::Rmw { .. } | Stmt::Fence(_) => 1,
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => count(then_branch) + count(else_branch),
                    Stmt::While { body, .. } => count(body),
                    Stmt::Skip | Stmt::Assign { .. } => 0,
                })
                .sum()
        }
        self.threads.iter().map(|t| count(&t.0)).sum()
    }
}

fn fmt_args(f: &mut fmt::Formatter<'_>, args: &[&dyn fmt::Display], ord: Ordering) -> fmt::Result {
    write!(f, "(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    if ord != Ordering::NotAtomic {
        write!(f, ", {ord}")?;
    }
    write!(f, ")")
}

fn fmt_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Skip => writeln!(f, "{pad}skip"),
        Stmt::Assign { reg, expr } => writeln!(f, "{pad}{reg} = {expr}"),
        Stmt::Load { reg, addr, ord } => {
            write!(f, "{pad}{reg} = load")?;
            fmt_args(f, &[addr], *ord)?;
            writeln!(f)
        }
        Stmt::Store { addr, data, ord } => {
            write!(f, "{pad}store")?;
            fmt_args(f, &[addr, data], *ord)?;
            writeln!(f)
        }
        Stmt::Rmw {
            op,
            dst,
            addr,
            expected,
            operand,
            ord,
        } => {
            write!(f, "{pad}{dst} = {}", rmw_surface_name(*op))?;
            match expected {
                Some(e) => fmt_args(f, &[addr, e, operand], *ord)?,
                None => fmt_args(f, &[addr, operand], *ord)?,
            }
            writeln!(f)
        }
        Stmt::Fence(ord) => writeln!(f, "{pad}fence({ord})"),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            writeln!(f, "{pad}if ({cond}) {{")?;
            for s in then_branch {
                fmt_stmt(f, s, indent + 1)?;
            }
            if else_branch.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                for s in else_branch {
                    fmt_stmt(f, s, indent + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::While { cond, body } => {
            writeln!(f, "{pad}while ({cond}) {{")?;
            for s in body {
                fmt_stmt(f, s, indent + 1)?;
            }
            writeln!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_stmt(f, self, 0)
    }
}

impl fmt::Display for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.0 {
            fmt_stmt(f, s, 0)?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    /// Pretty-print in the surface syntax (re-parseable up to location
    /// names, which print as raw addresses).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                writeln!(f, "---")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_keywords_round_trip() {
        for o in Ordering::ALL {
            assert_eq!(Ordering::from_keyword(o.keyword()), Some(o));
        }
        assert_eq!(Ordering::from_keyword("seq_cst"), None);
    }

    #[test]
    fn ordering_validity_tables() {
        assert!(Ordering::SeqCst.valid_for_load());
        assert!(!Ordering::Release.valid_for_load());
        assert!(!Ordering::AcqRel.valid_for_store());
        assert!(Ordering::Release.valid_for_store());
        assert!(!Ordering::NotAtomic.valid_for_rmw());
        assert!(Ordering::AcqRel.valid_for_rmw());
        assert!(!Ordering::Relaxed.valid_for_fence());
        assert!(Ordering::AcqRel.valid_for_fence());
    }

    #[test]
    fn access_count_recurses_into_blocks() {
        let p = Program::new(vec![Thread(vec![
            Stmt::Fence(Ordering::SeqCst),
            Stmt::If {
                cond: Expr::val(1),
                then_branch: vec![Stmt::Load {
                    reg: Reg(1),
                    addr: Expr::val(0),
                    ord: Ordering::Relaxed,
                }],
                else_branch: vec![],
            },
        ])]);
        assert_eq!(p.access_count(), 2);
    }
}
