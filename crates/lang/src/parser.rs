//! Parser for the surface language.
//!
//! ```text
//! r1 = load(x, acq)            // C11 atomic load (rlx | acq | sc)
//! r2 = load(y)                 // non-atomic load
//! store(x, 1, rel)             // C11 atomic store (rlx | rel | sc)
//! store(y, 2)                  // non-atomic store
//! r3 = cas(x, 0, 1, acq_rel)   // compare-and-swap (old value in r3)
//! r4 = swap(x, 5, rlx)         // atomic exchange
//! r5 = fetch_add(x, 1, sc)     // fetch_and / fetch_or / fetch_xor / fetch_max
//! fence(sc)                    // C11 fence (acq | rel | acq_rel | sc)
//! r6 = r1 + 1
//! if (r1 == 1) { … } else { … }
//! while (r0 == 0) { … }
//! ```
//!
//! Statements separate by `;` or newlines; `//` starts a comment; threads
//! separate by `---` lines; location names intern via the shared
//! [`LocTable`]. Hardware-level syntax (`dmb.sy`, `loadx`, `amo_add`,
//! `fence(rw, w)`, …) is rejected with a pointed error naming the
//! language-level equivalent — the surface language only speaks C11
//! orderings; the compiler places the barriers.

use crate::ast::{Ordering, Program, Stmt, Thread};
use promising_core::lex::{parse_reg, LocTable, ParseError, Tok, Tokens};
use promising_core::{Reg, RmwOp};

/// Parse a whole program: thread sources separated by `---` lines.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_program(src: &str) -> Result<(Program, LocTable), ParseError> {
    let mut locs = LocTable::new();
    let mut threads = Vec::new();
    for section in split_threads(src) {
        threads.push(parse_thread(&section, &mut locs)?);
    }
    Ok((Program::new(threads), locs))
}

fn split_threads(src: &str) -> Vec<String> {
    let mut sections = vec![String::new()];
    for line in src.lines() {
        if line.trim() == "---" {
            sections.push(String::new());
        } else if let Some(s) = sections.last_mut() {
            s.push_str(line);
            s.push('\n');
        }
    }
    sections
}

/// Parse a single thread, interning locations into `locs`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_thread(src: &str, locs: &mut LocTable) -> Result<Thread, ParseError> {
    let mut p = Parser {
        tokens: Tokens::new(src)?,
        locs,
    };
    let stmts = p.stmt_list(None)?;
    if !p.tokens.at_end() {
        return Err(p.tokens.err("trailing input"));
    }
    Ok(Thread(stmts))
}

/// The RMW surface spellings.
fn rmw_op(id: &str) -> Option<RmwOp> {
    match id {
        "cas" => Some(RmwOp::Cas),
        "swap" => Some(RmwOp::Swp),
        "fetch_add" => Some(RmwOp::FetchAdd),
        "fetch_and" => Some(RmwOp::FetchAnd),
        "fetch_or" => Some(RmwOp::FetchOr),
        "fetch_xor" => Some(RmwOp::FetchXor),
        "fetch_max" => Some(RmwOp::FetchMax),
        _ => None,
    }
}

/// Bare hardware barrier keywords (statement position, no argument
/// list). These can never be sensible value or location names, so they
/// produce pointed errors wherever they appear.
fn hardware_barrier_hint(id: &str) -> Option<String> {
    let hint = |what: &str, instead: &str| {
        Some(format!(
            "`{id}` is hardware-level {what}, not surface-language syntax; \
             write `{instead}` and let the compiler place the barriers"
        ))
    };
    match id {
        "dmb.sy" => hint("ARM barrier syntax", "fence(sc)"),
        "dmb.ld" => hint("ARM barrier syntax", "fence(acq)"),
        "dmb.st" => hint("ARM barrier syntax", "fence(rel)"),
        "fence.tso" => hint("RISC-V barrier syntax", "fence(acq_rel)"),
        "isb" => Some(format!(
            "`{id}` is an ARM instruction-barrier with no C11 equivalent; \
             the surface language has no instruction barriers"
        )),
        _ => None,
    }
}

/// Hardware-level access mnemonics with the surface form a user should
/// write instead. The `LANG` litmus path goes through this parser, so
/// these produce pointed errors rather than "unexpected identifier" —
/// but only when the identifier is actually *called* (followed by `(`):
/// a location that merely happens to be named `cas_count` is still a
/// legal operand in expressions.
fn hardware_syntax_hint(id: &str) -> Option<String> {
    let hint = |what: &str, instead: &str| {
        Some(format!(
            "`{id}` is hardware-level {what}, not surface-language syntax; \
             write `{instead}` and let the compiler place the barriers"
        ))
    };
    match id {
        "load_acq" | "load_wacq" => hint("load syntax", "r = load(x, acq)"),
        "loadx" | "loadx_acq" | "loadx_wacq" => Some(format!(
            "`{id}` is a hardware load exclusive; exclusives are not \
             surface-language syntax — use `cas`/`swap`/`fetch_*`, which \
             compile to single-instruction atomics"
        )),
        "store_rel" | "store_wrel" => hint("store syntax", "store(x, v, rel)"),
        "storex" | "storex_rel" | "storex_wrel" => Some(format!(
            "`{id}` is a hardware store exclusive; exclusives are not \
             surface-language syntax — use `cas`/`swap`/`fetch_*`, which \
             compile to single-instruction atomics"
        )),
        _ => {
            // cas_acq, amo_add_rel, amo_swap, … — the hardware RMW
            // mnemonics with strength suffixes
            if id.starts_with("amo_") {
                return hint(
                    "RMW syntax",
                    "r = fetch_add(x, v, ord) / r = swap(x, v, ord)",
                );
            }
            if id.starts_with("cas_") {
                return hint("RMW syntax", "r = cas(x, expected, new, ord)");
            }
            None
        }
    }
}

struct Parser<'a> {
    tokens: Tokens,
    locs: &'a mut LocTable,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        self.tokens.err(msg)
    }

    fn expr(&mut self) -> Result<promising_core::Expr, ParseError> {
        self.tokens.expr(self.locs)
    }

    fn stmt_list(&mut self, end: Option<&'static str>) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.tokens.skip_semis();
            match (self.tokens.peek(), end) {
                (None, None) => break,
                (None, Some(e)) => return Err(self.err(format!("expected `{e}`"))),
                (Some(Tok::Sym(s)), Some(e)) if *s == e => break,
                _ => out.push(self.stmt()?),
            }
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.tokens.expect_sym("{")?;
        let stmts = self.stmt_list(Some("}"))?;
        self.tokens.expect_sym("}")?;
        Ok(stmts)
    }

    /// The trailing `, ord` of an access, before the closing paren.
    /// Returns [`Ordering::NotAtomic`] when omitted.
    fn trailing_ordering(&mut self) -> Result<Ordering, ParseError> {
        if !self.tokens.eat_sym(",") {
            return Ok(Ordering::NotAtomic);
        }
        self.ordering()
    }

    fn ordering(&mut self) -> Result<Ordering, ParseError> {
        match self.tokens.next() {
            Some(Tok::Ident(kw)) => {
                if let Some(o) = Ordering::from_keyword(&kw) {
                    return Ok(o);
                }
                if matches!(kw.as_str(), "r" | "w" | "rw") {
                    return Err(self.err(format!(
                        "`{kw}` is a hardware fence access-set (RISC-V `fence(K1, K2)` \
                         syntax); surface-language fences take one C11 ordering: \
                         fence(acq | rel | acq_rel | sc)"
                    )));
                }
                Err(self.err(format!(
                    "unknown ordering `{kw}` (expected na, rlx, acq, rel, acq_rel or sc)"
                )))
            }
            other => Err(self.err(format!("expected an ordering, found {other:?}"))),
        }
    }

    /// Whether the identifier at the cursor is being *called* (followed
    /// by an opening parenthesis).
    fn at_call(&self) -> bool {
        matches!(self.tokens.peek_ahead(1), Some(Tok::Sym("(")))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let tok = self.tokens.peek().cloned();
        match tok {
            Some(Tok::Ident(id)) => {
                if let Some(hint) = hardware_barrier_hint(&id) {
                    return Err(self.err(hint));
                }
                if self.at_call() {
                    if let Some(hint) = hardware_syntax_hint(&id) {
                        return Err(self.err(hint));
                    }
                }
                match id.as_str() {
                    "skip" => {
                        self.tokens.bump();
                        Ok(Stmt::Skip)
                    }
                    "fence" => {
                        self.tokens.bump();
                        self.tokens.expect_sym("(")?;
                        let ord = self.ordering()?;
                        if self.tokens.eat_sym(",") {
                            return Err(self.err(
                                "surface-language fences take one C11 ordering, not a \
                                 hardware (K1, K2) pair: fence(acq | rel | acq_rel | sc)",
                            ));
                        }
                        self.tokens.expect_sym(")")?;
                        if !ord.valid_for_fence() {
                            return Err(self.err(format!(
                                "`{ord}` is not a fence ordering; C11 fences are \
                                 acq, rel, acq_rel or sc"
                            )));
                        }
                        Ok(Stmt::Fence(ord))
                    }
                    "if" => {
                        self.tokens.bump();
                        self.tokens.expect_sym("(")?;
                        let cond = self.expr()?;
                        self.tokens.expect_sym(")")?;
                        let then_branch = self.block()?;
                        self.tokens.skip_semis();
                        let else_branch = if matches!(self.tokens.peek(), Some(Tok::Ident(k)) if k == "else")
                        {
                            self.tokens.bump();
                            self.block()?
                        } else {
                            Vec::new()
                        };
                        Ok(Stmt::If {
                            cond,
                            then_branch,
                            else_branch,
                        })
                    }
                    "while" => {
                        self.tokens.bump();
                        self.tokens.expect_sym("(")?;
                        let cond = self.expr()?;
                        self.tokens.expect_sym(")")?;
                        let body = self.block()?;
                        Ok(Stmt::While { cond, body })
                    }
                    "store" => {
                        self.tokens.bump();
                        self.tokens.expect_sym("(")?;
                        let addr = self.expr()?;
                        self.tokens.expect_sym(",")?;
                        let data = self.expr()?;
                        let ord = self.trailing_ordering()?;
                        self.tokens.expect_sym(")")?;
                        if !ord.valid_for_store() {
                            return Err(self.err(format!(
                                "`{ord}` is not a store ordering; C11 stores are \
                                 rlx, rel or sc (or non-atomic)"
                            )));
                        }
                        Ok(Stmt::Store { addr, data, ord })
                    }
                    _ => {
                        let reg = parse_reg(&id).ok_or_else(|| {
                            self.err(format!("expected statement, found identifier `{id}`"))
                        })?;
                        self.tokens.bump();
                        self.tokens.expect_sym("=")?;
                        self.rhs(reg)
                    }
                }
            }
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn rhs(&mut self, reg: Reg) -> Result<Stmt, ParseError> {
        if let Some(Tok::Ident(id)) = self.tokens.peek().cloned() {
            if let Some(hint) = hardware_barrier_hint(&id) {
                return Err(self.err(hint));
            }
            if self.at_call() {
                if let Some(hint) = hardware_syntax_hint(&id) {
                    return Err(self.err(hint));
                }
            }
            if id == "load" {
                self.tokens.bump();
                self.tokens.expect_sym("(")?;
                let addr = self.expr()?;
                let ord = self.trailing_ordering()?;
                self.tokens.expect_sym(")")?;
                if !ord.valid_for_load() {
                    return Err(self.err(format!(
                        "`{ord}` is not a load ordering; C11 loads are \
                         rlx, acq or sc (or non-atomic)"
                    )));
                }
                return Ok(Stmt::Load { reg, addr, ord });
            }
            if let Some(op) = rmw_op(&id) {
                self.tokens.bump();
                self.tokens.expect_sym("(")?;
                let addr = self.expr()?;
                if addr.registers().contains(&reg) {
                    return Err(self.err("RMW address must not depend on the destination register"));
                }
                self.tokens.expect_sym(",")?;
                let expected = if op == RmwOp::Cas {
                    let e = self.expr()?;
                    self.tokens.expect_sym(",")?;
                    Some(e)
                } else {
                    None
                };
                let operand = self.expr()?;
                let ord = self.trailing_ordering()?;
                self.tokens.expect_sym(")")?;
                if !ord.valid_for_rmw() {
                    return Err(self.err(format!(
                        "an RMW is always atomic; give `{}` an atomic ordering \
                         (rlx, acq, rel, acq_rel or sc)",
                        crate::ast::rmw_surface_name(op)
                    )));
                }
                return Ok(Stmt::Rmw {
                    op,
                    dst: reg,
                    addr,
                    expected,
                    operand,
                    ord,
                });
            }
        }
        let e = self.expr()?;
        Ok(Stmt::Assign { reg, expr: e })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::Loc;

    #[test]
    fn parses_c11_accesses_with_orderings() {
        let mut locs = LocTable::new();
        let t = parse_thread(
            "r1 = load(x, acq)\nstore(y, 1, rel)\nr2 = load(y)\nstore(x, 2)",
            &mut locs,
        )
        .unwrap();
        assert_eq!(t.0.len(), 4);
        assert!(matches!(
            &t.0[0],
            Stmt::Load {
                ord: Ordering::Acquire,
                ..
            }
        ));
        assert!(matches!(
            &t.0[1],
            Stmt::Store {
                ord: Ordering::Release,
                ..
            }
        ));
        assert!(matches!(
            &t.0[2],
            Stmt::Load {
                ord: Ordering::NotAtomic,
                ..
            }
        ));
        assert_eq!(locs.get("x"), Some(Loc(0)));
        assert_eq!(locs.get("y"), Some(Loc(1)));
    }

    #[test]
    fn parses_rmws_and_fences() {
        let mut locs = LocTable::new();
        let t = parse_thread(
            "r1 = cas(x, 0, 1, acq_rel)\nr2 = swap(x, 5, rlx)\nr3 = fetch_add(x, 1, sc)\nfence(sc)",
            &mut locs,
        )
        .unwrap();
        assert!(matches!(
            &t.0[0],
            Stmt::Rmw {
                op: RmwOp::Cas,
                ord: Ordering::AcqRel,
                expected: Some(_),
                ..
            }
        ));
        assert!(matches!(
            &t.0[1],
            Stmt::Rmw {
                op: RmwOp::Swp,
                ord: Ordering::Relaxed,
                ..
            }
        ));
        assert!(matches!(
            &t.0[2],
            Stmt::Rmw {
                op: RmwOp::FetchAdd,
                ord: Ordering::SeqCst,
                ..
            }
        ));
        assert_eq!(t.0[3], Stmt::Fence(Ordering::SeqCst));
    }

    #[test]
    fn threads_and_control_flow_parse() {
        let src = "store(x, 1, rlx)\n---\nr1 = load(x, rlx)\nif (r1 == 1) { r2 = 1 } else { r2 = 0 }\nwhile (r3 != 0) { r3 = r3 - 1 }";
        let (p, _) = parse_program(src).unwrap();
        assert_eq!(p.num_threads(), 2);
        assert!(matches!(p.threads()[1].0[1], Stmt::If { .. }));
        assert!(matches!(p.threads()[1].0[2], Stmt::While { .. }));
    }

    #[test]
    fn hardware_fence_syntax_rejected_with_pointed_error() {
        let mut locs = LocTable::new();
        let err = parse_thread("dmb.sy", &mut locs).unwrap_err();
        assert!(err.message.contains("dmb.sy"), "{}", err.message);
        assert!(err.message.contains("fence(sc)"), "{}", err.message);
        let err = parse_thread("fence.tso", &mut locs).unwrap_err();
        assert!(err.message.contains("fence(acq_rel)"), "{}", err.message);
        let err = parse_thread("isb", &mut locs).unwrap_err();
        assert!(err.message.contains("no C11 equivalent"), "{}", err.message);
    }

    #[test]
    fn hardware_access_syntax_rejected_with_pointed_error() {
        let mut locs = LocTable::new();
        let err = parse_thread("r1 = load_acq(x)", &mut locs).unwrap_err();
        assert!(err.message.contains("load(x, acq)"), "{}", err.message);
        let err = parse_thread("store_rel(x, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("store(x, v, rel)"), "{}", err.message);
        let err = parse_thread("r1 = loadx(x)", &mut locs).unwrap_err();
        assert!(err.message.contains("exclusive"), "{}", err.message);
        let err = parse_thread("r1 = amo_add_acq(x, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("fetch_add"), "{}", err.message);
        let err = parse_thread("r1 = cas_rel(x, 0, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("cas(x, expected"), "{}", err.message);
    }

    #[test]
    fn hardware_lookalike_names_are_fine_as_operands() {
        // the pointed errors must only fire on *calls* — a location that
        // happens to be named like a hardware mnemonic is a legal operand
        let mut locs = LocTable::new();
        let t = parse_thread("r1 = cas_count + 1\nr2 = load(amo_total, rlx)", &mut locs).unwrap();
        assert_eq!(t.0.len(), 2);
        assert!(locs.get("cas_count").is_some());
        assert!(locs.get("amo_total").is_some());
        // …but calling one still yields the pointed error
        let err = parse_thread("r1 = cas_acq(x, 0, 1)", &mut locs).unwrap_err();
        assert!(err.message.contains("cas(x, expected"), "{}", err.message);
    }

    #[test]
    fn hardware_two_set_fence_rejected_with_pointed_error() {
        let mut locs = LocTable::new();
        let err = parse_thread("fence(rw, w)", &mut locs).unwrap_err();
        assert!(err.message.contains("access-set"), "{}", err.message);
        assert!(
            err.message.contains("acq | rel | acq_rel | sc"),
            "{}",
            err.message
        );
    }

    #[test]
    fn invalid_orderings_rejected_per_access_type() {
        let mut locs = LocTable::new();
        let err = parse_thread("r1 = load(x, rel)", &mut locs).unwrap_err();
        assert!(
            err.message.contains("not a load ordering"),
            "{}",
            err.message
        );
        let err = parse_thread("store(x, 1, acq)", &mut locs).unwrap_err();
        assert!(
            err.message.contains("not a store ordering"),
            "{}",
            err.message
        );
        let err = parse_thread("fence(rlx)", &mut locs).unwrap_err();
        assert!(
            err.message.contains("not a fence ordering"),
            "{}",
            err.message
        );
        let err = parse_thread("r1 = fetch_add(x, 1, na)", &mut locs).unwrap_err();
        assert!(err.message.contains("always atomic"), "{}", err.message);
    }

    #[test]
    fn rmw_address_must_not_use_destination() {
        let mut locs = LocTable::new();
        let err = parse_thread("r1 = fetch_add(r1, 1, rlx)", &mut locs).unwrap_err();
        assert!(err.message.contains("destination register"));
    }

    #[test]
    fn dependency_idioms_parse() {
        let mut locs = LocTable::new();
        let t = parse_thread("r2 = load(x + (r1 - r1), rlx)", &mut locs).unwrap();
        match &t.0[0] {
            Stmt::Load { addr, .. } => assert_eq!(addr.registers(), vec![Reg(1)]),
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn pretty_print_round_trips() {
        let src = "r1 = load(x, acq)\nstore(y, r1 + 1, rel)\nr2 = cas(z, 0, 1, sc)\nfence(acq_rel)\nif (r2 == 0) { store(w, 1, rlx) }\n---\nr3 = fetch_max(z, 9, rel)";
        let (p, _) = parse_program(src).unwrap();
        // the pretty form prints locations as raw addresses, which parse
        // back to the same address expressions
        let (p2, _) = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }
}
