//! Experiment T3 (DESIGN.md): regenerate Table 3 (Appendix E) — the full
//! parameter sweep of Promising vs Flat, including the `(opt)` variants.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table3 -- \
//!     [timeout-secs] [--json PATH] [--no-por] [--no-dpor] \
//!     [--worker-sweep N,M,..] [--sample N] [--seed S]
//! ```
//!
//! * `--sample N` adds a sampled-promising column: `N` seeded random
//!   promise walks per row ([`Engine::sample`]) — a sound
//!   under-approximation that still reports outcomes on rows where the
//!   exhaustive search is ooT;
//! * `--json PATH` writes a machine-readable snapshot. Outcome sets are
//!   emitted as canonically sorted digests (`outcomes_digest`), so the
//!   JSON is byte-identical across runs and worker counts — only the
//!   timing fields vary;
//! * `--no-por` disables partial-order reduction (`Config::por`);
//! * `--no-dpor` keeps the static POR but disables the per-location
//!   dynamic refinement (`Config::dpor`);
//! * `--worker-sweep 1,2,4,8` re-runs the promising side once per
//!   worker count (work-stealing frontier), asserts the outcome digests
//!   byte-identical across counts, and emits a per-row `worker_sweep`
//!   series. Speedup ratios appear only when the host has more than one
//!   logical core (snapshot-level `cores` / `worker_mode`).

use promising_bench::{
    fmt_duration, host_cpus, json_secs, parse_worker_list, sweep_cell_text, sweep_json,
    worker_mode, SweepCell, Table,
};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_promise_first_budget, Engine, PromiseFirstModel, SearchBudget};
use promising_flat::{explore_flat_budget, FlatMachine};
use promising_workloads::{by_spec, init_for};
use std::fmt::Write as _;
use std::time::Duration;

/// The Table 3 grid: broader parameterisations per family.
pub const ROWS: &[&str] = &[
    "SLA-1",
    "SLA-2",
    "SLA-3",
    "SLA-4",
    "SLA-5",
    "SLA-6",
    "SLA-7",
    "SLC-1",
    "SLC-2",
    "SLC-3",
    "SLR-1",
    "SLR-2",
    "SLR-3",
    "PCS-1-1",
    "PCS-2-2",
    "PCS-3-3",
    "PCM-1-1-1",
    "PCM-2-2-2",
    "TL-1",
    "TL-2",
    "STC-100-010-000",
    "STC-100-010-010",
    "STC-110-011-000",
    "STC(opt)-100-010-000",
    "STC(opt)-100-010-010",
    "STR-100-010-000",
    "STR-100-010-010",
    "DQ-100-1-0",
    "DQ-110-1-0",
    "DQ-110-1-1",
    "DQ(opt)-100-1-0",
    "DQ(opt)-110-1-0",
    "QU-100-000-000",
    "QU-100-010-000",
    "QU(opt)-100-000-000",
];

struct Row {
    spec: String,
    promising: Option<f64>,
    p_states: u64,
    /// [`StopReason::name`] for the promising cell — explains a `null`
    /// timing ("deadline" vs a resource budget vs "completed").
    p_stop: &'static str,
    outcome_count: usize,
    digest: String,
    flat: Option<f64>,
    f_stop: &'static str,
    sweep: Vec<SweepCell>,
    sampled: Option<(Option<f64>, usize)>,
}

fn main() {
    let mut timeout = Duration::from_secs(120);
    let mut sample: Option<u64> = None;
    let mut seed = 0u64;
    let mut json: Option<String> = None;
    let mut no_por = false;
    let mut no_dpor = false;
    let mut sweep_counts: Vec<usize> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--worker-sweep" => {
                sweep_counts = parse_worker_list(&it.next().expect("--worker-sweep needs a list"));
            }
            "--sample" => {
                sample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--sample needs a trace count"),
                )
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--json" => json = Some(it.next().expect("--json needs a path")),
            "--no-por" => no_por = true,
            "--no-dpor" => no_dpor = true,
            other => match other.parse::<u64>() {
                Ok(secs) => timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    let cores = host_cpus();
    println!(
        "Table 3 (Appendix E): full run-time sweep, timeout {}s per cell\n",
        timeout.as_secs()
    );
    if !sweep_counts.is_empty() {
        println!(
            "worker sweep {:?} on {} logical core(s): {} columns\n",
            sweep_counts,
            cores,
            worker_mode(cores)
        );
    }
    let budget = SearchBudget::deadline(Some(timeout));
    let mut header: Vec<String> = ["Test", "Promising", "Flat"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for w in &sweep_counts {
        header.push(format!("Sweep-w{w}"));
    }
    if sample.is_some() {
        header.push("Sampled".to_string());
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut rows: Vec<Row> = Vec::new();
    for spec in ROWS {
        let Some(w) = by_spec(spec) else {
            eprintln!("skipping unparseable spec {spec}");
            continue;
        };
        let init = init_for(&w);
        let m = Machine::with_init(
            w.program.clone(),
            w.config(Arch::Arm).with_por(!no_por).with_dpor(!no_dpor),
            init.clone(),
        );
        let p = explore_promise_first_budget(&m, budget);
        let p_time = (!p.stats.truncated()).then_some(p.stats.wall_time.as_secs_f64());
        let sweep: Vec<SweepCell> = sweep_counts
            .iter()
            .map(|&n| {
                let mw = Machine::with_init(
                    w.program.clone(),
                    w.config(Arch::Arm)
                        .with_por(!no_por)
                        .with_dpor(!no_dpor)
                        .with_workers(n),
                    init.clone(),
                );
                let e = explore_promise_first_budget(&mw, budget);
                if !e.stats.truncated() && !p.stats.truncated() {
                    assert_eq!(
                        e.outcomes_digest(),
                        p.outcomes_digest(),
                        "{spec}: {n}-worker outcome digest must be byte-identical to serial"
                    );
                }
                SweepCell {
                    workers: n,
                    secs: (!e.stats.truncated()).then_some(e.stats.wall_time.as_secs_f64()),
                    steals: e.stats.steals,
                }
            })
            .collect();
        let fm = FlatMachine::with_init(
            w.program.clone(),
            w.config_unshared(Arch::Arm)
                .with_por(!no_por)
                .with_dpor(!no_dpor),
            init,
        );
        let f = explore_flat_budget(&fm, budget);
        let f_time = (!f.stats.truncated()).then_some(f.stats.wall_time.as_secs_f64());
        let fmt_cell = |c: Option<f64>| fmt_duration(c.map(Duration::from_secs_f64));
        let mut cells = vec![spec.to_string(), fmt_cell(p_time), fmt_cell(f_time)];
        let sweep_base = sweep.iter().find(|c| c.workers == 1).and_then(|c| c.secs);
        for c in &sweep {
            cells.push(sweep_cell_text(c, sweep_base, cores));
        }
        let sampled = sample.map(|n| {
            let s = Engine::new(PromiseFirstModel::new(&m))
                .with_budget(budget)
                .sample(n, seed);
            if !p.stats.truncated() {
                assert!(
                    s.outcomes.is_subset(&p.outcomes),
                    "{spec}: sampled outcomes must be a subset of exhaustive"
                );
            }
            let cell = (!s.stats.truncated()).then_some(s.stats.wall_time.as_secs_f64());
            cells.push(format!("{} ({} outc.)", fmt_cell(cell), s.outcomes.len()));
            (cell, s.outcomes.len())
        });
        table.row(&cells);
        eprintln!(
            "  {spec}: promising {} flat {}",
            fmt_cell(p_time),
            fmt_cell(f_time)
        );
        rows.push(Row {
            spec: spec.to_string(),
            promising: p_time,
            p_states: p.stats.states,
            p_stop: p.stats.stop.name(),
            outcome_count: p.outcomes.len(),
            digest: p.outcomes_digest(),
            flat: f_time,
            f_stop: f.stats.stop.name(),
            sweep,
            sampled,
        });
    }
    println!("{}", table.render());

    if let Some(path) = &json {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"table3\",");
        let _ = writeln!(out, "  \"timeout_secs\": {},", timeout.as_secs());
        let _ = writeln!(out, "  \"cores\": {cores},");
        let _ = writeln!(out, "  \"worker_mode\": \"{}\",", worker_mode(cores));
        let _ = writeln!(out, "  \"por\": {},", !no_por);
        let _ = writeln!(out, "  \"dpor\": {},", !no_dpor);
        let _ = writeln!(out, "  \"rows\": [");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"test\": \"{}\", \"promising_secs\": {}, \"promising_states\": {}, \"promising_stop\": \"{}\", \"outcome_count\": {}, \"outcomes_digest\": \"{}\", \"flat_secs\": {}, \"flat_stop\": \"{}\"",
                r.spec,
                json_secs(r.promising),
                r.p_states,
                r.p_stop,
                r.outcome_count,
                r.digest,
                json_secs(r.flat),
                r.f_stop,
            );
            let _ = write!(out, "{}", sweep_json(&r.sweep, cores));
            if let Some((cell, outcomes)) = &r.sampled {
                let _ = write!(
                    out,
                    ", \"sample_secs\": {}, \"sample_outcomes\": {}",
                    json_secs(*cell),
                    outcomes
                );
            }
            let _ = writeln!(out, "}}{}", if i + 1 < rows.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        std::fs::write(path, out).expect("write json snapshot");
        println!("wrote {path}");
    }
}
