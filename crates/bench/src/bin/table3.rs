//! Experiment T3 (DESIGN.md): regenerate Table 3 (Appendix E) — the full
//! parameter sweep of Promising vs Flat, including the `(opt)` variants.
//!
//! Usage: `cargo run --release -p promising-bench --bin table3 [timeout-secs]`

use promising_bench::{fmt_duration, Table};
use promising_core::{Arch, Machine};
use promising_explorer::explore_promise_first_deadline;
use promising_flat::{explore_flat_deadline, FlatMachine};
use promising_workloads::{by_spec, init_for};
use std::time::Duration;

/// The Table 3 grid: broader parameterisations per family.
pub const ROWS: &[&str] = &[
    "SLA-1", "SLA-2", "SLA-3", "SLA-4", "SLA-5", "SLA-6", "SLA-7",
    "SLC-1", "SLC-2", "SLC-3",
    "SLR-1", "SLR-2", "SLR-3",
    "PCS-1-1", "PCS-2-2", "PCS-3-3",
    "PCM-1-1-1", "PCM-2-2-2",
    "TL-1", "TL-2",
    "STC-100-010-000", "STC-100-010-010", "STC-110-011-000",
    "STC(opt)-100-010-000", "STC(opt)-100-010-010",
    "STR-100-010-000", "STR-100-010-010",
    "DQ-100-1-0", "DQ-110-1-0", "DQ-110-1-1",
    "DQ(opt)-100-1-0", "DQ(opt)-110-1-0",
    "QU-100-000-000", "QU-100-010-000",
    "QU(opt)-100-000-000",
];

fn main() {
    let timeout = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120u64);
    let timeout = Duration::from_secs(timeout);
    println!(
        "Table 3 (Appendix E): full run-time sweep, timeout {}s per cell\n",
        timeout.as_secs()
    );
    let mut table = Table::new(&["Test", "Promising", "Flat"]);
    for spec in ROWS {
        let Some(w) = by_spec(spec) else {
            eprintln!("skipping unparseable spec {spec}");
            continue;
        };
        let init = init_for(&w);
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
        let p = explore_promise_first_deadline(&m, Some(timeout));
        let p_time = (!p.stats.truncated).then_some(p.stats.duration);
        let fm = FlatMachine::with_init(w.program.clone(), w.config_unshared(Arch::Arm), init);
        let f = explore_flat_deadline(&fm, u64::MAX, Some(timeout));
        let f_time = (!f.stats.truncated).then_some(f.stats.duration);
        table.row(&[
            spec.to_string(),
            fmt_duration(p_time),
            fmt_duration(f_time),
        ]);
        eprintln!("  {spec}: promising {} flat {}", fmt_duration(p_time), fmt_duration(f_time));
    }
    println!("{}", table.render());
}
