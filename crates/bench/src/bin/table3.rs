//! Experiment T3 (DESIGN.md): regenerate Table 3 (Appendix E) — the full
//! parameter sweep of Promising vs Flat, including the `(opt)` variants.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table3 -- \
//!     [timeout-secs] [--json PATH] [--no-por] [--no-dpor] [--sample N] [--seed S]
//! ```
//!
//! * `--sample N` adds a sampled-promising column: `N` seeded random
//!   promise walks per row ([`Engine::sample`]) — a sound
//!   under-approximation that still reports outcomes on rows where the
//!   exhaustive search is ooT;
//! * `--json PATH` writes a machine-readable snapshot. Outcome sets are
//!   emitted as canonically sorted digests (`outcomes_digest`), so the
//!   JSON is byte-identical across runs and worker counts — only the
//!   timing fields vary;
//! * `--no-por` disables partial-order reduction (`Config::por`);
//! * `--no-dpor` keeps the static POR but disables the per-location
//!   dynamic refinement (`Config::dpor`).

use promising_bench::{fmt_duration, json_secs, Table};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_promise_first_budget, Engine, PromiseFirstModel, SearchBudget};
use promising_flat::{explore_flat_budget, FlatMachine};
use promising_workloads::{by_spec, init_for};
use std::fmt::Write as _;
use std::time::Duration;

/// The Table 3 grid: broader parameterisations per family.
pub const ROWS: &[&str] = &[
    "SLA-1",
    "SLA-2",
    "SLA-3",
    "SLA-4",
    "SLA-5",
    "SLA-6",
    "SLA-7",
    "SLC-1",
    "SLC-2",
    "SLC-3",
    "SLR-1",
    "SLR-2",
    "SLR-3",
    "PCS-1-1",
    "PCS-2-2",
    "PCS-3-3",
    "PCM-1-1-1",
    "PCM-2-2-2",
    "TL-1",
    "TL-2",
    "STC-100-010-000",
    "STC-100-010-010",
    "STC-110-011-000",
    "STC(opt)-100-010-000",
    "STC(opt)-100-010-010",
    "STR-100-010-000",
    "STR-100-010-010",
    "DQ-100-1-0",
    "DQ-110-1-0",
    "DQ-110-1-1",
    "DQ(opt)-100-1-0",
    "DQ(opt)-110-1-0",
    "QU-100-000-000",
    "QU-100-010-000",
    "QU(opt)-100-000-000",
];

struct Row {
    spec: String,
    promising: Option<f64>,
    p_states: u64,
    /// [`StopReason::name`] for the promising cell — explains a `null`
    /// timing ("deadline" vs a resource budget vs "completed").
    p_stop: &'static str,
    outcome_count: usize,
    digest: String,
    flat: Option<f64>,
    f_stop: &'static str,
    sampled: Option<(Option<f64>, usize)>,
}

fn main() {
    let mut timeout = Duration::from_secs(120);
    let mut sample: Option<u64> = None;
    let mut seed = 0u64;
    let mut json: Option<String> = None;
    let mut no_por = false;
    let mut no_dpor = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sample" => {
                sample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--sample needs a trace count"),
                )
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--json" => json = Some(it.next().expect("--json needs a path")),
            "--no-por" => no_por = true,
            "--no-dpor" => no_dpor = true,
            other => match other.parse::<u64>() {
                Ok(secs) => timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    println!(
        "Table 3 (Appendix E): full run-time sweep, timeout {}s per cell\n",
        timeout.as_secs()
    );
    let budget = SearchBudget::deadline(Some(timeout));
    let mut header = vec!["Test", "Promising", "Flat"];
    if sample.is_some() {
        header.push("Sampled");
    }
    let mut table = Table::new(&header);
    let mut rows: Vec<Row> = Vec::new();
    for spec in ROWS {
        let Some(w) = by_spec(spec) else {
            eprintln!("skipping unparseable spec {spec}");
            continue;
        };
        let init = init_for(&w);
        let m = Machine::with_init(
            w.program.clone(),
            w.config(Arch::Arm).with_por(!no_por).with_dpor(!no_dpor),
            init.clone(),
        );
        let p = explore_promise_first_budget(&m, budget);
        let p_time = (!p.stats.truncated()).then_some(p.stats.wall_time.as_secs_f64());
        let fm = FlatMachine::with_init(
            w.program.clone(),
            w.config_unshared(Arch::Arm)
                .with_por(!no_por)
                .with_dpor(!no_dpor),
            init,
        );
        let f = explore_flat_budget(&fm, budget);
        let f_time = (!f.stats.truncated()).then_some(f.stats.wall_time.as_secs_f64());
        let fmt_cell = |c: Option<f64>| fmt_duration(c.map(Duration::from_secs_f64));
        let mut cells = vec![spec.to_string(), fmt_cell(p_time), fmt_cell(f_time)];
        let sampled = sample.map(|n| {
            let s = Engine::new(PromiseFirstModel::new(&m))
                .with_budget(budget)
                .sample(n, seed);
            if !p.stats.truncated() {
                assert!(
                    s.outcomes.is_subset(&p.outcomes),
                    "{spec}: sampled outcomes must be a subset of exhaustive"
                );
            }
            let cell = (!s.stats.truncated()).then_some(s.stats.wall_time.as_secs_f64());
            cells.push(format!("{} ({} outc.)", fmt_cell(cell), s.outcomes.len()));
            (cell, s.outcomes.len())
        });
        table.row(&cells);
        eprintln!(
            "  {spec}: promising {} flat {}",
            fmt_cell(p_time),
            fmt_cell(f_time)
        );
        rows.push(Row {
            spec: spec.to_string(),
            promising: p_time,
            p_states: p.stats.states,
            p_stop: p.stats.stop.name(),
            outcome_count: p.outcomes.len(),
            digest: p.outcomes_digest(),
            flat: f_time,
            f_stop: f.stats.stop.name(),
            sampled,
        });
    }
    println!("{}", table.render());

    if let Some(path) = &json {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"table3\",");
        let _ = writeln!(out, "  \"timeout_secs\": {},", timeout.as_secs());
        let _ = writeln!(out, "  \"por\": {},", !no_por);
        let _ = writeln!(out, "  \"dpor\": {},", !no_dpor);
        let _ = writeln!(out, "  \"rows\": [");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"test\": \"{}\", \"promising_secs\": {}, \"promising_states\": {}, \"promising_stop\": \"{}\", \"outcome_count\": {}, \"outcomes_digest\": \"{}\", \"flat_secs\": {}, \"flat_stop\": \"{}\"",
                r.spec,
                json_secs(r.promising),
                r.p_states,
                r.p_stop,
                r.outcome_count,
                r.digest,
                json_secs(r.flat),
                r.f_stop,
            );
            if let Some((cell, outcomes)) = &r.sampled {
                let _ = write!(
                    out,
                    ", \"sample_secs\": {}, \"sample_outcomes\": {}",
                    json_secs(*cell),
                    outcomes
                );
            }
            let _ = writeln!(out, "}}{}", if i + 1 < rows.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        std::fs::write(path, out).expect("write json snapshot");
        println!("wrote {path}");
    }
}
