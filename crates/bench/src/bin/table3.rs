//! Experiment T3 (DESIGN.md): regenerate Table 3 (Appendix E) — the full
//! parameter sweep of Promising vs Flat, including the `(opt)` variants.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table3 -- \
//!     [timeout-secs] [--sample N] [--seed S]
//! ```
//!
//! `--sample N` adds a sampled-promising column: `N` seeded random
//! promise walks per row ([`Engine::sample`]) — a sound
//! under-approximation that still reports outcomes on rows where the
//! exhaustive search is ooT.

use promising_bench::{fmt_duration, Table};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_promise_first_budget, Engine, PromiseFirstModel, SearchBudget};
use promising_flat::{explore_flat_budget, FlatMachine};
use promising_workloads::{by_spec, init_for};
use std::time::Duration;

/// The Table 3 grid: broader parameterisations per family.
pub const ROWS: &[&str] = &[
    "SLA-1",
    "SLA-2",
    "SLA-3",
    "SLA-4",
    "SLA-5",
    "SLA-6",
    "SLA-7",
    "SLC-1",
    "SLC-2",
    "SLC-3",
    "SLR-1",
    "SLR-2",
    "SLR-3",
    "PCS-1-1",
    "PCS-2-2",
    "PCS-3-3",
    "PCM-1-1-1",
    "PCM-2-2-2",
    "TL-1",
    "TL-2",
    "STC-100-010-000",
    "STC-100-010-010",
    "STC-110-011-000",
    "STC(opt)-100-010-000",
    "STC(opt)-100-010-010",
    "STR-100-010-000",
    "STR-100-010-010",
    "DQ-100-1-0",
    "DQ-110-1-0",
    "DQ-110-1-1",
    "DQ(opt)-100-1-0",
    "DQ(opt)-110-1-0",
    "QU-100-000-000",
    "QU-100-010-000",
    "QU(opt)-100-000-000",
];

fn main() {
    let mut timeout = Duration::from_secs(120);
    let mut sample: Option<u64> = None;
    let mut seed = 0u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sample" => {
                sample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--sample needs a trace count"),
                )
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--seed needs an integer")
            }
            other => match other.parse::<u64>() {
                Ok(secs) => timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    println!(
        "Table 3 (Appendix E): full run-time sweep, timeout {}s per cell\n",
        timeout.as_secs()
    );
    let budget = SearchBudget::deadline(Some(timeout));
    let mut header = vec!["Test", "Promising", "Flat"];
    if sample.is_some() {
        header.push("Sampled");
    }
    let mut table = Table::new(&header);
    for spec in ROWS {
        let Some(w) = by_spec(spec) else {
            eprintln!("skipping unparseable spec {spec}");
            continue;
        };
        let init = init_for(&w);
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
        let p = explore_promise_first_budget(&m, budget);
        let p_time = (!p.stats.truncated).then_some(p.stats.wall_time);
        let fm = FlatMachine::with_init(w.program.clone(), w.config_unshared(Arch::Arm), init);
        let f = explore_flat_budget(&fm, budget);
        let f_time = (!f.stats.truncated).then_some(f.stats.wall_time);
        let mut cells = vec![spec.to_string(), fmt_duration(p_time), fmt_duration(f_time)];
        if let Some(n) = sample {
            let s = Engine::new(PromiseFirstModel::new(&m))
                .with_budget(budget)
                .sample(n, seed);
            if !p.stats.truncated {
                assert!(
                    s.outcomes.is_subset(&p.outcomes),
                    "{spec}: sampled outcomes must be a subset of exhaustive"
                );
            }
            cells.push(format!(
                "{} ({} outc.)",
                fmt_duration((!s.stats.truncated).then_some(s.stats.wall_time)),
                s.outcomes.len()
            ));
        }
        table.row(&cells);
        eprintln!(
            "  {spec}: promising {} flat {}",
            fmt_duration(p_time),
            fmt_duration(f_time)
        );
    }
    println!("{}", table.render());
}
