//! Experiment T1 (DESIGN.md): regenerate Table 1 — per-workload size
//! (instruction count as the LOC analogue) and thread counts.
//!
//! Usage: `cargo run -p promising-bench --bin table1`

use promising_bench::Table;
use promising_workloads::table1_rows;

fn main() {
    let mut table = Table::new(&["Test", "Lang", "LOC", "Ts"]);
    for w in table1_rows() {
        let lang = match w.family {
            "SLA" => "asm-style",
            "SLC" | "PCS" | "PCM" | "TL" | "STC" | "DQ" | "QU" => "C++-style",
            "SLR" | "STR" => "Rust-style",
            _ => "calculus",
        };
        table.row(&[
            w.family.to_string(),
            lang.to_string(),
            w.instruction_count().to_string(),
            w.num_threads().to_string(),
        ]);
    }
    println!("Table 1: evaluated workloads (calculus instruction counts)\n");
    println!("{}", table.render());
}
