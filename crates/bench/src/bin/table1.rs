//! Experiment T1 (DESIGN.md): regenerate Table 1 — per-workload size
//! (instruction count as the LOC analogue) and thread counts — plus the
//! `--rmw` ablation columns: the explored state space of each row's
//! single-instruction-RMW build vs its mechanically-desugared LL/SC
//! build (same outcome sets, cross-checked).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table1 -- \
//!     [--rmw] [timeout-secs] [--json PATH] [--rows A,B,..]
//! ```
//!
//! * `--rmw` — additionally explore every row twice under the naive
//!   (full-interleaving) search: once as written (CAS/fetch-add
//!   instructions) and once with every RMW desugared into its exclusive
//!   retry loop, reporting machine-state counts and the reduction ratio;
//! * `--json PATH` — write a machine-readable snapshot (the committed
//!   `BENCH_rmw.json` is produced this way);
//! * rows without any RMW instruction desugar to themselves and report a
//!   ratio of 1.

use promising_bench::{fmt_duration, host_cpus, Table};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_naive_budget, CertMode, SearchBudget};
use promising_workloads::{init_for, table1_rows};
use std::fmt::Write as _;
use std::time::Duration;

/// Extra loop fuel handed to the desugared builds (room for retries).
const LLSC_EXTRA_FUEL: u32 = 2;

struct Args {
    rmw: bool,
    timeout: Duration,
    json: Option<String>,
    rows: Option<Vec<String>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rmw: false,
        timeout: Duration::from_secs(60),
        json: None,
        rows: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rmw" => args.rmw = true,
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--rows" => {
                let list = it.next().expect("--rows needs a list");
                args.rows = Some(list.split(',').map(|s| s.to_string()).collect());
            }
            other => match other.parse::<u64>() {
                Ok(secs) => args.timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    assert!(
        args.json.is_none() || args.rmw,
        "--json records the RMW ablation rows: pass --rmw too"
    );
    args
}

struct RmwCell {
    rmw_states: u64,
    rmw_secs: Option<f64>,
    llsc_states: u64,
    llsc_secs: Option<f64>,
}

fn json_cell(c: Option<f64>) -> String {
    match c {
        Some(secs) => format!("{secs:.6}"),
        None => "null".to_string(),
    }
}

fn main() {
    let args = parse_args();
    let mut header = vec!["Test", "Lang", "LOC", "Ts"];
    if args.rmw {
        header.extend(["N-states(rmw)", "N-states(llsc)", "Reduction"]);
    }
    let mut table = Table::new(&header);
    let mut json_rows: Vec<String> = Vec::new();

    for w in table1_rows() {
        if let Some(rows) = &args.rows {
            if !rows.iter().any(|r| r == &w.name) {
                continue;
            }
        }
        let lang = match w.family {
            "SLA" => "asm-style",
            "SLC" | "PCS" | "PCM" | "TL" | "STC" | "DQ" | "QU" => "C++-style",
            "SLR" | "STR" => "Rust-style",
            _ => "calculus",
        };
        let mut cells = vec![
            w.family.to_string(),
            lang.to_string(),
            w.instruction_count().to_string(),
            w.num_threads().to_string(),
        ];

        let rmw_cell = args.rmw.then(|| {
            let init = init_for(&w);
            let budget = SearchBudget::deadline(Some(args.timeout));
            let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
            let a = explore_naive_budget(&m, CertMode::Online, budget);
            // rows without any RMW desugar to themselves: no extra fuel,
            // so their two runs are identical by construction
            let extra = if w.program.rmw_count() > 0 {
                LLSC_EXTRA_FUEL
            } else {
                0
            };
            let l = w.desugared(extra);
            let lm = Machine::with_init(l.program.clone(), l.config(Arch::Arm), init);
            let b = explore_naive_budget(&lm, CertMode::Online, budget);
            if !a.stats.truncated() && !b.stats.truncated() {
                assert_eq!(
                    a.outcomes, b.outcomes,
                    "{}: RMW and LL/SC outcome sets must agree",
                    w.name
                );
            }
            eprintln!(
                "  {}: rmw {} states, llsc {} states",
                w.name, a.stats.states, b.stats.states
            );
            RmwCell {
                rmw_states: a.stats.states,
                rmw_secs: (!a.stats.truncated()).then_some(a.stats.wall_time.as_secs_f64()),
                llsc_states: b.stats.states,
                llsc_secs: (!b.stats.truncated()).then_some(b.stats.wall_time.as_secs_f64()),
            }
        });

        if let Some(r) = &rmw_cell {
            cells.push(r.rmw_states.to_string());
            cells.push(r.llsc_states.to_string());
            cells.push(if r.rmw_secs.is_some() && r.llsc_secs.is_some() {
                format!("{:.2}x", r.llsc_states as f64 / r.rmw_states.max(1) as f64)
            } else {
                "ooT".to_string()
            });
            let mut row = String::new();
            let _ = write!(
                row,
                "    {{\"test\": \"{}\", \"loc\": {}, \"threads\": {}, \"rmw_states\": {}, \"rmw_secs\": {}, \"llsc_states\": {}, \"llsc_secs\": {}}}",
                w.name,
                w.instruction_count(),
                w.num_threads(),
                r.rmw_states,
                json_cell(r.rmw_secs),
                r.llsc_states,
                json_cell(r.llsc_secs),
            );
            json_rows.push(row);
        }
        table.row(&cells);
        if let Some(r) = &rmw_cell {
            let fmt = |c: Option<f64>| fmt_duration(c.map(Duration::from_secs_f64));
            eprintln!(
                "  {}: rmw {} llsc {}",
                w.name,
                fmt(r.rmw_secs),
                fmt(r.llsc_secs)
            );
        }
    }
    println!("Table 1: evaluated workloads (calculus instruction counts)\n");
    println!("{}", table.render());

    if let Some(path) = &args.json {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"table1-rmw\",");
        let _ = writeln!(out, "  \"timeout_secs\": {},", args.timeout.as_secs());
        let _ = writeln!(out, "  \"cores\": {},", host_cpus());
        let _ = writeln!(out, "  \"llsc_extra_fuel\": {LLSC_EXTRA_FUEL},");
        let _ = writeln!(out, "  \"rows\": [");
        let _ = writeln!(out, "{}", json_rows.join(",\n"));
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        std::fs::write(path, out).expect("write json snapshot");
        println!("wrote {path}");
    }
}
