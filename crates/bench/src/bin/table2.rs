//! Experiment T2 (DESIGN.md): regenerate Table 2 — exhaustive-search run
//! times, Promising (promise-first + shared-location optimisation) vs the
//! Flat-lite baseline, on the paper's selected workload instances.
//!
//! The absolute numbers differ from the paper's (different host, different
//! substrate); the *shape* to verify is Promising ≪ Flat with the gap
//! exploding as the parameters grow (ooT = over the per-cell timeout).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table2 -- \
//!     [timeout-secs] [--json PATH] [--legacy] [--no-flat] [--no-por] \
//!     [--no-dpor] [--workers N,M,..] [--worker-sweep N,M,..] \
//!     [--rows A,B,..] [--sample N] [--seed S]
//! ```
//!
//! * `--json PATH` — also write a machine-readable snapshot (the
//!   committed `BENCH_baseline.json` is produced this way) for
//!   perf-trajectory tracking across PRs;
//! * `--legacy` — additionally run the pre-optimisation clone-heavy
//!   promise-first baseline (`promising_bench::legacy`) and report the
//!   speedup; outcome sets are cross-checked;
//! * `--no-flat` — skip the Flat-lite cells (useful when profiling or
//!   timing only the promising side);
//! * `--no-por` — disable partial-order reduction (the escape hatch for
//!   `Config::por`, which is on by default; outcome sets are identical
//!   either way — the JSON rows carry a canonical `outcomes_digest` to
//!   prove it across runs);
//! * `--no-dpor` — keep the static POR but disable the per-location
//!   dynamic refinement (`Config::dpor`): delayable-thread collapse,
//!   the flat model's canonical per-location state encoding, and the
//!   restricted-fingerprint certification memo keys;
//! * `--workers 2,4` — additionally run the promising side with those
//!   worker counts (parallel frontier);
//! * `--worker-sweep 1,2,4,8` — the multi-core bench protocol: run the
//!   promising side once per worker count, assert the outcome digests
//!   byte-identical across counts, and emit a per-row `worker_sweep`
//!   series (secs, steal counts, and — only when the host has more than
//!   one logical core — speedup vs the 1-worker cell). The snapshot's
//!   top-level `cores`/`worker_mode` pair says how to read the series:
//!   on a 1-CPU host it is marked `overhead-only` and no speedup ratio
//!   is ever printed;
//! * `--rows SLA-1,SLC-2` — restrict to the named rows;
//! * `--sample N` — additionally run `N` seeded random promise walks per
//!   row (`Engine::sample`, deterministic for a fixed `--seed`); sampled
//!   outcome sets are cross-checked to be subsets of the exhaustive sets.

use promising_bench::{
    explore_promise_first_legacy, fmt_duration, host_cpus, json_secs, parse_worker_list,
    sweep_cell_text, sweep_json, worker_mode, SweepCell, Table,
};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_promise_first_budget, Engine, PromiseFirstModel, SearchBudget};
use promising_flat::{explore_flat_budget, FlatMachine};
use promising_workloads::{by_spec, init_for};
use std::fmt::Write as _;
use std::time::Duration;

/// The Table 2 rows (paper parameterisations, trimmed to what completes
/// in reasonable wall-clock on the Promising side).
pub const ROWS: &[&str] = &[
    "SLA-1",
    "SLA-2",
    "SLA-3",
    "SLA-4",
    "SLC-1",
    "SLC-2",
    "SLR-1",
    "SLR-2",
    "PCS-1-1",
    "PCS-2-2",
    "PCM-1-1-1",
    "TL-1",
    "STC-100-010-000",
    "STC-100-010-010",
    "STC(opt)-100-010-000",
    "STR-100-010-000",
    "STR-100-010-010",
    "DQ-100-1-0",
    "DQ-110-1-0",
    "DQ(opt)-100-1-0",
    "QU-100-000-000",
    "QU-100-010-000",
    "QU(opt)-100-000-000",
];

struct Args {
    timeout: Duration,
    json: Option<String>,
    legacy: bool,
    no_flat: bool,
    no_por: bool,
    no_dpor: bool,
    workers: Vec<usize>,
    sweep: Vec<usize>,
    rows: Vec<String>,
    sample: Option<u64>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        timeout: Duration::from_secs(60),
        json: None,
        legacy: false,
        no_flat: false,
        no_por: false,
        no_dpor: false,
        workers: Vec::new(),
        sweep: Vec::new(),
        rows: ROWS.iter().map(|s| s.to_string()).collect(),
        sample: None,
        seed: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--legacy" => args.legacy = true,
            "--no-flat" => args.no_flat = true,
            "--no-por" => args.no_por = true,
            "--no-dpor" => args.no_dpor = true,
            "--workers" => {
                let list = it.next().expect("--workers needs a list");
                args.workers = list
                    .split(',')
                    .map(|w| w.parse().expect("worker counts are integers"))
                    .collect();
            }
            "--worker-sweep" => {
                args.sweep = parse_worker_list(&it.next().expect("--worker-sweep needs a list"));
            }
            "--rows" => {
                let list = it.next().expect("--rows needs a list");
                args.rows = list.split(',').map(|s| s.to_string()).collect();
            }
            "--sample" => {
                args.sample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--sample needs a trace count"),
                )
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--seed needs an integer")
            }
            other => match other.parse::<u64>() {
                Ok(secs) => args.timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    args
}

/// One measured cell: `None` = over the timeout ("ooT").
type Cell = Option<f64>;

struct Row {
    spec: String,
    promising: Cell,
    p_cpu: f64,
    p_states: u64,
    /// Canonically sorted outcome-set digest + size: identical for every
    /// worker count and run, so `--json` snapshots diff cleanly.
    p_outcomes: usize,
    p_digest: String,
    /// Why the promising search stopped ([`StopReason::name`]): explains
    /// a `null` timing — "deadline" (the classic ooT), a resource budget,
    /// or "completed" for a cell that ran to exhaustion.
    p_stop: &'static str,
    flat: Cell,
    f_states: u64,
    f_stop: &'static str,
    legacy: Cell,
    by_workers: Vec<(usize, Cell)>,
    /// The `--worker-sweep` series: one cell per requested worker count,
    /// outcome digests asserted byte-identical to the serial reference.
    sweep: Vec<SweepCell>,
    sampled: Option<(Cell, usize)>,
}

fn render_json(args: &Args, rows: &[Row]) -> String {
    let timeout = args.timeout;
    let cores = host_cpus();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"suite\": \"table2\",");
    let _ = writeln!(out, "  \"timeout_secs\": {},", timeout.as_secs());
    // Interpreting the worker columns needs the host's parallelism: on a
    // 1-CPU host they measure scheduling overhead, not scaling, so the
    // sweep is marked "overhead-only" and carries no speedup ratios.
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"worker_mode\": \"{}\",", worker_mode(cores));
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"test\": \"{}\", \"promising_secs\": {}, \"promising_cpu_secs\": {:.6}, \"promising_states\": {}, \"promising_stop\": \"{}\", \"outcome_count\": {}, \"outcomes_digest\": \"{}\"",
            r.spec,
            json_secs(r.promising),
            r.p_cpu,
            r.p_states,
            r.p_stop,
            r.p_outcomes,
            r.p_digest,
        );
        // Un-run cells are omitted entirely — `null` is reserved for a
        // real timeout ("ooT") and must stay distinguishable.
        if !args.no_flat {
            let _ = write!(
                out,
                ", \"flat_secs\": {}, \"flat_states\": {}, \"flat_stop\": \"{}\"",
                json_secs(r.flat),
                r.f_states,
                r.f_stop,
            );
        }
        if args.legacy {
            let _ = write!(out, ", \"legacy_secs\": {}", json_secs(r.legacy));
            if let (Some(l), Some(p)) = (r.legacy, r.promising) {
                let _ = write!(out, ", \"speedup_vs_legacy\": {:.2}", l / p.max(1e-9));
            }
        }
        for (w, cell) in &r.by_workers {
            let _ = write!(out, ", \"promising_w{}_secs\": {}", w, json_secs(*cell));
        }
        let _ = write!(out, "{}", sweep_json(&r.sweep, cores));
        if let Some((cell, outcomes)) = &r.sampled {
            let _ = write!(
                out,
                ", \"sample_secs\": {}, \"sample_outcomes\": {}",
                json_secs(*cell),
                outcomes
            );
        }
        let _ = writeln!(out, "}}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

fn main() {
    let args = parse_args();
    let cores = host_cpus();
    println!(
        "Table 2: exhaustive run times in seconds (timeout {}s per cell)\n",
        args.timeout.as_secs()
    );
    if !args.sweep.is_empty() {
        println!(
            "worker sweep {:?} on {} logical core(s): {} columns\n",
            args.sweep,
            cores,
            worker_mode(cores)
        );
    }
    let mut header: Vec<String> = ["Test", "Promising", "Flat", "P-states", "F-states"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    if args.legacy {
        header.push("Legacy".to_string());
        header.push("Speedup".to_string());
    }
    for w in &args.workers {
        header.push(format!("P-w{w}"));
    }
    for w in &args.sweep {
        header.push(format!("Sweep-w{w}"));
    }
    if let Some(n) = args.sample {
        header.push(format!("Sampled({n})"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut rows: Vec<Row> = Vec::new();

    for spec in &args.rows {
        let w = by_spec(spec)
            .unwrap_or_else(|| panic!("unknown workload spec `{spec}` (see --rows / ROWS)"));
        let init = init_for(&w);

        let budget = SearchBudget::deadline(Some(args.timeout));
        let mk_config =
            |base: promising_core::Config| base.with_por(!args.no_por).with_dpor(!args.no_dpor);
        let m = Machine::with_init(
            w.program.clone(),
            mk_config(w.config(Arch::Arm)),
            init.clone(),
        );
        let p = explore_promise_first_budget(&m, budget);
        let p_time = (!p.stats.truncated()).then_some(p.stats.wall_time.as_secs_f64());
        if !p.stats.truncated() {
            let violations = w.violations(&p.outcomes);
            if !violations.is_empty() {
                println!("!! {spec}: incorrect states found: {}", violations[0]);
            }
        }

        let legacy = args.legacy.then(|| {
            let e = explore_promise_first_legacy(&m, Some(args.timeout));
            if !e.stats.truncated() && !p.stats.truncated() {
                assert_eq!(
                    e.outcomes, p.outcomes,
                    "{spec}: legacy and optimised outcome sets must agree"
                );
            }
            (!e.stats.truncated()).then_some(e.stats.wall_time.as_secs_f64())
        });

        let by_workers: Vec<(usize, Cell)> = args
            .workers
            .iter()
            .map(|&n| {
                let mw = Machine::with_init(
                    w.program.clone(),
                    mk_config(w.config(Arch::Arm)).with_workers(n),
                    init.clone(),
                );
                let e = explore_promise_first_budget(&mw, budget);
                if !e.stats.truncated() && !p.stats.truncated() {
                    assert_eq!(
                        e.outcomes, p.outcomes,
                        "{spec}: {n}-worker and serial outcome sets must agree"
                    );
                }
                (
                    n,
                    (!e.stats.truncated()).then_some(e.stats.wall_time.as_secs_f64()),
                )
            })
            .collect();

        let sweep: Vec<SweepCell> = args
            .sweep
            .iter()
            .map(|&n| {
                let mw = Machine::with_init(
                    w.program.clone(),
                    mk_config(w.config(Arch::Arm)).with_workers(n),
                    init.clone(),
                );
                let e = explore_promise_first_budget(&mw, budget);
                if !e.stats.truncated() && !p.stats.truncated() {
                    assert_eq!(
                        e.outcomes_digest(),
                        p.outcomes_digest(),
                        "{spec}: {n}-worker outcome digest must be byte-identical to serial"
                    );
                }
                SweepCell {
                    workers: n,
                    secs: (!e.stats.truncated()).then_some(e.stats.wall_time.as_secs_f64()),
                    steals: e.stats.steals,
                }
            })
            .collect();

        let (f_time, f_states, f_stop) = if args.no_flat {
            (None, 0, "completed")
        } else {
            let fm = FlatMachine::with_init(
                w.program.clone(),
                mk_config(w.config_unshared(Arch::Arm)),
                init,
            );
            let f = explore_flat_budget(&fm, budget);
            (
                (!f.stats.truncated()).then_some(f.stats.wall_time.as_secs_f64()),
                f.stats.states,
                f.stats.stop.name(),
            )
        };

        let sampled = args.sample.map(|n| {
            let s = Engine::new(PromiseFirstModel::new(&m))
                .with_budget(budget)
                .sample(n, args.seed);
            if !p.stats.truncated() {
                assert!(
                    s.outcomes.is_subset(&p.outcomes),
                    "{spec}: sampled outcomes must be a subset of exhaustive"
                );
            }
            (
                (!s.stats.truncated()).then_some(s.stats.wall_time.as_secs_f64()),
                s.outcomes.len(),
            )
        });

        let row = Row {
            spec: spec.clone(),
            promising: p_time,
            p_cpu: p.stats.cpu_time.as_secs_f64(),
            p_states: p.stats.states,
            p_outcomes: p.outcomes.len(),
            p_digest: p.outcomes_digest(),
            p_stop: p.stats.stop.name(),
            flat: f_time,
            f_states,
            f_stop,
            legacy: legacy.flatten(),
            by_workers,
            sweep,
            sampled,
        };

        let fmt_cell = |c: Cell| fmt_duration(c.map(Duration::from_secs_f64));
        let mut cells = vec![
            row.spec.clone(),
            fmt_cell(row.promising),
            if args.no_flat {
                "-".to_string()
            } else {
                fmt_cell(row.flat)
            },
            row.p_states.to_string(),
            row.f_states.to_string(),
        ];
        if args.legacy {
            cells.push(fmt_cell(row.legacy));
            cells.push(match (row.legacy, row.promising) {
                (Some(l), Some(p)) => format!("{:.1}x", l / p.max(1e-9)),
                _ => "-".to_string(),
            });
        }
        for (_, c) in &row.by_workers {
            cells.push(fmt_cell(*c));
        }
        let sweep_base = row
            .sweep
            .iter()
            .find(|c| c.workers == 1)
            .and_then(|c| c.secs);
        for c in &row.sweep {
            cells.push(sweep_cell_text(c, sweep_base, cores));
        }
        if let Some((c, outcomes)) = &row.sampled {
            cells.push(format!("{} ({} outc.)", fmt_cell(*c), outcomes));
        }
        table.row(&cells);
        eprintln!(
            "  {spec}: promising {} flat {}",
            fmt_cell(row.promising),
            fmt_cell(row.flat)
        );
        rows.push(row);
    }
    println!("{}", table.render());

    if let Some(path) = &args.json {
        std::fs::write(path, render_json(&args, &rows)).expect("write json snapshot");
        println!("wrote {path}");
    }
}
