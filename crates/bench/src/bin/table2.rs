//! Experiment T2 (DESIGN.md): regenerate Table 2 — exhaustive-search run
//! times, Promising (promise-first + shared-location optimisation) vs the
//! Flat-lite baseline, on the paper's selected workload instances.
//!
//! The absolute numbers differ from the paper's (different host, different
//! substrate); the *shape* to verify is Promising ≪ Flat with the gap
//! exploding as the parameters grow (ooT = over the per-cell timeout).
//!
//! Usage: `cargo run --release -p promising-bench --bin table2 [timeout-secs]`

use promising_bench::{fmt_duration, Table};
use promising_core::{Arch, Machine};
use promising_explorer::explore_promise_first_deadline;
use promising_flat::{explore_flat_deadline, FlatMachine};
use promising_workloads::{by_spec, init_for};
use std::time::Duration;

/// The Table 2 rows (paper parameterisations, trimmed to what completes
/// in reasonable wall-clock on the Promising side).
pub const ROWS: &[&str] = &[
    "SLA-1", "SLA-2", "SLA-3", "SLA-4",
    "SLC-1", "SLC-2",
    "SLR-1", "SLR-2",
    "PCS-1-1", "PCS-2-2",
    "PCM-1-1-1",
    "TL-1",
    "STC-100-010-000", "STC-100-010-010", "STC(opt)-100-010-000",
    "STR-100-010-000", "STR-100-010-010",
    "DQ-100-1-0", "DQ-110-1-0", "DQ(opt)-100-1-0",
    "QU-100-000-000", "QU-100-010-000", "QU(opt)-100-000-000",
];

fn main() {
    let timeout = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60u64);
    let timeout = Duration::from_secs(timeout);
    println!(
        "Table 2: exhaustive run times in seconds (timeout {}s per cell)\n",
        timeout.as_secs()
    );
    let mut table = Table::new(&["Test", "Promising", "Flat", "P-states", "F-states"]);
    for spec in ROWS {
        let w = by_spec(spec).expect("table spec parses");
        let init = init_for(&w);

        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
        let p = explore_promise_first_deadline(&m, Some(timeout));
        let p_time = (!p.stats.truncated).then_some(p.stats.duration);
        if !p.stats.truncated {
            let violations = w.violations(&p.outcomes);
            if !violations.is_empty() {
                println!("!! {spec}: incorrect states found: {}", violations[0]);
            }
        }

        let fm = FlatMachine::with_init(w.program.clone(), w.config_unshared(Arch::Arm), init);
        let f = explore_flat_deadline(&fm, u64::MAX, Some(timeout));
        let f_time = (!f.stats.truncated).then_some(f.stats.duration);

        table.row(&[
            spec.to_string(),
            fmt_duration(p_time),
            fmt_duration(f_time),
            p.stats.states.to_string(),
            f.stats.states.to_string(),
        ]);
        eprintln!("  {spec}: promising {} flat {}", fmt_duration(p_time), fmt_duration(f_time));
    }
    println!("{}", table.render());
}
