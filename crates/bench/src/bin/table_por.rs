//! Experiment POR (PR 5): measure the partial-order reduction — visited
//! states and pruned transitions with `Config::por` on vs off, on the
//! two models the reduction applies to (the naive full-interleaving
//! promising search and the Flat-lite baseline).
//!
//! Rows come in two groups:
//!
//! * the **Table-2 heavy rows** (SLC-2, STC, STR, QU). These are
//!   *append-bound*: every thread keeps writing a contended location
//!   (lock word, stack head, queue tail) until it retires, and appends
//!   to the total order of memory never commute, so sound POR has
//!   almost nothing to prune — the effective ordering reduction for
//!   them is the promise-first strategy itself (Theorem 7.1), which is
//!   what the Table-2 "Promising" column runs. The rows are included to
//!   record exactly that;
//! * **read-parallel rows** — IRIW-style multi-observer shapes (the
//!   catalogue entries plus `RF-n-k` fan-outs: one writer of `k`
//!   locations, `n` pure-reader threads) where co-enabled observers
//!   collapse multiplicatively. This is the shape that dominates the
//!   generated litmus corpora.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table_por -- \
//!     [timeout-secs] [--json PATH]
//! ```
//!
//! Outcome sets are asserted identical POR-on vs POR-off on every row
//! that completes both sides (the process exits non-zero otherwise).

use promising_bench::{host_cpus, Table};
use promising_core::{Arch, CodeBuilder, Config, Expr, Machine, Program, Reg};
use promising_explorer::{explore_naive_budget, CertMode, Exploration, SearchBudget};
use promising_flat::{explore_flat_budget, FlatMachine};
use promising_litmus::{catalogue, DEFAULT_FUEL};
use promising_workloads::{by_spec, init_for};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// The Table-2 heavy rows (append-bound — see the module docs).
const HEAVY: &[&str] = &[
    "SLC-2",
    "STC-100-010-000",
    "STC-100-010-010",
    "STR-100-010-000",
    "STR-100-010-010",
    "QU-100-000-000",
    "QU-100-010-000",
];

/// Read-parallel fan-outs: (readers, locations-each). The observer
/// collapse compounds in the reader count — the off-side grows by the
/// full multinomial of reader interleavings, the on-side by a sum.
const FANOUTS: &[(usize, usize)] = &[
    (2, 2),
    (3, 2),
    (2, 3),
    (4, 2),
    (3, 3),
    (5, 2),
    (4, 3),
    (6, 2),
];

struct Row {
    name: String,
    model: &'static str,
    group: &'static str,
    states_on: u64,
    states_off: u64,
    pruned: u64,
    /// [`StopReason::name`] per side — explains *why* a truncated cell
    /// stopped (deadline vs resource budget) instead of a bare flag.
    stop_on: &'static str,
    stop_off: &'static str,
    truncated: bool,
    equal: bool,
}

impl Row {
    fn reduction(&self) -> f64 {
        self.states_off as f64 / self.states_on.max(1) as f64
    }
}

fn fanout_program(readers: usize, locs: usize) -> Arc<Program> {
    let mut threads = Vec::new();
    let mut b = CodeBuilder::new();
    let stmts: Vec<_> = (0..locs)
        .map(|l| b.store(Expr::val(l as i64), Expr::val(1)))
        .collect();
    threads.push(b.finish_seq(&stmts));
    for _ in 0..readers {
        let mut b = CodeBuilder::new();
        let stmts: Vec<_> = (0..locs)
            .map(|l| b.load(Reg(1 + l as u32), Expr::val((locs - 1 - l) as i64)))
            .collect();
        threads.push(b.finish_seq(&stmts));
    }
    Arc::new(Program::new(threads))
}

fn main() {
    let mut timeout = Duration::from_secs(60);
    let mut json: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = Some(it.next().expect("--json needs a path")),
            other => match other.parse::<u64>() {
                Ok(secs) => timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    let budget = SearchBudget::deadline(Some(timeout));
    println!(
        "POR ablation: visited states with Config::por on vs off ({}s per cell)\n",
        timeout.as_secs()
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut measure = |name: String,
                       model: &'static str,
                       group: &'static str,
                       on: Exploration,
                       off: Exploration| {
        let truncated = on.stats.truncated() || off.stats.truncated();
        let row = Row {
            name: name.clone(),
            model,
            group,
            states_on: on.stats.states,
            states_off: off.stats.states,
            pruned: on.stats.por_pruned,
            stop_on: on.stats.stop.name(),
            stop_off: off.stats.stop.name(),
            truncated,
            equal: truncated || on.outcomes == off.outcomes,
        };
        eprintln!(
            "  {model} {name}: {} -> {} states ({:.2}x){}",
            row.states_off,
            row.states_on,
            row.reduction(),
            if truncated { " [truncated]" } else { "" }
        );
        rows.push(row);
    };

    let naive_pair = |program: &Arc<Program>, config: Config| {
        let on = explore_naive_budget(
            &Machine::new(Arc::clone(program), config.clone().with_por(true)),
            CertMode::Online,
            budget,
        );
        let off = explore_naive_budget(
            &Machine::new(Arc::clone(program), config.with_por(false)),
            CertMode::Online,
            budget,
        );
        (on, off)
    };

    for spec in HEAVY {
        let w = by_spec(spec).expect("heavy row spec parses");
        let init = init_for(&w);
        let config = w.config(Arch::Arm);
        let on = explore_naive_budget(
            &Machine::with_init(
                w.program.clone(),
                config.clone().with_por(true),
                init.clone(),
            ),
            CertMode::Online,
            budget,
        );
        let off = explore_naive_budget(
            &Machine::with_init(w.program.clone(), config.with_por(false), init.clone()),
            CertMode::Online,
            budget,
        );
        measure(spec.to_string(), "naive", "table2-heavy", on, off);
        let fc = w.config_unshared(Arch::Arm);
        let f_on = explore_flat_budget(
            &FlatMachine::with_init(w.program.clone(), fc.clone().with_por(true), init.clone()),
            budget,
        );
        let f_off = explore_flat_budget(
            &FlatMachine::with_init(w.program.clone(), fc.with_por(false), init),
            budget,
        );
        measure(spec.to_string(), "flat", "table2-heavy", f_on, f_off);
    }

    for &(readers, locs) in FANOUTS {
        let name = format!("RF-{readers}-{locs}");
        let program = fanout_program(readers, locs);
        let (on, off) = naive_pair(&program, Config::arm());
        measure(name.clone(), "naive", "read-parallel", on, off);
        let f_on = explore_flat_budget(
            &FlatMachine::new(Arc::clone(&program), Config::arm()),
            budget,
        );
        let f_off = explore_flat_budget(
            &FlatMachine::new(Arc::clone(&program), Config::arm().with_por(false)),
            budget,
        );
        measure(name, "flat", "read-parallel", f_on, f_off);
    }

    for t in catalogue() {
        if t.arch != Arch::Arm || !t.name.starts_with("IRIW") {
            continue;
        }
        let config = Config::for_arch(t.arch).with_loop_fuel(t.loop_fuel.unwrap_or(DEFAULT_FUEL));
        let on = explore_naive_budget(
            &Machine::with_init(
                t.program.clone(),
                config.clone().with_por(true),
                t.init.clone(),
            ),
            CertMode::Online,
            budget,
        );
        let off = explore_naive_budget(
            &Machine::with_init(t.program.clone(), config.with_por(false), t.init.clone()),
            CertMode::Online,
            budget,
        );
        measure(t.name.clone(), "naive", "read-parallel", on, off);
    }

    let mut table = Table::new(&[
        "Test",
        "Model",
        "Group",
        "States-off",
        "States-on",
        "Reduction",
        "Pruned",
    ]);
    for r in &rows {
        table.row(&[
            r.name.clone(),
            r.model.to_string(),
            r.group.to_string(),
            r.states_off.to_string(),
            if r.truncated {
                format!("{} (ooT)", r.states_on)
            } else {
                r.states_on.to_string()
            },
            format!("{:.2}x", r.reduction()),
            r.pruned.to_string(),
        ]);
    }
    println!("{}", table.render());

    // `None` = every row of the group was truncated, nothing to average
    // (the JSON emits `null` then — never a bare NaN token).
    let mean = |group: &str, model: Option<&str>| -> Option<f64> {
        let ratios: Vec<f64> = rows
            .iter()
            .filter(|r| r.group == group && !r.truncated && model.is_none_or(|m| r.model == m))
            .map(Row::reduction)
            .collect();
        if ratios.is_empty() {
            return None;
        }
        Some((ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp())
    };
    let fmt_mean = |m: Option<f64>| match m {
        Some(m) => format!("{m:.2}x"),
        None => "- (all rows truncated)".to_string(),
    };
    let heavy_mean = mean("table2-heavy", None);
    let rp_mean = mean("read-parallel", None);
    let rp_naive = mean("read-parallel", Some("naive"));
    let rp_flat = mean("read-parallel", Some("flat"));
    println!("geometric-mean state reduction (completed rows):");
    println!(
        "  table2-heavy:  {}  (append-bound — see module docs: POR",
        fmt_mean(heavy_mean)
    );
    println!("                 cannot commute appends; promise-first is their reduction)");
    println!(
        "  read-parallel: {} (naive {}, flat {})",
        fmt_mean(rp_mean),
        fmt_mean(rp_naive),
        fmt_mean(rp_flat)
    );

    let mismatches: Vec<&Row> = rows.iter().filter(|r| !r.equal).collect();
    for r in &mismatches {
        eprintln!(
            "MISMATCH: {} {}: POR-on and POR-off outcome sets differ",
            r.model, r.name
        );
    }

    if let Some(path) = &json {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"table_por\",");
        let _ = writeln!(out, "  \"timeout_secs\": {},", timeout.as_secs());
        let _ = writeln!(out, "  \"cores\": {},", host_cpus());
        let json_mean = |m: Option<f64>| match m {
            Some(m) => format!("{m:.4}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "  \"mean_reduction_table2_heavy\": {},",
            json_mean(heavy_mean)
        );
        let _ = writeln!(
            out,
            "  \"mean_reduction_read_parallel\": {},",
            json_mean(rp_mean)
        );
        let _ = writeln!(
            out,
            "  \"mean_reduction_read_parallel_naive\": {},",
            json_mean(rp_naive)
        );
        let _ = writeln!(
            out,
            "  \"mean_reduction_read_parallel_flat\": {},",
            json_mean(rp_flat)
        );
        let _ = writeln!(out, "  \"rows\": [");
        for (i, r) in rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"test\": \"{}\", \"model\": \"{}\", \"group\": \"{}\", \"states_off\": {}, \"states_on\": {}, \"reduction\": {:.4}, \"por_pruned\": {}, \"stop_on\": \"{}\", \"stop_off\": \"{}\", \"truncated\": {}, \"outcomes_equal\": {}}}{}",
                r.name,
                r.model,
                r.group,
                r.states_off,
                r.states_on,
                r.reduction(),
                r.pruned,
                r.stop_on,
                r.stop_off,
                r.truncated,
                r.equal,
                if i + 1 < rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        std::fs::write(path, out).expect("write json snapshot");
        println!("wrote {path}");
    }

    if !mismatches.is_empty() {
        std::process::exit(1);
    }
}
