//! Experiment L1 (DESIGN.md): model-agreement sweep over the full
//! generated litmus suites plus the named catalogue — the analogue of the
//! paper's ~6,500-ARM/~7,000-RISC-V herd validation (§7).
//!
//! Usage: `cargo run --release -p promising-bench --bin litmus_agreement`

use promising_core::Arch;
use promising_litmus::{catalogue, check_agreement, generate_suite, generate_three_thread_suite, ModelKind};
use std::time::Instant;

fn main() {
    let models = [
        ModelKind::Promising,
        ModelKind::Axiomatic,
        ModelKind::Flat,
    ];
    let mut total = 0usize;
    let mut disagreements = Vec::new();
    let start = Instant::now();

    for arch in [Arch::Arm, Arch::RiscV] {
        let mut tests = generate_suite(arch);
        tests.extend(generate_three_thread_suite(arch));
        tests.extend(catalogue().into_iter().filter(|t| t.arch == arch));
        println!("{}: {} tests", arch.name(), tests.len());
        for (i, test) in tests.iter().enumerate() {
            match check_agreement(test, &models) {
                Ok(a) if a.agree => {}
                Ok(a) => disagreements.push(a.mismatch.unwrap_or(a.test)),
                Err(e) => disagreements.push(format!("{test}: {e}")),
            }
            if (i + 1) % 200 == 0 {
                println!("  …{}/{} ({:.1}s)", i + 1, tests.len(), start.elapsed().as_secs_f64());
            }
        }
        total += tests.len();
    }

    println!(
        "\nchecked {total} litmus tests under {:?} in {:.1}s",
        models.map(|m| m.name()),
        start.elapsed().as_secs_f64()
    );
    if disagreements.is_empty() {
        println!("all models agree on every test");
    } else {
        println!("{} DISAGREEMENTS:", disagreements.len());
        for d in &disagreements {
            println!("  {d}");
        }
        std::process::exit(1);
    }
}
