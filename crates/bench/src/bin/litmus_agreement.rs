//! Experiment L1 (DESIGN.md): model-agreement sweep over the full
//! generated litmus suites plus the named catalogue — the analogue of the
//! paper's ~6,500-ARM/~7,000-RISC-V herd validation (§7).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin litmus_agreement [-- --subsample STRIDE]
//! ```
//!
//! `--subsample STRIDE` keeps every `STRIDE`-th generated test (the
//! named catalogue is always kept in full) — the fast cross-model smoke
//! check CI runs on every push; omit it for the full local sweep.

use promising_core::Arch;
use promising_litmus::{
    catalogue, check_agreement, check_lang_conformance, generate_lang_subsample,
    generate_lang_suite, generate_rmw_subsample, generate_subsample, generate_suite,
    generate_three_thread_suite, lang_catalogue, ModelKind,
};
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let mut subsample: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--subsample" => {
                subsample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--subsample needs a stride"),
                )
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let models = [ModelKind::Promising, ModelKind::Axiomatic, ModelKind::Flat];
    let mut total = 0usize;
    let mut disagreements = Vec::new();
    let start = Instant::now();

    for arch in [Arch::Arm, Arch::RiscV] {
        let mut tests = match subsample {
            // Offset the stride per arch so repeated CI runs with different
            // strides don't keep re-checking the same prefix shapes. The
            // three-thread suite (IRIW/WRC shapes) is strided too — it
            // exercises cross-thread propagation paths the two-thread
            // suite cannot.
            Some(stride) => {
                let mut t = generate_subsample(arch, stride, arch as usize % stride.max(1));
                t.extend(
                    generate_three_thread_suite(arch)
                        .into_iter()
                        .skip(arch as usize % stride.max(1))
                        .step_by(stride.max(1)),
                );
                // stride the RMW cross separately (RMW links are a small
                // fraction of the link set, so the plain subsample alone
                // under-covers them), deduplicating by name
                let have: BTreeSet<String> = t.iter().map(|x| x.name.clone()).collect();
                t.extend(
                    generate_rmw_subsample(arch, stride, arch as usize % stride.max(1))
                        .into_iter()
                        .filter(|x| !have.contains(&x.name)),
                );
                t
            }
            None => {
                let mut t = generate_suite(arch);
                t.extend(generate_three_thread_suite(arch));
                t
            }
        };
        tests.extend(catalogue().into_iter().filter(|t| t.arch == arch));
        println!("{}: {} tests", arch.name(), tests.len());
        for (i, test) in tests.iter().enumerate() {
            match check_agreement(test, &models) {
                Ok(a) if a.agree => {}
                Ok(a) => disagreements.push(a.mismatch.unwrap_or(a.test)),
                Err(e) => disagreements.push(format!("{test}: {e}")),
            }
            if (i + 1) % 200 == 0 {
                println!(
                    "  …{}/{} ({:.1}s)",
                    i + 1,
                    tests.len(),
                    start.elapsed().as_secs_f64()
                );
            }
        }
        total += tests.len();
    }

    // The language-level corpus: conformance is stricter than agreement —
    // outcome sets must also coincide *across architectures* (each test
    // compiles to both ARM and RISC-V). The named language catalogue is
    // always kept in full; the generated language corpus is strided.
    let mut lang_tests = lang_catalogue();
    let have: BTreeSet<String> = lang_tests.iter().map(|t| t.name.clone()).collect();
    lang_tests.extend(
        match subsample {
            Some(stride) => generate_lang_subsample(stride, 0),
            None => generate_lang_suite(),
        }
        .into_iter()
        // part (c) of the generated suite re-derives some named RMW
        // catalogue shapes; don't check them twice
        .filter(|t| !have.contains(&t.name)),
    );
    println!("lang: {} tests (×2 architectures)", lang_tests.len());
    for test in &lang_tests {
        match check_lang_conformance(test, &models) {
            Ok(c) if c.agree => {}
            Ok(c) => disagreements.push(c.mismatch.unwrap_or(c.test)),
            Err(e) => disagreements.push(format!("{test}: {e}")),
        }
    }
    total += lang_tests.len();

    println!(
        "\nchecked {total} litmus tests under {:?} in {:.1}s",
        models.map(|m| m.name()),
        start.elapsed().as_secs_f64()
    );
    if disagreements.is_empty() {
        println!("all models agree on every test");
    } else {
        println!("{} DISAGREEMENTS:", disagreements.len());
        for d in &disagreements {
            println!("  {d}");
        }
        std::process::exit(1);
    }
}
