//! Experiment L1 (DESIGN.md): model-agreement sweep over the full
//! generated litmus suites plus the named catalogue — the analogue of the
//! paper's ~6,500-ARM/~7,000-RISC-V herd validation (§7).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin litmus_agreement [-- --subsample STRIDE]
//! ```
//!
//! `--subsample STRIDE` keeps every `STRIDE`-th generated test (the
//! named catalogue is always kept in full) — the fast cross-model smoke
//! check CI runs on every push; omit it for the full local sweep.
//!
//! `--por-sweep` additionally runs the two POR-reduced models
//! (promising-naive and Flat-lite) with partial-order reduction *off*,
//! and with the static POR on but the per-location dynamic layer
//! (`Config::dpor`) *off*, on every selected test, asserting the
//! outcome sets are identical to the default (por+dpor on) runs — the
//! direct `Config::{por, dpor}` soundness sweep CI runs per push.

use promising_core::Arch;
use promising_litmus::{
    catalogue, check_agreement, check_lang_conformance, generate_lang_subsample,
    generate_lang_suite, generate_rmw_subsample, generate_subsample, generate_suite,
    generate_three_thread_suite, lang_catalogue, run_model_with, LitmusTest, ModelKind,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// POR-on vs POR-off outcome equality for the two reduced models.
/// `flat_on` lets the caller pass the Flat outcome set the agreement
/// check just computed (POR defaults to on there), so the sweep does not
/// re-explore Flat's state space a third time per test.
fn check_por_agreement(
    test: &LitmusTest,
    flat_on: Option<&BTreeSet<promising_core::Outcome>>,
) -> Result<(), String> {
    for kind in [ModelKind::PromisingNaive, ModelKind::Flat] {
        let on = match (kind, flat_on) {
            (ModelKind::Flat, Some(outcomes)) => outcomes.clone(),
            _ => {
                run_model_with(test, kind, |c| c.with_por(true))
                    .map_err(|e| format!("{}: {} POR-on: {e}", test.name, kind.name()))?
                    .outcomes
            }
        };
        type Tweak = fn(promising_core::Config) -> promising_core::Config;
        for (label, tweak) in [
            ("POR-off", (|c| c.with_por(false)) as Tweak),
            ("DPOR-off", (|c| c.with_por(true).with_dpor(false)) as Tweak),
        ] {
            let off = run_model_with(test, kind, tweak)
                .map_err(|e| format!("{}: {} {label}: {e}", test.name, kind.name()))?;
            if on != off.outcomes {
                return Err(format!(
                    "{}: {} default and {label} outcome sets differ ({} vs {} outcomes)",
                    test.name,
                    kind.name(),
                    on.len(),
                    off.outcomes.len(),
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let mut subsample: Option<usize> = None;
    let mut por_sweep = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--subsample" => {
                subsample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--subsample needs a stride"),
                )
            }
            "--por-sweep" => por_sweep = true,
            other => panic!("unknown argument: {other}"),
        }
    }

    let models = [ModelKind::Promising, ModelKind::Axiomatic, ModelKind::Flat];
    let mut total = 0usize;
    let mut disagreements = Vec::new();
    let start = Instant::now();

    for arch in [Arch::Arm, Arch::RiscV] {
        let mut tests = match subsample {
            // Offset the stride per arch so repeated CI runs with different
            // strides don't keep re-checking the same prefix shapes. The
            // three-thread suite (IRIW/WRC shapes) is strided too — it
            // exercises cross-thread propagation paths the two-thread
            // suite cannot.
            Some(stride) => {
                let mut t = generate_subsample(arch, stride, arch as usize % stride.max(1));
                t.extend(
                    generate_three_thread_suite(arch)
                        .into_iter()
                        .skip(arch as usize % stride.max(1))
                        .step_by(stride.max(1)),
                );
                // stride the RMW cross separately (RMW links are a small
                // fraction of the link set, so the plain subsample alone
                // under-covers them), deduplicating by name
                let have: BTreeSet<String> = t.iter().map(|x| x.name.clone()).collect();
                t.extend(
                    generate_rmw_subsample(arch, stride, arch as usize % stride.max(1))
                        .into_iter()
                        .filter(|x| !have.contains(&x.name)),
                );
                t
            }
            None => {
                let mut t = generate_suite(arch);
                t.extend(generate_three_thread_suite(arch));
                t
            }
        };
        tests.extend(catalogue().into_iter().filter(|t| t.arch == arch));
        println!("{}: {} tests", arch.name(), tests.len());
        for (i, test) in tests.iter().enumerate() {
            let mut flat_on = None;
            match check_agreement(test, &models) {
                Ok(a) => {
                    if !a.agree {
                        disagreements.push(a.mismatch.unwrap_or_else(|| a.test.clone()));
                    }
                    flat_on = a.runs.into_iter().find(|r| r.kind == ModelKind::Flat);
                }
                Err(e) => disagreements.push(format!("{test}: {e}")),
            }
            if por_sweep {
                if let Err(e) = check_por_agreement(test, flat_on.as_ref().map(|r| &r.outcomes)) {
                    disagreements.push(e);
                }
            }
            if (i + 1) % 200 == 0 {
                println!(
                    "  …{}/{} ({:.1}s)",
                    i + 1,
                    tests.len(),
                    start.elapsed().as_secs_f64()
                );
            }
        }
        total += tests.len();
    }

    // The language-level corpus: conformance is stricter than agreement —
    // outcome sets must also coincide *across architectures* (each test
    // compiles to both ARM and RISC-V). The named language catalogue is
    // always kept in full; the generated language corpus is strided.
    let mut lang_tests = lang_catalogue();
    let have: BTreeSet<String> = lang_tests.iter().map(|t| t.name.clone()).collect();
    lang_tests.extend(
        match subsample {
            Some(stride) => generate_lang_subsample(stride, 0),
            None => generate_lang_suite(),
        }
        .into_iter()
        // part (c) of the generated suite re-derives some named RMW
        // catalogue shapes; don't check them twice
        .filter(|t| !have.contains(&t.name)),
    );
    println!("lang: {} tests (×2 architectures)", lang_tests.len());
    for test in &lang_tests {
        let mut flat_on: Vec<(Arch, promising_litmus::ModelRun)> = Vec::new();
        match check_lang_conformance(test, &models) {
            Ok(c) => {
                if !c.agree {
                    disagreements.push(c.mismatch.unwrap_or_else(|| c.test.clone()));
                }
                flat_on = c
                    .runs
                    .into_iter()
                    .filter(|(_, r)| r.kind == ModelKind::Flat)
                    .collect();
            }
            Err(e) => disagreements.push(format!("{test}: {e}")),
        }
        if por_sweep {
            for arch in [Arch::Arm, Arch::RiscV] {
                let reuse = flat_on
                    .iter()
                    .find(|(a, _)| *a == arch)
                    .map(|(_, r)| &r.outcomes);
                if let Err(e) = check_por_agreement(&test.compile(arch), reuse) {
                    disagreements.push(e);
                }
            }
        }
    }
    total += lang_tests.len();

    println!(
        "\nchecked {total} litmus tests under {:?} in {:.1}s",
        models.map(|m| m.name()),
        start.elapsed().as_secs_f64()
    );
    if disagreements.is_empty() {
        println!("all models agree on every test");
    } else {
        println!("{} DISAGREEMENTS:", disagreements.len());
        for d in &disagreements {
            println!("  {d}");
        }
        std::process::exit(1);
    }
}
