//! Closure-frontend conformance sweep: every test of the ported
//! literature corpus (`promising_harness::corpus`) recorded, compiled to
//! ARM *and* RISC-V, and explored under the promising, naive, and Flat
//! strategies — reporting per-architecture state counts and verifying
//! each test's documented outcome set. Fails (non-zero exit) on any
//! mismatch, strategy disagreement, or harness error.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin harness_conformance -- \
//!     [--subsample STRIDE] [--json PATH]
//! ```
//!
//! * `--subsample STRIDE` — keep every `STRIDE`-th corpus test (for
//!   quick CI sweeps);
//! * `--json PATH` — write a machine-readable verdict snapshot.

use promising_bench::{host_cpus, Table};
use promising_core::Arch;
use promising_harness::corpus::corpus;
use promising_harness::ModelKind;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let mut subsample: Option<usize> = None;
    let mut json: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--subsample" => {
                subsample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--subsample needs a stride"),
                )
            }
            "--json" => json = Some(it.next().expect("--json needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    let all = corpus();
    let total = all.len();
    let stride = subsample.unwrap_or(1).max(1);
    let tests: Vec<_> = all.into_iter().step_by(stride).collect();

    let start = Instant::now();
    let mut table = Table::new(&[
        "test",
        "family",
        "arm-states",
        "riscv-states",
        "outcomes",
        "verdict",
    ]);
    let mut failures = Vec::new();
    let mut json_rows = Vec::new();

    for t in &tests {
        let lt = (t.build)();
        let verdict = t.check_against(&lt);
        let (mut arm_states, mut riscv_states, mut outcomes) = (0u64, 0u64, 0usize);
        if let Ok(m) = lt.matrix() {
            for run in &m.runs {
                if run.model == ModelKind::Promising {
                    match run.arch {
                        Arch::Arm => {
                            arm_states = run.states;
                            outcomes = run.outcomes.len();
                        }
                        Arch::RiscV => riscv_states = run.states,
                    }
                }
            }
        }
        let ok = verdict.is_ok();
        if let Err(e) = verdict {
            failures.push(e);
        }
        table.row(&[
            t.name.to_string(),
            t.family.to_string(),
            arm_states.to_string(),
            riscv_states.to_string(),
            outcomes.to_string(),
            if ok { "ok" } else { "FAIL" }.to_string(),
        ]);
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"test\":\"{}\",\"family\":\"{}\",\"arm_states\":{arm_states},\
             \"riscv_states\":{riscv_states},\"outcomes\":{outcomes},\
             \"arch_divergent\":{},\"verdict\":\"{}\"}}",
            t.name,
            t.family,
            t.expected_riscv.is_some(),
            if ok { "ok" } else { "FAIL" }
        );
        json_rows.push(row);
    }

    println!("{}", table.render());
    println!(
        "checked {}/{} harness corpus tests × {:?} × [arm, riscv] in {:.1}s",
        tests.len(),
        total,
        promising_harness::STRATEGIES.map(|m| m.name()),
        start.elapsed().as_secs_f64()
    );

    if let Some(path) = json {
        let body = format!(
            "{{\"checked\":{},\"total\":{},\"failed\":{},\"cores\":{},\"elapsed_s\":{:.1},\n\"rows\":[\n{}\n]}}\n",
            tests.len(),
            total,
            host_cpus(),
            failures.len(),
            start.elapsed().as_secs_f64(),
            json_rows.join(",\n")
        );
        std::fs::write(&path, body).expect("write json snapshot");
        println!("wrote {path}");
    }

    if !failures.is_empty() {
        eprintln!("{} corpus test(s) failed:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
