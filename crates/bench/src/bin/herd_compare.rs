//! Experiment H1 (DESIGN.md): the §8 herd comparison — run times of the
//! Promising explorer vs the axiomatic (herd-style) enumerator on the
//! small lock instances and on representative litmus tests.
//!
//! Usage: `cargo run --release -p promising-bench --bin herd_compare [timeout-secs]`

use promising_axiomatic::{enumerate_outcomes, AxConfig};
use promising_bench::{fmt_duration, Table};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_promise_first_budget, SearchBudget};
use promising_litmus::by_name;
use promising_workloads::{by_spec, init_for};
use std::time::{Duration, Instant};

fn main() {
    let timeout = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60u64);
    let timeout = Duration::from_secs(timeout);
    println!(
        "Herd comparison: Promising vs axiomatic candidate enumeration (timeout {}s)\n",
        timeout.as_secs()
    );
    let mut table = Table::new(&["Test", "Promising", "Axiomatic", "Candidates"]);

    // litmus-scale: classic tests where both models apply
    for name in [
        "MP+dmb.sy+addr",
        "SB+dmb.sy+dmb.sy",
        "LB+data+data",
        "IRIW+addr+addr",
        "PPOCA",
        "LDX-STX-atomicity",
    ] {
        let t = by_name(name).expect("catalogue test");
        let m = Machine::with_init(
            t.program.clone(),
            promising_core::Config::for_arch(t.arch).with_loop_fuel(8),
            t.init.clone(),
        );
        let p = explore_promise_first_budget(&m, SearchBudget::deadline(Some(timeout)));
        let mut ax_cfg = AxConfig::new(t.arch);
        ax_cfg.init = t.init.clone();
        let start = Instant::now();
        let ax = enumerate_outcomes(&t.program, &ax_cfg);
        let ax_time = start.elapsed();
        let (ax_cell, cand) = match &ax {
            Ok(r) => (fmt_duration(Some(ax_time)), r.stats.candidates.to_string()),
            Err(e) => (format!("fail: {e}"), "-".into()),
        };
        table.row(&[
            name.to_string(),
            fmt_duration((!p.stats.truncated()).then_some(p.stats.wall_time)),
            ax_cell,
            cand,
        ]);
    }

    // lock-scale: the axiomatic enumerator blows up herd-style
    for spec in ["SLA-1", "SLA-2", "SLC-1", "TL-1"] {
        let w = by_spec(spec).expect("spec parses");
        let init = init_for(&w);
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init);
        let p = explore_promise_first_budget(&m, SearchBudget::deadline(Some(timeout)));
        let mut ax_cfg = AxConfig::new(Arch::Arm);
        ax_cfg.loop_fuel = w.loop_fuel;
        ax_cfg.limits.max_traces = 2_000_000;
        ax_cfg.limits.max_candidates = 100_000_000;
        let start = Instant::now();
        let ax = enumerate_outcomes(&w.program, &ax_cfg);
        let ax_time = start.elapsed();
        let (ax_cell, cand) = match &ax {
            Ok(r) if ax_time <= timeout => {
                (fmt_duration(Some(ax_time)), r.stats.candidates.to_string())
            }
            Ok(_) => ("ooT".into(), "-".into()),
            Err(e) => (format!("blow-up: {e}"), "-".into()),
        };
        table.row(&[
            spec.to_string(),
            fmt_duration((!p.stats.truncated()).then_some(p.stats.wall_time)),
            ax_cell,
            cand,
        ]);
        eprintln!("  {spec} done");
    }
    println!("{}", table.render());
}
