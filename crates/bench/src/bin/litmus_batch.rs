//! Fault-tolerant batch litmus campaign runner (the serving-layer
//! counterpart of experiment L1): runs the named catalogues plus the
//! generated hardware and language corpora under a set of models with
//! per-test budgets, a degradation ladder, panic isolation, and a
//! crash-safe resumable result cache.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin litmus_batch -- \
//!     [--subsample STRIDE] [--models promising,axiomatic,flat] \
//!     [--jobs N] [--cache PATH] [--db PATH] \
//!     [--deadline-ms MS] [--max-states N] [--max-bytes N] \
//!     [--retry-scale K] [--sample-traces N] [--seed S] \
//!     [--inject-panic TEST] [--campaign-states N] [--assert-faults]
//! ```
//!
//! The exit status reflects **conformance only**: a nonzero exit means
//! some conclusive verdict contradicted its recorded expectation.
//! Infrastructure failures — caught panics, budget trips, degraded
//! tiers — are recorded in the verdicts and summarised, but do not fail
//! the run. `--assert-faults` additionally requires that at least one
//! panicked and one degraded verdict were recorded (the CI
//! fault-injection smoke check); `--campaign-states N` aborts the
//! campaign after ~N explored states (deterministic kill simulation —
//! rerun with the same `--cache` to resume).

use promising_bench::batch::{
    run_campaign, verdict_db, write_verdict_db, BatchConfig, Tier, TierBudgets,
};
use promising_core::Arch;
use promising_litmus::{
    catalogue, generate_lang_subsample, generate_lang_suite, generate_rmw_subsample,
    generate_subsample, generate_suite, generate_three_thread_suite, lang_catalogue, LitmusTest,
    ModelKind, SearchBudget, StopReason,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The campaign corpus: named hardware catalogues (always in full),
/// strided generated hardware suites, and the language corpus compiled
/// for both architectures — the same selection the agreement sweep
/// uses, so verdicts line up with experiment L1.
fn corpus(subsample: Option<usize>) -> Vec<LitmusTest> {
    let mut tests = Vec::new();
    for arch in [Arch::Arm, Arch::RiscV] {
        match subsample {
            Some(stride) => {
                let offset = arch as usize % stride.max(1);
                tests.extend(generate_subsample(arch, stride, offset));
                tests.extend(
                    generate_three_thread_suite(arch)
                        .into_iter()
                        .skip(offset)
                        .step_by(stride.max(1)),
                );
                let have: BTreeSet<String> = tests.iter().map(|t| t.name.clone()).collect();
                tests.extend(
                    generate_rmw_subsample(arch, stride, offset)
                        .into_iter()
                        .filter(|t| !have.contains(&t.name)),
                );
            }
            None => {
                tests.extend(generate_suite(arch));
                tests.extend(generate_three_thread_suite(arch));
            }
        }
        tests.extend(catalogue().into_iter().filter(|t| t.arch == arch));
    }
    let mut lang = lang_catalogue();
    let have: BTreeSet<String> = lang.iter().map(|t| t.name.clone()).collect();
    lang.extend(
        match subsample {
            Some(stride) => generate_lang_subsample(stride, 0),
            None => generate_lang_suite(),
        }
        .into_iter()
        .filter(|t| !have.contains(&t.name)),
    );
    for t in &lang {
        for arch in [Arch::Arm, Arch::RiscV] {
            tests.push(t.compile(arch));
        }
    }
    tests
}

fn main() {
    let mut subsample: Option<usize> = None;
    let mut models = vec![ModelKind::Promising, ModelKind::Axiomatic, ModelKind::Flat];
    let mut jobs = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let mut cache: Option<PathBuf> = None;
    let mut db: Option<PathBuf> = None;
    let mut budget = SearchBudget::UNBOUNDED;
    let mut retry_scale = 4u32;
    let mut sample_traces = 256u64;
    let mut seed = 1u64;
    let mut inject_panic: Option<String> = None;
    let mut campaign_states: Option<u64> = None;
    let mut assert_faults = false;

    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--subsample" => subsample = Some(parse(&need(&mut it, "--subsample"), "--subsample")),
            "--models" => {
                models = need(&mut it, "--models")
                    .split(',')
                    .map(|m| {
                        ModelKind::parse(m).unwrap_or_else(|| die(&format!("unknown model: {m}")))
                    })
                    .collect();
            }
            "--jobs" => jobs = parse(&need(&mut it, "--jobs"), "--jobs"),
            "--cache" => cache = Some(PathBuf::from(need(&mut it, "--cache"))),
            "--db" => db = Some(PathBuf::from(need(&mut it, "--db"))),
            "--deadline-ms" => {
                budget = budget.with_deadline(Some(Duration::from_millis(parse(
                    &need(&mut it, "--deadline-ms"),
                    "--deadline-ms",
                ))));
            }
            "--max-states" => {
                budget = budget
                    .with_max_states(Some(parse(&need(&mut it, "--max-states"), "--max-states")));
            }
            "--max-bytes" => {
                budget = budget
                    .with_max_bytes(Some(parse(&need(&mut it, "--max-bytes"), "--max-bytes")));
            }
            "--retry-scale" => {
                retry_scale = parse(&need(&mut it, "--retry-scale"), "--retry-scale")
            }
            "--sample-traces" => {
                sample_traces = parse(&need(&mut it, "--sample-traces"), "--sample-traces");
            }
            "--seed" => seed = parse(&need(&mut it, "--seed"), "--seed"),
            "--inject-panic" => inject_panic = Some(need(&mut it, "--inject-panic")),
            "--campaign-states" => {
                campaign_states = Some(parse(
                    &need(&mut it, "--campaign-states"),
                    "--campaign-states",
                ));
            }
            "--assert-faults" => assert_faults = true,
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let cfg = BatchConfig {
        models,
        jobs,
        budgets: TierBudgets {
            base: budget,
            retry_scale,
            sample_traces,
            sample_seed: seed,
        },
        cache_path: cache,
        inject_panic,
        campaign_state_budget: campaign_states,
    };

    let tests = corpus(subsample);
    println!(
        "litmus_batch: {} tests × {:?} ({} jobs)",
        tests.len(),
        cfg.models.iter().map(|m| m.name()).collect::<Vec<_>>(),
        cfg.jobs
    );
    let start = Instant::now();
    let report = run_campaign(&tests, &cfg).unwrap_or_else(|e| die(&format!("campaign I/O: {e}")));

    let degraded = report.degraded().count();
    let sampled = report
        .records
        .iter()
        .filter(|r| r.tier == Tier::Sampled)
        .count();
    let panicked = report.panicked().count();
    let inconclusive = report.records.iter().filter(|r| !r.conclusive()).count();
    let mismatches: Vec<_> = report.mismatches().collect();
    println!(
        "{} verdicts in {:.1}s: {} cache hits, {} executed, {} degraded ({} sampled), {} panicked, {} inconclusive",
        report.records.len(),
        start.elapsed().as_secs_f64(),
        report.cache_hits,
        report.executed,
        degraded,
        sampled,
        panicked,
        inconclusive,
    );
    for rec in report.records.iter().filter(|r| r.stop.truncated()) {
        println!(
            "  [{}] {}/{}/{}: stopped: {}",
            rec.tier.name(),
            rec.test,
            rec.arch.name(),
            rec.model.name(),
            rec.stop.name()
        );
    }

    if report.aborted {
        println!("campaign ABORTED by --campaign-states; rerun with the same --cache to resume");
    } else if let Some(path) = &db {
        write_verdict_db(&report.records, path)
            .unwrap_or_else(|e| die(&format!("verdict db: {e}")));
        println!(
            "verdict db: {} ({} bytes)",
            path.display(),
            verdict_db(&report.records).len()
        );
    }

    if assert_faults {
        assert!(
            panicked > 0,
            "--assert-faults: expected at least one panicked verdict"
        );
        assert!(
            report
                .records
                .iter()
                .any(|r| r.tier != Tier::Exhaustive || r.stop != StopReason::Completed),
            "--assert-faults: expected at least one degraded/truncated verdict"
        );
        println!("fault-injection check: panics and degradations recorded, campaign survived");
    }

    if mismatches.is_empty() {
        println!("conformance: all conclusive verdicts match expectations");
    } else {
        println!("{} CONFORMANCE MISMATCHES:", mismatches.len());
        for rec in &mismatches {
            println!(
                "  {}/{}/{} [{}]: holds={:?} vs expectation",
                rec.test,
                rec.arch.name(),
                rec.model.name(),
                rec.tier.name(),
                rec.holds
            );
        }
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: invalid value {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("litmus_batch: {msg}");
    std::process::exit(2);
}
