//! Language-level conformance table: every test of the language corpus
//! (named catalogue + generated suite) compiled to ARM *and* RISC-V and
//! run under the promising, axiomatic, and Flat models — reporting
//! per-architecture state counts and outcome-set sizes, and failing on
//! any cross-model or cross-architecture disagreement or expectation
//! mismatch.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table_lang -- \
//!     [--subsample STRIDE] [--catalogue-only] [--json PATH]
//! ```
//!
//! * `--subsample STRIDE` — keep every `STRIDE`-th generated test (the
//!   named language catalogue is always kept in full);
//! * `--catalogue-only` — skip the generated suite entirely;
//! * `--json PATH` — write a machine-readable snapshot.

use promising_bench::{host_cpus, Table};
use promising_core::Arch;
use promising_litmus::{
    check_lang_conformance, generate_lang_subsample, generate_lang_suite, lang_catalogue,
    Expectation, LangTest, ModelKind,
};
use std::fmt::Write as _;
use std::time::Instant;

const MODELS: [ModelKind; 3] = [ModelKind::Promising, ModelKind::Axiomatic, ModelKind::Flat];

fn main() {
    let mut subsample: Option<usize> = None;
    let mut catalogue_only = false;
    let mut json: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--subsample" => {
                subsample = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .expect("--subsample needs a stride"),
                )
            }
            "--catalogue-only" => catalogue_only = true,
            "--json" => json = Some(it.next().expect("--json needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    let mut corpus: Vec<(bool, LangTest)> =
        lang_catalogue().into_iter().map(|t| (true, t)).collect();
    if !catalogue_only {
        let have: std::collections::BTreeSet<String> =
            corpus.iter().map(|(_, t)| t.name.clone()).collect();
        let generated = match subsample {
            Some(stride) => generate_lang_subsample(stride, 0),
            None => generate_lang_suite(),
        };
        // part (c) of the generated suite re-derives some named RMW
        // catalogue shapes; keep one row per name
        corpus.extend(
            generated
                .into_iter()
                .filter(|t| !have.contains(&t.name))
                .map(|t| (false, t)),
        );
    }

    let start = Instant::now();
    let mut table = Table::new(&[
        "test",
        "kind",
        "arm-states",
        "riscv-states",
        "outcomes",
        "agree",
        "verdict",
    ]);
    let mut failures = Vec::new();
    let mut json_rows = Vec::new();

    for (named, test) in &corpus {
        let c = match check_lang_conformance(test, &MODELS) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("{test}: {e}"));
                continue;
            }
        };
        if !c.agree {
            failures.push(c.mismatch.clone().unwrap_or_else(|| c.test.clone()));
        }
        let states_of = |arch: Arch| {
            c.runs
                .iter()
                .find(|(a, r)| *a == arch && r.kind == ModelKind::Promising)
                .map(|(_, r)| r.states)
                .unwrap_or(0)
        };
        let outcomes = c.runs.first().map(|(_, r)| r.outcomes.len()).unwrap_or(0);
        let verdict = if test.expect.is_some() {
            // evaluate the condition on the runs conformance already
            // produced — no re-exploration
            let ok = [Arch::Arm, Arch::RiscV].iter().all(|&arch| {
                c.runs
                    .iter()
                    .find(|(a, r)| *a == arch && r.kind == ModelKind::Promising)
                    .map(|(_, r)| {
                        test.condition.holds(&r.outcomes)
                            == (test.expect == Some(Expectation::Allowed))
                    })
                    .unwrap_or(false)
            });
            if !ok {
                failures.push(format!("{}: expectation mismatch", test.name));
            }
            if ok {
                "ok"
            } else {
                "MISMATCH"
            }
        } else {
            "-"
        };
        // only catalogue rows go in the rendered table (the generated
        // suite is hundreds of rows); everything lands in the JSON
        if *named {
            table.row(&[
                test.name.clone(),
                "catalogue".into(),
                states_of(Arch::Arm).to_string(),
                states_of(Arch::RiscV).to_string(),
                outcomes.to_string(),
                c.agree.to_string(),
                verdict.to_string(),
            ]);
        }
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"test\":\"{}\",\"named\":{},\"arm_states\":{},\"riscv_states\":{},\"outcomes\":{},\"agree\":{},\"verdict\":\"{}\"}}",
            test.name,
            named,
            states_of(Arch::Arm),
            states_of(Arch::RiscV),
            outcomes,
            c.agree,
            verdict
        );
        json_rows.push(row);
    }

    println!("{}", table.render());
    println!(
        "checked {} language tests ({} named + {} generated) × {:?} × [arm, riscv] in {:.1}s",
        corpus.len(),
        corpus.iter().filter(|(n, _)| *n).count(),
        corpus.iter().filter(|(n, _)| !*n).count(),
        MODELS.map(|m| m.name()),
        start.elapsed().as_secs_f64()
    );

    if let Some(path) = json {
        let body = format!(
            "{{\"total\":{},\"cores\":{},\"secs\":{:.3},\"rows\":[\n{}\n]}}\n",
            corpus.len(),
            host_cpus(),
            start.elapsed().as_secs_f64(),
            json_rows.join(",\n")
        );
        std::fs::write(&path, body).expect("write json snapshot");
        println!("wrote {path}");
    }

    if failures.is_empty() {
        println!("all compilations conform: identical outcome sets on ARM and RISC-V");
    } else {
        println!("{} FAILURES:", failures.len());
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
