//! Experiment DPOR (PR 6): measure the per-location dynamic reduction —
//! visited states with `Config::dpor` on vs off, with `Config::por` on in
//! *both* cells, so the off side is exactly the PR 5 static-observer POR
//! and the ratio isolates what the per-location refinement adds.
//!
//! Rows come in the same two groups as `table_por`:
//!
//! * the **Table-2 heavy rows** (SLC-2, STC, STR, QU) — append-bound
//!   workloads where the static reduction recorded 1.0x. The dynamic
//!   reduction attacks them from two sides: the flat model's canonical
//!   per-location state encoding merges interleavings that differ only
//!   in the global order of appends to disjoint locations, and the
//!   naive model's restricted-fingerprint `CertMemo` keys let a
//!   thread's certification survive sibling appends to locations
//!   outside its may-access scope (the `survived` counter);
//! * **read-parallel rows** — the IRIW-style shapes the static POR
//!   already collapses. These are regression guards: the dynamic
//!   delayable-thread rule strictly contains the pure-observer rule,
//!   so the dpor cell must stay within noise of the PR 5 cell.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p promising-bench --bin table_dpor -- \
//!     [timeout-secs] [--json PATH] [--worker-sweep N,M,..]
//! ```
//!
//! Outcome sets are asserted identical dpor-on vs dpor-off on every row
//! that completes both sides (the process exits non-zero otherwise).
//!
//! `--worker-sweep 1,2,4,8` re-runs each *flat* dpor-on cell once per
//! worker count over the work-stealing frontier, asserting the outcome
//! set identical to the serial cell, and emits a per-row `worker_sweep`
//! series in the JSON. The snapshot-level `cores`/`worker_mode` pair
//! says how to read it: speedup ratios are only printed when the host
//! has more than one logical core.

use promising_bench::{
    host_cpus, parse_worker_list, sweep_cell_text, sweep_json, worker_mode, SweepCell, Table,
};
use promising_core::{Arch, CodeBuilder, Config, Expr, Machine, Program, Reg};
use promising_explorer::{explore_naive_budget, CertMode, Exploration, SearchBudget};
use promising_flat::{explore_flat_budget, FlatMachine};
use promising_litmus::{catalogue, DEFAULT_FUEL};
use promising_workloads::{by_spec, init_for};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// The Table-2 heavy rows (append-bound — see the module docs).
const HEAVY: &[&str] = &[
    "SLC-2",
    "STC-100-010-000",
    "STC-100-010-010",
    "STR-100-010-000",
    "STR-100-010-010",
    "QU-100-000-000",
    "QU-100-010-000",
];

/// Read-parallel fan-outs: (readers, locations-each), matching
/// `table_por` so the regression check lines up row-for-row with
/// `BENCH_por.json`.
const FANOUTS: &[(usize, usize)] = &[
    (2, 2),
    (3, 2),
    (2, 3),
    (4, 2),
    (3, 3),
    (5, 2),
    (4, 3),
    (6, 2),
];

struct Row {
    name: String,
    model: &'static str,
    group: &'static str,
    /// Visited states with por on, dpor on.
    states_dpor: u64,
    /// Visited states with por on, dpor off — the PR 5 baseline.
    states_base: u64,
    pruned: u64,
    cert_hits: u64,
    cert_misses: u64,
    cert_survived: u64,
    stop_dpor: &'static str,
    stop_base: &'static str,
    truncated: bool,
    equal: bool,
    /// `--worker-sweep` series for the dpor-on cell (flat rows only;
    /// empty when the sweep was not requested or does not apply).
    sweep: Vec<SweepCell>,
}

impl Row {
    fn reduction(&self) -> f64 {
        self.states_base as f64 / self.states_dpor.max(1) as f64
    }
}

fn fanout_program(readers: usize, locs: usize) -> Arc<Program> {
    let mut threads = Vec::new();
    let mut b = CodeBuilder::new();
    let stmts: Vec<_> = (0..locs)
        .map(|l| b.store(Expr::val(l as i64), Expr::val(1)))
        .collect();
    threads.push(b.finish_seq(&stmts));
    for _ in 0..readers {
        let mut b = CodeBuilder::new();
        let stmts: Vec<_> = (0..locs)
            .map(|l| b.load(Reg(1 + l as u32), Expr::val((locs - 1 - l) as i64)))
            .collect();
        threads.push(b.finish_seq(&stmts));
    }
    Arc::new(Program::new(threads))
}

fn main() {
    let mut timeout = Duration::from_secs(60);
    let mut json: Option<String> = None;
    let mut sweep_counts: Vec<usize> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = Some(it.next().expect("--json needs a path")),
            "--worker-sweep" => {
                sweep_counts = parse_worker_list(&it.next().expect("--worker-sweep needs a list"));
            }
            other => match other.parse::<u64>() {
                Ok(secs) => timeout = Duration::from_secs(secs),
                Err(_) => panic!("unknown argument: {other}"),
            },
        }
    }
    let cores = host_cpus();
    let budget = SearchBudget::deadline(Some(timeout));
    println!(
        "DPOR ablation: visited states with Config::dpor on vs off, por on in both ({}s per cell)\n",
        timeout.as_secs()
    );
    if !sweep_counts.is_empty() {
        println!(
            "worker sweep {:?} on {} logical core(s): {} columns\n",
            sweep_counts,
            cores,
            worker_mode(cores)
        );
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut measure = |name: String,
                       model: &'static str,
                       group: &'static str,
                       on: Exploration,
                       off: Exploration,
                       sweep: Vec<SweepCell>| {
        let truncated = on.stats.truncated() || off.stats.truncated();
        let row = Row {
            name: name.clone(),
            model,
            group,
            states_dpor: on.stats.states,
            states_base: off.stats.states,
            pruned: on.stats.por_pruned,
            cert_hits: on.stats.cert_hits,
            cert_misses: on.stats.cert_misses,
            cert_survived: on.stats.cert_survived,
            stop_dpor: on.stats.stop.name(),
            stop_base: off.stats.stop.name(),
            truncated,
            equal: truncated || on.outcomes == off.outcomes,
            sweep,
        };
        eprintln!(
            "  {model} {name}: {} -> {} states ({:.2}x), {} survived{}",
            row.states_base,
            row.states_dpor,
            row.reduction(),
            row.cert_survived,
            if truncated { " [truncated]" } else { "" }
        );
        rows.push(row);
    };

    // Both cells run with por on; only dpor differs.
    type Init = std::collections::BTreeMap<promising_core::Loc, promising_core::Val>;
    let naive_pair = |program: &Arc<Program>, config: Config, init: &Init| {
        let on = explore_naive_budget(
            &Machine::with_init(
                Arc::clone(program),
                config.clone().with_por(true).with_dpor(true),
                init.clone(),
            ),
            CertMode::Online,
            budget,
        );
        let off = explore_naive_budget(
            &Machine::with_init(
                Arc::clone(program),
                config.with_por(true).with_dpor(false),
                init.clone(),
            ),
            CertMode::Online,
            budget,
        );
        (on, off)
    };
    let flat_pair = |name: &str, program: &Arc<Program>, config: Config, init: &Init| {
        let on = explore_flat_budget(
            &FlatMachine::with_init(
                Arc::clone(program),
                config.clone().with_por(true).with_dpor(true),
                init.clone(),
            ),
            budget,
        );
        let sweep: Vec<SweepCell> = sweep_counts
            .iter()
            .map(|&n| {
                let e = explore_flat_budget(
                    &FlatMachine::with_init(
                        Arc::clone(program),
                        config
                            .clone()
                            .with_por(true)
                            .with_dpor(true)
                            .with_workers(n),
                        init.clone(),
                    ),
                    budget,
                );
                if !e.stats.truncated() && !on.stats.truncated() {
                    assert_eq!(
                        e.outcomes, on.outcomes,
                        "{name}: {n}-worker and serial flat outcome sets must agree"
                    );
                }
                SweepCell {
                    workers: n,
                    secs: (!e.stats.truncated()).then_some(e.stats.wall_time.as_secs_f64()),
                    steals: e.stats.steals,
                }
            })
            .collect();
        let off = explore_flat_budget(
            &FlatMachine::with_init(
                Arc::clone(program),
                config.with_por(true).with_dpor(false),
                init.clone(),
            ),
            budget,
        );
        (on, off, sweep)
    };

    for spec in HEAVY {
        let w = by_spec(spec).expect("heavy row spec parses");
        let init = init_for(&w);
        let (on, off) = naive_pair(&w.program, w.config(Arch::Arm), &init);
        measure(
            spec.to_string(),
            "naive",
            "table2-heavy",
            on,
            off,
            Vec::new(),
        );
        let (f_on, f_off, f_sweep) =
            flat_pair(spec, &w.program, w.config_unshared(Arch::Arm), &init);
        measure(
            spec.to_string(),
            "flat",
            "table2-heavy",
            f_on,
            f_off,
            f_sweep,
        );
    }

    let no_init = Init::new();
    for &(readers, locs) in FANOUTS {
        let name = format!("RF-{readers}-{locs}");
        let program = fanout_program(readers, locs);
        let (on, off) = naive_pair(&program, Config::arm(), &no_init);
        measure(name.clone(), "naive", "read-parallel", on, off, Vec::new());
        let (f_on, f_off, f_sweep) = flat_pair(&name, &program, Config::arm(), &no_init);
        measure(name, "flat", "read-parallel", f_on, f_off, f_sweep);
    }

    for t in catalogue() {
        if t.arch != Arch::Arm || !t.name.starts_with("IRIW") {
            continue;
        }
        let config = Config::for_arch(t.arch).with_loop_fuel(t.loop_fuel.unwrap_or(DEFAULT_FUEL));
        let (on, off) = naive_pair(&t.program, config, &t.init);
        measure(
            t.name.clone(),
            "naive",
            "read-parallel",
            on,
            off,
            Vec::new(),
        );
    }

    let mut header: Vec<String> = [
        "Test",
        "Model",
        "Group",
        "States-base",
        "States-dpor",
        "Reduction",
        "Pruned",
        "Cert h/m/surv",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for w in &sweep_counts {
        header.push(format!("Sweep-w{w}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for r in &rows {
        let mut cells = vec![
            r.name.clone(),
            r.model.to_string(),
            r.group.to_string(),
            r.states_base.to_string(),
            if r.truncated {
                format!("{} (ooT)", r.states_dpor)
            } else {
                r.states_dpor.to_string()
            },
            format!("{:.2}x", r.reduction()),
            r.pruned.to_string(),
            format!("{}/{}/{}", r.cert_hits, r.cert_misses, r.cert_survived),
        ];
        let sweep_base = r.sweep.iter().find(|c| c.workers == 1).and_then(|c| c.secs);
        for w in &sweep_counts {
            cells.push(match r.sweep.iter().find(|c| c.workers == *w) {
                Some(c) => sweep_cell_text(c, sweep_base, cores),
                None => "-".to_string(),
            });
        }
        table.row(&cells);
    }
    println!("{}", table.render());

    // `None` = every row of the group was truncated, nothing to average
    // (the JSON emits `null` then — never a bare NaN token).
    let mean = |group: &str, model: Option<&str>| -> Option<f64> {
        let ratios: Vec<f64> = rows
            .iter()
            .filter(|r| r.group == group && !r.truncated && model.is_none_or(|m| r.model == m))
            .map(Row::reduction)
            .collect();
        if ratios.is_empty() {
            return None;
        }
        Some((ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp())
    };
    let fmt_mean = |m: Option<f64>| match m {
        Some(m) => format!("{m:.2}x"),
        None => "- (all rows truncated)".to_string(),
    };
    let heavy_mean = mean("table2-heavy", None);
    let heavy_flat = mean("table2-heavy", Some("flat"));
    let rp_mean = mean("read-parallel", None);
    println!("geometric-mean state reduction over the PR 5 POR (completed rows):");
    println!(
        "  table2-heavy:  {} (flat {})",
        fmt_mean(heavy_mean),
        fmt_mean(heavy_flat)
    );
    println!(
        "  read-parallel: {} (regression guard: must stay ~1.0x or better)",
        fmt_mean(rp_mean)
    );

    let mismatches: Vec<&Row> = rows.iter().filter(|r| !r.equal).collect();
    for r in &mismatches {
        eprintln!(
            "MISMATCH: {} {}: dpor-on and dpor-off outcome sets differ",
            r.model, r.name
        );
    }

    if let Some(path) = &json {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"table_dpor\",");
        let _ = writeln!(out, "  \"timeout_secs\": {},", timeout.as_secs());
        let _ = writeln!(out, "  \"cores\": {cores},");
        let _ = writeln!(out, "  \"worker_mode\": \"{}\",", worker_mode(cores));
        let json_mean = |m: Option<f64>| match m {
            Some(m) => format!("{m:.4}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "  \"mean_reduction_table2_heavy\": {},",
            json_mean(heavy_mean)
        );
        let _ = writeln!(
            out,
            "  \"mean_reduction_table2_heavy_flat\": {},",
            json_mean(heavy_flat)
        );
        let _ = writeln!(
            out,
            "  \"mean_reduction_read_parallel\": {},",
            json_mean(rp_mean)
        );
        let _ = writeln!(out, "  \"rows\": [");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"test\": \"{}\", \"model\": \"{}\", \"group\": \"{}\", \"states_base\": {}, \"states_dpor\": {}, \"reduction\": {:.4}, \"por_pruned\": {}, \"cert_hits\": {}, \"cert_misses\": {}, \"cert_survived\": {}, \"stop_dpor\": \"{}\", \"stop_base\": \"{}\", \"truncated\": {}, \"outcomes_equal\": {}",
                r.name,
                r.model,
                r.group,
                r.states_base,
                r.states_dpor,
                r.reduction(),
                r.pruned,
                r.cert_hits,
                r.cert_misses,
                r.cert_survived,
                r.stop_dpor,
                r.stop_base,
                r.truncated,
                r.equal,
            );
            let _ = write!(out, "{}", sweep_json(&r.sweep, cores));
            let _ = writeln!(out, "}}{}", if i + 1 < rows.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        std::fs::write(path, out).expect("write json snapshot");
        println!("wrote {path}");
    }

    if !mismatches.is_empty() {
        std::process::exit(1);
    }
}
