//! Benchmark-harness support: table formatting and timing helpers shared
//! by the table-regenerating binaries (see DESIGN.md §4 for the
//! experiment index).

#![warn(missing_docs)]

pub mod table;

pub use table::{fmt_duration, Table};
