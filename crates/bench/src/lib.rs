//! Benchmark-harness support: table formatting and timing helpers shared
//! by the table-regenerating binaries (see DESIGN.md §4 for the
//! experiment index), plus the pre-optimisation [`legacy`] explorers used
//! as the perf-trajectory baseline.

#![warn(missing_docs)]

pub mod batch;
pub mod legacy;
pub mod table;

pub use batch::{
    cache_key, run_campaign, verdict_db, write_verdict_db, BatchConfig, CampaignReport,
    ResultCache, Tier, TierBudgets, VerdictRecord,
};
pub use legacy::explore_promise_first_legacy;
pub use table::{
    fmt_duration, host_cpus, json_secs, parse_worker_list, sweep_cell_text, sweep_json,
    worker_mode, SweepCell, Table,
};
