//! Fault-tolerant batch litmus campaigns: the orchestration layer behind
//! the `litmus_batch` binary (DESIGN.md experiment L1 at scale).
//!
//! A *campaign* runs a corpus of litmus tests under a set of models with
//! per-test budgets, and is built to survive the failure modes that kill
//! one-shot sweeps:
//!
//! * **Panic isolation** — every per-test ladder runs inside
//!   `catch_unwind`; a model bug becomes a [`StopReason::Panicked`]
//!   verdict for that one test, never a dead campaign.
//! * **Degradation ladder** — tests that outrun their
//!   [`SearchBudget`] are retried with escalated bounds
//!   ([`SearchBudget::scaled`]) and finally degraded to seeded sampling
//!   ([`Tier::Sampled`]); every verdict is tagged with the [`Tier`] and
//!   [`StopReason`] that produced it, so downstream consumers know
//!   exactly how much to trust it.
//! * **Crash-safe result cache** — verdicts are keyed by
//!   `(machine fingerprint, condition, budgets, model)` and persisted
//!   through an atomic temp-file-and-rename protocol after every
//!   completed test, so a killed campaign resumes where it stopped and
//!   re-runs are incremental.
//! * **Deterministic verdict database** — the canonical JSON emitted by
//!   [`write_verdict_db`] contains no timings and is sorted by
//!   `(test, arch, model)`: an interrupted-then-resumed campaign
//!   produces a byte-identical database to an uninterrupted one
//!   (given deterministic budgets, i.e. state/byte bounds rather than
//!   wall-clock deadlines).
//!
//! Infrastructure failures (panics, budget trips) are *recorded*, not
//! fatal: a campaign's exit status reflects conformance mismatches only.

use promising_core::{Arch, FpHasher, Machine};
use promising_litmus::{
    run_model_isolated, run_model_sampled_budgeted, LitmusTest, ModelKind, ModelRun, Quantifier,
    RunError, SearchBudget, StopReason, DEFAULT_FUEL,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which rung of the degradation ladder produced a verdict.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Tier {
    /// First attempt under the base [`SearchBudget`], run to completion.
    Exhaustive,
    /// The base budget tripped; the escalated
    /// ([`SearchBudget::scaled`]) retry completed.
    Retry,
    /// Both exhaustive attempts tripped; the verdict comes from seeded
    /// random-walk sampling and is one-sided evidence only.
    Sampled,
}

impl Tier {
    /// Every tier, in ladder order.
    pub const ALL: [Tier; 3] = [Tier::Exhaustive, Tier::Retry, Tier::Sampled];

    /// Stable machine-readable name, used by the verdict database.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Exhaustive => "exhaustive",
            Tier::Retry => "retry",
            Tier::Sampled => "sampled",
        }
    }

    /// Parse a [`Tier::name`] back (the cache reader).
    pub fn parse(s: &str) -> Option<Tier> {
        Tier::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// Budgets for the degradation ladder.
#[derive(Clone, Copy, Debug)]
pub struct TierBudgets {
    /// Budget for the first, exhaustive attempt.
    pub base: SearchBudget,
    /// Multiplier applied to `base` for the retry rung.
    pub retry_scale: u32,
    /// Random walks for the sampled rung.
    pub sample_traces: u64,
    /// Seed for the sampled rung (fixed seed ⇒ deterministic verdicts).
    pub sample_seed: u64,
}

impl Default for TierBudgets {
    fn default() -> TierBudgets {
        TierBudgets {
            base: SearchBudget::UNBOUNDED,
            retry_scale: 4,
            sample_traces: 256,
            sample_seed: 1,
        }
    }
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Models to run each test under.
    pub models: Vec<ModelKind>,
    /// Worker threads (tests run in parallel; each test's engine is the
    /// default serial configuration, keeping per-test results
    /// deterministic).
    pub jobs: usize,
    /// The degradation-ladder budgets.
    pub budgets: TierBudgets,
    /// Persistent result cache; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Fault-injection hook: panic inside the ladder of the named test
    /// (every model), exercising the isolation path end-to-end.
    pub inject_panic: Option<String>,
    /// Abort the campaign once this many states have been explored in
    /// total — a deterministic stand-in for `kill -9` mid-campaign, used
    /// by the resume tests and CI.
    pub campaign_state_budget: Option<u64>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            models: vec![ModelKind::Promising, ModelKind::Axiomatic, ModelKind::Flat],
            jobs: 1,
            budgets: TierBudgets::default(),
            cache_path: None,
            inject_panic: None,
            campaign_state_budget: None,
        }
    }
}

/// One `(test, model)` verdict, as stored in the cache and the verdict
/// database. Contains no timings: every field is deterministic for
/// deterministic budgets, which is what makes resumed campaigns
/// byte-identical to uninterrupted ones.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerdictRecord {
    /// Cache key: `(machine fingerprint, condition, budgets, model)`,
    /// hex-rendered.
    pub key: String,
    /// Test name.
    pub test: String,
    /// Architecture the test ran on.
    pub arch: Arch,
    /// Model that produced the verdict.
    pub model: ModelKind,
    /// Ladder rung that produced the verdict.
    pub tier: Tier,
    /// Why the producing search stopped.
    pub stop: StopReason,
    /// Whether the condition holds — `None` when the evidence is
    /// one-sided and inconclusive (e.g. a sampled run that found no
    /// `exists` witness).
    pub holds: Option<bool>,
    /// Whether `holds` matches the test's recorded expectation;
    /// `None` when inconclusive or no expectation is recorded.
    pub matches_expectation: Option<bool>,
    /// Outcomes found.
    pub outcomes: u64,
    /// States visited (walk steps for the sampled tier).
    pub states: u64,
}

impl VerdictRecord {
    /// Whether the verdict is *conclusive*: a completed exhaustive
    /// search, or one-sided sampling evidence that already decides the
    /// condition (an `exists` witness, or a `forall` counterexample).
    pub fn conclusive(&self) -> bool {
        self.holds.is_some()
    }

    /// Whether this record is a conformance failure (conclusive and
    /// contradicting the recorded expectation) — the only thing that
    /// fails a campaign.
    pub fn mismatch(&self) -> bool {
        self.matches_expectation == Some(false)
    }

    /// Serialise to the cache's tab-separated line format.
    fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.key,
            self.test,
            self.arch.name(),
            self.model.name(),
            self.tier.name(),
            self.stop.name(),
            opt_bool(self.holds),
            opt_bool(self.matches_expectation),
            self.outcomes,
            self.states,
        )
    }

    /// Parse a cache line; `None` for malformed lines (a torn write from
    /// a crash mid-flush — the entry is simply recomputed).
    fn from_line(line: &str) -> Option<VerdictRecord> {
        let mut f = line.split('\t');
        let key = f.next()?.to_string();
        let test = f.next()?.to_string();
        let arch = match f.next()? {
            "arm" => Arch::Arm,
            "riscv" => Arch::RiscV,
            _ => return None,
        };
        let model = ModelKind::parse(f.next()?)?;
        let tier = Tier::parse(f.next()?)?;
        let stop = StopReason::parse(f.next()?)?;
        let holds = parse_opt_bool(f.next()?)?;
        let matches_expectation = parse_opt_bool(f.next()?)?;
        let outcomes = f.next()?.parse().ok()?;
        let states = f.next()?.parse().ok()?;
        if f.next().is_some() {
            return None;
        }
        Some(VerdictRecord {
            key,
            test,
            arch,
            model,
            tier,
            stop,
            holds,
            matches_expectation,
            outcomes,
            states,
        })
    }

    /// Canonical JSON object for the verdict database: fixed field
    /// order, no timings.
    fn to_json(&self) -> String {
        format!(
            "{{\"test\": \"{}\", \"arch\": \"{}\", \"model\": \"{}\", \"tier\": \"{}\", \"stop\": \"{}\", \"holds\": {}, \"matches_expectation\": {}, \"outcomes\": {}, \"states\": {}, \"key\": \"{}\"}}",
            json_escape(&self.test),
            self.arch.name(),
            self.model.name(),
            self.tier.name(),
            self.stop.name(),
            json_opt_bool(self.holds),
            json_opt_bool(self.matches_expectation),
            self.outcomes,
            self.states,
            self.key,
        )
    }
}

fn opt_bool(b: Option<bool>) -> &'static str {
    match b {
        Some(true) => "true",
        Some(false) => "false",
        None => "-",
    }
}

fn parse_opt_bool(s: &str) -> Option<Option<bool>> {
    match s {
        "true" => Some(Some(true)),
        "false" => Some(Some(false)),
        "-" => Some(None),
        _ => None,
    }
}

fn json_opt_bool(b: Option<bool>) -> &'static str {
    match b {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out
}

/// The persistent, crash-safe result cache: an in-memory map flushed to
/// disk through a write-temp-then-rename protocol, so readers (and the
/// next run) see either the previous complete file or the new complete
/// file — never a torn one. Unknown or malformed lines are skipped on
/// load (their entries are recomputed), so a crash can lose at most the
/// work since the last flush, never corrupt earlier verdicts.
#[derive(Debug, Default)]
pub struct ResultCache {
    records: BTreeMap<String, VerdictRecord>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Load from `path`; a missing file is an empty cache (first run).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn load(path: &Path) -> std::io::Result<ResultCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut cache = ResultCache::new();
        for line in text.lines() {
            if let Some(rec) = VerdictRecord::from_line(line) {
                cache.records.insert(rec.key.clone(), rec);
            }
        }
        Ok(cache)
    }

    /// Look up a verdict by cache key.
    pub fn get(&self, key: &str) -> Option<&VerdictRecord> {
        self.records.get(key)
    }

    /// Insert (or replace) a verdict.
    pub fn insert(&mut self, rec: VerdictRecord) {
        self.records.insert(rec.key.clone(), rec);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in key order.
    pub fn records(&self) -> impl Iterator<Item = &VerdictRecord> {
        self.records.values()
    }

    /// Atomically persist to `path`: write everything to a sibling temp
    /// file, fsync, then rename over the target. A crash at any point
    /// leaves either the old file or the new one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the temp write or the rename.
    pub fn flush(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for rec in self.records.values() {
                writeln!(f, "{}", rec.to_line())?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// The cache key for one `(test, model)` unit of work: the initial
/// machine's fingerprint (thread count, initial state, init memory)
/// extended with a hash of the architecture, program code, condition,
/// expectation, loop fuel, ladder budgets, and model. Any input that
/// can change the verdict changes the key, so stale entries can never
/// be confused for current ones; distinct test *names* whose inputs
/// coincide (e.g. `po` vs `rlx` fence variants compiling to identical
/// code) intentionally share a key and a verdict.
pub fn cache_key(test: &LitmusTest, model: ModelKind, budgets: &TierBudgets) -> String {
    let fuel = test.loop_fuel.unwrap_or(DEFAULT_FUEL);
    let config = promising_core::Config::for_arch(test.arch).with_loop_fuel(fuel);
    let machine_fp =
        Machine::with_init(test.program.clone(), config, test.init.clone()).fingerprint();
    let mut h = FpHasher::new();
    // The machine fingerprint covers only the *dynamic* state (thread
    // states, memory) — code never changes during a search, so it is
    // not fingerprinted there. For a cross-program cache key the code
    // and the architecture must be hashed explicitly.
    write_str(&mut h, test.arch.name());
    write_str(&mut h, &format!("{:?}", test.program));
    write_str(&mut h, &format!("{:?}", test.condition));
    write_str(&mut h, &format!("{:?}", test.expect));
    h.write_u32(fuel);
    h.write_u64(
        budgets
            .base
            .deadline
            .map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64),
    );
    h.write_u64(budgets.base.max_states.unwrap_or(0));
    h.write_u64(budgets.base.max_bytes.unwrap_or(0));
    h.write_u32(budgets.retry_scale);
    h.write_u64(budgets.sample_traces);
    h.write_u64(budgets.sample_seed);
    write_str(&mut h, model.name());
    let mut out = String::new();
    let _ = write!(out, "{:032x}-{:032x}", machine_fp.0, h.finish128().0);
    out
}

fn write_str(h: &mut FpHasher, s: &str) {
    h.write_len(s.len());
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h.write_u64(u64::from_le_bytes(word));
    }
}

/// Outcome of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Every verdict of the campaign (cached and fresh), in corpus
    /// order.
    pub records: Vec<VerdictRecord>,
    /// Units of work answered from the cache.
    pub cache_hits: usize,
    /// Units of work actually executed.
    pub executed: usize,
    /// Whether the campaign stopped early (campaign state budget) with
    /// work remaining — rerun to resume from the cache.
    pub aborted: bool,
}

impl CampaignReport {
    /// Conformance mismatches — the only failures that should fail a
    /// campaign's exit status.
    pub fn mismatches(&self) -> impl Iterator<Item = &VerdictRecord> {
        self.records.iter().filter(|r| r.mismatch())
    }

    /// Verdicts produced below the exhaustive tier.
    pub fn degraded(&self) -> impl Iterator<Item = &VerdictRecord> {
        self.records.iter().filter(|r| r.tier != Tier::Exhaustive)
    }

    /// Verdicts recording a caught panic.
    pub fn panicked(&self) -> impl Iterator<Item = &VerdictRecord> {
        self.records
            .iter()
            .filter(|r| r.stop == StopReason::Panicked)
    }
}

/// Run the degradation ladder for one `(test, model)` unit of work.
/// Never panics: both the injection hook and any model bug unwind into
/// a [`StopReason::Panicked`] record.
fn run_ladder(test: &LitmusTest, model: ModelKind, cfg: &BatchConfig) -> VerdictRecord {
    let key = cache_key(test, model, &cfg.budgets);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if cfg.inject_panic.as_deref() == Some(test.name.as_str()) {
            panic!("injected campaign fault for test {}", test.name);
        }
        ladder(test, model, &cfg.budgets)
    }));
    match attempt {
        Ok((tier, run)) => record_of(test, model, key, tier, run),
        Err(payload) => VerdictRecord {
            key,
            test: test.name.clone(),
            arch: test.arch,
            model,
            tier: Tier::Exhaustive,
            stop: StopReason::Panicked,
            holds: None,
            matches_expectation: None,
            outcomes: 0,
            states: 0,
        }
        .tap_payload(&promising_explorer::panic_message(payload.as_ref())),
    }
}

impl VerdictRecord {
    /// Hook for surfacing the panic payload in logs without storing it
    /// in the (deterministic) record: payload text can contain
    /// addresses or thread names that differ across runs.
    fn tap_payload(self, payload: &str) -> VerdictRecord {
        eprintln!(
            "[litmus_batch] {}/{}/{}: panicked: {payload}",
            self.test,
            self.arch.name(),
            self.model.name()
        );
        self
    }
}

/// The ladder proper: exhaustive → scaled retry → sampled.
fn ladder(
    test: &LitmusTest,
    model: ModelKind,
    budgets: &TierBudgets,
) -> (Tier, Result<ModelRun, RunError>) {
    let first = run_model_isolated(test, model, budgets.base);
    match &first {
        Ok(run) if !run.stop.truncated() => return (Tier::Exhaustive, first),
        Err(_) => return (Tier::Exhaustive, first),
        Ok(_) => {}
    }
    let retry = run_model_isolated(test, model, budgets.base.scaled(budgets.retry_scale));
    match &retry {
        Ok(run) if !run.stop.truncated() => return (Tier::Retry, retry),
        Err(_) => return (Tier::Retry, retry),
        Ok(_) => {}
    }
    // Sampling walks do not retain states, so the budget that tripped
    // the exhaustive rungs does not apply; the trace count bounds the
    // work, and the unbounded budget keeps the rung deterministic.
    (
        Tier::Sampled,
        run_model_sampled_budgeted(
            test,
            model,
            budgets.sample_traces,
            budgets.sample_seed,
            SearchBudget::UNBOUNDED,
        ),
    )
}

/// Build the verdict record for a ladder result.
fn record_of(
    test: &LitmusTest,
    model: ModelKind,
    key: String,
    tier: Tier,
    run: Result<ModelRun, RunError>,
) -> VerdictRecord {
    let mut rec = VerdictRecord {
        key,
        test: test.name.clone(),
        arch: test.arch,
        model,
        tier,
        stop: StopReason::Completed,
        holds: None,
        matches_expectation: None,
        outcomes: 0,
        states: 0,
    };
    match run {
        Ok(r) => {
            rec.stop = r.stop;
            rec.outcomes = r.outcomes.len() as u64;
            rec.states = r.states;
            let (holds, matches) = test.verdict(&r.outcomes);
            let conclusive = match tier {
                // A completed exhaustive search decides the condition.
                Tier::Exhaustive | Tier::Retry => !r.stop.truncated(),
                // Sampling (or a truncated search) is one-sided: it can
                // only *witness* — an `exists` that holds, or a `forall`
                // that fails, is decided; the opposite poles are not.
                Tier::Sampled => match test.condition.quantifier {
                    Quantifier::Exists => holds,
                    Quantifier::Forall => !holds,
                },
            };
            if conclusive {
                rec.holds = Some(holds);
                rec.matches_expectation = matches;
            }
        }
        Err(e) => {
            rec.stop = match e {
                RunError::Panicked { .. } => StopReason::Panicked,
                // Resource caps inside the axiomatic enumerator (or a
                // sampling-unsupported model reaching the last rung)
                // are budget-class failures: inconclusive, not fatal.
                RunError::Axiomatic(_) | RunError::SamplingUnsupported(_) => {
                    StopReason::StateBudget
                }
            };
        }
    }
    rec
}

/// Run a campaign: every `(test, model)` pair of `corpus` ×
/// `cfg.models`, cache-first, with `cfg.jobs` worker threads. Tests
/// flagged [`LitmusTest::flat_conservative`] skip the Flat model, as in
/// `check_agreement`. The cache (when configured) is flushed after
/// every completed unit of work.
///
/// # Errors
///
/// Propagates cache I/O errors; model-level failures are recorded in
/// the verdicts, never returned.
pub fn run_campaign(corpus: &[LitmusTest], cfg: &BatchConfig) -> std::io::Result<CampaignReport> {
    let mut cache = match &cfg.cache_path {
        Some(p) => ResultCache::load(p)?,
        None => ResultCache::new(),
    };

    // The work list: every (test, model) pair, with its cache key.
    struct Unit<'a> {
        test: &'a LitmusTest,
        model: ModelKind,
        key: String,
    }
    let mut units = Vec::new();
    let mut slots: Vec<Option<VerdictRecord>> = Vec::new();
    let mut cache_hits = 0usize;
    for test in corpus {
        for &model in &cfg.models {
            if test.flat_conservative && model == ModelKind::Flat {
                continue;
            }
            let key = cache_key(test, model, &cfg.budgets);
            if let Some(hit) = cache.get(&key) {
                cache_hits += 1;
                // Distinct tests with identical programs (e.g. `po` vs
                // `rlx` variants that compile to the same instructions)
                // share a key, and the verdict transfers soundly — but
                // the record's identity must be this unit's, not the
                // one that happened to populate the cache.
                let mut rec = hit.clone();
                rec.test = test.name.clone();
                rec.arch = test.arch;
                slots.push(Some(rec));
            } else {
                units.push((slots.len(), Unit { test, model, key }));
                slots.push(None);
            }
        }
    }

    // Bounded parallelism over the uncached units: workers claim the
    // next unit index; fresh verdicts land in their slot and the cache
    // is flushed under the same lock, so a kill between units loses at
    // most the in-flight work.
    let next = AtomicUsize::new(0);
    let states_spent = AtomicU64::new(0);
    let over_budget = || {
        cfg.campaign_state_budget
            .is_some_and(|b| states_spent.load(Ordering::Relaxed) >= b)
    };
    let fresh: Mutex<Vec<(usize, VerdictRecord)>> = Mutex::new(Vec::new());
    let executed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.max(1) {
            scope.spawn(|| loop {
                if over_budget() {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((slot, unit)) = units.get(i) else {
                    return;
                };
                let rec = run_ladder(unit.test, unit.model, cfg);
                debug_assert_eq!(rec.key, unit.key);
                states_spent.fetch_add(rec.states, Ordering::Relaxed);
                executed.fetch_add(1, Ordering::Relaxed);
                let mut fresh = fresh.lock().unwrap_or_else(|p| p.into_inner());
                fresh.push((*slot, rec));
            });
        }
    });

    let mut aborted = false;
    for (slot, rec) in fresh.into_inner().unwrap_or_else(|p| p.into_inner()) {
        // Panicked verdicts are reported but never cached: a panic may
        // be transient (or injected), and a sticky cached fault would
        // survive the bug fix that resolves it.
        if rec.stop != StopReason::Panicked {
            cache.insert(rec.clone());
        }
        slots[slot] = Some(rec);
    }
    if let Some(p) = &cfg.cache_path {
        cache.flush(p)?;
    }
    let mut records = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(rec) => records.push(rec),
            None => aborted = true,
        }
    }
    Ok(CampaignReport {
        records,
        cache_hits,
        executed: executed.into_inner(),
        aborted,
    })
}

/// Serialise a complete campaign's verdicts as the canonical JSON
/// database: records sorted by `(test, arch, model, key)`, fixed field
/// order, no timings — byte-identical across interrupted-and-resumed
/// and uninterrupted runs.
pub fn verdict_db(records: &[VerdictRecord]) -> String {
    let mut sorted: Vec<&VerdictRecord> = records.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.test, a.arch.name(), a.model.name(), &a.key).cmp(&(
            &b.test,
            b.arch.name(),
            b.model.name(),
            &b.key,
        ))
    });
    let mut out = String::from("{\n  \"verdicts\": [\n");
    for (i, rec) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{}", rec.to_json(), sep);
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the verdict database atomically (same temp-and-rename protocol
/// as the cache).
///
/// # Errors
///
/// Propagates I/O errors from the temp write or the rename.
pub fn write_verdict_db(records: &[VerdictRecord], path: &Path) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, verdict_db(records))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_litmus::parse_litmus;

    const MP_ADDR: &str = "\
ARM MP+dmb.sy+addr
store(x, 1)
dmb.sy
store(y, 1)
---
r1 = load(y)
r2 = load(x + (r1 - r1))
exists (P1:r1=1 /\\ P1:r2=0)
expect forbidden
";

    const SB: &str = "\
ARM SB+pos
store(x, 1)
r1 = load(y)
---
store(y, 1)
r2 = load(x)
exists (P0:r1=0 /\\ P1:r2=0)
expect allowed
";

    fn corpus() -> Vec<LitmusTest> {
        vec![parse_litmus(MP_ADDR).unwrap(), parse_litmus(SB).unwrap()]
    }

    #[test]
    fn record_round_trips_through_cache_line() {
        let rec = VerdictRecord {
            key: "abc-def".into(),
            test: "MP+dmb.sy+addr".into(),
            arch: Arch::RiscV,
            model: ModelKind::PromisingNaive,
            tier: Tier::Sampled,
            stop: StopReason::MemoryBudget,
            holds: Some(false),
            matches_expectation: None,
            outcomes: 7,
            states: 1234,
        };
        assert_eq!(VerdictRecord::from_line(&rec.to_line()), Some(rec));
        assert_eq!(VerdictRecord::from_line("torn\twrite"), None);
    }

    #[test]
    fn campaign_produces_conclusive_verdicts() {
        let report = run_campaign(&corpus(), &BatchConfig::default()).unwrap();
        assert_eq!(report.records.len(), 6, "2 tests × 3 models");
        assert!(!report.aborted);
        assert_eq!(report.cache_hits, 0);
        for rec in &report.records {
            assert_eq!(rec.tier, Tier::Exhaustive, "{}", rec.test);
            assert_eq!(rec.stop, StopReason::Completed, "{}", rec.test);
            assert_eq!(rec.matches_expectation, Some(true), "{}", rec.test);
        }
        assert_eq!(report.mismatches().count(), 0);
    }

    #[test]
    fn injected_panic_yields_panicked_verdict_and_spares_others() {
        let clean = run_campaign(&corpus(), &BatchConfig::default()).unwrap();
        let cfg = BatchConfig {
            inject_panic: Some("SB+pos".into()),
            ..BatchConfig::default()
        };
        let faulty = run_campaign(&corpus(), &cfg).unwrap();
        assert_eq!(faulty.panicked().count(), 3, "all three models of SB+pos");
        for rec in faulty.panicked() {
            assert_eq!(rec.test, "SB+pos");
            assert!(!rec.conclusive());
            assert!(!rec.mismatch(), "infrastructure faults are not failures");
        }
        // Every other verdict is untouched by the fault (keys differ —
        // the injection is not part of the key — so compare by test).
        let unaffected = |r: &&VerdictRecord| r.test != "SB+pos";
        let a: Vec<_> = clean.records.iter().filter(unaffected).collect();
        let b: Vec<_> = faulty.records.iter().filter(unaffected).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tight_budget_degrades_to_sampled_tier() {
        let cfg = BatchConfig {
            models: vec![ModelKind::Promising, ModelKind::Flat],
            budgets: TierBudgets {
                base: SearchBudget::max_states(1),
                retry_scale: 2,
                sample_traces: 64,
                sample_seed: 1,
            },
            ..BatchConfig::default()
        };
        let report = run_campaign(&corpus(), &cfg).unwrap();
        assert!(
            report.degraded().count() > 0,
            "a 1-state budget must degrade something"
        );
        for rec in report.degraded() {
            assert_eq!(rec.tier, Tier::Sampled, "{}", rec.test);
        }
        // SB's exists-allowed witness is easy to sample: conclusive.
        let sb = report
            .records
            .iter()
            .find(|r| r.test == "SB+pos" && r.model == ModelKind::Flat)
            .unwrap();
        assert_eq!(sb.matches_expectation, Some(true));
        assert_eq!(report.mismatches().count(), 0);
    }

    #[test]
    fn campaign_state_budget_aborts_and_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!(
            "litmus-batch-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache.tsv");

        // Ground truth: one uninterrupted run, no cache.
        let base_cfg = BatchConfig {
            models: vec![ModelKind::Promising, ModelKind::Flat],
            ..BatchConfig::default()
        };
        let full = run_campaign(&corpus(), &base_cfg).unwrap();
        let reference_db = verdict_db(&full.records);

        // Interrupted run: the campaign state budget trips after the
        // first unit of work, simulating a kill.
        let interrupted_cfg = BatchConfig {
            cache_path: Some(cache.clone()),
            campaign_state_budget: Some(1),
            ..base_cfg.clone()
        };
        let partial = run_campaign(&corpus(), &interrupted_cfg).unwrap();
        assert!(partial.aborted);
        assert!(partial.executed < 4, "the budget must abort work");
        assert!(cache.exists(), "partial results must be flushed");

        // Resume: same cache, no campaign budget. Cached verdicts are
        // hits; the rest run fresh; the DB matches byte-for-byte.
        let resume_cfg = BatchConfig {
            cache_path: Some(cache.clone()),
            ..base_cfg
        };
        let resumed = run_campaign(&corpus(), &resume_cfg).unwrap();
        assert!(!resumed.aborted);
        assert_eq!(resumed.cache_hits, partial.executed);
        assert_eq!(verdict_db(&resumed.records), reference_db);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_survives_torn_tail_line() {
        let dir = std::env::temp_dir().join(format!(
            "litmus-cache-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");

        let rec = VerdictRecord {
            key: "k1".into(),
            test: "T".into(),
            arch: Arch::Arm,
            model: ModelKind::Promising,
            tier: Tier::Exhaustive,
            stop: StopReason::Completed,
            holds: Some(true),
            matches_expectation: Some(true),
            outcomes: 1,
            states: 2,
        };
        let mut cache = ResultCache::new();
        cache.insert(rec.clone());
        cache.flush(&path).unwrap();
        // Simulate a torn append from a crashed legacy writer.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "k2\thalf-a-reco").unwrap();
        drop(f);

        let reloaded = ResultCache::load(&path).unwrap();
        assert_eq!(reloaded.len(), 1, "torn line skipped, good line kept");
        assert_eq!(reloaded.get("k1"), Some(&rec));

        std::fs::remove_dir_all(&dir).ok();
    }
}
