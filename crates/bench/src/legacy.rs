//! The pre-optimisation ("clone-heavy") exploration strategies, kept as a
//! measurable baseline for the perf-trajectory snapshots.
//!
//! These reproduce the seed implementation's cost model, which the
//! structural-sharing rework removed from the real explorers:
//!
//! * every transition **deep-clones** the whole machine
//!   ([`Machine::deep_clone`] forces copies of every `Arc`-shared
//!   component, as `Machine::clone` did before the rework);
//! * visited sets and memo tables are keyed by **exact state clones**
//!   (full `O(state)` hash and compare per lookup) instead of 128-bit
//!   fingerprints;
//! * certification memo tables are **per-call** — nothing is shared
//!   across sibling branches.
//!
//! Correctness is unchanged — `table2 --legacy` cross-checks the outcome
//! sets against the optimised explorers on every row it completes.

use promising_core::ids::TId;
use promising_core::stmt::SCRATCH_REG_BASE;
use promising_core::Reg;
use promising_core::Val;
use promising_core::{
    apply_step, enabled_steps, Machine, Memory, Msg, StepEvent, ThreadInstance, Timestamp,
    Transition, TransitionKind,
};
use promising_explorer::{Exploration, Outcome, Stats, StopReason};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::time::{Duration, Instant};

type RegMap = BTreeMap<Reg, Val>;

/// How many explored nodes between wall-clock deadline checks in the
/// legacy engines (the deadline is a measurement guard, not part of the
/// reproduced cost model).
const LEGACY_DEADLINE_CHECK_PERIOD: u64 = 256;

/// The seed's `find_and_certify` with its original cost model: a
/// per-call memo keyed by *exact* `(thread, memory)` clones, a deep
/// per-node clone of both thread and memory, and the certified-first-
/// steps re-expansion the seed's promise enumeration always paid for.
/// Sets `cut` (with an under-approximate result) past `deadline`.
fn legacy_promisable(
    m: &Machine,
    tid: TId,
    deadline: Option<Instant>,
    cut: &mut bool,
) -> BTreeSet<Msg> {
    let code = &m.program().threads()[tid.0];
    let mut engine = LegacyCertEngine {
        m,
        code,
        tid,
        base_ts: m.memory().max_timestamp(),
        memo: HashMap::new(),
        deadline,
        cut: false,
        ticks: 0,
    };
    let depth = m.config().cert_depth;
    let (_, promisable) = engine.explore(m.thread(tid), m.memory(), depth);
    // The seed's callers went through the full `find_and_certify`, which
    // also derived the certified first steps from the warm memo.
    let config = m.config();
    for kind in enabled_steps(config, code, tid, m.thread(tid), m.memory()) {
        if engine.cut {
            break;
        }
        let mut th = m.thread(tid).clone();
        th.unshare();
        let mut mem = m.memory().clone();
        mem.unshare();
        apply_step(config, code, tid, &kind, &mut th, &mut mem).expect("enabled step must apply");
        let _ = engine.explore(&th, &mem, depth.saturating_sub(1));
    }
    *cut |= engine.cut;
    promisable
}

struct LegacyCertEngine<'a> {
    m: &'a Machine,
    code: &'a promising_core::ThreadCode,
    tid: TId,
    base_ts: Timestamp,
    memo: HashMap<(ThreadInstance, Memory), (bool, BTreeSet<Msg>)>,
    deadline: Option<Instant>,
    cut: bool,
    ticks: u64,
}

impl LegacyCertEngine<'_> {
    fn out_of_time(&mut self) -> bool {
        if self.cut {
            return true;
        }
        let Some(at) = self.deadline else {
            return false;
        };
        self.ticks += 1;
        if self.ticks >= LEGACY_DEADLINE_CHECK_PERIOD {
            self.ticks = 0;
            if Instant::now() >= at {
                self.cut = true;
                return true;
            }
        }
        false
    }

    fn explore(
        &mut self,
        thread: &ThreadInstance,
        memory: &Memory,
        depth: u32,
    ) -> (bool, BTreeSet<Msg>) {
        // Exact memo key, stored as private copies (deep hash + compare
        // per lookup, as the seed's memo paid).
        let key = {
            let mut th = thread.clone();
            th.unshare();
            let mut mem = memory.clone();
            mem.unshare();
            (th, mem)
        };
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        if self.out_of_time() || depth == 0 {
            return (thread.state.prom.is_empty(), BTreeSet::new());
        }
        let mut reached = thread.state.prom.is_empty();
        let mut qualified = BTreeSet::new();
        let config = self.m.config();
        for kind in enabled_steps(config, self.code, self.tid, thread, memory) {
            if self.cut {
                break;
            }
            let mut th = thread.clone();
            th.unshare();
            let mut mem = memory.clone();
            mem.unshare();
            let ev = apply_step(config, self.code, self.tid, &kind, &mut th, &mut mem)
                .expect("enabled step must apply");
            let (sub_reached, sub_qualified) = self.explore(&th, &mem, depth - 1);
            if !sub_reached {
                continue;
            }
            reached = true;
            qualified.extend(sub_qualified);
            if kind.appends_write() {
                let (loc, val, pre_view) = match ev {
                    StepEvent::DidWrite {
                        loc, val, pre_view, ..
                    } => (loc, val, pre_view),
                    StepEvent::DidRmw {
                        loc, new, pre_view, ..
                    } => (loc, new, pre_view),
                    _ => unreachable!("appends_write steps report their write"),
                };
                let coh_before = thread.state.coh(loc);
                if pre_view.join(coh_before).timestamp() <= self.base_ts {
                    qualified.insert(Msg::new(loc, val, self.tid));
                }
            }
        }
        let result = (reached, qualified);
        if !self.cut {
            self.memo.insert(key, result.clone());
        }
        result
    }
}

/// The seed's promise-first search (§7) with the pre-rework cost model.
pub fn explore_promise_first_legacy(machine: &Machine, deadline: Option<Duration>) -> Exploration {
    let start = Instant::now();
    let mut stats = Stats::default();
    let mut outcomes = BTreeSet::new();

    // Promise-mode search over (memory, promise-sets) states, exact keys.
    let mut visited: HashSet<(Vec<BTreeSet<Timestamp>>, Memory)> = HashSet::new();
    let mut stack = vec![machine.deep_clone()];
    visited.insert(promise_key(machine));

    // Cache of promisable sets, keyed by the acting thread's promise set
    // and the (exact) memory.
    let mut promise_cache: HashMap<(TId, BTreeSet<Timestamp>, Memory), BTreeSet<Msg>> =
        HashMap::new();

    let deadline_at = deadline.map(|d| start + d);

    'search: while let Some(m) = stack.pop() {
        stats.states += 1;
        if let Some(at) = deadline_at {
            if Instant::now() >= at {
                stats.note_stop(StopReason::DeadlineExceeded);
                break;
            }
        }

        // Phase-2 check: is this memory final (all threads completable)?
        let mut per_thread: Vec<Rc<BTreeSet<RegMap>>> = Vec::with_capacity(m.num_threads());
        let mut all_complete = true;
        let mut cut = false;
        for tid in (0..m.num_threads()).map(TId) {
            let set = thread_outcomes(&m, tid, &mut stats, deadline_at, &mut cut);
            if cut {
                break;
            }
            if set.is_empty() {
                all_complete = false;
                break;
            }
            per_thread.push(set);
        }
        if cut {
            stats.note_stop(StopReason::DeadlineExceeded);
            break;
        }
        if all_complete {
            stats.final_memories += 1;
            let memory: BTreeMap<_, _> = m
                .memory()
                .locations()
                .into_iter()
                .map(|l| (l, m.memory().final_value(l)))
                .collect();
            let mut regs_product: Vec<Vec<RegMap>> = vec![Vec::new()];
            for set in &per_thread {
                let mut next = Vec::with_capacity(regs_product.len() * set.len());
                for prefix in &regs_product {
                    for regs in set.iter() {
                        let mut p = prefix.clone();
                        p.push(regs.clone());
                        next.push(p);
                    }
                }
                regs_product = next;
            }
            for regs in regs_product {
                outcomes.insert(Outcome {
                    regs,
                    memory: memory.clone(),
                });
            }
        }

        // Expand: all certified promises of all threads.
        for tid in (0..m.num_threads()).map(TId) {
            let key = (tid, m.thread(tid).state.prom.clone(), m.memory().clone());
            let promisable = match promise_cache.get(&key) {
                Some(p) => p.clone(),
                None => {
                    stats.certifications += 1;
                    let mut cut = false;
                    let p = legacy_promisable(&m, tid, deadline_at, &mut cut);
                    if cut {
                        stats.note_stop(StopReason::DeadlineExceeded);
                        break 'search;
                    }
                    promise_cache.insert(key, p.clone());
                    p
                }
            };
            for msg in promisable {
                let mut next = m.deep_clone();
                next.apply(&Transition::new(tid, TransitionKind::Promise { msg }))
                    .expect("certified promise applies");
                stats.transitions += 1;
                let k = promise_key(&next);
                if visited.insert(k) {
                    stack.push(next);
                }
            }
        }
    }

    // Serial search: all compute time is wall time.
    stats.cpu_time = start.elapsed();
    stats.wall_time = stats.cpu_time;
    Exploration { outcomes, stats }
}

fn promise_key(m: &Machine) -> (Vec<BTreeSet<Timestamp>>, Memory) {
    let mut mem = m.memory().clone();
    mem.unshare(); // exact keys stored as private copies, as the seed did
    (
        m.threads().iter().map(|t| t.state.prom.clone()).collect(),
        mem,
    )
}

/// Phase 2 with a fresh exact-keyed memo per (state, thread), as the
/// seed's `thread_outcomes` had. Sets `cut` past `deadline`.
fn thread_outcomes(
    m: &Machine,
    tid: TId,
    stats: &mut Stats,
    deadline: Option<Instant>,
    cut: &mut bool,
) -> Rc<BTreeSet<RegMap>> {
    let code = &m.program().threads()[tid.0];
    let mut memory = m.memory().clone();
    let mut dfs = LegacyThreadDfs {
        m,
        tid,
        code,
        memo: HashMap::new(),
        deadline,
        cut: false,
        ticks: 0,
    };
    let mem_len = memory.len();
    let result = dfs.run(m.thread(tid), &mut memory, stats);
    *cut |= dfs.cut;
    debug_assert_eq!(memory.len(), mem_len, "phase 2 must not append writes");
    result
}

struct LegacyThreadDfs<'a> {
    m: &'a Machine,
    tid: TId,
    code: &'a promising_core::ThreadCode,
    memo: HashMap<ThreadInstance, Rc<BTreeSet<RegMap>>>,
    deadline: Option<Instant>,
    cut: bool,
    ticks: u64,
}

impl LegacyThreadDfs<'_> {
    fn out_of_time(&mut self) -> bool {
        if self.cut {
            return true;
        }
        let Some(at) = self.deadline else {
            return false;
        };
        self.ticks += 1;
        if self.ticks >= LEGACY_DEADLINE_CHECK_PERIOD {
            self.ticks = 0;
            if Instant::now() >= at {
                self.cut = true;
                return true;
            }
        }
        false
    }

    fn run(
        &mut self,
        thread: &ThreadInstance,
        memory: &mut Memory,
        stats: &mut Stats,
    ) -> Rc<BTreeSet<RegMap>> {
        if let Some(hit) = self.memo.get(thread) {
            return Rc::clone(hit);
        }
        if self.out_of_time() {
            return Rc::new(BTreeSet::new());
        }
        let mut out = BTreeSet::new();
        if thread.is_done() {
            if !thread.state.has_promises() && thread.state.stuck.is_none() {
                out.insert(observable_regs(thread));
            }
        } else if thread.state.stuck.is_some() {
            stats.bound_hits += 1;
        } else {
            for kind in enabled_steps(self.m.config(), self.code, self.tid, thread, memory) {
                if kind.appends_write() {
                    continue; // non-promise mode: no new writes
                }
                if self.cut {
                    break;
                }
                let mut th = thread.clone();
                th.unshare(); // deep per-step clone, as the seed's clone was
                apply_step(self.m.config(), self.code, self.tid, &kind, &mut th, memory)
                    .expect("enabled step applies");
                stats.transitions += 1;
                let sub = self.run(&th, memory, stats);
                out.extend(sub.iter().cloned());
            }
        }
        let rc = Rc::new(out);
        if !self.cut {
            self.memo.insert(thread.clone(), Rc::clone(&rc));
        }
        rc
    }
}

fn observable_regs(thread: &ThreadInstance) -> RegMap {
    thread
        .state
        .regs
        .iter()
        .filter(|(r, _, _)| r.0 < SCRATCH_REG_BASE)
        .map(|(r, v, _)| (r, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{Arch, Config};
    use promising_explorer::explore_promise_first;
    use promising_workloads::{by_spec, init_for};

    #[test]
    fn legacy_agrees_with_optimised_on_workloads() {
        for spec in ["SLA-1", "PCS-1-1", "STC-100-010-000"] {
            let w = by_spec(spec).expect("spec parses");
            let m = promising_core::Machine::with_init(
                w.program.clone(),
                w.config(Arch::Arm),
                init_for(&w),
            );
            let legacy = explore_promise_first_legacy(&m, None);
            let fast = explore_promise_first(&m);
            assert_eq!(legacy.outcomes, fast.outcomes, "{spec}");
            assert_eq!(
                legacy.stats.final_memories, fast.stats.final_memories,
                "{spec}"
            );
        }
    }

    #[test]
    fn legacy_agrees_on_litmus_mp() {
        let (program, _) = promising_core::parse_program(
            "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)",
        )
        .expect("parses");
        let m = promising_core::Machine::new(std::sync::Arc::new(program), Config::arm());
        let legacy = explore_promise_first_legacy(&m, None);
        let fast = explore_promise_first(&m);
        assert_eq!(legacy.outcomes, fast.outcomes);
    }
}
