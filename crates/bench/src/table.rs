//! Minimal fixed-width table rendering for the experiment binaries.

use std::fmt::Write as _;
use std::time::Duration;

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(120))
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = writeln!(out, "({} columns, {} rows)", ncols, self.rows.len());
        out
    }
}

/// Human format for durations: seconds with two decimals, or "ooT".
pub fn fmt_duration(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.2}", d.as_secs_f64()),
        None => "ooT".to_string(),
    }
}

/// JSON format for an optional seconds cell: six decimals, or `null`
/// for a timeout ("ooT") — shared by every `--json` snapshot writer so
/// no binary ever emits a bare `NaN`/`inf` token.
pub fn json_secs(c: Option<f64>) -> String {
    match c {
        Some(secs) if secs.is_finite() => format!("{secs:.6}"),
        _ => "null".to_string(),
    }
}

/// Logical cores on this host. Every `--json` snapshot records this as
/// `"cores"`: timing cells — above all the per-worker-count ones — are
/// meaningless without knowing how much parallelism the host had.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How a snapshot's per-worker-count columns must be read on a host
/// with `cores` logical CPUs: real `"speedup"` curves need more than
/// one core; on a 1-CPU host the sweep only measures the scheduling
/// overhead of the work-stealing frontier, and labelling those numbers
/// "speedup" would be a lie.
pub fn worker_mode(cores: usize) -> &'static str {
    if cores > 1 {
        "speedup"
    } else {
        "overhead-only"
    }
}

/// Parse a `--worker-sweep 1,2,4,8` list (strictly positive counts).
pub fn parse_worker_list(list: &str) -> Vec<usize> {
    list.split(',')
        .map(|w| {
            let n: usize = w.trim().parse().expect("worker counts are integers");
            assert!(n > 0, "worker counts must be positive");
            n
        })
        .collect()
}

/// One measured cell of a `--worker-sweep` row: the same search run
/// with `workers` frontier workers. `secs` is `None` for a cell that
/// hit its budget ("ooT").
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// Worker count the cell ran with.
    pub workers: usize,
    /// Wall-clock seconds, `None` = over the timeout.
    pub secs: Option<f64>,
    /// States obtained by cross-worker steals (0 when `workers` == 1).
    pub steals: u64,
}

impl SweepCell {
    /// Speedup of this cell relative to the sweep's 1-worker cell —
    /// only defined when the host can actually run workers in parallel
    /// (`cores > 1`) and both cells completed. On a single-core host
    /// this returns `None` no matter what the clock says: the ratio
    /// would measure scheduler overhead, not scaling.
    pub fn speedup(&self, base_secs: Option<f64>, cores: usize) -> Option<f64> {
        if cores <= 1 {
            return None;
        }
        match (base_secs, self.secs) {
            (Some(b), Some(s)) => Some(b / s.max(1e-9)),
            _ => None,
        }
    }
}

/// Render the `"worker_sweep": [..]` JSON fragment for one row
/// (leading `, ` included; empty string for an empty sweep). Each cell
/// carries a `"mode"`-free local view — the snapshot-level `"cores"` +
/// `"worker_mode"` pair says how to read it — and a `"speedup"` key
/// that is only present when [`SweepCell::speedup`] is defined.
pub fn sweep_json(cells: &[SweepCell], cores: usize) -> String {
    if cells.is_empty() {
        return String::new();
    }
    let base = cells.iter().find(|c| c.workers == 1).and_then(|c| c.secs);
    let mut out = String::from(", \"worker_sweep\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"workers\": {}, \"secs\": {}, \"steals\": {}",
            if i > 0 { ", " } else { "" },
            c.workers,
            json_secs(c.secs),
            c.steals,
        );
        if let Some(s) = c.speedup(base, cores) {
            let _ = write!(out, ", \"speedup\": {s:.2}");
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Text-table rendering of one sweep cell: the timing, annotated with
/// the speedup ratio only when it is defined for this host.
pub fn sweep_cell_text(cell: &SweepCell, base_secs: Option<f64>, cores: usize) -> String {
    let t = fmt_duration(cell.secs.map(Duration::from_secs_f64));
    match cell.speedup(base_secs, cores) {
        Some(s) => format!("{t} ({s:.1}x)"),
        None => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Test", "Time"]);
        t.row(&["SLA-1".into(), "0.27".into()]);
        t.row(&["longer-name".into(), "9108.53".into()]);
        let s = t.render();
        assert!(s.contains("SLA-1"));
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn oot_formatting() {
        assert_eq!(fmt_duration(None), "ooT");
        assert_eq!(fmt_duration(Some(Duration::from_millis(1500))), "1.50");
    }

    #[test]
    fn worker_mode_refuses_speedup_on_one_core() {
        assert_eq!(worker_mode(1), "overhead-only");
        assert_eq!(worker_mode(2), "speedup");
        assert_eq!(worker_mode(64), "speedup");
    }

    #[test]
    fn parse_worker_list_accepts_sweeps() {
        assert_eq!(parse_worker_list("1,2,4,8"), vec![1, 2, 4, 8]);
        assert_eq!(parse_worker_list(" 3 "), vec![3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn parse_worker_list_rejects_zero() {
        parse_worker_list("1,0,4");
    }

    #[test]
    fn speedup_is_undefined_on_a_single_core_host() {
        let cell = SweepCell {
            workers: 4,
            secs: Some(0.5),
            steals: 12,
        };
        assert_eq!(cell.speedup(Some(1.0), 1), None, "1-CPU host: no speedup");
        assert_eq!(cell.speedup(Some(1.0), 8), Some(2.0));
        assert_eq!(cell.speedup(None, 8), None, "ooT baseline: no ratio");
    }

    #[test]
    fn sweep_json_marks_speedup_only_when_defined() {
        let cells = [
            SweepCell {
                workers: 1,
                secs: Some(1.0),
                steals: 0,
            },
            SweepCell {
                workers: 2,
                secs: Some(0.5),
                steals: 7,
            },
            SweepCell {
                workers: 4,
                secs: None,
                steals: 0,
            },
        ];
        let multi = sweep_json(&cells, 8);
        assert!(
            multi.contains("\"workers\": 2, \"secs\": 0.500000, \"steals\": 7, \"speedup\": 2.00")
        );
        assert!(multi.contains("\"workers\": 4, \"secs\": null, \"steals\": 0}"));
        let single = sweep_json(&cells, 1);
        assert!(
            !single.contains("speedup"),
            "a 1-core host must never claim a speedup: {single}"
        );
        assert_eq!(sweep_json(&[], 8), "", "empty sweep emits nothing");
    }

    #[test]
    fn sweep_cell_text_annotates_ratio() {
        let cell = SweepCell {
            workers: 2,
            secs: Some(0.5),
            steals: 0,
        };
        assert_eq!(sweep_cell_text(&cell, Some(1.0), 8), "0.50 (2.0x)");
        assert_eq!(sweep_cell_text(&cell, Some(1.0), 1), "0.50");
        let oot = SweepCell {
            workers: 2,
            secs: None,
            steals: 0,
        };
        assert_eq!(sweep_cell_text(&oot, Some(1.0), 8), "ooT");
    }
}
