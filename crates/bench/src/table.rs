//! Minimal fixed-width table rendering for the experiment binaries.

use std::fmt::Write as _;
use std::time::Duration;

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(120))
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = writeln!(out, "({} columns, {} rows)", ncols, self.rows.len());
        out
    }
}

/// Human format for durations: seconds with two decimals, or "ooT".
pub fn fmt_duration(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.2}", d.as_secs_f64()),
        None => "ooT".to_string(),
    }
}

/// JSON format for an optional seconds cell: six decimals, or `null`
/// for a timeout ("ooT") — shared by every `--json` snapshot writer so
/// no binary ever emits a bare `NaN`/`inf` token.
pub fn json_secs(c: Option<f64>) -> String {
    match c {
        Some(secs) if secs.is_finite() => format!("{secs:.6}"),
        _ => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Test", "Time"]);
        t.row(&["SLA-1".into(), "0.27".into()]);
        t.row(&["longer-name".into(), "9108.53".into()]);
        let s = t.render();
        assert!(s.contains("SLA-1"));
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn oot_formatting() {
        assert_eq!(fmt_duration(None), "ooT");
        assert_eq!(fmt_duration(Some(Duration::from_millis(1500))), "1.50");
    }
}
