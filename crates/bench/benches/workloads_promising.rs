//! B2: Promising exhaustive-search cost on small instances of each §8
//! workload family (the per-row micro version of Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use promising_core::{Arch, Machine};
use promising_explorer::explore_promise_first;
use promising_workloads::{by_spec, init_for};

fn bench_workloads(c: &mut Criterion) {
    for spec in [
        "SLA-2",
        "PCS-2-2",
        "PCM-1-1-1",
        "STC-100-010-000",
        "DQ-110-1-0",
        "QU-100-000-000",
    ] {
        let w = by_spec(spec).expect("spec parses");
        let init = init_for(&w);
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init);
        c.bench_function(&format!("promising/{spec}"), |b| {
            b.iter(|| explore_promise_first(&m))
        });
    }
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
