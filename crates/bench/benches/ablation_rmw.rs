//! B6 (ablation): single-instruction RMWs (ARMv8.1 LSE / RISC-V AMOs) vs
//! their LL/SC exclusive-retry-loop desugaring — the same workload, same
//! outcome set, explored with one-transition atomic updates vs
//! fuel-bounded loadx/storex loops. The gap is the retry-loop state-space
//! blow-up that first-class RMWs collapse.

use criterion::{criterion_group, criterion_main, Criterion};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use promising_workloads::{by_spec, init_for};

/// Extra loop fuel handed to the desugared build: room for one retry per
/// executed RMW on top of the workload's own spin bounds.
const LLSC_EXTRA_FUEL: u32 = 2;

fn bench_rmw_vs_llsc(c: &mut Criterion) {
    // promise-first: the production search. The desugared loops pay in
    // certification and phase-2 work rather than promise states.
    for spec in ["SLA-2", "TL-1", "STC-100-010-000"] {
        let w = by_spec(spec).expect("spec parses");
        let l = w.desugared(LLSC_EXTRA_FUEL);
        let init = init_for(&w);
        let mut group = c.benchmark_group(format!("{spec}-promise-first"));
        group.sample_size(10);
        group.bench_function("lse-rmw", |b| {
            let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
            b.iter(|| explore_promise_first(&m))
        });
        group.bench_function("llsc-desugared", |b| {
            let m = Machine::with_init(l.program.clone(), l.config(Arch::Arm), init.clone());
            b.iter(|| explore_promise_first(&m))
        });
        group.finish();
    }

    // naive full interleaving: the raw machine-state-space comparison.
    for spec in ["SLA-1", "TL-1"] {
        let w = by_spec(spec).expect("spec parses");
        let l = w.desugared(LLSC_EXTRA_FUEL);
        let init = init_for(&w);
        let mut group = c.benchmark_group(format!("{spec}-naive"));
        group.sample_size(10);
        group.bench_function("lse-rmw", |b| {
            let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
            b.iter(|| explore_naive(&m, CertMode::Online))
        });
        group.bench_function("llsc-desugared", |b| {
            let m = Machine::with_init(l.program.clone(), l.config(Arch::Arm), init.clone());
            b.iter(|| explore_naive(&m, CertMode::Online))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_rmw_vs_llsc);
criterion_main!(benches);
