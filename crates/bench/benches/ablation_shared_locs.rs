//! B4 (ablation): the §7 shared-location optimisation — the same workload
//! explored with all locations shared vs only the truly-shared set.

use criterion::{criterion_group, criterion_main, Criterion};
use promising_core::{Arch, Machine};
use promising_explorer::explore_promise_first;
use promising_workloads::{by_spec, init_for};

fn bench_shared_locs(c: &mut Criterion) {
    for spec in ["SLA-2", "STC-100-010-000", "DQ-100-1-0"] {
        let w = by_spec(spec).expect("spec parses");
        let init = init_for(&w);
        let mut group = c.benchmark_group(spec);
        group.sample_size(10);
        group.bench_function("shared-locs-declared", |b| {
            let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init.clone());
            b.iter(|| explore_promise_first(&m))
        });
        group.bench_function("all-shared", |b| {
            let m = Machine::with_init(
                w.program.clone(),
                w.config_unshared(Arch::Arm),
                init.clone(),
            );
            b.iter(|| explore_promise_first(&m))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_shared_locs);
criterion_main!(benches);
