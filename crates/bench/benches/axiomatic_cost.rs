//! B6: axiomatic candidate-enumeration cost growth (the herd-style
//! two-phase search the paper's §8 discusses) as thread count and event
//! count grow.

use criterion::{criterion_group, criterion_main, Criterion};
use promising_axiomatic::{enumerate_outcomes, AxConfig};
use promising_litmus::by_name;

fn bench_axiomatic(c: &mut Criterion) {
    for name in [
        "MP+po+po",
        "MP+dmb.sy+addr",
        "WRC+po+addr",
        "IRIW+addr+addr",
        "2+2W+po+po",
    ] {
        let t = by_name(name).expect("catalogue test");
        let mut ax = AxConfig::new(t.arch);
        ax.init = t.init.clone();
        c.bench_function(&format!("axiomatic/{name}"), |b| {
            b.iter(|| enumerate_outcomes(&t.program, &ax).expect("enumerates"))
        });
    }
}

criterion_group!(benches, bench_axiomatic);
criterion_main!(benches);
