//! B5: the cost of §B's `find_and_certify` — the inner loop of both the
//! machine-step semantics and promise enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use promising_core::{find_and_certify, Arch, Machine, TId};
use promising_litmus::by_name;
use promising_workloads::{by_spec, init_for};

fn bench_certification(c: &mut Criterion) {
    let t = by_name("LB+po+po").expect("catalogue test");
    let config = promising_core::Config::for_arch(t.arch).with_loop_fuel(8);
    let m = Machine::with_init(t.program.clone(), config, t.init.clone());
    c.bench_function("find_and_certify/LB-initial", |b| {
        b.iter(|| find_and_certify(&m, TId(0)))
    });

    let w = by_spec("SLA-2").expect("spec parses");
    let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init_for(&w));
    c.bench_function("find_and_certify/SLA-2-initial", |b| {
        b.iter(|| find_and_certify(&m, TId(0)))
    });
}

criterion_group!(benches, bench_certification);
criterion_main!(benches);
