//! B3 (ablation): the promise-first optimisation (Theorem 7.1) vs the
//! naive interleaving search on the same machine.

use criterion::{criterion_group, criterion_main, Criterion};
use promising_core::{Arch, Machine};
use promising_explorer::{explore_naive, explore_promise_first, CertMode};
use promising_litmus::by_name;
use promising_workloads::{by_spec, init_for};

fn bench_ablation(c: &mut Criterion) {
    // litmus scale
    for name in ["MP+dmb.sy+addr", "SB+dmb.sy+dmb.sy", "LB+po+po"] {
        let t = by_name(name).expect("catalogue test");
        let config = promising_core::Config::for_arch(t.arch).with_loop_fuel(8);
        let m = Machine::with_init(t.program.clone(), config, t.init.clone());
        let mut group = c.benchmark_group(format!("litmus/{name}"));
        group.sample_size(20);
        group.bench_function("promise-first", |b| b.iter(|| explore_promise_first(&m)));
        group.bench_function("naive", |b| b.iter(|| explore_naive(&m, CertMode::Online)));
        group.finish();
    }
    // workload scale
    for spec in ["SLA-1", "PCS-1-1"] {
        let w = by_spec(spec).expect("spec parses");
        let m = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init_for(&w));
        let mut group = c.benchmark_group(format!("workload/{spec}"));
        group.sample_size(10);
        group.bench_function("promise-first", |b| b.iter(|| explore_promise_first(&m)));
        group.bench_function("naive", |b| b.iter(|| explore_naive(&m, CertMode::Online)));
        group.finish();
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
