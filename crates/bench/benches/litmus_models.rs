//! B1: per-model cost on representative litmus tests — Promising
//! (promise-first) vs the Flat-lite baseline vs the axiomatic enumerator.

use criterion::{criterion_group, criterion_main, Criterion};
use promising_axiomatic::{enumerate_outcomes, AxConfig};
use promising_core::{Config, Machine};
use promising_explorer::explore_promise_first;
use promising_flat::{explore_flat, FlatMachine};
use promising_litmus::by_name;

fn bench_models(c: &mut Criterion) {
    for name in ["MP+dmb.sy+addr", "LB+data+data", "PPOCA", "IRIW+addr+addr"] {
        let test = by_name(name).expect("catalogue test");
        let config = Config::for_arch(test.arch).with_loop_fuel(8);
        let mut group = c.benchmark_group(name);
        group.sample_size(20);
        group.bench_function("promising", |b| {
            let m = Machine::with_init(test.program.clone(), config.clone(), test.init.clone());
            b.iter(|| explore_promise_first(&m))
        });
        group.bench_function("flat", |b| {
            let m = FlatMachine::with_init(test.program.clone(), config.clone(), test.init.clone());
            b.iter(|| explore_flat(&m))
        });
        group.bench_function("axiomatic", |b| {
            let mut ax = AxConfig::new(test.arch);
            ax.init = test.init.clone();
            b.iter(|| enumerate_outcomes(&test.program, &ax).expect("enumerates"))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
