//! The named litmus-test catalogue: the classic shapes from the
//! ARM/POWER relaxed-memory literature with their architectural
//! expectations, plus every worked example from the paper (§2, §4, §A, §B,
//! §C). These are the ground truth the three models are validated against.

use crate::format::{parse_lang_litmus, parse_litmus};
use crate::test::{LangTest, LitmusTest};

/// One catalogue entry: source plus the Flat-conservative flag.
struct Entry {
    src: &'static str,
    flat_conservative: bool,
}

const fn t(src: &'static str) -> Entry {
    Entry {
        src,
        flat_conservative: false,
    }
}

/// Entries whose shapes exercise the store-exclusive relaxations on which
/// Flat-lite is documented to be conservative.
const fn t_noflat(src: &'static str) -> Entry {
    Entry {
        src,
        flat_conservative: true,
    }
}

/// The whole named catalogue.
///
/// # Panics
///
/// Panics if a built-in test fails to parse (checked by unit tests).
pub fn catalogue() -> Vec<LitmusTest> {
    ENTRIES
        .iter()
        .map(|e| {
            let mut test = parse_litmus(e.src)
                .unwrap_or_else(|err| panic!("catalogue test failed to parse: {err}\n{}", e.src));
            test.flat_conservative = e.flat_conservative;
            test
        })
        .collect()
}

/// Catalogue restricted to one architecture.
pub fn catalogue_for(arch: promising_core::Arch) -> Vec<LitmusTest> {
    catalogue().into_iter().filter(|t| t.arch == arch).collect()
}

/// Look a test up by name.
pub fn by_name(name: &str) -> Option<LitmusTest> {
    catalogue().into_iter().find(|t| t.name == name)
}

const ENTRIES: &[Entry] = &[
    // ---------------- MP family (ARM) ----------------
    t("ARM MP+po+po\nstore(x, 1)\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+dmb.sy+po\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+po+addr\nstore(x, 1)\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+dmb.sy+addr\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+dmb.sy+dmb.sy\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\ndmb.sy\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+dmb.sy+dmb.ld\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\ndmb.ld\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+dmb.sy+dmb.st\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\ndmb.st\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+dmb.st+addr\nstore(x, 1)\ndmb.st\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+dmb.sy+ctrl\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nif (r1 == r1) {\nr2 = load(x)\n}\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+dmb.sy+ctrl-isb\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nif (r1 == r1) {\nisb\nr2 = load(x)\n}\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+rel+acq\nstore(x, 1)\nstore_rel(y, 1)\n---\nr1 = load_acq(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+rel+po\nstore(x, 1)\nstore_rel(y, 1)\n---\nr1 = load(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+po+acq\nstore(x, 1)\nstore(y, 1)\n---\nr1 = load_acq(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+rel+addr\nstore(x, 1)\nstore_rel(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM MP+rel+wacq\nstore(x, 1)\nstore_rel(y, 1)\n---\nr1 = load_wacq(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // ---------------- SB family ----------------
    t("ARM SB+po+po\nstore(x, 1)\nr1 = load(y)\n---\nstore(y, 1)\nr2 = load(x)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM SB+dmb.sy+dmb.sy\nstore(x, 1)\ndmb.sy\nr1 = load(y)\n---\nstore(y, 1)\ndmb.sy\nr2 = load(x)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM SB+dmb.sy+po\nstore(x, 1)\ndmb.sy\nr1 = load(y)\n---\nstore(y, 1)\nr2 = load(x)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect allowed"),
    // RCsc: the [RL]; po; [AQ] bob edge orders a strong release before a
    // program-order-later strong acquire, so SB with rel/acq pairs is
    // forbidden (unlike C11 release/acquire!).
    t("ARM SB+rel+acq\nstore_rel(x, 1)\nr1 = load_acq(y)\n---\nstore_rel(y, 1)\nr2 = load_acq(x)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    // ---------------- LB family ----------------
    t("ARM LB+po+po\nr1 = load(x)\nstore(y, 1)\n---\nr2 = load(y)\nstore(x, 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect allowed"),
    t("ARM LB+data+po\nr1 = load(x)\nstore(y, r1)\n---\nr2 = load(y)\nstore(x, 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect allowed"),
    t("ARM LB+data+data\nr1 = load(x)\nstore(y, r1)\n---\nr2 = load(y)\nstore(x, r2 - r2 + 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    t("ARM LB+addr+addr\nr1 = load(x)\nstore(y + (r1 - r1), 1)\n---\nr2 = load(y)\nstore(x + (r2 - r2), 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    t("ARM LB+ctrl+ctrl\nr1 = load(x)\nif (r1 == r1) {\nstore(y, 1)\n}\n---\nr2 = load(y)\nif (r2 == r2) {\nstore(x, 1)\n}\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    t("ARM LB+dmb.sy+dmb.sy\nr1 = load(x)\ndmb.sy\nstore(y, 1)\n---\nr2 = load(y)\ndmb.sy\nstore(x, 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    t("ARM LB+rel+rel\nr1 = load(x)\nstore_rel(y, 1)\n---\nr2 = load(y)\nstore_rel(x, 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    // ---------------- S and R ----------------
    t("ARM S+dmb.sy+po\nstore(x, 2)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nstore(x, 1)\nexists (P1:r1=1 /\\ x=2)\nexpect allowed"),
    t("ARM S+dmb.sy+data\nstore(x, 2)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nstore(x, r1 - r1 + 1)\nexists (P1:r1=1 /\\ x=2)\nexpect forbidden"),
    t("ARM S+dmb.sy+ctrl\nstore(x, 2)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nif (r1 == r1) {\nstore(x, 1)\n}\nexists (P1:r1=1 /\\ x=2)\nexpect forbidden"),
    t("ARM R+dmb.sy+dmb.sy\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nstore(y, 2)\ndmb.sy\nr1 = load(x)\nexists (y=2 /\\ P1:r1=0)\nexpect forbidden"),
    t("ARM R+dmb.sy+po\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nstore(y, 2)\nr1 = load(x)\nexists (y=2 /\\ P1:r1=0)\nexpect allowed"),
    // ---------------- 2+2W ----------------
    t("ARM 2+2W+po+po\nstore(x, 1)\nstore(y, 2)\n---\nstore(y, 1)\nstore(x, 2)\nexists (x=1 /\\ y=1)\nexpect allowed"),
    t("ARM 2+2W+dmb.sy+dmb.sy\nstore(x, 1)\ndmb.sy\nstore(y, 2)\n---\nstore(y, 1)\ndmb.sy\nstore(x, 2)\nexists (x=1 /\\ y=1)\nexpect forbidden"),
    // ---------------- coherence ----------------
    t("ARM CoRR\nstore(x, 1)\n---\nr1 = load(x)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM CoWW\nstore(x, 1)\nstore(x, 2)\nexists (x=1)\nexpect forbidden"),
    t("ARM CoWR\nstore(x, 1)\nr1 = load(x)\n---\nstore(x, 2)\nexists (P0:r1=0)\nexpect forbidden"),
    t("ARM CoRW1\nr1 = load(x)\nstore(x, 1)\nexists (P0:r1=1)\nexpect forbidden"),
    t("ARM CoRW2\nr1 = load(x)\nstore(x, 2)\n---\nstore(x, 1)\nexists (P0:r1=1 /\\ x=1)\nexpect forbidden"),
    // ---------------- multicopy atomicity (3-4 threads) ----------------
    t("ARM WRC+po+addr\nstore(x, 1)\n---\nr1 = load(x)\nstore(y, r1)\n---\nr2 = load(y)\nr3 = load(x + (r2 - r2))\nexists (P1:r1=1 /\\ P2:r2=1 /\\ P2:r3=0)\nexpect forbidden"),
    t("ARM WRC+po+po\nstore(x, 1)\n---\nr1 = load(x)\nstore(y, 1)\n---\nr2 = load(y)\nr3 = load(x)\nexists (P1:r1=1 /\\ P2:r2=1 /\\ P2:r3=0)\nexpect allowed"),
    t("ARM IRIW+addr+addr\nstore(x, 1)\n---\nstore(y, 1)\n---\nr1 = load(x)\nr2 = load(y + (r1 - r1))\n---\nr3 = load(y)\nr4 = load(x + (r3 - r3))\nexists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)\nexpect forbidden"),
    t("ARM IRIW+po+po\nstore(x, 1)\n---\nstore(y, 1)\n---\nr1 = load(x)\nr2 = load(y)\n---\nr3 = load(y)\nr4 = load(x)\nexists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)\nexpect allowed"),
    t("ARM ISA2+dmb.sy+addr+addr\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nstore(z, r1)\n---\nr2 = load(z)\nr3 = load(x + (r2 - r2))\nexists (P1:r1=1 /\\ P2:r2=1 /\\ P2:r3=0)\nexpect forbidden"),
    // ---------------- forwarding / speculation (§2) ----------------
    t("ARM PPOCA\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr0 = load(y)\nif (r0 == 1) {\nstore(z, 1)\nr1 = load(z)\nr2 = load(x + (r1 - r1))\n}\nexists (P1:r0=1 /\\ P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM PPOAA\nstore(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr0 = load(y)\nstore(z + (r0 - r0), 1)\nr1 = load(z)\nr2 = load(x + (r1 - r1))\nexists (P1:r0=1 /\\ P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // store forwarding example of §4.1
    t("ARM MP+dmb.sy+fwd-addr\nstore(x, 37)\ndmb.sy\nstore(y, 42)\n---\nr0 = load(y)\nstore(y, 51)\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r0=42 /\\ P1:r1=51 /\\ P1:r2=0)\nexpect allowed"),
    // ---------------- exclusives ----------------
    t("ARM LDX-STX-atomicity\nr1 = loadx(x)\nr2 = storex(x, 42)\n---\nstore(x, 37)\nstore(x, 51)\nr3 = load(x)\nexists (P0:r1=37 /\\ P0:r2=0 /\\ P1:r3=42)\nexpect forbidden"),
    t("ARM CAS-both-succeed-lost-update\nr1 = loadx(x)\nr2 = storex(x, r1 + 1)\n---\nr3 = loadx(x)\nr4 = storex(x, r3 + 1)\nexists (P0:r2=0 /\\ P1:r4=0 /\\ x=1)\nexpect forbidden"),
    t("ARM STX-unpaired-fails\nr2 = storex(x, 1)\nexists (P0:r2=0)\nexpect forbidden"),
    // §C.1: success-register dependency is NOT ordering on ARM
    t_noflat("ARM STX-succ-dep-reorder\nr1 = loadx(x)\nr2 = storex(x, r1 + 1)\nstore(p, 1 - r1 - r2)\n---\nr3 = load(p)\ndmb.sy\nr4 = load(x)\nexists (P1:r3=1 /\\ P1:r4=0)\nexpect allowed"),
    // ---------------- single-instruction RMWs (ARMv8.1 LSE) ----------------
    // CAS exclusivity (2+2W-style): two CASes expecting the initial 0
    // cannot both succeed — one of them must observe the other's write.
    t("ARM CAS-exclusivity\nr1 = cas(x, 0, 1)\n---\nr2 = cas(x, 0, 2)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    // fetch-add coherence: increments never overlap — both observing the
    // initial 0 would lose an update; the total is always 2.
    t("ARM AMO-add-coherence\nr1 = amo_add(x, 1)\n---\nr2 = amo_add(x, 1)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    t("ARM AMO-add-total\nr1 = amo_add(x, 1)\n---\nr2 = amo_add(x, 1)\nforall (x=2)\nexpect allowed"),
    // swap atomicity against an interposing writer (the LDX-STX-atomicity
    // shape with a single-instruction exchange).
    t("ARM SWP-atomicity\nr1 = amo_swap(x, 42)\n---\nstore(x, 37)\nstore(x, 51)\nr3 = load(x)\nexists (P0:r1=37 /\\ P1:r3=42)\nexpect forbidden"),
    // MP over a release CAS publish and an acquire RMW read: forbidden,
    // exactly like store-release/load-acquire.
    t("ARM MP+rel-cas+acq-amo\nstore(x, 1)\nr0 = cas_rel(y, 0, 1)\n---\nr1 = amo_add_acq(y, 0)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // …and the plain-RMW variant stays allowed (no ordering from the
    // atomic update itself on ARM).
    t("ARM MP+swp+amo\nstore(x, 1)\nr0 = amo_swap(y, 1)\n---\nr1 = amo_add(y, 0)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    // a failed CAS is just a read: no write appears, and MP stays weak
    // even when the reader's CAS fails with acquire semantics only on
    // the *write* side.
    t("ARM CAS-fail-is-read\n{ x=5 }\nr1 = cas(x, 0, 9)\nexists (P0:r1=5 /\\ x=5)\nexpect allowed"),
    // regression (PR 5): the read half of a *failed* CAS must retain the
    // RMW's acquire strength — the desugared reference is a loadx_acq
    // retry loop whose exit branch leaves the acquire read behind — so
    // an always-failing cas_acq reader forbids the MP stale read…
    t("ARM MP+rel+cas_acq-fail\nstore(x, 37)\nstore_rel(y, 42)\n---\nr1 = cas_acq(y, 7, 99)\nr2 = load(x)\nexists (P1:r1=42 /\\ P1:r2=0)\nexpect forbidden"),
    // …as does the weak-acquire (LDAPR/RCpc) variant…
    t("ARM MP+rel+cas_wacq-fail\nstore(x, 37)\nstore_rel(y, 42)\n---\nr1 = cas_wacq(y, 7, 99)\nr2 = load(x)\nexists (P1:r1=42 /\\ P1:r2=0)\nexpect forbidden"),
    // …while a plain failing CAS gives no ordering at all (and a
    // release-only CAS orders nothing on its read half either).
    t("ARM MP+rel+cas-fail\nstore(x, 37)\nstore_rel(y, 42)\n---\nr1 = cas(y, 7, 99)\nr2 = load(x)\nexists (P1:r1=42 /\\ P1:r2=0)\nexpect allowed"),
    t("ARM MP+rel+cas_rel-fail\nstore(x, 37)\nstore_rel(y, 42)\n---\nr1 = cas_rel(y, 7, 99)\nr2 = load(x)\nexists (P1:r1=42 /\\ P1:r2=0)\nexpect allowed"),
    // ---------------- rmw-acq-po-ld family (PR 9) ----------------
    // An acquire RMW orders po-later loads after its *read*, not its
    // *write* (the axiomatic rmw edge runs read→write — the wrong
    // direction to close an ob cycle), so SB with acquire exchanges
    // still admits both loads stale. The single-step flat RMW used to
    // forbid these; the bind/propagate split recovers them.
    t("ARM RMW-acq-ld+amo.acq+po\nr1 = amo_add_acq(x, 1)\nr2 = load(y)\n---\nr3 = amo_add_acq(y, 1)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("ARM RMW-acq-ld+amo.acq+addr\nr1 = amo_add_acq(x, 1)\nr2 = load(y + (r1 - r1))\n---\nr3 = amo_add_acq(y, 1)\nr4 = load(x + (r3 - r3))\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("ARM RMW-acq-ld+amo.wacq+po\nr1 = amo_add_wacq(x, 1)\nr2 = load(y)\n---\nr3 = amo_add_wacq(y, 1)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("ARM RMW-acq-ld+amo.wacq+addr\nr1 = amo_add_wacq(x, 1)\nr2 = load(y + (r1 - r1))\n---\nr3 = amo_add_wacq(y, 1)\nr4 = load(x + (r3 - r3))\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("ARM RMW-acq-ld+swp.acq+po\nr1 = amo_swap_acq(x, 1)\nr2 = load(y)\n---\nr3 = amo_swap_acq(y, 1)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("ARM RMW-acq-ld+cas.acq+po\nr1 = cas_acq(x, 0, 1)\nr2 = load(y)\n---\nr3 = cas_acq(y, 0, 1)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    // …a dmb.sy after the exchange restores SC (W→R over dmb.sy closes
    // the cycle), pinning that the split did not weaken fences…
    t("ARM RMW-acq-ld+amo.acq+dmb.sy\nr1 = amo_add_acq(x, 1)\ndmb.sy\nr2 = load(y)\n---\nr3 = amo_add_acq(y, 1)\ndmb.sy\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect forbidden"),
    // …and acq_rel exchanges with *acquire* po-later loads are RCsc-
    // forbidden ([RL]; po; [AQ] runs from the write half — the one
    // blocking condition the split must keep at full strength).
    t("ARM RMW-acq-ld+amo.acqrel+ld.acq\nr1 = amo_add_acq_rel(x, 1)\nr2 = load_acq(y)\n---\nr3 = amo_add_acq_rel(y, 1)\nr4 = load_acq(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect forbidden"),
    // rmw_ready audit regressions (PR 9): an acquire RMW read orders
    // po-later *stores* after the read half only, so the write halves
    // can land after the observer's stale read…
    t("ARM RMW-audit+amo.acq+str\nr1 = amo_add_acq(x, 1)\nstore(y, 1)\n---\nr2 = load(y)\nr3 = load(x + (r2 - r2))\nexists (P1:r2=1 /\\ P1:r3=0)\nexpect allowed"),
    t("ARM RMW-audit+amo+str\nr1 = amo_add(x, 1)\nstore(y, 1)\n---\nr2 = load(y)\nr3 = load(x + (r2 - r2))\nexists (P1:r2=1 /\\ P1:r3=0)\nexpect allowed"),
    // …while a CAS's compare guard is a ctrl from the read into vCAP on
    // both architectures: LB through a successful CAS stays forbidden.
    t("ARM RMW-audit+cas.ctrl+data\nr1 = cas(x, 1, 2)\nstore(y, 1)\n---\nr2 = load(y)\nstore(x, r2 - r2 + 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    // ---------------- RISC-V ----------------
    t("RISCV MP+fence.rw.rw+fence.rw.rw\nstore(x, 1)\nfence(rw, rw)\nstore(y, 1)\n---\nr1 = load(y)\nfence(rw, rw)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV MP+fence.w.w+addr\nstore(x, 1)\nfence(w, w)\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV MP+fence.rw.rw+fence.r.rw\nstore(x, 1)\nfence(rw, rw)\nstore(y, 1)\n---\nr1 = load(y)\nfence(r, rw)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV SB+fence.tso+fence.tso\nstore(x, 1)\nfence.tso\nr1 = load(y)\n---\nstore(y, 1)\nfence.tso\nr2 = load(x)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect allowed"),
    t("RISCV SB+fence.w.r+fence.w.r\nstore(x, 1)\nfence(w, r)\nr1 = load(y)\n---\nstore(y, 1)\nfence(w, r)\nr2 = load(x)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV MP+fence.tso+addr\nstore(x, 1)\nfence.tso\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x + (r1 - r1))\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV LB+data+data\nr1 = load(x)\nstore(y, r1)\n---\nr2 = load(y)\nstore(x, r2 - r2 + 1)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    t("RISCV MP+rel+acq\nstore(x, 1)\nstore_rel(y, 1)\n---\nr1 = load_acq(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV MP+wrel+acq\nstore(x, 1)\nstore_wrel(y, 1)\n---\nr1 = load_acq(y)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // RISC-V: success-register dependency IS ordering (ρ12)
    t_noflat("RISCV STX-succ-dep-order\nr1 = loadx(x)\nr2 = storex(x, r1 + 1)\nstore(p, 1 - r1 - r2)\n---\nr3 = load(p)\nfence(rw, rw)\nr4 = load(x)\nexists (P1:r3=1 /\\ P1:r4=0)\nexpect forbidden"),
    t("RISCV CoRR\nstore(x, 1)\n---\nr1 = load(x)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // ---------------- single-instruction RMWs (RISC-V AMOs) ----------------
    t("RISCV AMO-add-coherence\nr1 = amo_add(x, 1)\n---\nr2 = amo_add(x, 1)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV CAS-exclusivity\nr1 = cas(x, 0, 1)\n---\nr2 = cas(x, 0, 2)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    // MP over amoswap.rl / amoadd.aq: forbidden, the RVWMO analogue of
    // the rel/acq pair.
    t("RISCV MP+swp.rel+amo.acq\nstore(x, 1)\nr0 = amo_swap_rel(y, 1)\n---\nr1 = amo_add_acq(y, 0)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // plain AMOs give no MP ordering on the read side…
    t("RISCV MP+swp.rel+amo\nstore(x, 1)\nr0 = amo_swap_rel(y, 1)\n---\nr1 = amo_add(y, 0)\nr2 = load(x)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    // regression (PR 5): a failed aq-CAS still reads with acquire
    // strength (lr.aq retry-loop reference) — and a plain one does not.
    t("RISCV MP+rel+cas_acq-fail\nstore(x, 37)\nstore_rel(y, 42)\n---\nr1 = cas_acq(y, 7, 99)\nr2 = load(x)\nexists (P1:r1=42 /\\ P1:r2=0)\nexpect forbidden"),
    t("RISCV MP+rel+cas-fail\nstore(x, 37)\nstore_rel(y, 42)\n---\nr1 = cas(y, 7, 99)\nr2 = load(x)\nexists (P1:r1=42 /\\ P1:r2=0)\nexpect allowed"),
    // ---------------- rmw-acq-po-ld family (PR 9, RVWMO) ----------------
    // Same shape as the ARM family: the aq annotation orders po-later
    // loads after the AMO's *read*, so SB with aq-exchanges admits both
    // loads stale on RISC-V too (ρ12 concerns po-later *stores* only).
    t("RISCV RMW-acq-ld+amo.acq+po\nr1 = amo_add_acq(x, 1)\nr2 = load(y)\n---\nr3 = amo_add_acq(y, 1)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("RISCV RMW-acq-ld+amo.acq+addr\nr1 = amo_add_acq(x, 1)\nr2 = load(y + (r1 - r1))\n---\nr3 = amo_add_acq(y, 1)\nr4 = load(x + (r3 - r3))\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("RISCV RMW-acq-ld+amo.wacq+po\nr1 = amo_add_wacq(x, 1)\nr2 = load(y)\n---\nr3 = amo_add_wacq(y, 1)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    t("RISCV RMW-acq-ld+amo.wacq+addr\nr1 = amo_add_wacq(x, 1)\nr2 = load(y + (r1 - r1))\n---\nr3 = amo_add_wacq(y, 1)\nr4 = load(x + (r3 - r3))\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect allowed"),
    // full fences after the exchanges restore SC (anti-rot control).
    t("RISCV RMW-acq-ld+amo.acq+fence.rw.rw\nr1 = amo_add_acq(x, 1)\nfence(rw, rw)\nr2 = load(y)\n---\nr3 = amo_add_acq(y, 1)\nfence(rw, rw)\nr4 = load(x)\nexists (P0:r2=0 /\\ P1:r4=0)\nexpect forbidden"),
    // rmw_ready audit regression (PR 9): ρ12 orders po-later stores
    // after the RMW's *write* half on RISC-V (the desugared sc's
    // success register feeds the loop exit), so the ARM-allowed
    // RMW-audit+amo+str shape is forbidden here.
    t("RISCV RMW-audit+amo+str\nr1 = amo_add(x, 1)\nstore(y, 1)\n---\nr2 = load(y)\nr3 = load(x + (r2 - r2))\nexists (P1:r2=1 /\\ P1:r3=0)\nexpect forbidden"),
];

/// The *language-level* catalogue: the classics written once in the C11
/// surface syntax, with the expectations their **compiled** programs
/// have on *both* architectures (the conformance battery asserts the
/// ARM- and RISC-V-compiled outcome sets are identical, so one
/// expectation covers both). Note two places where compiled-code
/// verdicts differ from the weakest C11 reading:
///
/// * `IRIW+acq`/`IRIW+sc` are **forbidden** — C11 allows IRIW+acq (it
///   is weaker than SC), but both target architectures are multicopy
///   atomic, so the compiled programs forbid it;
/// * `2+2W+rel` is **forbidden** — both schemes order the release
///   stores (`stlr` after `vwOld` / `fence rw,w`), although C11 itself
///   allows the weak outcome.
pub fn lang_catalogue() -> Vec<LangTest> {
    LANG_ENTRIES
        .iter()
        .map(|src| {
            parse_lang_litmus(src)
                .unwrap_or_else(|err| panic!("lang catalogue test failed to parse: {err}\n{src}"))
        })
        .collect()
}

/// Look a language-level test up by name.
pub fn lang_by_name(name: &str) -> Option<LangTest> {
    lang_catalogue().into_iter().find(|t| t.name == name)
}

/// Join a `LANG` header onto a body (keeps the entry list readable).
macro_rules! t_lang {
    ($name:literal, $body:literal) => {
        concat!("LANG ", $name, "\n", $body)
    };
}

const LANG_ENTRIES: &[&str] = &[
    // ---------------- SB (store buffering) ----------------
    t_lang!("SB+rlx", "store(x, 1, rlx)\nr1 = load(y, rlx)\n---\nstore(y, 1, rlx)\nr2 = load(x, rlx)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect allowed"),
    t_lang!("SB+sc", "store(x, 1, sc)\nr1 = load(y, sc)\n---\nstore(y, 1, sc)\nr2 = load(x, sc)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    // C11 release/acquire gives SB no ordering: the ARM scheme compiles
    // acq loads to LDAPR (RCpc), so — unlike hardware SB+rel+acq with
    // LDAR, which the hw catalogue marks forbidden — the weak outcome
    // survives compilation on both architectures.
    t_lang!("SB+rel+acq", "store(x, 1, rel)\nr1 = load(y, acq)\n---\nstore(y, 1, rel)\nr2 = load(x, acq)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect allowed"),
    t_lang!("SB+fence.sc", "store(x, 1, rlx)\nfence(sc)\nr1 = load(y, rlx)\n---\nstore(y, 1, rlx)\nfence(sc)\nr2 = load(x, rlx)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    // ---------------- MP (message passing) ----------------
    t_lang!("MP+rlx", "store(x, 1, rlx)\nstore(y, 1, rlx)\n---\nr1 = load(y, rlx)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t_lang!("MP+rel+acq", "store(x, 1, rlx)\nstore(y, 1, rel)\n---\nr1 = load(y, acq)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t_lang!("MP+sc", "store(x, 1, sc)\nstore(y, 1, sc)\n---\nr1 = load(y, sc)\nr2 = load(x, sc)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t_lang!("MP+rel+rlx", "store(x, 1, rlx)\nstore(y, 1, rel)\n---\nr1 = load(y, rlx)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t_lang!("MP+rlx+acq", "store(x, 1, rlx)\nstore(y, 1, rlx)\n---\nr1 = load(y, acq)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t_lang!("MP+fence.rel+fence.acq", "store(x, 1, rlx)\nfence(rel)\nstore(y, 1, rlx)\n---\nr1 = load(y, rlx)\nfence(acq)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // ---------------- LB (load buffering) ----------------
    t_lang!("LB+rlx", "r1 = load(x, rlx)\nstore(y, 1, rlx)\n---\nr2 = load(y, rlx)\nstore(x, 1, rlx)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect allowed"),
    t_lang!("LB+data", "r1 = load(x, rlx)\nstore(y, r1, rlx)\n---\nr2 = load(y, rlx)\nstore(x, r2 - r2 + 1, rlx)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    t_lang!("LB+acq+rel", "r1 = load(x, acq)\nstore(y, 1, rel)\n---\nr2 = load(y, acq)\nstore(x, 1, rel)\nexists (P0:r1=1 /\\ P1:r2=1)\nexpect forbidden"),
    // ---------------- 2+2W ----------------
    t_lang!("2+2W+rlx", "store(x, 1, rlx)\nstore(y, 2, rlx)\n---\nstore(y, 1, rlx)\nstore(x, 2, rlx)\nexists (x=1 /\\ y=1)\nexpect allowed"),
    t_lang!("2+2W+rel", "store(x, 1, rel)\nstore(y, 2, rel)\n---\nstore(y, 1, rel)\nstore(x, 2, rel)\nexists (x=1 /\\ y=1)\nexpect forbidden"),
    // ---------------- coherence ----------------
    t_lang!("CoRR+rlx", "store(x, 1, rlx)\n---\nr1 = load(x, rlx)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    // ---------------- IRIW (multicopy atomicity) ----------------
    t_lang!("IRIW+rlx", "store(x, 1, rlx)\n---\nstore(y, 1, rlx)\n---\nr1 = load(x, rlx)\nr2 = load(y, rlx)\n---\nr3 = load(y, rlx)\nr4 = load(x, rlx)\nexists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)\nexpect allowed"),
    t_lang!("IRIW+acq", "store(x, 1, rlx)\n---\nstore(y, 1, rlx)\n---\nr1 = load(x, acq)\nr2 = load(y, acq)\n---\nr3 = load(y, acq)\nr4 = load(x, acq)\nexists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)\nexpect forbidden"),
    t_lang!("IRIW+sc", "store(x, 1, sc)\n---\nstore(y, 1, sc)\n---\nr1 = load(x, sc)\nr2 = load(y, sc)\n---\nr3 = load(y, sc)\nr4 = load(x, sc)\nexists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)\nexpect forbidden"),
    // ---------------- RMWs ----------------
    t_lang!("CAS-exclusivity+rlx", "r1 = cas(x, 0, 1, rlx)\n---\nr2 = cas(x, 0, 2, rlx)\nexists (P0:r1=0 /\\ P1:r2=0)\nexpect forbidden"),
    t_lang!("FetchAdd-total", "r1 = fetch_add(x, 1, rlx)\n---\nr2 = fetch_add(x, 1, rlx)\nforall (x=2)\nexpect allowed"),
    t_lang!("MP+cas.rel+amo.acq", "store(x, 1, rlx)\nr0 = cas(y, 0, 1, rel)\n---\nr1 = fetch_add(y, 0, acq)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden"),
    t_lang!("MP+swap.rlx+amo.rlx", "store(x, 1, rlx)\nr0 = swap(y, 1, rlx)\n---\nr1 = fetch_add(y, 0, rlx)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect allowed"),
    t_lang!("CAS-fail-is-read", "{ x=5 }\nr1 = cas(x, 0, 9, acq_rel)\nexists (P0:r1=5 /\\ x=5)\nexpect allowed"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::Arch;

    #[test]
    fn catalogue_parses_and_has_unique_names() {
        let all = catalogue();
        assert!(all.len() >= 50, "catalogue has {} tests", all.len());
        // names are unique per architecture (the same shape may exist for
        // both ARM and RISC-V)
        let mut names: Vec<(Arch, &str)> = all.iter().map(|t| (t.arch, t.name.as_str())).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate test names");
    }

    #[test]
    fn catalogue_for_filters_by_arch() {
        let arm = catalogue_for(Arch::Arm);
        let riscv = catalogue_for(Arch::RiscV);
        assert!(!arm.is_empty() && !riscv.is_empty());
        assert!(arm.iter().all(|t| t.arch == Arch::Arm));
        assert!(riscv.iter().all(|t| t.arch == Arch::RiscV));
    }

    #[test]
    fn by_name_finds_tests() {
        assert!(by_name("MP+dmb.sy+addr").is_some());
        assert!(by_name("no-such-test").is_none());
    }

    #[test]
    fn every_test_has_an_expectation() {
        assert!(catalogue().iter().all(|t| t.expect.is_some()));
    }

    #[test]
    fn lang_catalogue_parses_with_unique_names_and_expectations() {
        let all = lang_catalogue();
        assert!(all.len() >= 20, "lang catalogue has {} tests", all.len());
        let mut names: Vec<&str> = all.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate lang test names");
        assert!(all.iter().all(|t| t.expect.is_some()));
    }

    #[test]
    fn lang_by_name_finds_tests_and_they_compile_to_both_architectures() {
        let t = lang_by_name("SB+sc").expect("catalogue test");
        for arch in [Arch::Arm, Arch::RiscV] {
            let compiled = t.compile(arch);
            assert_eq!(compiled.arch, arch);
            assert!(compiled.lang.is_some());
        }
        // the RISC-V sc lowering brackets loads with fences
        assert!(
            t.compile(Arch::RiscV).program.instruction_count()
                > t.compile(Arch::Arm).program.instruction_count()
        );
        assert!(lang_by_name("no-such-test").is_none());
    }
}
