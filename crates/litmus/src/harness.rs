//! Run a litmus test under any of the three models and compare outcome
//! sets — the executable counterpart of the paper's Theorem 6.1 and of its
//! §7 validation against herd.

use crate::test::{LangTest, LitmusTest};
use promising_axiomatic::{AxConfig, AxError};
use promising_core::{Arch, Config, Machine, Outcome};
use promising_explorer::{
    explore_naive_budget, explore_promise_first_budget, panic_message, CertMode, Engine,
    NaiveModel, PromiseFirstModel, SearchBudget, StopReason,
};
use promising_flat::{explore_flat_budget, FlatMachine, FlatModel};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Which model to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelKind {
    /// Promising-ARM/RISC-V, promise-first search (the paper's tool).
    Promising,
    /// Promising-ARM/RISC-V, naive full-interleaving search.
    PromisingNaive,
    /// The unified axiomatic model (herd-analogue).
    Axiomatic,
    /// The Flat-lite baseline.
    Flat,
}

impl ModelKind {
    /// All four models.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Promising,
        ModelKind::PromisingNaive,
        ModelKind::Axiomatic,
        ModelKind::Flat,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Promising => "promising",
            ModelKind::PromisingNaive => "promising-naive",
            ModelKind::Axiomatic => "axiomatic",
            ModelKind::Flat => "flat",
        }
    }

    /// Parse a [`ModelKind::name`] back (CLI flags, cache files).
    pub fn parse(s: &str) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Result of running one model on one test.
#[derive(Clone, Debug)]
pub struct ModelRun {
    /// The model.
    pub kind: ModelKind,
    /// Its outcome set.
    pub outcomes: BTreeSet<Outcome>,
    /// Wall-clock time.
    pub duration: Duration,
    /// States visited (0 for the axiomatic model; it counts candidates).
    pub states: u64,
    /// Why the search stopped ([`StopReason::Completed`] unless a budget
    /// bound fired). Truncated runs carry a *lower bound* of the outcome
    /// set, so `outcomes` can only be trusted one-sidedly.
    pub stop: StopReason,
}

/// Errors from running a model.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The axiomatic enumeration hit a resource cap.
    Axiomatic(AxError),
    /// The model has no sampling scheduler (axiomatic enumeration is not
    /// an operational transition system).
    SamplingUnsupported(ModelKind),
    /// The exploration panicked — a model bug, caught by
    /// [`run_model_isolated`] so one bad test cannot kill a campaign.
    Panicked {
        /// The model that panicked.
        kind: ModelKind,
        /// The panic payload (message), best-effort rendered.
        payload: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Axiomatic(e) => write!(f, "axiomatic enumeration failed: {e}"),
            RunError::SamplingUnsupported(k) => {
                write!(f, "model {} does not support sampling", k.name())
            }
            RunError::Panicked { kind, payload } => {
                write!(f, "model {} panicked: {payload}", kind.name())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<AxError> for RunError {
    fn from(e: AxError) -> RunError {
        RunError::Axiomatic(e)
    }
}

/// Default loop bound used when the test does not override it.
pub const DEFAULT_FUEL: u32 = 16;

/// Run `test` under `kind`.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn run_model(test: &LitmusTest, kind: ModelKind) -> Result<ModelRun, RunError> {
    run_model_with(test, kind, |c| c)
}

/// Run `test` under `kind` with a configuration tweak (e.g.
/// `|c| c.with_por(false)` for the POR-on/POR-off agreement sweeps, or a
/// worker-count override). The axiomatic model has no operational
/// configuration; the tweak only affects the three operational models.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn run_model_with(
    test: &LitmusTest,
    kind: ModelKind,
    tweak: impl Fn(Config) -> Config,
) -> Result<ModelRun, RunError> {
    run_model_budgeted_with(test, kind, SearchBudget::UNBOUNDED, tweak)
}

/// Run `test` under `kind` with a [`SearchBudget`] governing the search.
/// A tripped bound is reported in [`ModelRun::stop`], not as an error:
/// the outcome set found so far is still a sound lower bound. The
/// axiomatic model enumerates candidates (no frontier), so its runs
/// ignore the budget and always report [`StopReason::Completed`] or an
/// [`RunError::Axiomatic`] resource error.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn run_model_budgeted(
    test: &LitmusTest,
    kind: ModelKind,
    budget: SearchBudget,
) -> Result<ModelRun, RunError> {
    run_model_budgeted_with(test, kind, budget, |c| c)
}

/// [`run_model_budgeted`] with a configuration tweak.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn run_model_budgeted_with(
    test: &LitmusTest,
    kind: ModelKind,
    budget: SearchBudget,
    tweak: impl Fn(Config) -> Config,
) -> Result<ModelRun, RunError> {
    let fuel = test.loop_fuel.unwrap_or(DEFAULT_FUEL);
    let config = tweak(Config::for_arch(test.arch).with_loop_fuel(fuel));
    let start = Instant::now();
    let (outcomes, states, stop) = match kind {
        ModelKind::Promising => {
            let m = Machine::with_init(test.program.clone(), config, test.init.clone());
            let e = explore_promise_first_budget(&m, budget);
            (e.outcomes, e.stats.states, e.stats.stop)
        }
        ModelKind::PromisingNaive => {
            let m = Machine::with_init(test.program.clone(), config, test.init.clone());
            let e = explore_naive_budget(&m, CertMode::Online, budget);
            (e.outcomes, e.stats.states, e.stats.stop)
        }
        ModelKind::Axiomatic => {
            let mut ax = AxConfig::new(test.arch);
            ax.loop_fuel = fuel;
            ax.init = test.init.clone();
            let r = promising_axiomatic::enumerate_outcomes(&test.program, &ax)?;
            (r.outcomes, r.stats.candidates, StopReason::Completed)
        }
        ModelKind::Flat => {
            let m = FlatMachine::with_init(test.program.clone(), config, test.init.clone());
            let e = explore_flat_budget(&m, budget);
            (e.outcomes, e.stats.states, e.stats.stop)
        }
    };
    Ok(ModelRun {
        kind,
        outcomes,
        duration: start.elapsed(),
        states,
        stop,
    })
}

/// Run `test` under `kind` inside a panic-isolation boundary: a model
/// bug (collision assert, certification invariant, arithmetic overflow)
/// becomes an [`RunError::Panicked`] carrying the payload instead of
/// unwinding through the caller — one bad test cannot kill a campaign.
///
/// The exploration engine's `AbortOnPanic` guard keeps its worker pool
/// and shared locks consistent on unwind, so catching here is safe: no
/// engine state outlives the call.
///
/// # Errors
///
/// Returns [`RunError::Panicked`] if the exploration panicked, or any
/// other [`RunError`] the underlying run reports.
pub fn run_model_isolated(
    test: &LitmusTest,
    kind: ModelKind,
    budget: SearchBudget,
) -> Result<ModelRun, RunError> {
    catch_unwind(AssertUnwindSafe(|| run_model_budgeted(test, kind, budget))).unwrap_or_else(
        |payload| {
            Err(RunError::Panicked {
                kind,
                payload: panic_message(payload.as_ref()),
            })
        },
    )
}

/// Run `test` under `kind` with the sampling scheduler: `n_traces`
/// seeded random walks ([`Engine::sample`]). The outcome set is a
/// deterministic (for fixed `seed`) sound under-approximation of
/// [`run_model`]'s.
///
/// # Errors
///
/// Returns [`RunError::SamplingUnsupported`] for the axiomatic model,
/// which has no operational transition system to walk.
pub fn run_model_sampled(
    test: &LitmusTest,
    kind: ModelKind,
    n_traces: u64,
    seed: u64,
) -> Result<ModelRun, RunError> {
    run_model_sampled_budgeted(test, kind, n_traces, seed, SearchBudget::UNBOUNDED)
}

/// [`run_model_sampled`] under a [`SearchBudget`] — the degradation
/// ladder's last rung: even sampling is bounded, so a pathological test
/// cannot stall a campaign. A tripped bound is reported in
/// [`ModelRun::stop`] (budget-truncated sampling runs lose per-seed
/// determinism — see [`Engine::sample`]).
///
/// # Errors
///
/// Returns [`RunError::SamplingUnsupported`] for the axiomatic model,
/// which has no operational transition system to walk.
pub fn run_model_sampled_budgeted(
    test: &LitmusTest,
    kind: ModelKind,
    n_traces: u64,
    seed: u64,
    budget: SearchBudget,
) -> Result<ModelRun, RunError> {
    let fuel = test.loop_fuel.unwrap_or(DEFAULT_FUEL);
    let config = Config::for_arch(test.arch).with_loop_fuel(fuel);
    let start = Instant::now();
    let (outcomes, states, stop) = match kind {
        ModelKind::Promising => {
            let m = Machine::with_init(test.program.clone(), config, test.init.clone());
            let e = Engine::new(PromiseFirstModel::new(&m))
                .with_budget(budget)
                .sample(n_traces, seed);
            (e.outcomes, e.stats.states, e.stats.stop)
        }
        ModelKind::PromisingNaive => {
            let m = Machine::with_init(test.program.clone(), config, test.init.clone());
            let e = Engine::new(NaiveModel::new(&m, CertMode::Online))
                .with_budget(budget)
                .sample(n_traces, seed);
            (e.outcomes, e.stats.states, e.stats.stop)
        }
        ModelKind::Axiomatic => return Err(RunError::SamplingUnsupported(kind)),
        ModelKind::Flat => {
            let m = FlatMachine::with_init(test.program.clone(), config, test.init.clone());
            let e = Engine::new(FlatModel::new(&m))
                .with_budget(budget)
                .sample(n_traces, seed);
            (e.outcomes, e.stats.states, e.stats.stop)
        }
    };
    Ok(ModelRun {
        kind,
        outcomes,
        duration: start.elapsed(),
        states,
        stop,
    })
}

/// Result of a cross-model agreement check.
#[derive(Clone, Debug)]
pub struct Agreement {
    /// The test name.
    pub test: String,
    /// Individual runs.
    pub runs: Vec<ModelRun>,
    /// Whether every pair of runs produced the same outcome set.
    pub agree: bool,
    /// Human-readable description of the first mismatch, if any.
    pub mismatch: Option<String>,
}

/// Run `test` under all `kinds` and compare outcome sets. Tests flagged
/// [`LitmusTest::flat_conservative`] automatically drop the Flat model.
///
/// # Errors
///
/// Returns a [`RunError`] if some model hits a resource cap.
pub fn check_agreement(test: &LitmusTest, kinds: &[ModelKind]) -> Result<Agreement, RunError> {
    let mut runs = Vec::new();
    for &k in kinds {
        if test.flat_conservative && k == ModelKind::Flat {
            continue;
        }
        runs.push(run_model(test, k)?);
    }
    let mismatch = first_mismatch(&test.name, &runs, |r| r, |r| r.kind.name().to_string());
    Ok(Agreement {
        test: test.name.clone(),
        agree: mismatch.is_none(),
        runs,
        mismatch,
    })
}

/// Find the first adjacent pair of runs with differing outcome sets (by
/// transitivity, none ⇔ all equal) and render a diff naming both runs
/// via `label` and showing up to three outcomes unique to each side.
fn first_mismatch<R>(
    test: &str,
    runs: &[R],
    run_of: impl Fn(&R) -> &ModelRun,
    label: impl Fn(&R) -> String,
) -> Option<String> {
    for pair in runs.windows(2) {
        let (a, b) = (run_of(&pair[0]), run_of(&pair[1]));
        if a.outcomes == b.outcomes {
            continue;
        }
        let diff = |x: &ModelRun, y: &ModelRun| {
            x.outcomes
                .difference(&y.outcomes)
                .take(3)
                .map(Outcome::to_string)
                .collect::<Vec<_>>()
                .join(" | ")
        };
        return Some(format!(
            "{test}: {la} vs {lb}: only-{la}: [{}] only-{lb}: [{}]",
            diff(a, b),
            diff(b, a),
            la = label(&pair[0]),
            lb = label(&pair[1]),
        ));
    }
    None
}

/// Verdict of a single-model run against the test's condition/expectation.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Whether the condition holds of the outcome set.
    pub holds: bool,
    /// Whether that matches the recorded expectation (if any).
    pub matches_expectation: Option<bool>,
    /// The underlying run.
    pub run: ModelRun,
}

/// Evaluate the test's condition under one model.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn evaluate(test: &LitmusTest, kind: ModelKind) -> Result<Verdict, RunError> {
    let run = run_model(test, kind)?;
    let (holds, matches_expectation) = test.verdict(&run.outcomes);
    Ok(Verdict {
        holds,
        matches_expectation,
        run,
    })
}

/// Run a *language-level* test under `kind`, compiled for `arch` — the
/// write-once/run-anywhere entry point: the surface program lowers
/// through [`LangTest::compile`] and runs exactly like a hardware test.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn run_lang_model(test: &LangTest, arch: Arch, kind: ModelKind) -> Result<ModelRun, RunError> {
    run_model(&test.compile(arch), kind)
}

/// Evaluate a language-level test's condition under one model on `arch`.
///
/// # Errors
///
/// Returns a [`RunError`] if the model hits a resource cap.
pub fn evaluate_lang(test: &LangTest, arch: Arch, kind: ModelKind) -> Result<Verdict, RunError> {
    evaluate(&test.compile(arch), kind)
}

/// Result of a cross-architecture conformance check on a language-level
/// test: every `(architecture, model)` pair must produce the same
/// outcome set — cross-model agreement is the Theorem 6.1/7.1 check on
/// each compiled program, cross-architecture agreement is the
/// compilation-scheme equivalence the corpus is designed to exhibit.
#[derive(Clone, Debug)]
pub struct LangConformance {
    /// The test name.
    pub test: String,
    /// Individual runs, tagged with the architecture they compiled to.
    pub runs: Vec<(Arch, ModelRun)>,
    /// Whether every pair of runs produced the same outcome set.
    pub agree: bool,
    /// Human-readable description of the first mismatch, if any.
    pub mismatch: Option<String>,
}

/// Compile `test` for both architectures and run it under all `kinds`,
/// comparing every outcome set.
///
/// # Errors
///
/// Returns a [`RunError`] if some model hits a resource cap.
pub fn check_lang_conformance(
    test: &LangTest,
    kinds: &[ModelKind],
) -> Result<LangConformance, RunError> {
    let mut runs: Vec<(Arch, ModelRun)> = Vec::new();
    for arch in [Arch::Arm, Arch::RiscV] {
        let compiled = test.compile(arch);
        for &k in kinds {
            runs.push((arch, run_model(&compiled, k)?));
        }
    }
    let mismatch = first_mismatch(
        &test.name,
        &runs,
        |(_, r)| r,
        |(arch, r)| format!("{}/{}", arch.name(), r.kind.name()),
    );
    Ok(LangConformance {
        test: test.name.clone(),
        agree: mismatch.is_none(),
        runs,
        mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_litmus;

    const MP_ADDR: &str = "\
ARM MP+dmb.sy+addr
store(x, 1)
dmb.sy
store(y, 1)
---
r1 = load(y)
r2 = load(x + (r1 - r1))
exists (P1:r1=1 /\\ P1:r2=0)
expect forbidden
";

    #[test]
    fn all_four_models_agree_on_mp_addr() {
        let test = parse_litmus(MP_ADDR).unwrap();
        let agreement = check_agreement(&test, &ModelKind::ALL).unwrap();
        assert!(agreement.agree, "{:?}", agreement.mismatch);
        assert_eq!(agreement.runs.len(), 4);
    }

    #[test]
    fn verdict_matches_expectation() {
        let test = parse_litmus(MP_ADDR).unwrap();
        let v = evaluate(&test, ModelKind::Promising).unwrap();
        assert!(!v.holds);
        assert_eq!(v.matches_expectation, Some(true));
    }

    #[test]
    fn sampled_runs_are_sound_and_deterministic() {
        let test = parse_litmus(MP_ADDR).unwrap();
        for kind in [
            ModelKind::Promising,
            ModelKind::PromisingNaive,
            ModelKind::Flat,
        ] {
            let full = run_model(&test, kind).unwrap();
            let a = run_model_sampled(&test, kind, 16, 3).unwrap();
            assert!(
                a.outcomes.is_subset(&full.outcomes),
                "{}: sampled ⊄ exhaustive",
                kind.name()
            );
            let b = run_model_sampled(&test, kind, 16, 3).unwrap();
            assert_eq!(a.outcomes, b.outcomes, "{}: same seed differs", kind.name());
        }
        assert!(matches!(
            run_model_sampled(&test, ModelKind::Axiomatic, 16, 3),
            Err(RunError::SamplingUnsupported(ModelKind::Axiomatic))
        ));
    }

    #[test]
    fn lang_tests_run_and_conform_across_architectures() {
        let test = crate::format::parse_lang_litmus(
            "LANG MP+rel+acq\nstore(x, 1, rlx)\nstore(y, 1, rel)\n---\nr1 = load(y, acq)\nr2 = load(x, rlx)\nexists (P1:r1=1 /\\ P1:r2=0)\nexpect forbidden",
        )
        .unwrap();
        let c = check_lang_conformance(&test, &ModelKind::ALL).unwrap();
        assert!(c.agree, "{:?}", c.mismatch);
        assert_eq!(c.runs.len(), 8, "4 models × 2 architectures");
        for arch in [Arch::Arm, Arch::RiscV] {
            let v = evaluate_lang(&test, arch, ModelKind::Promising).unwrap();
            assert!(!v.holds);
            assert_eq!(v.matches_expectation, Some(true));
        }
    }

    #[test]
    fn budgeted_run_records_stop_reason() {
        let test = parse_litmus(MP_ADDR).unwrap();
        let full = run_model(&test, ModelKind::Promising).unwrap();
        assert_eq!(full.stop, StopReason::Completed);

        let cut =
            run_model_budgeted(&test, ModelKind::Promising, SearchBudget::max_states(1)).unwrap();
        assert_eq!(cut.stop, StopReason::StateBudget);
        assert!(
            cut.outcomes.is_subset(&full.outcomes),
            "truncated runs are lower bounds"
        );

        let tight = run_model_budgeted(&test, ModelKind::Flat, SearchBudget::max_bytes(1)).unwrap();
        assert_eq!(tight.stop, StopReason::MemoryBudget);
    }

    #[test]
    fn isolated_run_passes_through_clean_results() {
        let test = parse_litmus(MP_ADDR).unwrap();
        let full = run_model(&test, ModelKind::Promising).unwrap();
        let isolated =
            run_model_isolated(&test, ModelKind::Promising, SearchBudget::UNBOUNDED).unwrap();
        assert_eq!(isolated.outcomes, full.outcomes);
        assert_eq!(isolated.stop, StopReason::Completed);
    }

    #[test]
    fn panicked_error_formats_payload() {
        let e = RunError::Panicked {
            kind: ModelKind::Promising,
            payload: "injected model bug".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "model promising panicked: injected model bug"
        );
    }

    #[test]
    fn flat_conservative_flag_skips_flat() {
        let mut test = parse_litmus(MP_ADDR).unwrap();
        test.flat_conservative = true;
        let agreement = check_agreement(&test, &ModelKind::ALL).unwrap();
        assert_eq!(agreement.runs.len(), 3);
        assert!(agreement.runs.iter().all(|r| r.kind != ModelKind::Flat));
    }
}
