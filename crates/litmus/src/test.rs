//! Litmus tests: a program, initial values, a final-state condition, and
//! an expectation.

use promising_core::parser::LocTable;
use promising_core::{Arch, Loc, Outcome, Program, Reg, Val};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A final-state predicate over [`Outcome`]s.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pred {
    /// `Pn:r = v`.
    RegEq {
        /// Thread index.
        tid: usize,
        /// Register.
        reg: Reg,
        /// Expected value.
        val: Val,
    },
    /// `x = v` (final memory value).
    LocEq {
        /// Location.
        loc: Loc,
        /// Expected value.
        val: Val,
    },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Constant truth.
    True,
}

impl Pred {
    /// Evaluate against an outcome.
    pub fn eval(&self, o: &Outcome) -> bool {
        match self {
            Pred::RegEq { tid, reg, val } => o.reg(*tid, *reg) == *val,
            Pred::LocEq { loc, val } => o.loc(*loc) == *val,
            Pred::And(ps) => ps.iter().all(|p| p.eval(o)),
            Pred::Or(ps) => ps.iter().any(|p| p.eval(o)),
            Pred::Not(p) => !p.eval(o),
            Pred::True => true,
        }
    }

    /// `self /\ other`.
    #[must_use]
    pub fn and(self, other: Pred) -> Pred {
        match self {
            Pred::And(mut ps) => {
                ps.push(other);
                Pred::And(ps)
            }
            p => Pred::And(vec![p, other]),
        }
    }
}

/// How the condition quantifies over final states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantifier {
    /// `exists`: some reachable final state satisfies the predicate.
    Exists,
    /// `forall`: every reachable final state satisfies the predicate.
    Forall,
}

/// A litmus condition: quantifier + predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Condition {
    /// Quantifier.
    pub quantifier: Quantifier,
    /// Predicate on final states.
    pub pred: Pred,
}

impl Condition {
    /// Trivial condition (`exists true`).
    pub fn trivial() -> Condition {
        Condition {
            quantifier: Quantifier::Exists,
            pred: Pred::True,
        }
    }

    /// Whether the condition holds of an outcome set.
    pub fn holds(&self, outcomes: &std::collections::BTreeSet<Outcome>) -> bool {
        match self.quantifier {
            Quantifier::Exists => outcomes.iter().any(|o| self.pred.eval(o)),
            Quantifier::Forall => outcomes.iter().all(|o| self.pred.eval(o)),
        }
    }
}

/// The architectural expectation for an `exists` condition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// The listed final state is architecturally allowed.
    Allowed,
    /// The listed final state is architecturally forbidden.
    Forbidden,
}

/// A complete litmus test.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Test name (e.g. `MP+dmb.sy+addr`).
    pub name: String,
    /// Target architecture.
    pub arch: Arch,
    /// The program.
    pub program: Arc<Program>,
    /// Location-name table (for printing).
    pub locs: LocTable,
    /// Initial memory values.
    pub init: BTreeMap<Loc, Val>,
    /// The interesting final-state condition.
    pub condition: Condition,
    /// Ground-truth expectation, if known.
    pub expect: Option<Expectation>,
    /// Loop bound override (`None`: harness default).
    pub loop_fuel: Option<u32>,
    /// Whether the shape uses features on which the Flat-lite baseline is
    /// documented to be conservative (store-exclusive forwarding /
    /// success-dependency relaxations): the harness then skips Flat in
    /// agreement checks.
    pub flat_conservative: bool,
    /// When this hardware test was compiled from a language-level test
    /// (a `LANG` header), the frontend source — recompile it for the
    /// other architecture with [`LangTest::compile`].
    pub lang: Option<Arc<LangTest>>,
}

/// A *language-level* litmus test: a surface-language program
/// ([`promising_lang::Program`]) with C11 orderings, plus the usual
/// init/condition/expectation. It has no architecture of its own —
/// [`LangTest::compile`] lowers it to a hardware [`LitmusTest`] for
/// either architecture via the IMM compilation schemes.
#[derive(Clone, Debug)]
pub struct LangTest {
    /// Test name (e.g. `SB+sc`).
    pub name: String,
    /// The surface-language program.
    pub program: promising_lang::Program,
    /// Location-name table (shared by program and condition).
    pub locs: LocTable,
    /// Initial memory values.
    pub init: BTreeMap<Loc, Val>,
    /// The interesting final-state condition.
    pub condition: Condition,
    /// Expectation for the *compiled* programs (identical across
    /// architectures on the supported corpus), if known.
    pub expect: Option<Expectation>,
    /// Loop bound override (`None`: harness default).
    pub loop_fuel: Option<u32>,
}

impl LangTest {
    /// Lower to a hardware litmus test for `arch`
    /// ([`promising_lang::compile`]). The result keeps the name, carries
    /// a backlink to `self`, and is never Flat-conservative (compiled
    /// programs use single-instruction RMWs, not raw exclusives).
    ///
    /// # Panics
    ///
    /// Panics if the surface program is invalid (an ordering its access
    /// type does not admit) — impossible for parser- or
    /// recorder-produced tests; use [`LangTest::try_compile`] for
    /// hand-built programs.
    pub fn compile(&self, arch: Arch) -> LitmusTest {
        self.try_compile(arch)
            .unwrap_or_else(|e| panic!("in lang test `{}`: {e}", self.name))
    }

    /// [`LangTest::compile`], with invalid surface programs reported as
    /// a [`promising_lang::CompileError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a [`promising_lang::CompileError`] if an access carries
    /// an ordering its access type does not admit.
    pub fn try_compile(&self, arch: Arch) -> Result<LitmusTest, promising_lang::CompileError> {
        Ok(LitmusTest {
            name: self.name.clone(),
            arch,
            program: Arc::new(promising_lang::try_compile(&self.program, arch)?),
            locs: self.locs.clone(),
            init: self.init.clone(),
            condition: self.condition.clone(),
            expect: self.expect,
            loop_fuel: self.loop_fuel,
            flat_conservative: false,
            lang: Some(Arc::new(self.clone())),
        })
    }
}

impl fmt::Display for LangTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [lang]", self.name)
    }
}

impl LitmusTest {
    /// The outcome-condition verdict for an explored outcome set, plus
    /// whether it matches the expectation (if one is recorded).
    pub fn verdict(&self, outcomes: &std::collections::BTreeSet<Outcome>) -> (bool, Option<bool>) {
        let holds = self.condition.holds(outcomes);
        let matches = self.expect.map(|e| match e {
            Expectation::Allowed => holds,
            Expectation::Forbidden => !holds,
        });
        (holds, matches)
    }
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.arch.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn outcome(regs: &[(usize, u32, i64)]) -> Outcome {
        let max_tid = regs.iter().map(|&(t, _, _)| t).max().unwrap_or(0);
        let mut per: Vec<BTreeMap<Reg, Val>> = vec![BTreeMap::new(); max_tid + 1];
        for &(t, r, v) in regs {
            per[t].insert(Reg(r), Val(v));
        }
        Outcome {
            regs: per,
            memory: BTreeMap::new(),
        }
    }

    #[test]
    fn pred_eval_connectives() {
        let o = outcome(&[(0, 1, 42), (1, 2, 0)]);
        let p = Pred::RegEq {
            tid: 0,
            reg: Reg(1),
            val: Val(42),
        }
        .and(Pred::RegEq {
            tid: 1,
            reg: Reg(2),
            val: Val(0),
        });
        assert!(p.eval(&o));
        assert!(!Pred::Not(Box::new(p.clone())).eval(&o));
        assert!(Pred::Or(vec![Pred::Not(Box::new(p.clone())), p.clone()]).eval(&o));
    }

    #[test]
    fn exists_and_forall_quantifiers() {
        let o1 = outcome(&[(0, 1, 1)]);
        let o2 = outcome(&[(0, 1, 2)]);
        let set: BTreeSet<Outcome> = [o1, o2].into_iter().collect();
        let is1 = Pred::RegEq {
            tid: 0,
            reg: Reg(1),
            val: Val(1),
        };
        let exists = Condition {
            quantifier: Quantifier::Exists,
            pred: is1.clone(),
        };
        let forall = Condition {
            quantifier: Quantifier::Forall,
            pred: is1,
        };
        assert!(exists.holds(&set));
        assert!(!forall.holds(&set));
    }

    #[test]
    fn missing_registers_read_zero() {
        let o = outcome(&[]);
        assert!(Pred::RegEq {
            tid: 3,
            reg: Reg(9),
            val: Val(0)
        }
        .eval(&o));
    }
}
